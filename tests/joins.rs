//! Join-plan regression and acceptance tests.
//!
//! Pins the PEJ-top-k floor fix (the floor is maintained from the moment
//! `k` pairs exist and is propagated into every probe as its starting
//! threshold) and the parallel plan's contract: identical pairs to the
//! sequential plan on every backend, with strictly less probe work than
//! the pre-fix full-top-k-probe plan on a skewed workload.

use uncat::core::query::TopKQuery;
use uncat::core::{CatId, Divergence, Domain, Uda};
use uncat::datagen::crm::crm1;
use uncat::datagen::zipf::zipf_ranks;
use uncat::prelude::*;
use uncat::query::join::{index_join, index_top_k_pej_metered, parallel_join, JoinPair, JoinSpec};
use uncat::query::{BatchPools, InvertedBackend, UncertainIndex};
use uncat::storage::SharedStore;
use uncat_inverted::InvertedIndex;
use uncat_pdrtree::{PdrConfig, PdrTree};

const K: usize = 10;
const FRAMES: usize = 100;

/// A domain plus inner and outer relations.
type Workload = (Domain, Vec<(u64, Uda)>, Vec<(u64, Uda)>);

/// CRM1 inner relation plus a Zipf-skewed certain-probe outer relation —
/// the workload shape the floor fix targets: skew means early probes
/// establish a high floor that prunes the long tail of later probes.
fn zipf_workload(n: usize, outer_n: usize, seed: u64) -> Workload {
    let (domain, data) = crm1(n, seed);
    let outer = zipf_ranks(domain.size() as usize, 1.2, outer_n, seed ^ 0xA5A5)
        .into_iter()
        .enumerate()
        .map(|(i, rank)| (1_000_000 + i as u64, Uda::certain(CatId(rank as u32))))
        .collect();
    (domain, data, outer)
}

fn build_inverted(domain: &Domain, data: &[(u64, Uda)]) -> (InvertedBackend, SharedStore) {
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 512);
    let idx = InvertedIndex::build(domain.clone(), &mut pool, data.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");
    pool.flush().expect("in-memory flush");
    (InvertedBackend::new(idx), store)
}

fn build_pdr(domain: &Domain, data: &[(u64, Uda)]) -> (PdrTree, SharedStore) {
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 512);
    let tree = PdrTree::build(
        domain.clone(),
        PdrConfig::default(),
        &mut pool,
        data.iter().map(|(t, u)| (*t, u)),
    )
    .expect("in-memory build");
    pool.flush().expect("in-memory flush");
    (tree, store)
}

/// The pre-fix probe cost: a full top-k probe per outer tuple, no floor.
fn full_probe_baseline(
    outer: &[(u64, Uda)],
    inner: &impl UncertainIndex,
    pool: &mut BufferPool,
) -> (Vec<JoinPair>, QueryMetrics) {
    let mut metrics = QueryMetrics::new();
    let mut pairs = Vec::new();
    for (ltid, luda) in outer {
        for m in inner
            .top_k_metered(pool, &TopKQuery::new(luda.clone(), K), &mut metrics)
            .expect("in-memory probe")
        {
            pairs.push(JoinPair {
                left: *ltid,
                right: m.tid,
                score: m.score,
            });
        }
    }
    uncat::query::join::sort_pairs_desc(&mut pairs);
    pairs.truncate(K);
    (pairs, metrics)
}

fn assert_pairs_agree(what: &str, reference: &[JoinPair], got: &[JoinPair]) {
    assert_eq!(
        got.iter().map(|p| (p.left, p.right)).collect::<Vec<_>>(),
        reference
            .iter()
            .map(|p| (p.left, p.right))
            .collect::<Vec<_>>(),
        "{what}: pair sets differ"
    );
    for (r, g) in reference.iter().zip(got) {
        assert!(
            (r.score - g.score).abs() <= 1e-9,
            "{what}: pair ({}, {}) scored {} vs {}",
            g.left,
            g.right,
            g.score,
            r.score
        );
    }
}

/// Regression for the floor bug: the floor must be maintained from the
/// moment `k` pairs exist (the buggy code required *more than* `k`), and
/// propagating it into the probes must make warm probes strictly cheaper
/// than the pre-fix full-top-k probes — without changing the answer.
#[test]
fn sequential_pej_topk_floor_prunes_probes_after_heap_fills() {
    let (domain, data, outer) = zipf_workload(3000, 96, 7);
    let (inv, store) = build_inverted(&domain, &data);
    let mut pool = BufferPool::with_capacity(store.clone(), FRAMES);
    let (expected, baseline) = full_probe_baseline(&outer, &inv, &mut pool);

    let mut metrics = QueryMetrics::new();
    let mut pool = BufferPool::with_capacity(store.clone(), FRAMES);
    let pairs =
        index_top_k_pej_metered(&outer, &inv, &mut pool, K, &mut metrics).expect("in-memory join");

    assert_pairs_agree("sequential pej-topk", &expected, &pairs);
    assert!(
        metrics.postings_scanned < baseline.postings_scanned,
        "floor propagation must prune probe work: {} postings vs baseline {}",
        metrics.postings_scanned,
        baseline.postings_scanned
    );
}

/// Acceptance: the parallel PEJ-top-k plan with the shared floor issues
/// strictly fewer inner-probe postings reads than the pre-fix sequential
/// plan on a Zipf-skewed workload, and returns the exact same pairs.
#[test]
fn parallel_pej_topk_beats_prefix_probe_cost_on_zipf_workload() {
    let (domain, data, outer) = zipf_workload(3000, 96, 7);
    let (inv, store) = build_inverted(&domain, &data);
    let mut pool = BufferPool::with_capacity(store.clone(), FRAMES);
    let (expected, baseline) = full_probe_baseline(&outer, &inv, &mut pool);

    let outcome = parallel_join(
        &outer,
        &inv,
        &store,
        &BatchPools::private(FRAMES),
        JoinSpec::PejTopK { k: K },
        4,
    )
    .expect("in-memory join");

    assert_pairs_agree("parallel pej-topk", &expected, &outcome.pairs);
    assert!(
        outcome.metrics.postings_scanned < baseline.postings_scanned,
        "shared floor must prune probe work: {} postings vs pre-fix baseline {}",
        outcome.metrics.postings_scanned,
        baseline.postings_scanned
    );
}

/// The parallel plan returns tid-exact pairs against the sequential
/// index plan, for every join form, on both paper indexes.
#[test]
fn parallel_plans_match_sequential_on_both_backends() {
    let (domain, data, outer) = zipf_workload(800, 48, 11);
    let specs = [
        JoinSpec::Petj { tau: 0.4 },
        JoinSpec::PejTopK { k: 7 },
        JoinSpec::Dstj {
            tau_d: 0.6,
            divergence: Divergence::L1,
        },
    ];

    let (inv, inv_store) = build_inverted(&domain, &data);
    let (pdr, pdr_store) = build_pdr(&domain, &data);

    for spec in specs {
        let mut pool = BufferPool::with_capacity(inv_store.clone(), FRAMES);
        let seq = index_join(&outer, &inv, &mut pool, spec).expect("in-memory join");
        let par = parallel_join(
            &outer,
            &inv,
            &inv_store,
            &BatchPools::shared(&inv_store, FRAMES * 3, 4),
            spec,
            3,
        )
        .expect("in-memory join");
        assert_pairs_agree(&format!("{} inverted", spec.name()), &seq.pairs, &par.pairs);

        let mut pool = BufferPool::with_capacity(pdr_store.clone(), FRAMES);
        let seq = index_join(&outer, &pdr, &mut pool, spec).expect("in-memory join");
        let par = parallel_join(
            &outer,
            &pdr,
            &pdr_store,
            &BatchPools::private(FRAMES),
            spec,
            3,
        )
        .expect("in-memory join");
        assert_pairs_agree(&format!("{} pdr", spec.name()), &seq.pairs, &par.pairs);
    }
}

/// For threshold joins the probes are independent of the partitioning, so
/// the parallel plan's summed counters must equal the sequential plan's
/// exactly — including logical page accesses; only physical I/O may
/// differ (each worker faults its own working set).
#[test]
fn parallel_threshold_join_metrics_sum_to_sequential() {
    let (domain, data, outer) = zipf_workload(800, 48, 13);
    let (inv, store) = build_inverted(&domain, &data);
    for spec in [
        JoinSpec::Petj { tau: 0.3 },
        JoinSpec::Dstj {
            tau_d: 0.5,
            divergence: Divergence::L2,
        },
    ] {
        let mut pool = BufferPool::with_capacity(store.clone(), FRAMES);
        let seq = index_join(&outer, &inv, &mut pool, spec).expect("in-memory join");
        let par = parallel_join(&outer, &inv, &store, &BatchPools::private(FRAMES), spec, 4)
            .expect("in-memory join");

        let mut seq_counters = seq.metrics;
        let mut par_counters = par.metrics;
        assert_eq!(
            par_counters.io.logical_reads,
            seq_counters.io.logical_reads,
            "{}: logical accesses are partition-independent",
            spec.name()
        );
        seq_counters.io = IoStats::default();
        par_counters.io = IoStats::default();
        assert_eq!(
            par_counters,
            seq_counters,
            "{}: non-I/O counters must sum exactly",
            spec.name()
        );
    }
}
