//! End-to-end CLI test: generate → build (both indexes) → query → stats,
//! all through the `uncat` binary and real files.

use std::path::PathBuf;
use std::process::Command;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let mut p = std::env::temp_dir();
        p.push(format!("uncat-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&p).expect("create temp dir");
        TempDir(p)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn uncat(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_uncat"))
        .args(args)
        .output()
        .expect("spawn uncat binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn full_cli_workflow_both_indexes() {
    let dir = TempDir::new("flow");
    let data = dir.path("data.uds");

    let (ok, out) = uncat(&[
        "gen",
        "--dataset",
        "crm1",
        "--n",
        "2000",
        "--seed",
        "5",
        "--out",
        &data,
    ]);
    assert!(ok, "gen failed: {out}");
    assert!(out.contains("wrote 2000 tuples"));

    for (index, bulk) in [("inverted", false), ("pdr", false), ("pdr", true)] {
        let tag = if bulk {
            format!("{index}-bulk")
        } else {
            index.to_owned()
        };
        let pages = dir.path(&format!("{tag}.pages"));
        let meta = dir.path(&format!("{tag}.meta"));
        let mut args = vec![
            "build", "--index", index, "--data", &data, "--pages", &pages, "--meta", &meta,
        ];
        if bulk {
            args.push("--bulk");
        }
        let (ok, out) = uncat(&args);
        assert!(ok, "build {tag} failed: {out}");

        let (ok, out) = uncat(&[
            "query", "--index", index, "--pages", &pages, "--meta", &meta, "--cat", "0", "--tau",
            "0.7",
        ]);
        assert!(ok, "query {tag} failed: {out}");
        assert!(out.contains("matches"), "unexpected query output: {out}");

        let (ok, out) = uncat(&[
            "topk", "--index", index, "--pages", &pages, "--meta", &meta, "--cat", "0", "--k", "5",
        ]);
        assert!(ok, "topk {tag} failed: {out}");
        assert!(out.contains("5 matches"), "topk should return 5: {out}");

        let (ok, out) = uncat(&[
            "stats", "--index", index, "--pages", &pages, "--meta", &meta,
        ]);
        assert!(ok, "stats {tag} failed: {out}");
        assert!(out.contains("store pages"));
    }
}

#[test]
fn query_results_agree_across_indexes_via_cli() {
    let dir = TempDir::new("agree");
    let data = dir.path("data.uds");
    uncat(&[
        "gen",
        "--dataset",
        "pairwise",
        "--n",
        "1000",
        "--seed",
        "9",
        "--out",
        &data,
    ]);

    let mut counts = Vec::new();
    for index in ["inverted", "pdr"] {
        let pages = dir.path(&format!("{index}.pages"));
        let meta = dir.path(&format!("{index}.meta"));
        let (ok, _) = uncat(&[
            "build", "--index", index, "--data", &data, "--pages", &pages, "--meta", &meta,
        ]);
        assert!(ok);
        let (ok, out) = uncat(&[
            "query", "--index", index, "--pages", &pages, "--meta", &meta, "--cat", "1", "--tau",
            "0.4",
        ]);
        assert!(ok);
        let line = out
            .lines()
            .find(|l| l.contains("matches,"))
            .expect("summary line");
        counts.push(line.split_whitespace().next().expect("count").to_owned());
    }
    assert_eq!(
        counts[0], counts[1],
        "both indexes must return the same count"
    );
}

/// `--explain` prints the full counter block, and on a seeded dataset a
/// pruning strategy's postings-scanned is strictly lower than brute
/// force's (the acceptance check for the observability layer).
#[test]
fn explain_shows_pruning_beating_brute_force() {
    let dir = TempDir::new("explain");
    let data = dir.path("data.uds");
    let (ok, _) = uncat(&[
        "gen",
        "--dataset",
        "crm1",
        "--n",
        "3000",
        "--seed",
        "11",
        "--out",
        &data,
    ]);
    assert!(ok);
    let pages = dir.path("inv.pages");
    let meta = dir.path("inv.meta");
    let (ok, _) = uncat(&[
        "build", "--index", "inverted", "--data", &data, "--pages", &pages, "--meta", &meta,
    ]);
    assert!(ok);

    fn postings_scanned(out: &str) -> u64 {
        out.lines()
            .find(|l| l.trim_start().starts_with("postings_scanned"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no postings_scanned in output: {out}"))
    }

    let mut counts = Vec::new();
    for strategy in ["brute", "column-pruning"] {
        let (ok, out) = uncat(&[
            "query",
            "--index",
            "inverted",
            "--pages",
            &pages,
            "--meta",
            &meta,
            "--cat",
            "0",
            "--tau",
            "0.6",
            "--strategy",
            strategy,
            "--explain",
        ]);
        assert!(ok, "query --explain failed: {out}");
        assert!(out.contains("execution counters:"), "missing block: {out}");
        // Every documented counter is present in the explain output.
        for name in [
            "lists_opened",
            "postings_scanned",
            "blocks_decoded",
            "blocks_skipped",
            "candidates_generated",
            "nodes_visited",
            "io.physical_reads",
        ] {
            assert!(out.contains(name), "explain output missing {name}: {out}");
        }
        counts.push(postings_scanned(&out));
    }
    assert!(
        counts[1] < counts[0],
        "column pruning ({}) must scan strictly fewer postings than brute ({})",
        counts[1],
        counts[0],
    );

    // The explain command renders the five-strategy comparison table.
    let (ok, out) = uncat(&[
        "explain", "--index", "inverted", "--pages", &pages, "--meta", &meta, "--cat", "0",
        "--tau", "0.6",
    ]);
    assert!(ok, "explain failed: {out}");
    for name in [
        "inv-index-search",
        "highest-prob-first",
        "row-pruning",
        "column-pruning",
        "nra",
        "postings_scanned",
        "blocks_decoded",
        "blocks_skipped",
    ] {
        assert!(out.contains(name), "explain table missing {name}: {out}");
    }
}

/// `build --format` selects the posting layout: both formats answer the
/// same query identically, `stats` names the format, and only the block
/// format reports block counters.
#[test]
fn posting_format_flag_roundtrips_both_layouts() {
    let dir = TempDir::new("format");
    let data = dir.path("data.uds");
    let (ok, _) = uncat(&[
        "gen",
        "--dataset",
        "crm1",
        "--n",
        "2000",
        "--seed",
        "5",
        "--out",
        &data,
    ]);
    assert!(ok);

    let mut answers = Vec::new();
    for format in ["raw", "blocks"] {
        let pages = dir.path(&format!("{format}.pages"));
        let meta = dir.path(&format!("{format}.meta"));
        let (ok, out) = uncat(&[
            "build", "--index", "inverted", "--format", format, "--data", &data, "--pages", &pages,
            "--meta", &meta,
        ]);
        assert!(ok, "build --format {format} failed: {out}");

        let (ok, out) = uncat(&[
            "stats", "--index", "inverted", "--pages", &pages, "--meta", &meta,
        ]);
        assert!(ok, "stats failed: {out}");
        match format {
            "raw" => {
                assert!(
                    out.contains("raw (UIV1)"),
                    "stats must name the format: {out}"
                );
                assert!(!out.contains("posting blocks"), "raw has no blocks: {out}");
            }
            _ => {
                assert!(
                    out.contains("blocks (UIV2)"),
                    "stats must name the format: {out}"
                );
                assert!(out.contains("posting blocks"), "missing block count: {out}");
                assert!(out.contains("block pages"), "missing block pages: {out}");
            }
        }

        let (ok, out) = uncat(&[
            "query", "--index", "inverted", "--pages", &pages, "--meta", &meta, "--cat", "0",
            "--tau", "0.3", "--limit", "10",
        ]);
        assert!(ok, "query failed: {out}");
        answers.push(out);
    }
    assert_eq!(
        answers[0], answers[1],
        "raw and block formats must answer identically"
    );

    let pages = dir.path("bad.pages");
    let meta = dir.path("bad.meta");
    let (ok, out) = uncat(&[
        "build", "--index", "inverted", "--format", "zip", "--data", &data, "--pages", &pages,
        "--meta", &meta,
    ]);
    assert!(!ok, "unknown format must be rejected");
    assert!(
        out.contains("--format"),
        "error should name the flag: {out}"
    );
}

/// `batch` runs a Zipf mix in both pool modes: identical match totals,
/// strictly fewer physical reads under the shared pool, and a per-shard
/// hit-rate table in `--explain` output proving where the savings came
/// from.
#[test]
fn batch_shared_pool_beats_private_via_cli() {
    let dir = TempDir::new("batch");
    let data = dir.path("data.uds");
    let (ok, _) = uncat(&[
        "gen",
        "--dataset",
        "crm1",
        "--n",
        "5000",
        "--seed",
        "13",
        "--out",
        &data,
    ]);
    assert!(ok);
    let pages = dir.path("inv.pages");
    let meta = dir.path("inv.meta");
    let (ok, _) = uncat(&[
        "build", "--index", "inverted", "--data", &data, "--pages", &pages, "--meta", &meta,
    ]);
    assert!(ok);

    fn field(out: &str, which: &str) -> u64 {
        let line = out
            .lines()
            .find(|l| l.contains(which))
            .unwrap_or_else(|| panic!("no {which} line in: {out}"));
        line.split(&[' ', ':'][..])
            .filter_map(|w| w.parse().ok())
            .next()
            .unwrap_or_else(|| panic!("unparsable {which} line: {line}"))
    }

    let mut matches = Vec::new();
    let mut reads = Vec::new();
    for pool in ["private", "shared"] {
        let (ok, out) = uncat(&[
            "batch",
            "--index",
            "inverted",
            "--pages",
            &pages,
            "--meta",
            &meta,
            "--pool",
            pool,
            "--n",
            "40",
            "--threads",
            "4",
            "--shards",
            "8",
            "--seed",
            "3",
            "--explain",
        ]);
        assert!(ok, "batch --pool {pool} failed: {out}");
        assert!(out.contains("0 failed"), "queries failed: {out}");
        matches.push(field(&out, "matches in"));
        reads.push(field(&out, "physical reads,"));
        assert!(out.contains("io.physical_reads"), "missing counters: {out}");
        if pool == "shared" {
            assert!(out.contains("hit-rate"), "missing shard table: {out}");
            assert!(out.contains("8 shards"), "missing shard count: {out}");
        }
    }
    assert_eq!(matches[0], matches[1], "pool mode must not change results");
    assert!(
        reads[1] < reads[0],
        "shared pool must do strictly fewer reads ({} vs {})",
        reads[1],
        reads[0]
    );
}

/// `join` runs all three physical plans over the same relation: every
/// plan returns the same pair count, and `--explain` prints the counter
/// block (plus the per-shard table when the parallel plan uses the
/// shared pool).
#[test]
fn join_plans_agree_via_cli() {
    let dir = TempDir::new("join");
    let data = dir.path("data.uds");
    let (ok, _) = uncat(&[
        "gen",
        "--dataset",
        "crm1",
        "--n",
        "2000",
        "--seed",
        "17",
        "--out",
        &data,
    ]);
    assert!(ok);

    let mut counts = Vec::new();
    for plan in ["block", "index", "parallel"] {
        let (ok, out) = uncat(&[
            "join", "--data", &data, "--kind", "petj", "--tau", "0.5", "--plan", plan, "--outer",
            "32", "--seed", "23",
        ]);
        assert!(ok, "join --plan {plan} failed: {out}");
        let line = out
            .lines()
            .find(|l| l.contains("pairs via"))
            .unwrap_or_else(|| panic!("no summary line: {out}"));
        counts.push(
            line.split_whitespace()
                .next()
                .expect("pair count")
                .to_owned(),
        );
    }
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "plans disagree on pair count: {counts:?}"
    );

    let (ok, out) = uncat(&[
        "join",
        "--data",
        &data,
        "--kind",
        "pej-topk",
        "--k",
        "8",
        "--plan",
        "parallel",
        "--pool",
        "shared",
        "--threads",
        "4",
        "--shards",
        "8",
        "--outer",
        "32",
        "--seed",
        "23",
        "--explain",
    ]);
    assert!(ok, "parallel pej-topk failed: {out}");
    assert!(out.contains("8 pej-topk pairs"), "wrong count: {out}");
    assert!(out.contains("execution counters:"), "missing block: {out}");
    for name in ["postings_scanned", "io.physical_reads", "hit-rate"] {
        assert!(out.contains(name), "explain output missing {name}: {out}");
    }
}

/// The online-mutation workflow: `put` adopts a plain-built index into
/// the durable sidecar (WAL + journal + snapshot), later commands
/// recover the logged mutations automatically and see their effects,
/// and `checkpoint`/`recover` fold and report the log.
#[test]
fn mutate_and_recover_workflow_via_cli() {
    let dir = TempDir::new("mutate");
    let data = dir.path("data.uds");
    let (ok, out) = uncat(&[
        "gen",
        "--dataset",
        "crm1",
        "--n",
        "1500",
        "--seed",
        "21",
        "--out",
        &data,
    ]);
    assert!(ok, "gen failed: {out}");

    fn count(out: &str) -> u64 {
        out.lines()
            .find(|l| l.contains("matches,"))
            .and_then(|l| l.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no match count in output: {out}"))
    }

    for index in ["inverted", "pdr"] {
        let pages = dir.path(&format!("{index}.pages"));
        let meta = dir.path(&format!("{index}.meta"));
        let (ok, out) = uncat(&[
            "build", "--index", index, "--data", &data, "--pages", &pages, "--meta", &meta,
        ]);
        assert!(ok, "build {index} failed: {out}");

        let query = |tag: &str| {
            let (ok, out) = uncat(&[
                "query", "--index", index, "--pages", &pages, "--meta", &meta, "--cat", "0",
                "--tau", "0.9",
            ]);
            assert!(ok, "query {index}/{tag} failed: {out}");
            (count(&out), out)
        };
        let (before, _) = query("baseline");

        // First mutation adopts the plain-built index into the sidecar.
        let (ok, out) = uncat(&[
            "put",
            "--index",
            index,
            "--pages",
            &pages,
            "--meta",
            &meta,
            "--tid",
            "900001",
            "--uda",
            "0:0.95,1:0.05",
            "--explain",
        ]);
        assert!(ok, "put {index} failed: {out}");
        assert!(out.contains("inserted tuple 900001"), "put output: {out}");
        assert!(out.contains("wal_appends"), "missing WAL counters: {out}");
        for file in ["durable", "wal", "journal"] {
            let side = format!("{meta}.{file}");
            assert!(
                std::path::Path::new(&side).exists(),
                "{index}: sidecar {file} missing after put"
            );
        }

        // A second put of the same tid is an upsert.
        let (ok, out) = uncat(&[
            "put",
            "--index",
            index,
            "--pages",
            &pages,
            "--meta",
            &meta,
            "--tid",
            "900001",
            "--uda",
            "0:0.92,2:0.08",
        ]);
        assert!(ok, "re-put {index} failed: {out}");
        assert!(
            out.contains("replaced tuple 900001"),
            "re-put output: {out}"
        );

        // The query path recovers the logged mutations and sees them.
        let (after, out) = query("mutated");
        assert_eq!(after, before + 1, "{index}: put not visible: {out}");

        // Delete removes it again; a second delete is a clean no-op.
        let (ok, out) = uncat(&[
            "delete", "--index", index, "--pages", &pages, "--meta", &meta, "--tid", "900001",
        ]);
        assert!(ok, "delete {index} failed: {out}");
        assert!(out.contains("deleted tuple 900001"), "delete output: {out}");
        let (ok, out) = uncat(&[
            "delete", "--index", index, "--pages", &pages, "--meta", &meta, "--tid", "900001",
        ]);
        assert!(ok, "re-delete {index} failed: {out}");
        assert!(out.contains("was not indexed"), "re-delete output: {out}");
        let (restored, out) = query("deleted");
        assert_eq!(restored, before, "{index}: delete not visible: {out}");

        // Fold the log and verify an explicit recovery reports cleanly.
        let (ok, out) = uncat(&[
            "checkpoint",
            "--index",
            index,
            "--pages",
            &pages,
            "--meta",
            &meta,
        ]);
        assert!(ok, "checkpoint {index} failed: {out}");
        assert!(
            out.contains("checkpoint complete: epoch"),
            "checkpoint output: {out}"
        );
        let (ok, out) = uncat(&[
            "recover", "--index", index, "--pages", &pages, "--meta", &meta,
        ]);
        assert!(ok, "recover {index} failed: {out}");
        assert!(out.contains("recovered to epoch"), "recover output: {out}");
        assert!(out.contains("replayed records:"), "recover output: {out}");

        // The index stays fully queryable after the durable round trips.
        let (ok, out) = uncat(&[
            "topk", "--index", index, "--pages", &pages, "--meta", &meta, "--cat", "0", "--k", "5",
        ]);
        assert!(ok, "topk {index} failed: {out}");
        assert!(out.contains("5 matches"), "topk output: {out}");
    }
}

#[test]
fn cli_rejects_bad_usage() {
    let (ok, out) = uncat(&["frobnicate"]);
    assert!(!ok);
    assert!(out.contains("unknown command"));

    let (ok, out) = uncat(&[
        "gen",
        "--dataset",
        "nope",
        "--n",
        "10",
        "--out",
        "/dev/null",
    ]);
    assert!(!ok);
    assert!(out.contains("unknown dataset"));

    let (ok, out) = uncat(&["query", "--index", "pdr"]);
    assert!(!ok);
    assert!(out.contains("missing --pages"));
}

/// `--trace` renders the span tree (rooted at `query`) with the
/// buffer-pool I/O footer, and `--trace-json` writes a parseable,
/// non-empty Chrome trace-event array (`"ph":"X"` complete events).
#[test]
fn trace_flags_emit_span_tree_and_chrome_json() {
    use uncat_bench::Json;

    let dir = TempDir::new("trace");
    let data = dir.path("data.uds");
    let (ok, _) = uncat(&[
        "gen",
        "--dataset",
        "crm1",
        "--n",
        "3000",
        "--seed",
        "7",
        "--out",
        &data,
    ]);
    assert!(ok);

    for index in ["inverted", "pdr"] {
        let pages = dir.path(&format!("{index}.pages"));
        let meta = dir.path(&format!("{index}.meta"));
        let (ok, out) = uncat(&[
            "build", "--index", index, "--data", &data, "--pages", &pages, "--meta", &meta,
        ]);
        assert!(ok, "build {index} failed: {out}");

        let json_path = dir.path(&format!("{index}-trace.json"));
        let (ok, out) = uncat(&[
            "query",
            "--index",
            index,
            "--pages",
            &pages,
            "--meta",
            &meta,
            "--cat",
            "0",
            "--tau",
            "0.5",
            "--trace",
            "--trace-json",
            &json_path,
        ]);
        assert!(ok, "traced query ({index}) failed: {out}");
        assert!(out.contains("latency trace:"), "no tree header: {out}");
        assert!(out.contains("query"), "no root span line: {out}");
        assert!(out.contains("traced total"), "no total footer: {out}");
        assert!(out.contains("buffer-pool i/o"), "no i/o footer: {out}");

        let text =
            std::fs::read_to_string(&json_path).unwrap_or_else(|e| panic!("read {json_path}: {e}"));
        let doc = Json::parse(&text).expect("chrome trace output must be valid JSON");
        let events = doc.as_array().expect("chrome trace is a JSON array");
        assert!(!events.is_empty(), "trace must contain events");
        for ev in events {
            assert_eq!(
                ev.get("ph").and_then(Json::as_str),
                Some("X"),
                "complete events only"
            );
            assert!(
                ev.get("name").is_some() && ev.get("ts").is_some() && ev.get("dur").is_some(),
                "event missing required keys: {ev:?}"
            );
        }
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("query")),
            "no query root event"
        );
    }
}

/// `batch --trace` prints the merged cross-worker latency histograms.
#[test]
fn batch_trace_prints_merged_histograms() {
    let dir = TempDir::new("batchtrace");
    let data = dir.path("data.uds");
    let (ok, _) = uncat(&[
        "gen",
        "--dataset",
        "crm1",
        "--n",
        "3000",
        "--seed",
        "9",
        "--out",
        &data,
    ]);
    assert!(ok);
    let pages = dir.path("inv.pages");
    let meta = dir.path("inv.meta");
    let (ok, _) = uncat(&[
        "build", "--index", "inverted", "--data", &data, "--pages", &pages, "--meta", &meta,
    ]);
    assert!(ok);

    let (ok, out) = uncat(&[
        "batch",
        "--index",
        "inverted",
        "--pages",
        &pages,
        "--meta",
        &meta,
        "--n",
        "16",
        "--threads",
        "3",
        "--trace",
    ]);
    assert!(ok, "batch --trace failed: {out}");
    assert!(out.contains("histogram"), "no histogram table: {out}");
    assert!(out.contains("p95_us"), "no quantile columns: {out}");
    assert!(
        out.contains("buffer_read"),
        "cold batch must record read latencies: {out}"
    );
}

/// `explain` reports a wall-clock `elapsed_us` row alongside the
/// counter rows, for every strategy column.
#[test]
fn explain_prints_elapsed_time_row() {
    let dir = TempDir::new("explaintime");
    let data = dir.path("data.uds");
    let (ok, _) = uncat(&[
        "gen",
        "--dataset",
        "crm1",
        "--n",
        "2000",
        "--seed",
        "15",
        "--out",
        &data,
    ]);
    assert!(ok);
    let pages = dir.path("inv.pages");
    let meta = dir.path("inv.meta");
    let (ok, _) = uncat(&[
        "build", "--index", "inverted", "--data", &data, "--pages", &pages, "--meta", &meta,
    ]);
    assert!(ok);

    let (ok, out) = uncat(&[
        "explain", "--index", "inverted", "--pages", &pages, "--meta", &meta, "--cat", "0",
        "--tau", "0.5",
    ]);
    assert!(ok, "explain failed: {out}");
    let timing = out
        .lines()
        .find(|l| l.starts_with("elapsed_us"))
        .unwrap_or_else(|| panic!("no elapsed_us row: {out}"));
    // One numeric cell per strategy column.
    let cells = timing.split_whitespace().skip(1).count();
    assert_eq!(cells, 5, "one timing cell per strategy: {timing}");
}

/// `explain` prints the planner's predicted counters next to the
/// measured ones, names its pick, and flags predictions that miss by
/// more than the adaptive executor's own overrun slack. The dataset is
/// crafted so one flag fires deterministically: every posting carries
/// p = 0.26, and at τ = 0.31 column pruning's histogram (bucket edges
/// at 1/16 steps) predicts a full-list scan while the real scan prunes
/// every block — a guaranteed over-estimate beyond the 3x + 512 slack.
#[test]
fn explain_prints_predictions_pick_and_misprediction_flags() {
    use uncat::core::{CatId, Domain, Uda};

    let dir = TempDir::new("predict");
    let data = dir.path("data.uds");
    let domain = Domain::anonymous(2);
    let tuples: Vec<(u64, Uda)> = (0..600)
        .map(|t| {
            (
                t,
                Uda::from_pairs([(CatId(0), 0.26), (CatId(1), 0.74)]).expect("valid uda"),
            )
        })
        .collect();
    uncat::datagen::io::save(&data, &domain, &tuples).expect("write custom dataset");

    let pages = dir.path("inv.pages");
    let meta = dir.path("inv.meta");
    let (ok, out) = uncat(&[
        "build", "--index", "inverted", "--data", &data, "--pages", &pages, "--meta", &meta,
    ]);
    assert!(ok, "build failed: {out}");

    let (ok, out) = uncat(&[
        "explain", "--index", "inverted", "--pages", &pages, "--meta", &meta, "--cat", "0",
        "--tau", "0.31",
    ]);
    assert!(ok, "explain failed: {out}");
    // Predicted counters render as rows, one cell per strategy column.
    for row in [
        "pred_postings_scanned",
        "pred_blocks_decoded",
        "pred_cand_verified",
        "pred_physical_reads",
    ] {
        let line = out
            .lines()
            .find(|l| l.starts_with(row))
            .unwrap_or_else(|| panic!("no {row} row: {out}"));
        let cells = line.split_whitespace().skip(1).count();
        assert_eq!(cells, 5, "one predicted cell per strategy: {line}");
    }
    assert!(out.contains("planner picks "), "no pick line: {out}");
    assert!(
        out.contains("misprediction: column-pruning postings_scanned over-estimated"),
        "expected the engineered over-estimate flag: {out}"
    );

    // The planner is still usable as a strategy: `--strategy auto` (also
    // the default) answers the query and reports like any fixed one.
    let (ok, out) = uncat(&[
        "query",
        "--index",
        "inverted",
        "--pages",
        &pages,
        "--meta",
        &meta,
        "--cat",
        "1",
        "--tau",
        "0.5",
        "--strategy",
        "auto",
    ]);
    assert!(ok, "query --strategy auto failed: {out}");
    assert!(out.contains("600 matches"), "auto missed tuples: {out}");
}

/// `uncat serve`: a scripted multi-tenant session over piped stdin —
/// queries answered per tenant, stats aggregated, and recoverable
/// errors (unknown tenant, unknown command) reported without ending
/// the session.
#[test]
fn serve_answers_a_scripted_session() {
    use std::io::Write;
    use std::process::Stdio;

    let mut child = Command::new(env!("CARGO_BIN_EXE_uncat"))
        .args([
            "serve",
            "--tenants",
            "2",
            "--shards",
            "2",
            "--n",
            "500",
            "--seed",
            "7",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn uncat serve");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(
            b"tenants\n\
              petq t0 0 0.3\n\
              topk t1 0 5\n\
              stats t0\n\
              petq nobody 0 0.3\n\
              frobnicate\n\
              quit\n",
        )
        .expect("write the session script");
    let out = child.wait_with_output().expect("serve exits");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.status.success(), "serve failed: {text}");
    assert!(text.contains("serving 2 tenant(s)"), "no banner: {text}");
    assert!(text.contains("t0 t1"), "tenants listing missing: {text}");
    assert!(text.contains("petq t0:"), "petq answer missing: {text}");
    assert!(text.contains("topk t1:"), "topk answer missing: {text}");
    assert!(
        text.contains("t0: completed=1 rejected=0"),
        "stats must count the one completed t0 query: {text}"
    );
    assert!(
        text.contains("error: unknown tenant: nobody"),
        "unknown tenant must be recoverable: {text}"
    );
    assert!(
        text.contains("? unknown command: frobnicate"),
        "unknown command must be recoverable: {text}"
    );
}

/// `uncat bench-service --validate` accepts the committed artifact —
/// the same check the CI service-smoke job performs.
#[test]
fn bench_service_validates_the_committed_artifact() {
    let artifact = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_service.json");
    let (ok, out) = uncat(&["bench-service", "--validate", artifact]);
    assert!(ok, "validation failed: {out}");
    assert!(out.contains("valid"), "unexpected output: {out}");
}
