//! Cross-crate end-to-end tests: datasets from `uncat-datagen`, both paper
//! indexes plus the scan baseline, calibrated workloads, shared disk.

use uncat::core::equality::eq_prob;
use uncat::core::{Divergence, DstQuery, EqQuery, TopKQuery};
use uncat::datagen::workload::{calibrate, queries_from_data, SELECTIVITIES};
use uncat::datagen::{crm, gen3, pairwise, uniform, Dataset};
use uncat::prelude::*;
use uncat::query::{InvertedBackend, ScanBaseline, UncertainIndex};
use uncat_inverted::InvertedIndex;
use uncat_pdrtree::{PdrConfig, PdrTree};

struct World {
    data: Dataset,
    store: uncat::storage::SharedStore,
    inverted: InvertedBackend,
    pdr: PdrTree,
    scan: ScanBaseline,
}

fn world(domain: Domain, data: Dataset) -> World {
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 256);
    let inverted = InvertedBackend::new(
        InvertedIndex::build(domain.clone(), &mut pool, data.iter().map(|(t, u)| (*t, u)))
            .expect("in-memory build"),
    );
    let pdr = PdrTree::build(
        domain,
        PdrConfig::default(),
        &mut pool,
        data.iter().map(|(t, u)| (*t, u)),
    )
    .expect("in-memory build");
    let scan =
        ScanBaseline::build(&mut pool, data.iter().map(|(t, u)| (*t, u))).expect("in-memory build");
    pool.flush().expect("in-memory flush");
    World {
        data,
        store,
        inverted,
        pdr,
        scan,
    }
}

fn check_agreement(w: &World, label: &str) {
    let mut pool = BufferPool::with_capacity(w.store.clone(), 150);
    let queries = queries_from_data(&w.data, 4, 99);
    for q in &queries {
        for &s in &SELECTIVITIES {
            let Some(cq) = calibrate(&w.data, q, s) else {
                continue;
            };
            let eq = EqQuery::new(cq.q.clone(), cq.tau);
            let a = w.scan.petq(&mut pool, &eq).expect("in-memory query");
            let b = w.inverted.petq(&mut pool, &eq).expect("in-memory query");
            let c = w.pdr.petq(&mut pool, &eq).expect("in-memory query");
            let ids = |v: &[uncat::core::query::Match]| v.iter().map(|m| m.tid).collect::<Vec<_>>();
            assert_eq!(
                ids(&a),
                ids(&b),
                "{label}: inverted PETQ at selectivity {s}"
            );
            assert_eq!(ids(&a), ids(&c), "{label}: pdr PETQ at selectivity {s}");
            assert!(
                a.len() as f64 >= s * w.data.len() as f64 * 0.5,
                "{label}: calibration produced too few results"
            );

            let tk = TopKQuery::new(cq.q.clone(), cq.k);
            let a = w.scan.top_k(&mut pool, &tk).expect("in-memory query");
            let b = w.inverted.top_k(&mut pool, &tk).expect("in-memory query");
            let c = w.pdr.top_k(&mut pool, &tk).expect("in-memory query");
            assert_eq!(
                ids(&a),
                ids(&b),
                "{label}: inverted top-k at selectivity {s}"
            );
            assert_eq!(ids(&a), ids(&c), "{label}: pdr top-k at selectivity {s}");
        }
    }
}

#[test]
fn uniform_dataset_end_to_end() {
    let (domain, data) = uniform::generate(1500, 21);
    check_agreement(&world(domain, data), "uniform");
}

#[test]
fn pairwise_dataset_end_to_end() {
    let (domain, data) = pairwise::generate(1500, 22);
    check_agreement(&world(domain, data), "pairwise");
}

#[test]
fn crm1_dataset_end_to_end() {
    let (domain, data) = crm::crm1(1500, 23);
    check_agreement(&world(domain, data), "crm1");
}

#[test]
fn crm2_dataset_end_to_end() {
    let (domain, data) = crm::crm2(600, 24);
    check_agreement(&world(domain, data), "crm2");
}

#[test]
fn gen3_small_and_large_domains_end_to_end() {
    for d in [5u32, 120] {
        let (domain, data) = gen3::generate(1000, d, 25);
        check_agreement(&world(domain, data), &format!("gen3-{d}"));
    }
}

#[test]
fn textsim_classifier_output_end_to_end() {
    // The deeper CRM1 substitution: index real classifier posteriors
    // produced by the naive-Bayes pipeline and check backend agreement.
    let (domain, data, accuracy) = uncat::datagen::textsim::generate(1200, 19);
    assert!(accuracy > 0.5);
    check_agreement(&world(domain, data), "textsim");
}

#[test]
fn executor_with_custom_frames_runs_all_query_families() {
    let (domain, data) = crm::crm1(1500, 61);
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 256);
    let pdr = PdrTree::build(
        domain,
        PdrConfig::default(),
        &mut pool,
        data.iter().map(|(t, u)| (*t, u)),
    )
    .expect("in-memory build");
    pool.flush().expect("in-memory flush");
    drop(pool);

    let exec = uncat::query::Executor::with_frames(pdr, store, 25);
    assert_eq!(exec.frames(), 25);
    let q = data[10].1.clone();
    let eq = exec
        .petq(&EqQuery::new(q.clone(), 0.3))
        .expect("in-memory query");
    assert!(eq.reads() > 0);
    let tk = exec
        .top_k(&TopKQuery::new(q.clone(), 5))
        .expect("in-memory query");
    assert_eq!(tk.matches.len(), 5);
    let ds = exec
        .ds_top_k(&uncat::core::DsTopKQuery::new(q.clone(), 5, Divergence::L1))
        .expect("in-memory query");
    assert_eq!(ds.matches.len(), 5);
    let dq = exec
        .dstq(&DstQuery::new(q, 0.2, Divergence::L1))
        .expect("in-memory query");
    assert!(
        !dq.matches.is_empty(),
        "the query tuple itself is within distance 0"
    );
}

#[test]
fn dstq_agreement_on_crm_data() {
    let (domain, data) = crm::crm1(800, 31);
    let w = world(domain, data);
    let mut pool = BufferPool::with_capacity(w.store.clone(), 150);
    let q = w.data[17].1.clone();
    for dv in Divergence::ALL {
        for &tau_d in &[0.1, 0.5, 1.2] {
            let query = DstQuery::new(q.clone(), tau_d, dv);
            let a = w.scan.dstq(&mut pool, &query).expect("in-memory query");
            let b = w.inverted.dstq(&mut pool, &query).expect("in-memory query");
            let c = w.pdr.dstq(&mut pool, &query).expect("in-memory query");
            let ids = |v: &[uncat::core::query::Match]| v.iter().map(|m| m.tid).collect::<Vec<_>>();
            assert_eq!(ids(&a), ids(&b), "inverted DSTQ {dv:?} τd={tau_d}");
            assert_eq!(ids(&a), ids(&c), "pdr DSTQ {dv:?} τd={tau_d}");
        }
    }
}

#[test]
fn indexes_survive_a_shared_disk_and_reopened_pools() {
    let (domain, data) = crm::crm1(1200, 41);
    let w = world(domain, data);
    // Query through several short-lived pools (fresh caches), as the
    // benchmark harness does.
    let q = w.data[3].1.clone();
    let mut reference = None;
    for _ in 0..3 {
        let mut pool = BufferPool::new(w.store.clone());
        let out = w
            .pdr
            .petq(&mut pool, &EqQuery::new(q.clone(), 0.3))
            .expect("in-memory query");
        let ids: Vec<u64> = out.iter().map(|m| m.tid).collect();
        if let Some(prev) = &reference {
            assert_eq!(*prev, ids, "results must be stable across pools");
        }
        reference = Some(ids);
    }
}

#[test]
fn index_io_beats_scan_on_selective_queries() {
    // The reason indexes exist: at high thresholds both index structures
    // should read fewer pages than the full scan.
    let (domain, data) = crm::crm1(20_000, 55);
    let w = world(domain, data);
    let q = Uda::certain(CatId(1));
    let eq = EqQuery::new(q, 0.9);

    let io = |idx: &dyn UncertainIndex| {
        let mut pool = BufferPool::new(w.store.clone());
        let n = idx.petq(&mut pool, &eq).expect("in-memory query").len();
        (n, pool.stats().physical_reads)
    };
    let (n_scan, io_scan) = io(&w.scan);
    let (n_inv, io_inv) = io(&w.inverted);
    let (n_pdr, io_pdr) = io(&w.pdr);
    assert_eq!(n_scan, n_inv);
    assert_eq!(n_scan, n_pdr);
    assert!(io_inv < io_scan, "inverted {io_inv} !< scan {io_scan}");
    assert!(io_pdr < io_scan, "pdr {io_pdr} !< scan {io_scan}");
}

#[test]
fn consistent_probabilities_with_reference_computation() {
    let (domain, data) = pairwise::generate(500, 77);
    let w = world(domain, data);
    let mut pool = BufferPool::new(w.store.clone());
    let q = w.data[0].1.clone();
    let out = w
        .inverted
        .petq(&mut pool, &EqQuery::new(q.clone(), 0.1))
        .expect("in-memory query");
    for m in out {
        let t = &w.data[m.tid as usize].1;
        assert!((m.score - eq_prob(&q, t)).abs() < 1e-9);
    }
}
