//! Integration tests for the multi-tenant sharded query service
//! (`uncat::service`, DESIGN.md §6i): exact scatter-gather against the
//! unsharded plan, cross-shard floor pruning, admission control, and
//! per-tenant statistics.

use std::sync::{Arc, Condvar, Mutex};

use uncat::core::query::DsTopKQuery;
use uncat::core::query::{DstQuery, EqQuery, Match, TopKQuery};
use uncat::core::{CatId, Divergence, Domain, Uda};
use uncat::inverted::{InvertedIndex, Strategy};
use uncat::query::join::{index_join, JoinSpec};
use uncat::query::{InvertedBackend, UncertainIndex};
use uncat::service::{QueryService, ServiceConfig, ServiceError, TenantConfig};
use uncat::storage::{BufferPool, InMemoryDisk, IoStats, QueryMetrics, StorageError};

fn uda(pairs: &[(u32, f32)]) -> Uda {
    Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
}

/// The metrics-test dataset: every posting list mixes probabilities
/// above and below typical thresholds, so pruning and floors both have
/// something to skip.
fn seeded_dataset(n: u64) -> (Domain, Vec<(u64, Uda)>) {
    let domain = Domain::anonymous(13);
    let data = (0..n)
        .map(|i| {
            let c = (i % 13) as u32;
            let p = if i % 3 == 0 { 0.8 } else { 0.2 };
            (i, uda(&[(c, p), ((c + 5) % 13, 1.0 - p)]))
        })
        .collect();
    (domain, data)
}

/// An unsharded reference backend over its own store — the oracle every
/// service plan is diffed against.
fn reference_backend(domain: &Domain, data: &[(u64, Uda)]) -> (InvertedBackend, BufferPool) {
    let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 256);
    let idx = InvertedIndex::build(domain.clone(), &mut pool, data.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");
    (InvertedBackend::new(idx), pool)
}

fn assert_matches_agree(what: &str, reference: &[Match], got: &[Match]) {
    assert_eq!(
        got.iter().map(|m| m.tid).collect::<Vec<_>>(),
        reference.iter().map(|m| m.tid).collect::<Vec<_>>(),
        "{what}: sharded plan returned different tuples than the unsharded plan"
    );
    for (r, g) in reference.iter().zip(got) {
        assert!(
            (r.score - g.score).abs() <= 1e-9,
            "{what}: tuple {} scored {} vs unsharded {}",
            g.tid,
            g.score,
            r.score
        );
    }
}

#[test]
fn unknown_tenant_is_a_typed_error() {
    let service = QueryService::new(InMemoryDisk::shared(), ServiceConfig::default());
    let err = service
        .petq("nobody", &EqQuery::new(uda(&[(0, 1.0)]), 0.5))
        .unwrap_err();
    assert!(matches!(err, ServiceError::UnknownTenant(_)), "{err}");
    let err = service.tenant_stats("nobody").unwrap_err();
    assert!(matches!(err, ServiceError::UnknownTenant(_)), "{err}");
}

/// Every select form and the join scatter across shards and gather into
/// exactly the unsharded answer, whatever the shard count.
#[test]
fn sharded_scatter_gather_matches_the_unsharded_plan() {
    let (domain, data) = seeded_dataset(3000);
    let (reference, mut ref_pool) = reference_backend(&domain, &data);

    let service = QueryService::new(InMemoryDisk::shared(), ServiceConfig::default());
    for shards in [1usize, 4] {
        service
            .register_tenant_inverted(
                TenantConfig::new(format!("s{shards}")),
                &domain,
                &data,
                shards,
                Strategy::ColumnPruning,
            )
            .expect("in-memory build");
    }

    let petq = EqQuery::new(uda(&[(4, 1.0)]), 0.5);
    let topk = TopKQuery::new(uda(&[(2, 1.0)]), 10);
    let dstq = DstQuery::new(uda(&[(2, 0.9), (7, 0.1)]), 0.4, Divergence::L1);
    let want_petq = reference.petq(&mut ref_pool, &petq).expect("query");
    let want_topk = reference.top_k(&mut ref_pool, &topk).expect("query");
    let want_dstq = reference.dstq(&mut ref_pool, &dstq).expect("query");
    assert!(!want_petq.is_empty() && want_topk.len() == 10 && !want_dstq.is_empty());

    for name in ["s1", "s4"] {
        let got = service.petq(name, &petq).expect("query");
        assert_matches_agree(&format!("{name}/petq"), &want_petq, &got.matches);
        let got = service.top_k(name, &topk).expect("query");
        assert_matches_agree(&format!("{name}/top_k"), &want_topk, &got.matches);
        let got = service.dstq(name, &dstq).expect("query");
        assert_matches_agree(&format!("{name}/dstq"), &want_dstq, &got.matches);
    }

    // Joins: gathered pairs equal the unsharded index join, pair for pair.
    let outer: Vec<(u64, Uda)> = (0..20)
        .map(|i| (1_000_000 + i, uda(&[((i % 13) as u32, 1.0)])))
        .collect();
    for spec in [JoinSpec::Petj { tau: 0.4 }, JoinSpec::PejTopK { k: 8 }] {
        let want = index_join(&outer, &reference, &mut ref_pool, spec).expect("join");
        for name in ["s1", "s4"] {
            let got = service.join(name, &outer, spec, 2).expect("join");
            assert_eq!(
                got.pairs
                    .iter()
                    .map(|p| (p.left, p.right))
                    .collect::<Vec<_>>(),
                want.pairs
                    .iter()
                    .map(|p| (p.left, p.right))
                    .collect::<Vec<_>>(),
                "{name}/{}: sharded join differs from the unsharded join",
                spec.name()
            );
        }
    }

    // Per-tenant aggregates saw every completed request.
    let stats = service.tenant_stats("s4").expect("registered tenant");
    assert_eq!(stats.completed, 5, "3 selects + 2 joins");
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.latency.count(), 5);
}

/// A parallel scatter is invisible in results and execution counters:
/// only the I/O block (warm frames) may differ from a sequential probe.
#[test]
fn parallel_scatter_matches_sequential_scatter() {
    let (domain, data) = seeded_dataset(3000);
    let service = QueryService::new(InMemoryDisk::shared(), ServiceConfig::default());
    service
        .register_tenant_inverted(
            TenantConfig::new("t"),
            &domain,
            &data,
            4,
            Strategy::ColumnPruning,
        )
        .expect("in-memory build");

    let petq = EqQuery::new(uda(&[(4, 1.0)]), 0.3);
    let seq = service.petq("t", &petq).expect("query");
    service.set_scatter_threads(4);
    let par = service.petq("t", &petq).expect("query");
    service.set_scatter_threads(1);

    assert_matches_agree("parallel-scatter", &seq.matches, &par.matches);
    let (mut a, mut b) = (seq.metrics, par.metrics);
    assert_eq!(
        a.io.logical_reads, b.io.logical_reads,
        "the access pattern is scatter-schedule independent"
    );
    a.io = IoStats::default();
    b.io = IoStats::default();
    assert_eq!(a, b, "execution counters must not depend on the scatter");
}

/// The cross-shard floor: sharing each shard's proven k-th best with
/// later probes scans strictly fewer postings, without changing the
/// answer (the sequential scatter makes the saving deterministic).
#[test]
fn cross_shard_floor_prunes_postings_without_changing_answers() {
    let (domain, data) = seeded_dataset(3000);
    let service = QueryService::new(InMemoryDisk::shared(), ServiceConfig::default());
    service
        .register_tenant_inverted(TenantConfig::new("t"), &domain, &data, 4, Strategy::Auto)
        .expect("in-memory build");

    let query = TopKQuery::new(uda(&[(4, 1.0)]), 5);
    let floored = service.top_k("t", &query).expect("query");
    service.set_cross_shard_floor(false);
    let floorless = service.top_k("t", &query).expect("query");
    service.set_cross_shard_floor(true);

    assert_matches_agree("floor", &floorless.matches, &floored.matches);
    assert!(
        floored.metrics.postings_scanned < floorless.metrics.postings_scanned,
        "the shared floor must prune strictly ({} floored vs {} floorless)",
        floored.metrics.postings_scanned,
        floorless.metrics.postings_scanned,
    );
}

/// Tracing attaches a merged per-shard trace to every outcome.
#[test]
fn tracing_merges_per_shard_traces() {
    let (domain, data) = seeded_dataset(500);
    let service = QueryService::new(InMemoryDisk::shared(), ServiceConfig::default());
    service
        .register_tenant_inverted(
            TenantConfig::new("t"),
            &domain,
            &data,
            3,
            Strategy::ColumnPruning,
        )
        .expect("in-memory build");

    let out = service
        .petq("t", &EqQuery::new(uda(&[(1, 1.0)]), 0.3))
        .expect("query");
    assert!(out.trace.is_none(), "tracing is off by default");

    service.set_tracing(true);
    let out = service
        .petq("t", &EqQuery::new(uda(&[(1, 1.0)]), 0.3))
        .expect("query");
    let trace = out.trace.expect("tracing attaches a trace");
    // One root query span per shard probe survives the merge.
    assert!(
        trace.spans.len() >= 3,
        "expected at least one span per shard, got {}",
        trace.spans.len()
    );
}

// --- Admission control ---

/// A gate the test controls: probes block inside the index until the
/// test releases them, so admission states are observable at leisure.
struct Gate {
    state: Mutex<(usize, usize)>, // (probes entered, releases granted)
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        })
    }

    /// Called by the index: announce entry, then hold until released.
    fn enter(&self) {
        let mut st = self.state.lock().unwrap();
        st.0 += 1;
        self.cv.notify_all();
        while st.1 == 0 {
            st = self.cv.wait(st).unwrap();
        }
        st.1 -= 1;
    }

    /// Let one held probe finish.
    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.1 += 1;
        self.cv.notify_all();
    }

    /// Block until `n` probes have entered the index.
    fn await_entered(&self, n: usize) {
        let mut st = self.state.lock().unwrap();
        while st.0 < n {
            st = self.cv.wait(st).unwrap();
        }
    }
}

/// A one-tuple index whose PETQ blocks on the gate — the knob that
/// keeps a tenant's quota pinned for as long as a test needs.
struct BlockingIndex {
    gate: Arc<Gate>,
}

impl UncertainIndex for BlockingIndex {
    fn petq_metered(
        &self,
        _pool: &mut BufferPool,
        _query: &EqQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>, StorageError> {
        self.gate.enter();
        metrics.postings_scanned += 1;
        Ok(vec![Match::new(7, 0.9)])
    }

    fn top_k_metered(
        &self,
        _pool: &mut BufferPool,
        _query: &TopKQuery,
        _metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>, StorageError> {
        Ok(Vec::new())
    }

    fn dstq_metered(
        &self,
        _pool: &mut BufferPool,
        _query: &DstQuery,
        _metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>, StorageError> {
        Ok(Vec::new())
    }

    fn ds_top_k_metered(
        &self,
        _pool: &mut BufferPool,
        _query: &DsTopKQuery,
        _metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>, StorageError> {
        Ok(Vec::new())
    }

    fn tuple_count(&self) -> u64 {
        1
    }

    fn backend_name(&self) -> &'static str {
        "blocking"
    }
}

/// The admission contract, end to end: with the quota pinned by a
/// running query, the next request queues (and stamps its wait into its
/// metrics), the one after that is rejected and counted — and nothing
/// deadlocks once the quota frees up.
#[test]
fn admission_queues_within_depth_and_rejects_beyond_it() {
    let gate = Gate::new();
    let service = QueryService::new(InMemoryDisk::shared(), ServiceConfig::default());
    service.register_tenant(
        TenantConfig::new("tight")
            .frame_quota(100)
            .queue_depth(1)
            .frames_per_query(100),
        vec![Box::new(BlockingIndex { gate: gate.clone() })],
    );
    let q = EqQuery::new(uda(&[(0, 1.0)]), 0.5);

    let (a_out, b_out) = std::thread::scope(|scope| {
        let a = scope.spawn(|| service.petq("tight", &q).expect("query A"));
        gate.await_entered(1); // A runs, holding the tenant's whole quota

        let b = scope.spawn(|| service.petq("tight", &q).expect("query B"));
        // B does not fit and parks in the (depth-1) admission queue.
        while service.tenant_admission("tight").unwrap().1 == 0 {
            std::thread::yield_now();
        }
        assert_eq!(service.tenant_admission("tight").unwrap(), (100, 1));

        // C finds the quota spent and the queue full: rejected outright.
        let err = service.petq("tight", &q).unwrap_err();
        assert!(matches!(err, ServiceError::Rejected { .. }), "{err}");

        gate.release(); // A finishes; B is admitted off the queue
        gate.await_entered(2);
        gate.release(); // B finishes
        (a.join().unwrap(), b.join().unwrap())
    });

    assert_eq!(a_out.metrics.admission_waits, 0, "A was admitted at once");
    assert_eq!(b_out.metrics.admission_waits, 1, "B waited for capacity");
    assert_eq!(a_out.matches, b_out.matches);

    let stats = service.tenant_stats("tight").expect("registered tenant");
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.metrics.admission_rejects, 1);
    assert_eq!(stats.metrics.admission_waits, 1);
    assert_eq!(stats.latency.count(), 2);
    assert_eq!(
        service.tenant_admission("tight").unwrap(),
        (0, 0),
        "the gate drains completely"
    );
}
