//! Cross-crate invariants of the query execution counters
//! (`uncat_storage::QueryMetrics`, documented in docs/METRICS.md).

use std::sync::Arc;

use uncat::core::query::{DstQuery, EqQuery, TopKQuery};
use uncat::core::{CatId, Divergence, Domain, Uda};
use uncat::inverted::{InvertedIndex, Strategy};
use uncat::pdrtree::{PdrConfig, PdrTree};
use uncat::query::parallel::{batch_metrics, petq_batch, petq_batch_with};
use uncat::query::{
    aggregate_metrics, BatchPools, Executor, InvertedBackend, MutableBackend, ScanBaseline,
    UncertainIndex,
};
use uncat::storage::{
    BufferPool, Fault, FaultStore, InMemoryDisk, IoStats, QueryMetrics, SharedStore,
};

fn uda(pairs: &[(u32, f32)]) -> Uda {
    Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
}

/// A seeded dataset whose posting lists mix probabilities above and below
/// the query threshold, so column pruning has something to skip.
fn seeded_dataset(n: u64) -> (Domain, Vec<(u64, Uda)>) {
    let domain = Domain::anonymous(13);
    let data = (0..n)
        .map(|i| {
            let c = (i % 13) as u32;
            // Alternate dominant and faint memberships of category `c`.
            let p = if i % 3 == 0 { 0.8 } else { 0.2 };
            (i, uda(&[(c, p), ((c + 5) % 13, 1.0 - p)]))
        })
        .collect();
    (domain, data)
}

fn build_inverted(domain: &Domain, data: &[(u64, Uda)]) -> (InvertedIndex, SharedStore) {
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 256);
    let idx =
        InvertedIndex::build(domain.clone(), &mut pool, data.iter().map(|(t, u)| (*t, u))).unwrap();
    pool.flush().unwrap();
    (idx, store)
}

#[test]
fn pruning_strategies_scan_fewer_postings_than_brute() {
    let (domain, data) = seeded_dataset(3000);
    let (idx, store) = build_inverted(&domain, &data);
    let query = EqQuery::new(uda(&[(4, 1.0)]), 0.5);

    let mut per_strategy = Vec::new();
    for strategy in Strategy::ALL {
        let mut pool = BufferPool::with_capacity(store.clone(), 100);
        let mut m = QueryMetrics::new();
        let matches = idx
            .petq_metered(&mut pool, &query, strategy, &mut m)
            .unwrap();
        assert!(!matches.is_empty(), "{strategy:?} found nothing");
        assert!(
            m.candidate_invariant_holds(),
            "{strategy:?}: generated {} != pruned {} + verified {} + settled {}",
            m.candidates_generated,
            m.candidates_pruned,
            m.candidates_verified,
            m.candidates_settled,
        );
        per_strategy.push((strategy, m, matches));
    }

    // All strategies agree on the answer (exactness oracle).
    for (strategy, _, matches) in &per_strategy[1..] {
        assert_eq!(
            matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
            per_strategy[0].2.iter().map(|m| m.tid).collect::<Vec<_>>(),
            "{strategy:?} disagrees with brute force"
        );
    }

    let brute = &per_strategy[0].1;
    assert_eq!(per_strategy[0].0, Strategy::Brute);
    for (strategy, m, _) in &per_strategy {
        assert!(
            m.postings_scanned <= brute.postings_scanned,
            "{strategy:?} scanned {} > brute's {}",
            m.postings_scanned,
            brute.postings_scanned,
        );
    }
    // The dataset mixes 0.8 and 0.2 entries in every list, so scanning
    // down to τ = 0.5 must stop strictly before the list end.
    let col = per_strategy
        .iter()
        .find(|(s, _, _)| *s == Strategy::ColumnPruning)
        .map(|(_, m, _)| m)
        .unwrap();
    assert!(
        col.postings_scanned < brute.postings_scanned,
        "column pruning ({}) should scan strictly fewer postings than brute ({})",
        col.postings_scanned,
        brute.postings_scanned,
    );
}

#[test]
fn candidate_invariant_holds_for_topk_and_dstq() {
    let (domain, data) = seeded_dataset(2000);
    let (idx, store) = build_inverted(&domain, &data);

    let mut pool = BufferPool::with_capacity(store.clone(), 100);
    let mut m = QueryMetrics::new();
    idx.top_k_metered(&mut pool, &TopKQuery::new(uda(&[(2, 1.0)]), 8), &mut m)
        .unwrap();
    assert!(m.candidate_invariant_holds());
    assert!(m.frontier_pops > 0, "top-k drains the frontier");

    let mut m = QueryMetrics::new();
    idx.dstq_metered(
        &mut pool,
        &DstQuery::new(uda(&[(2, 0.9), (7, 0.1)]), 0.3, Divergence::L1),
        &mut m,
    )
    .unwrap();
    assert!(m.candidate_invariant_holds());
    assert!(
        m.candidates_generated > 0 || m.heap_tuples_scanned > 0,
        "DSTQ used either the candidate path or the scan fallback"
    );
}

#[test]
fn pdr_tree_counts_visits_and_lemma2_pruning() {
    let (domain, data) = seeded_dataset(2000);
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 256);
    let tree = PdrTree::build(
        domain,
        PdrConfig::default(),
        &mut pool,
        data.iter().map(|(t, u)| (*t, u)),
    )
    .unwrap();
    pool.flush().unwrap();
    drop(pool);

    // Selective query: Lemma 2 must cut some subtrees.
    let mut pool = BufferPool::with_capacity(store.clone(), 100);
    let mut m = QueryMetrics::new();
    let matches = tree
        .petq_metered(&mut pool, &EqQuery::new(uda(&[(4, 1.0)]), 0.5), &mut m)
        .unwrap();
    assert!(!matches.is_empty());
    assert!(m.nodes_visited > 0);
    assert!(m.nodes_pruned > 0, "selective PETQ should prune subtrees");
    // Cold pool: every visited node is one physical page read.
    assert_eq!(m.nodes_visited, pool.stats().physical_reads, "{:?}", m);
}

#[test]
fn executor_outcome_carries_matching_io() {
    let (domain, data) = seeded_dataset(1500);
    let (idx, store) = build_inverted(&domain, &data);
    let exec = Executor::new(InvertedBackend::new(idx), store);
    let outcomes: Vec<_> = (0..4u32)
        .map(|c| exec.petq(&EqQuery::new(uda(&[(c, 1.0)]), 0.4)).unwrap())
        .collect();
    for o in &outcomes {
        assert_eq!(o.metrics.io, o.io, "metrics embed the outcome's own I/O");
        assert!(o.metrics.candidate_invariant_holds());
    }
    let total = aggregate_metrics(&outcomes);
    assert_eq!(
        total.postings_scanned,
        outcomes
            .iter()
            .map(|o| o.metrics.postings_scanned)
            .sum::<u64>()
    );
}

#[test]
fn parallel_batch_metrics_equal_sequential_sum() {
    let (domain, data) = seeded_dataset(2000);
    let (idx, store) = build_inverted(&domain, &data);
    let backend = InvertedBackend::new(idx);
    let queries: Vec<EqQuery> = (0..12)
        .map(|i| EqQuery::new(uda(&[((i % 13) as u32, 1.0)]), 0.35))
        .collect();

    let par = petq_batch(&backend, &store, 100, &queries, 4);
    let par_total = batch_metrics(&par);

    let mut seq_total = QueryMetrics::new();
    for q in &queries {
        let mut pool = BufferPool::with_capacity(store.clone(), 100);
        let mut m = QueryMetrics::new();
        backend.petq_metered(&mut pool, q, &mut m).unwrap();
        m.io = pool.stats();
        seq_total.merge(&m);
    }
    assert_eq!(
        par_total, seq_total,
        "parallel sum must equal sequential sum"
    );
}

/// `plan_fallbacks` is per-attempt exact across batch execution: prime
/// the planner's statistics on a tiny corpus, grow one posting list far
/// past the overrun budget without refreshing them (the
/// staleness-by-design case), and the adaptive fallback fires on every
/// query of the hot category. The batch counter must equal both the sum
/// of the per-outcome counters and a sequential rerun — a retried or
/// shared-pool query must tick once per *completed attempt*, never
/// twice (the double-count this PR fixes).
#[test]
fn auto_fallbacks_sum_exactly_across_shared_pool_batches() {
    let domain = Domain::anonymous(13);
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 512);
    let initial: Vec<(u64, Uda)> = (0..40)
        .map(|i| (i, uda(&[((i % 13) as u32, 1.0)])))
        .collect();
    let idx = InvertedIndex::build(domain, &mut pool, initial.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");
    let mut backend = InvertedBackend::with_strategy(idx, Strategy::Auto);
    // Prime the statistics cache — what build/checkpoint time does.
    let _ = backend.index.cost_stats();
    let heavy = uda(&[(4, 1.0)]);
    for i in 0..4000u64 {
        backend
            .apply_insert(&mut pool, 1_000 + i, &heavy)
            .expect("in-memory insert");
    }
    pool.flush().expect("in-memory flush");
    drop(pool);

    // Alternate the grown category (guaranteed overrun) with cold ones.
    let queries: Vec<EqQuery> = (0..10)
        .map(|i| {
            let cat = if i % 2 == 0 { 4 } else { (i % 13) as u32 };
            EqQuery::new(uda(&[(cat, 1.0)]), 0.1)
        })
        .collect();
    let pools = BatchPools::shared(&store, 256, 8);
    let results = petq_batch_with(&backend, &store, &pools, &queries, 4);
    let total = batch_metrics(&results);
    assert!(
        total.plan_fallbacks >= 5,
        "every hot-category query must overrun its stale budget, got {}",
        total.plan_fallbacks
    );
    let manual = QueryMetrics::sum(results.iter().map(|r| &r.as_ref().unwrap().metrics));
    assert_eq!(total, manual, "batch_metrics must sum exactly");

    let mut seq = QueryMetrics::new();
    for q in &queries {
        let mut pool = BufferPool::with_capacity(store.clone(), 100);
        let mut m = QueryMetrics::new();
        backend.petq_metered(&mut pool, q, &mut m).expect("query");
        m.io = pool.stats();
        seq.merge(&m);
    }
    assert_eq!(
        total.plan_fallbacks, seq.plan_fallbacks,
        "fallback ticks are per-attempt exact under the shared pool"
    );
    let (mut batch, mut sequential) = (total, seq);
    batch.io = IoStats::default();
    sequential.io = IoStats::default();
    assert_eq!(
        batch, sequential,
        "batch execution must not change any counter"
    );
}

/// Tiny xorshift generator for seeded query mixes — keeps the stress
/// tests free of an RNG dependency while staying fully reproducible.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A reproducible mix of thresholds and categories: repeated hot
/// categories (so the shared pool has something to cache) interleaved
/// with colder ones.
fn seeded_queries(seed: u64, n: usize) -> Vec<EqQuery> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            let cat = (xorshift(&mut s) % 13) as u32;
            let tau = 0.15 + (xorshift(&mut s) % 5) as f64 * 0.15;
            EqQuery::new(uda(&[(cat, 1.0)]), tau)
        })
        .collect()
}

/// Eight threads hammering one shared pool must be invisible in every
/// counter except physical reads (which the pool may only *save*): for
/// several seeds, matches, execution counters, and logical reads all
/// equal a sequential private-pool run, and `batch_metrics` sums exactly.
#[test]
fn shared_pool_stress_matches_sequential_across_seeds() {
    let (domain, data) = seeded_dataset(3000);
    let (idx, store) = build_inverted(&domain, &data);
    let backend = InvertedBackend::new(idx);

    for seed in [3u64, 17, 99] {
        let queries = seeded_queries(seed, 32);
        let pools = BatchPools::shared(&store, 256, 8);
        let results = petq_batch_with(&backend, &store, &pools, &queries, 8);

        // `batch_metrics` is exactly the sum of the per-outcome metrics.
        let total = batch_metrics(&results);
        let manual = QueryMetrics::sum(results.iter().map(|r| &r.as_ref().unwrap().metrics));
        assert_eq!(total, manual, "seed {seed}: batch_metrics must sum exactly");

        let mut seq_total = QueryMetrics::new();
        for (q, r) in queries.iter().zip(&results) {
            let r = r.as_ref().expect("in-memory query");
            let mut pool = BufferPool::with_capacity(store.clone(), 100);
            let mut m = QueryMetrics::new();
            let seq = backend.petq_metered(&mut pool, q, &mut m).unwrap();
            m.io = pool.stats();
            assert_eq!(
                r.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
                seq.iter().map(|m| m.tid).collect::<Vec<_>>(),
                "seed {seed}: pool flavor must not change results"
            );
            seq_total.merge(&m);
        }

        // Identical work, identical counters — except the I/O block.
        let mut shared_counters = total;
        let mut seq_counters = seq_total;
        shared_counters.io = IoStats::default();
        seq_counters.io = IoStats::default();
        assert_eq!(
            shared_counters, seq_counters,
            "seed {seed}: sharing frames must not change execution"
        );
        assert_eq!(
            total.io.logical_reads, seq_total.io.logical_reads,
            "seed {seed}: same access pattern either way"
        );
        assert!(
            total.io.physical_reads <= seq_total.io.physical_reads,
            "seed {seed}: the shared pool may only save reads ({} vs {})",
            total.io.physical_reads,
            seq_total.io.physical_reads,
        );
    }
}

/// PR 1's failure-isolation contract survives sharing: an injected read
/// failure fails only the query that pinned the bad page. Every other
/// query in the 8-thread batch matches the clean run, and the same pool
/// answers the full batch correctly once the schedule is disarmed.
#[test]
fn shared_pool_fault_schedule_fails_only_pinning_queries() {
    let (domain, data) = seeded_dataset(3000);
    let faults = Arc::new(FaultStore::new(InMemoryDisk::shared(), 99));
    let store: SharedStore = faults.clone();
    let mut pool = BufferPool::with_capacity(store.clone(), 256);
    let idx = InvertedIndex::build(domain, &mut pool, data.iter().map(|(t, u)| (*t, u))).unwrap();
    pool.flush().unwrap();
    drop(pool);
    let backend = InvertedBackend::new(idx);

    for seed in [5u64, 21, 77] {
        let queries = seeded_queries(seed, 24);
        let clean: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| {
                let mut pool = BufferPool::with_capacity(store.clone(), 100);
                let matches = backend.petq(&mut pool, q).unwrap();
                matches.iter().map(|m| m.tid).collect()
            })
            .collect();

        // One shared pool serves both the faulty batch and the retry.
        let pools = BatchPools::shared(&store, 256, 8);

        // Schedule three read failures among the batch's first cold
        // misses; which queries pin those reads depends on scheduling,
        // and must not matter.
        let base = faults.reads_so_far();
        for n in [1, 4, 9] {
            faults.arm(Fault::FailRead {
                after: base + n + seed % 3,
            });
        }
        let fired_before = faults.fired();
        let results = petq_batch_with(&backend, &store, &pools, &queries, 8);
        assert!(
            faults.fired() > fired_before,
            "seed {seed}: the fault schedule never fired"
        );
        let failed = results.iter().filter(|r| r.is_err()).count();
        assert!(
            (1..=3).contains(&failed),
            "seed {seed}: each injected read failure fails at most the one \
             pinning query, got {failed} failures"
        );
        for (r, want) in results.iter().zip(&clean) {
            if let Ok(o) = r {
                assert_eq!(
                    &o.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
                    want,
                    "seed {seed}: surviving queries must match the clean run"
                );
            }
        }

        // The failed page was never installed, so the same pool recovers
        // completely once the faults are gone.
        faults.disarm_all();
        let retry = petq_batch_with(&backend, &store, &pools, &queries, 8);
        for (r, want) in retry.iter().zip(&clean) {
            let o = r.as_ref().expect("pool must stay usable after faults");
            assert_eq!(
                &o.matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
                want,
                "seed {seed}: retry must fully match the clean run"
            );
        }
    }
}

#[test]
fn scan_baseline_counts_every_tuple() {
    let (_, data) = seeded_dataset(500);
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 64);
    let scan = ScanBaseline::build(&mut pool, data.iter().map(|(t, u)| (*t, u))).unwrap();
    let mut m = QueryMetrics::new();
    scan.petq_metered(&mut pool, &EqQuery::new(uda(&[(0, 1.0)]), 0.5), &mut m)
        .unwrap();
    assert_eq!(m.heap_tuples_scanned, 500);
    let mut m = QueryMetrics::new();
    scan.ds_top_k_metered(
        &mut pool,
        &uncat::core::query::DsTopKQuery::new(uda(&[(0, 1.0)]), 3, Divergence::L2),
        &mut m,
    )
    .unwrap();
    assert_eq!(m.heap_tuples_scanned, 500);
}

/// The cost estimator speaks the metrics vocabulary and nothing else:
/// a prediction expressed as a `QueryMetrics` populates exactly the
/// four counters it predicts, so predicted-vs-actual comparisons (the
/// `explain` table, the adaptive executor's overrun check) are always
/// field-for-field over this one struct — no hidden side channel.
#[test]
fn cost_predictions_map_onto_exactly_four_metrics_fields() {
    let p = uncat::inverted::CostPrediction {
        postings_scanned: 11,
        blocks_decoded: 22,
        candidates_verified: 33,
        physical_reads: 44,
    };
    let m = p.as_metrics();
    for (name, value) in m.fields() {
        let want = match name {
            "postings_scanned" => 11,
            "blocks_decoded" => 22,
            "candidates_verified" => 33,
            "io.physical_reads" => 44,
            _ => 0,
        };
        assert_eq!(value, want, "unexpected value in predicted field {name}");
    }
    // Round trip: the scalar cost is computable from the metrics form
    // alone, so a measured `QueryMetrics` can be costed identically.
    assert_eq!(
        p.cost(),
        m.postings_scanned + uncat::inverted::ENTRIES_PER_PAGE * m.io.physical_reads
    );
}
