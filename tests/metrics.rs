//! Cross-crate invariants of the query execution counters
//! (`uncat_storage::QueryMetrics`, documented in docs/METRICS.md).

use uncat::core::query::{DstQuery, EqQuery, TopKQuery};
use uncat::core::{CatId, Divergence, Domain, Uda};
use uncat::inverted::{InvertedIndex, Strategy};
use uncat::pdrtree::{PdrConfig, PdrTree};
use uncat::query::parallel::{batch_metrics, petq_batch};
use uncat::query::{aggregate_metrics, Executor, InvertedBackend, ScanBaseline, UncertainIndex};
use uncat::storage::{BufferPool, InMemoryDisk, QueryMetrics, SharedStore};

fn uda(pairs: &[(u32, f32)]) -> Uda {
    Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
}

/// A seeded dataset whose posting lists mix probabilities above and below
/// the query threshold, so column pruning has something to skip.
fn seeded_dataset(n: u64) -> (Domain, Vec<(u64, Uda)>) {
    let domain = Domain::anonymous(13);
    let data = (0..n)
        .map(|i| {
            let c = (i % 13) as u32;
            // Alternate dominant and faint memberships of category `c`.
            let p = if i % 3 == 0 { 0.8 } else { 0.2 };
            (i, uda(&[(c, p), ((c + 5) % 13, 1.0 - p)]))
        })
        .collect();
    (domain, data)
}

fn build_inverted(domain: &Domain, data: &[(u64, Uda)]) -> (InvertedIndex, SharedStore) {
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 256);
    let idx =
        InvertedIndex::build(domain.clone(), &mut pool, data.iter().map(|(t, u)| (*t, u))).unwrap();
    pool.flush().unwrap();
    (idx, store)
}

#[test]
fn pruning_strategies_scan_fewer_postings_than_brute() {
    let (domain, data) = seeded_dataset(3000);
    let (idx, store) = build_inverted(&domain, &data);
    let query = EqQuery::new(uda(&[(4, 1.0)]), 0.5);

    let mut per_strategy = Vec::new();
    for strategy in Strategy::ALL {
        let mut pool = BufferPool::with_capacity(store.clone(), 100);
        let mut m = QueryMetrics::new();
        let matches = idx
            .petq_metered(&mut pool, &query, strategy, &mut m)
            .unwrap();
        assert!(!matches.is_empty(), "{strategy:?} found nothing");
        assert!(
            m.candidate_invariant_holds(),
            "{strategy:?}: generated {} != pruned {} + verified {} + settled {}",
            m.candidates_generated,
            m.candidates_pruned,
            m.candidates_verified,
            m.candidates_settled,
        );
        per_strategy.push((strategy, m, matches));
    }

    // All strategies agree on the answer (exactness oracle).
    for (strategy, _, matches) in &per_strategy[1..] {
        assert_eq!(
            matches.iter().map(|m| m.tid).collect::<Vec<_>>(),
            per_strategy[0].2.iter().map(|m| m.tid).collect::<Vec<_>>(),
            "{strategy:?} disagrees with brute force"
        );
    }

    let brute = &per_strategy[0].1;
    assert_eq!(per_strategy[0].0, Strategy::Brute);
    for (strategy, m, _) in &per_strategy {
        assert!(
            m.postings_scanned <= brute.postings_scanned,
            "{strategy:?} scanned {} > brute's {}",
            m.postings_scanned,
            brute.postings_scanned,
        );
    }
    // The dataset mixes 0.8 and 0.2 entries in every list, so scanning
    // down to τ = 0.5 must stop strictly before the list end.
    let col = per_strategy
        .iter()
        .find(|(s, _, _)| *s == Strategy::ColumnPruning)
        .map(|(_, m, _)| m)
        .unwrap();
    assert!(
        col.postings_scanned < brute.postings_scanned,
        "column pruning ({}) should scan strictly fewer postings than brute ({})",
        col.postings_scanned,
        brute.postings_scanned,
    );
}

#[test]
fn candidate_invariant_holds_for_topk_and_dstq() {
    let (domain, data) = seeded_dataset(2000);
    let (idx, store) = build_inverted(&domain, &data);

    let mut pool = BufferPool::with_capacity(store.clone(), 100);
    let mut m = QueryMetrics::new();
    idx.top_k_metered(&mut pool, &TopKQuery::new(uda(&[(2, 1.0)]), 8), &mut m)
        .unwrap();
    assert!(m.candidate_invariant_holds());
    assert!(m.frontier_pops > 0, "top-k drains the frontier");

    let mut m = QueryMetrics::new();
    idx.dstq_metered(
        &mut pool,
        &DstQuery::new(uda(&[(2, 0.9), (7, 0.1)]), 0.3, Divergence::L1),
        &mut m,
    )
    .unwrap();
    assert!(m.candidate_invariant_holds());
    assert!(
        m.candidates_generated > 0 || m.heap_tuples_scanned > 0,
        "DSTQ used either the candidate path or the scan fallback"
    );
}

#[test]
fn pdr_tree_counts_visits_and_lemma2_pruning() {
    let (domain, data) = seeded_dataset(2000);
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 256);
    let tree = PdrTree::build(
        domain,
        PdrConfig::default(),
        &mut pool,
        data.iter().map(|(t, u)| (*t, u)),
    )
    .unwrap();
    pool.flush().unwrap();
    drop(pool);

    // Selective query: Lemma 2 must cut some subtrees.
    let mut pool = BufferPool::with_capacity(store.clone(), 100);
    let mut m = QueryMetrics::new();
    let matches = tree
        .petq_metered(&mut pool, &EqQuery::new(uda(&[(4, 1.0)]), 0.5), &mut m)
        .unwrap();
    assert!(!matches.is_empty());
    assert!(m.nodes_visited > 0);
    assert!(m.nodes_pruned > 0, "selective PETQ should prune subtrees");
    // Cold pool: every visited node is one physical page read.
    assert_eq!(m.nodes_visited, pool.stats().physical_reads, "{:?}", m);
}

#[test]
fn executor_outcome_carries_matching_io() {
    let (domain, data) = seeded_dataset(1500);
    let (idx, store) = build_inverted(&domain, &data);
    let exec = Executor::new(InvertedBackend::new(idx), store);
    let outcomes: Vec<_> = (0..4u32)
        .map(|c| exec.petq(&EqQuery::new(uda(&[(c, 1.0)]), 0.4)).unwrap())
        .collect();
    for o in &outcomes {
        assert_eq!(o.metrics.io, o.io, "metrics embed the outcome's own I/O");
        assert!(o.metrics.candidate_invariant_holds());
    }
    let total = aggregate_metrics(&outcomes);
    assert_eq!(
        total.postings_scanned,
        outcomes
            .iter()
            .map(|o| o.metrics.postings_scanned)
            .sum::<u64>()
    );
}

#[test]
fn parallel_batch_metrics_equal_sequential_sum() {
    let (domain, data) = seeded_dataset(2000);
    let (idx, store) = build_inverted(&domain, &data);
    let backend = InvertedBackend::new(idx);
    let queries: Vec<EqQuery> = (0..12)
        .map(|i| EqQuery::new(uda(&[((i % 13) as u32, 1.0)]), 0.35))
        .collect();

    let par = petq_batch(&backend, &store, 100, &queries, 4);
    let par_total = batch_metrics(&par);

    let mut seq_total = QueryMetrics::new();
    for q in &queries {
        let mut pool = BufferPool::with_capacity(store.clone(), 100);
        let mut m = QueryMetrics::new();
        backend.petq_metered(&mut pool, q, &mut m).unwrap();
        m.io = pool.stats();
        seq_total.merge(&m);
    }
    assert_eq!(
        par_total, seq_total,
        "parallel sum must equal sequential sum"
    );
}

#[test]
fn scan_baseline_counts_every_tuple() {
    let (_, data) = seeded_dataset(500);
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 64);
    let scan = ScanBaseline::build(&mut pool, data.iter().map(|(t, u)| (*t, u))).unwrap();
    let mut m = QueryMetrics::new();
    scan.petq_metered(&mut pool, &EqQuery::new(uda(&[(0, 1.0)]), 0.5), &mut m)
        .unwrap();
    assert_eq!(m.heap_tuples_scanned, 500);
    let mut m = QueryMetrics::new();
    scan.ds_top_k_metered(
        &mut pool,
        &uncat::core::query::DsTopKQuery::new(uda(&[(0, 1.0)]), 3, Divergence::L2),
        &mut m,
    )
    .unwrap();
    assert_eq!(m.heap_tuples_scanned, 500);
}
