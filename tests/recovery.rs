//! Crash-recovery integration tests for [`DurableIndex`].
//!
//! The property under test is the durability contract from DESIGN.md
//! §6f: after a crash at *any* operation boundary, reopening the index
//! recovers exactly the acknowledged state — every mutation whose call
//! returned `Ok` under `group_commit = 1` survives, nothing corrupt is
//! ever replayed, and the recovered index answers PETQ / top-k / DSTQ
//! identically (tid-exact, scores within 1e-9) to a scan baseline built
//! from the surviving model. Crashes are injected three ways:
//!
//! * [`FaultLog::crash_after_ops`] kills the WAL device at every single
//!   append/sync boundary of a fixed mutation schedule (the matrix);
//! * [`MemLog::crash_keep`] sweeps a torn tail one byte at a time;
//! * [`CheckpointCrash`] and [`FaultStore`] kill the checkpoint after
//!   each internal phase, exercising the redo journal.

use std::collections::BTreeMap;
use std::sync::Arc;

use uncat::core::query::{DstQuery, EqQuery, Match, TopKQuery};
use uncat::core::{CatId, Divergence, Domain, Uda, UdaBuilder};
use uncat::prelude::{BufferPool, InMemoryDisk};
use uncat::query::{
    CheckpointCrash, DurableConfig, DurableIndex, DurableStorage, InvertedBackend, MutableBackend,
    ScanBaseline, UncertainIndex,
};
use uncat::storage::wal::{MemLog, SharedLog};
use uncat::storage::{
    Fault, FaultLog, FaultStore, LogFault, QueryMetrics, StorageError, TailStatus,
};
use uncat_inverted::InvertedIndex;
use uncat_pdrtree::{PdrConfig, PdrTree};

const CATS: u32 = 8;

// --- Deterministic data ---

/// Tiny splitmix-style generator so schedules are reproducible without
/// pulling in `rand`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A valid sparse UDA derived from the generator: 1–4 categories with
/// probabilities normalised by the builder.
fn rand_uda(rng: &mut Rng) -> Uda {
    let n = 1 + (rng.next() % 4) as usize;
    let mut cats = std::collections::BTreeSet::new();
    while cats.len() < n {
        cats.insert((rng.next() % CATS as u64) as u32);
    }
    let mut b = UdaBuilder::new();
    for c in cats {
        let p = 0.05 + (rng.next() % 900) as f32 / 1000.0;
        b.push(CatId(c), p).expect("valid probability");
    }
    b.finish_normalized().expect("at least one entry")
}

/// One step of a mutation schedule, pre-validated against the model it
/// was generated from (inserts are fresh tids, deletes exist).
#[derive(Clone)]
enum Op {
    Insert(u64, Uda),
    Update(u64, Uda),
    Delete(u64),
}

/// A deterministic schedule of `steps` mutations evolving `model` (which
/// starts as the initial dataset and ends as the final expected state).
fn schedule(
    seed: u64,
    steps: usize,
    model: &mut BTreeMap<u64, Uda>,
    next_tid: &mut u64,
) -> Vec<Op> {
    let mut rng = Rng(seed);
    let mut ops = Vec::with_capacity(steps);
    for _ in 0..steps {
        let pick = rng.next() % 4;
        let op = if pick == 3 && !model.is_empty() {
            let keys: Vec<u64> = model.keys().copied().collect();
            let tid = keys[(rng.next() % keys.len() as u64) as usize];
            model.remove(&tid);
            Op::Delete(tid)
        } else if pick == 2 && !model.is_empty() {
            let keys: Vec<u64> = model.keys().copied().collect();
            let tid = keys[(rng.next() % keys.len() as u64) as usize];
            let u = rand_uda(&mut rng);
            model.insert(tid, u.clone());
            Op::Update(tid, u)
        } else {
            let tid = *next_tid;
            *next_tid += 1;
            let u = rand_uda(&mut rng);
            model.insert(tid, u.clone());
            Op::Insert(tid, u)
        };
        ops.push(op);
    }
    ops
}

/// Apply one op to a durable index; on `Ok` mirror it into `model`.
fn apply_op<B: MutableBackend>(
    idx: &mut DurableIndex<B>,
    model: &mut BTreeMap<u64, Uda>,
    op: &Op,
) -> Result<(), StorageError> {
    match op {
        Op::Insert(tid, u) => {
            idx.insert(*tid, u)?;
            model.insert(*tid, u.clone());
        }
        Op::Update(tid, u) => {
            idx.update(*tid, u)?;
            model.insert(*tid, u.clone());
        }
        Op::Delete(tid) => {
            idx.delete(*tid)?;
            model.remove(tid);
        }
    }
    Ok(())
}

// --- Query equivalence ---

/// Fixed query vectors, shared by every test so divergences are
/// reproducible.
fn query_udas() -> Vec<Uda> {
    (0..3).map(|i| rand_uda(&mut Rng(0xC0FFEE + i))).collect()
}

fn assert_matches_agree(what: &str, reference: &[Match], got: &[Match]) {
    assert_eq!(
        got.iter().map(|m| m.tid).collect::<Vec<_>>(),
        reference.iter().map(|m| m.tid).collect::<Vec<_>>(),
        "{what}: recovered index returned different tuples than the model scan"
    );
    for (r, g) in reference.iter().zip(got) {
        assert!(
            (r.score - g.score).abs() <= 1e-9,
            "{what}: tuple {} scored {} vs the model scan's {}",
            g.tid,
            g.score,
            r.score
        );
    }
}

/// The recovered index must be indistinguishable from a scan baseline
/// rebuilt from the model: same tuple count, and identical PETQ, top-k,
/// and DSTQ answers on the fixed query set.
fn assert_index_matches_model<B: MutableBackend>(
    what: &str,
    idx: &mut DurableIndex<B>,
    model: &BTreeMap<u64, Uda>,
) {
    assert_eq!(
        idx.tuple_count(),
        model.len() as u64,
        "{what}: tuple count diverged from the model"
    );
    let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
    let scan = ScanBaseline::build(&mut pool, model.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory model build");
    for (qi, q) in query_udas().into_iter().enumerate() {
        let eq = EqQuery::new(q.clone(), 0.05);
        let reference = scan.petq(&mut pool, &eq).expect("model petq");
        let got = idx.petq(&eq).expect("recovered petq");
        assert_matches_agree(&format!("{what}/petq/q{qi}"), &reference, &got);

        let tk = TopKQuery::new(q.clone(), 10);
        let reference = scan.top_k(&mut pool, &tk).expect("model top_k");
        let got = idx.top_k(&tk).expect("recovered top_k");
        assert_matches_agree(&format!("{what}/top_k/q{qi}"), &reference, &got);

        let ds = DstQuery::new(q, 1.0, Divergence::L1);
        let reference = scan.dstq(&mut pool, &ds).expect("model dstq");
        let got = idx.dstq(&ds).expect("recovered dstq");
        assert_matches_agree(&format!("{what}/dstq/q{qi}"), &reference, &got);
    }
}

// --- Backend constructors ---

/// The initial dataset every scenario starts from.
fn initial_data(n: u64) -> BTreeMap<u64, Uda> {
    let mut rng = Rng(0xDA7A);
    (0..n).map(|t| (t, rand_uda(&mut rng))).collect()
}

fn create_inverted(
    storage: DurableStorage,
    config: DurableConfig,
    data: &BTreeMap<u64, Uda>,
) -> DurableIndex<InvertedBackend> {
    let tuples: Vec<(u64, Uda)> = data.iter().map(|(t, u)| (*t, u.clone())).collect();
    DurableIndex::create(storage, config, |pool| {
        Ok(InvertedBackend::new(InvertedIndex::build(
            Domain::anonymous(CATS),
            pool,
            tuples.iter().map(|(t, u)| (*t, u)),
        )?))
    })
    .expect("create durable inverted index")
}

fn create_pdr(
    storage: DurableStorage,
    config: DurableConfig,
    data: &BTreeMap<u64, Uda>,
) -> DurableIndex<PdrTree> {
    let tuples: Vec<(u64, Uda)> = data.iter().map(|(t, u)| (*t, u.clone())).collect();
    DurableIndex::create(storage, config, |pool| {
        PdrTree::build(
            Domain::anonymous(CATS),
            PdrConfig::default(),
            pool,
            tuples.iter().map(|(t, u)| (*t, u)),
        )
    })
    .expect("create durable pdr-tree")
}

/// A test config: sync every mutation, pool big enough that the dirty
/// watermark never forces a checkpoint mid-schedule.
fn cfg() -> DurableConfig {
    DurableConfig {
        group_commit: 1,
        pool_frames: 256,
        checkpoint_every: 0,
        crash: CheckpointCrash::None,
    }
}

/// An in-memory storage bundle whose WAL is wrapped in a [`FaultLog`],
/// returning the wrapper and the raw device for crash simulation.
fn faulty_wal_storage() -> (DurableStorage, Arc<FaultLog>, Arc<MemLog>) {
    let wal_mem = MemLog::shared();
    let fault = Arc::new(FaultLog::new(wal_mem.clone() as SharedLog));
    let storage = DurableStorage {
        wal: fault.clone(),
        ..DurableStorage::in_memory()
    };
    (storage, fault, wal_mem)
}

// --- The WAL crash matrix ---

/// Kill the WAL device at every operation boundary of a fixed mutation
/// schedule; after each crash, recovery must restore exactly the
/// acknowledged prefix, and re-applying the rest must converge on the
/// full model. Generic over the backend so both paper indexes run the
/// same matrix.
fn wal_crash_matrix<B, F>(tag: &str, create: F)
where
    B: MutableBackend,
    F: Fn(DurableStorage, DurableConfig, &BTreeMap<u64, Uda>) -> DurableIndex<B>,
{
    let data = initial_data(12);
    let mut full_model = data.clone();
    let mut next_tid = 12;
    let ops = schedule(0x5EED, 16, &mut full_model, &mut next_tid);

    // Probe run: count WAL operations consumed by the schedule itself.
    let (storage, fault, _) = faulty_wal_storage();
    let mut idx = create(storage, cfg(), &data);
    let before = fault.appends_so_far() + fault.syncs_so_far() + fault.truncates_so_far();
    let mut probe_model = data.clone();
    for op in &ops {
        apply_op(&mut idx, &mut probe_model, op).expect("probe run is fault-free");
    }
    let total_ops =
        fault.appends_so_far() + fault.syncs_so_far() + fault.truncates_so_far() - before;
    assert_eq!(probe_model, full_model, "schedule replays its own model");
    assert!(
        total_ops >= ops.len() as u64,
        "every mutation touches the WAL"
    );
    drop(idx);

    // The matrix: crash after each of the 0..=total_ops boundaries.
    for crash_at in 0..=total_ops {
        let what = format!("{tag}/crash_at_{crash_at}");
        let (storage, fault, wal_mem) = faulty_wal_storage();
        let mut idx = create(storage.clone(), cfg(), &data);
        fault.crash_after_ops(crash_at);

        let mut acked = data.clone();
        let mut survivors = 0;
        let mut failed = false;
        for op in &ops {
            match apply_op(&mut idx, &mut acked, op) {
                Ok(()) => survivors += 1,
                Err(e) => {
                    assert!(
                        matches!(e, StorageError::Io { .. }),
                        "{what}: crash surfaced as {e}, expected a typed I/O error"
                    );
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            assert!(idx.is_poisoned(), "{what}: post-log failure must poison");
            let again = idx.delete(0).expect_err("poisoned index refuses work");
            assert!(
                matches!(again, StorageError::Poisoned),
                "{what}: expected Poisoned, got {again}"
            );
        } else {
            assert_eq!(survivors, ops.len(), "{what}: fault-free run applies all");
        }
        drop(idx);

        // Power loss: the process restarts, only fsynced bytes survive.
        fault.revive();
        wal_mem.crash();
        let (mut idx, report) =
            DurableIndex::<B>::open(storage.clone(), cfg()).expect("recovery never fails");
        assert_eq!(
            report.replayed_records, survivors as u64,
            "{what}: replay must cover exactly the acknowledged mutations"
        );
        assert!(
            !report.journal_redone && !report.stale_wal_discarded,
            "{what}: a WAL-only crash involves neither the journal nor a stale log"
        );
        assert_index_matches_model(&what, &mut idx, &acked);

        // The recovered index stays writable: finish the schedule and
        // converge on the full model.
        let mut model = acked;
        for op in &ops[survivors..] {
            apply_op(&mut idx, &mut model, op).expect("post-recovery mutations succeed");
        }
        assert_eq!(model, full_model, "{what}: completed schedule matches");
        assert_index_matches_model(&format!("{what}/completed"), &mut idx, &full_model);
    }
}

#[test]
fn wal_crash_matrix_inverted() {
    wal_crash_matrix("inverted", create_inverted);
}

#[test]
fn wal_crash_matrix_pdr_tree() {
    wal_crash_matrix("pdr-tree", create_pdr);
}

// --- The checkpoint crash matrix ---

/// Kill the checkpoint after every internal phase; recovery must land on
/// the full post-mutation state regardless of which boundary the crash
/// hit, redoing the journal exactly when the snapshot had not yet
/// committed.
fn checkpoint_crash_matrix<B, F>(tag: &str, create: F)
where
    B: MutableBackend,
    F: Fn(DurableStorage, DurableConfig, &BTreeMap<u64, Uda>) -> DurableIndex<B>,
{
    for crash in [
        CheckpointCrash::AfterJournal,
        CheckpointCrash::AfterInstall,
        CheckpointCrash::AfterSnapshot,
        CheckpointCrash::AfterWalReset,
    ] {
        let what = format!("{tag}/{crash:?}");
        let data = initial_data(16);
        let storage = DurableStorage::in_memory();
        let idx = create(storage.clone(), cfg(), &data);
        let epoch_before = idx.epoch();
        drop(idx);

        // Reopen with the crash armed (recovery itself never checkpoints,
        // so the injection waits for the explicit call below).
        let armed = DurableConfig { crash, ..cfg() };
        let (mut idx, _) = DurableIndex::<B>::open(storage.clone(), armed).expect("clean reopen");
        let mut model = data.clone();
        let mut next_tid = 16;
        for op in &schedule(0xCAFE + crash as u64, 8, &mut model.clone(), &mut next_tid) {
            apply_op(&mut idx, &mut model, op).expect("pre-checkpoint mutations succeed");
        }

        let err = idx.checkpoint().expect_err("injected checkpoint crash");
        assert!(
            matches!(err, StorageError::Io { .. }),
            "{what}: crash surfaced as {err}, expected a typed I/O error"
        );
        assert!(idx.is_poisoned(), "{what}: failed checkpoint must poison");
        drop(idx);

        let (mut idx, report) =
            DurableIndex::<B>::open(storage.clone(), cfg()).expect("recovery never fails");
        assert_eq!(
            idx.epoch(),
            epoch_before + 1,
            "{what}: recovery must land on the new epoch"
        );
        assert_eq!(
            report.replayed_records, 0,
            "{what}: the checkpoint already folded every mutation"
        );
        match crash {
            CheckpointCrash::AfterJournal | CheckpointCrash::AfterInstall => {
                assert!(
                    report.journal_redone,
                    "{what}: snapshot had not committed, the journal must be redone"
                );
            }
            CheckpointCrash::AfterSnapshot => {
                assert!(!report.journal_redone, "{what}: snapshot already committed");
                assert!(
                    report.stale_wal_discarded,
                    "{what}: the pre-checkpoint WAL is stale and must be discarded"
                );
            }
            CheckpointCrash::AfterWalReset | CheckpointCrash::None => {
                assert!(!report.journal_redone, "{what}: snapshot already committed");
                assert!(
                    !report.stale_wal_discarded,
                    "{what}: the WAL was already reset to the new epoch"
                );
            }
        }
        assert_index_matches_model(&what, &mut idx, &model);

        // The recovered index checkpoints cleanly and survives another
        // reopen with nothing left to replay.
        idx.checkpoint().expect("clean checkpoint after recovery");
        drop(idx);
        let (mut idx, report) =
            DurableIndex::<B>::open(storage, cfg()).expect("recovery never fails");
        assert_eq!(report.replayed_records, 0, "{what}: log folded");
        assert_index_matches_model(&format!("{what}/after"), &mut idx, &model);
    }
}

#[test]
fn checkpoint_crash_matrix_inverted() {
    checkpoint_crash_matrix("inverted", create_inverted);
}

#[test]
fn checkpoint_crash_matrix_pdr_tree() {
    checkpoint_crash_matrix("pdr-tree", create_pdr);
}

// --- Torn-tail byte sweep ---

/// Crash with every possible number of surviving unsynced tail bytes.
/// Recovery must truncate at the first incomplete record — replaying the
/// complete prefix, reporting the rest as a torn tail, and never
/// panicking or inventing records.
#[test]
fn torn_tail_byte_sweep_truncates_at_first_bad_record() {
    // Probe: 4 synced mutations, then 3 appended but unsynced ones;
    // record the byte boundary after each unsynced record.
    let build = |seed: u64| {
        let data = initial_data(8);
        let storage = DurableStorage::in_memory();
        let mut idx = create_inverted(storage.clone(), cfg(), &data);
        let mut model = data;
        let mut next_tid = 8;
        let ops = schedule(seed, 7, &mut model.clone(), &mut next_tid);
        for op in &ops[..4] {
            apply_op(&mut idx, &mut model, op).expect("synced mutations");
        }
        (storage, idx, model, ops)
    };

    let wal_len = |storage: &DurableStorage| storage.wal.len().expect("in-memory length");

    // Boundaries of the unsynced records, in bytes past the synced
    // prefix, measured on a probe instance.
    let (storage, idx, mut model, ops) = build(0x70AB);
    let mut unsynced = cfg();
    unsynced.group_commit = usize::MAX;
    drop(idx);
    let (mut idx2, _) = DurableIndex::<InvertedBackend>::open(storage.clone(), unsynced)
        .expect("reopen with buffering");
    let synced_len = wal_len(&storage);
    let mut boundaries = Vec::new();
    let mut tail_models = Vec::new();
    tail_models.push(model.clone());
    for op in &ops[4..] {
        apply_op(&mut idx2, &mut model, op).expect("buffered mutations succeed");
        boundaries.push(wal_len(&storage) - synced_len);
        tail_models.push(model.clone());
    }
    let tail_len = *boundaries.last().expect("three unsynced records");
    drop(idx2);

    for extra in 0..=tail_len {
        let what = format!("torn_tail/extra_{extra}");
        // Rebuild the identical scenario, then crash keeping `extra`
        // bytes of the unsynced tail.
        let (storage, idx, _, ops) = build(0x70AB);
        drop(idx);
        let (mut idx, _) = DurableIndex::<InvertedBackend>::open(storage.clone(), unsynced)
            .expect("reopen with buffering");
        let mut m = tail_models[0].clone();
        for op in &ops[4..] {
            apply_op(&mut idx, &mut m, op).expect("buffered mutations succeed");
        }
        drop(idx);
        let mem = storage.wal.clone();
        // DurableStorage::in_memory builds on MemLog; downcast via the
        // device API instead: truncate to the synced prefix plus `extra`.
        mem.truncate(synced_len + extra).expect("simulated crash");

        let (mut idx, report) =
            DurableIndex::<InvertedBackend>::open(storage.clone(), cfg()).expect("never fails");
        let complete = boundaries.iter().filter(|&&b| b <= extra).count();
        assert_eq!(
            report.replayed_records,
            4 + complete as u64,
            "{what}: replay covers exactly the complete records"
        );
        if boundaries.contains(&extra) || extra == 0 {
            assert!(
                matches!(report.wal_tail, TailStatus::Clean),
                "{what}: the tail ends on a record boundary"
            );
        } else {
            match report.wal_tail {
                TailStatus::Torn {
                    dropped_bytes,
                    reason,
                    ..
                } => {
                    let boundary = boundaries.iter().filter(|&&b| b < extra).max().copied();
                    let expected = extra - boundary.unwrap_or(0);
                    assert_eq!(
                        dropped_bytes, expected,
                        "{what}: dropped bytes are the partial record ({reason})"
                    );
                }
                TailStatus::Clean => panic!("{what}: a partial record must be reported torn"),
            }
        }
        assert_index_matches_model(&what, &mut idx, &tail_models[complete]);

        // The repaired log accepts new appends and a further reopen is
        // clean.
        idx.insert(1000, &rand_uda(&mut Rng(extra)))
            .expect("post-repair insert");
        let mut m = tail_models[complete].clone();
        m.insert(1000, rand_uda(&mut Rng(extra)));
        drop(idx);
        let (mut idx, report) =
            DurableIndex::<InvertedBackend>::open(storage, cfg()).expect("never fails");
        assert!(
            matches!(report.wal_tail, TailStatus::Clean),
            "{what}: the repaired tail stays clean"
        );
        assert_index_matches_model(&format!("{what}/appended"), &mut idx, &m);
    }
}

// --- Short (torn) appends ---

/// A byte-granularity short write in the middle of the schedule poisons
/// the live index; recovery truncates the torn record and keeps every
/// earlier mutation.
#[test]
fn short_append_is_truncated_by_recovery() {
    for keep in [0usize, 1, 7, 11, 12, 20] {
        let what = format!("short_append/keep_{keep}");
        let data = initial_data(8);
        let (storage, fault, wal_mem) = faulty_wal_storage();
        let mut idx = create_inverted(storage.clone(), cfg(), &data);

        let mut model = data;
        let mut next_tid = 8;
        let ops = schedule(0x7EA4, 4, &mut model.clone(), &mut next_tid);
        for op in &ops[..3] {
            apply_op(&mut idx, &mut model, op).expect("clean prefix");
        }
        fault.arm(LogFault::ShortAppend {
            after: fault.appends_so_far() + 1,
            keep,
        });
        let mut doomed = model.clone();
        let err = apply_op(&mut idx, &mut doomed, &ops[3]).expect_err("torn append fails");
        assert!(
            matches!(err, StorageError::Io { .. }),
            "{what}: torn append surfaced as {err}"
        );
        assert!(idx.is_poisoned(), "{what}: torn tail must poison");
        drop(idx);

        wal_mem.crash_keep(keep);
        let (mut idx, report) =
            DurableIndex::<InvertedBackend>::open(storage, cfg()).expect("never fails");
        assert_eq!(report.replayed_records, 3, "{what}: prefix replays");
        if keep > 0 {
            match report.wal_tail {
                TailStatus::Torn { dropped_bytes, .. } => {
                    assert_eq!(dropped_bytes, keep as u64, "{what}: partial bytes dropped")
                }
                TailStatus::Clean => panic!("{what}: partial record must be reported torn"),
            }
        }
        assert_index_matches_model(&what, &mut idx, &model);
    }
}

// --- Group commit ---

/// With a group-commit window of 4, a conservative crash loses at most
/// the unsynced window: 10 acknowledged mutations, 8 fsynced, exactly 8
/// recovered.
#[test]
fn group_commit_crash_loses_at_most_the_open_window() {
    let data = initial_data(8);
    let wal_mem = MemLog::shared();
    let storage = DurableStorage {
        wal: wal_mem.clone() as SharedLog,
        ..DurableStorage::in_memory()
    };
    let idx = create_inverted(storage.clone(), cfg(), &data);
    drop(idx);

    let grouped = DurableConfig {
        group_commit: 4,
        ..cfg()
    };
    let (mut idx, _) =
        DurableIndex::<InvertedBackend>::open(storage.clone(), grouped).expect("clean reopen");
    let mut model = data.clone();
    let mut next_tid = 8;
    let ops = schedule(0x6C0C, 10, &mut model.clone(), &mut next_tid);
    let mut synced_model = model.clone();
    for (i, op) in ops.iter().enumerate() {
        apply_op(&mut idx, &mut model, op).expect("grouped mutations succeed");
        if i < 8 {
            synced_model = model.clone();
        }
    }
    let stats = idx.wal_stats();
    assert_eq!(stats.records_appended, 10, "one record per mutation");
    assert_eq!(
        stats.fsyncs, 2,
        "a window of 4 fsyncs twice across 10 appends"
    );
    drop(idx);

    // Conservative crash: only fsynced bytes survive — exactly the two
    // mutations of the open window are lost, nothing else.
    wal_mem.crash();
    let (mut idx, report) =
        DurableIndex::<InvertedBackend>::open(storage.clone(), grouped).expect("never fails");
    assert_eq!(
        report.replayed_records, 8,
        "the fsynced batches replay, the open window is lost"
    );
    assert!(
        matches!(report.wal_tail, TailStatus::Clean),
        "an fsync boundary is a record boundary"
    );
    assert_index_matches_model("group_commit", &mut idx, &synced_model);

    // Re-apply the lost window, fold, and verify the log is empty.
    let mut m = synced_model;
    for op in &ops[8..] {
        apply_op(&mut idx, &mut m, op).expect("post-recovery mutations succeed");
    }
    assert_eq!(m, model, "completed schedule matches the full model");
    idx.flush_wal().expect("seal the reapplied window");
    idx.checkpoint().expect("clean checkpoint");
    drop(idx);
    let (mut idx, report) =
        DurableIndex::<InvertedBackend>::open(storage, cfg()).expect("never fails");
    assert_eq!(report.replayed_records, 0, "checkpoint folded the log");
    assert_index_matches_model("group_commit/completed", &mut idx, &model);
}

// --- Torn page install, redone from the journal ---

/// A torn page write in the middle of checkpoint installation poisons
/// the checkpoint; on reopen the complete redo journal reinstalls every
/// page image and the full state survives.
#[test]
fn torn_page_install_is_redone_from_the_journal() {
    for backend_tag in ["inverted", "pdr"] {
        let what = format!("torn_install/{backend_tag}");
        let data = initial_data(16);
        let inner = InMemoryDisk::shared();
        let fstore = Arc::new(FaultStore::new(inner, 0xBEEF));
        let storage = DurableStorage {
            store: fstore.clone(),
            wal: MemLog::shared(),
            journal: MemLog::shared(),
            slot: Arc::new(uncat::query::MemSlot::new()),
        };

        // Generic dispatch by hand: the two branches only differ in the
        // create call, everything after is per-backend monomorphic.
        if backend_tag == "inverted" {
            run_torn_install(
                &what,
                &data,
                &fstore,
                |s, c| create_inverted(s, c, &data),
                storage,
            );
        } else {
            run_torn_install(
                &what,
                &data,
                &fstore,
                |s, c| create_pdr(s, c, &data),
                storage,
            );
        }
    }
}

fn run_torn_install<B, F>(
    what: &str,
    data: &BTreeMap<u64, Uda>,
    fstore: &FaultStore,
    create: F,
    storage: DurableStorage,
) where
    B: MutableBackend,
    F: FnOnce(DurableStorage, DurableConfig) -> DurableIndex<B>,
{
    let mut idx = create(storage.clone(), cfg());
    let mut model = data.clone();
    let mut next_tid = data.len() as u64;
    for op in &schedule(0x7042, 10, &mut model.clone(), &mut next_tid) {
        apply_op(&mut idx, &mut model, op).expect("pre-checkpoint mutations succeed");
    }

    // Tear the first page write of the install phase. The journal is a
    // separate log device, so the next store-level write after this
    // point is an install.
    fstore.arm(Fault::TornWrite {
        after: fstore.writes_so_far() + 1,
        keep: 100,
    });
    let err = idx
        .checkpoint()
        .expect_err("torn install fails the checkpoint");
    assert!(
        matches!(err, StorageError::Io { .. }),
        "{what}: torn write surfaced as {err}"
    );
    assert!(idx.is_poisoned(), "{what}: failed checkpoint must poison");
    drop(idx);

    let (mut idx, report) = DurableIndex::<B>::open(storage, cfg()).expect("recovery never fails");
    assert!(
        report.journal_redone,
        "{what}: the complete journal must be redone over the torn page"
    );
    assert_eq!(report.replayed_records, 0, "{what}: checkpoint folded all");
    assert_index_matches_model(what, &mut idx, &model);
}

// --- Repeated crash/reopen cycles ---

/// Six mutate → crash → recover cycles with checkpoints interleaved:
/// acknowledged state survives every round trip and epochs only move
/// forward.
#[test]
fn repeated_crash_reopen_cycles_preserve_acknowledged_state() {
    let data = initial_data(10);
    let (storage, fault, wal_mem) = faulty_wal_storage();
    let idx = create_inverted(storage.clone(), cfg(), &data);
    let mut model = data;
    let mut next_tid = 10;
    let mut last_epoch = idx.epoch();
    drop(idx);

    for cycle in 0..6u64 {
        let what = format!("cycle_{cycle}");
        let (mut idx, report) =
            DurableIndex::<InvertedBackend>::open(storage.clone(), cfg()).expect("never fails");
        assert!(
            idx.epoch() >= last_epoch,
            "{what}: epochs never move backwards"
        );
        assert!(
            !report.journal_redone,
            "{what}: every checkpoint in this schedule completes cleanly"
        );
        assert_index_matches_model(&what, &mut idx, &model);

        // A clean batch, every op acknowledged and fsynced.
        let ops = schedule(0x11C + cycle, 5, &mut model.clone(), &mut next_tid);
        for op in &ops {
            apply_op(&mut idx, &mut model, op).expect("clean batch succeeds");
        }
        if cycle % 2 == 0 {
            idx.checkpoint().expect("interleaved checkpoint");
        }

        // A doomed batch: the WAL dies partway through, at a boundary
        // that varies by cycle.
        fault.crash_after_ops(cycle % 3);
        let doomed = schedule(0xD00 + cycle, 3, &mut model.clone(), &mut next_tid);
        for op in &doomed {
            if apply_op(&mut idx, &mut model, op).is_err() {
                break;
            }
        }
        last_epoch = idx.epoch();
        drop(idx);
        fault.revive();
        wal_mem.crash();
    }

    let (mut idx, _) = DurableIndex::<InvertedBackend>::open(storage, cfg()).expect("never fails");
    assert_index_matches_model("final", &mut idx, &model);
}

/// Recovery refreshes the planner's statistics: a WAL tail that grew
/// one posting list far past the snapshot's counts is replayed on open,
/// and the very first `Strategy::Auto` query must plan against the
/// replayed state — no adaptive fallback, and prediction and
/// measurement within each other's overrun slack. (Before this fix the
/// recovered index planned on the snapshot's stale statistics until the
/// next checkpoint, so this exact query tripped the fallback.)
#[test]
fn recovery_refreshes_planner_statistics() {
    use uncat_inverted::{Strategy, FALLBACK_BUDGET_FLOOR, OVERRUN_FACTOR};

    let config = DurableConfig {
        group_commit: 1,
        pool_frames: 512,
        checkpoint_every: 0,
        ..DurableConfig::default()
    };
    let mut rng = Rng(11);
    let initial: Vec<(u64, Uda)> = (0..40).map(|i| (i, rand_uda(&mut rng))).collect();
    let storage = DurableStorage::in_memory();
    let mut idx = DurableIndex::create(storage.clone(), config, |pool| {
        Ok(InvertedBackend::new(InvertedIndex::build(
            Domain::anonymous(CATS),
            pool,
            initial.iter().map(|(t, u)| (*t, u)),
        )?))
    })
    .expect("create durable inverted index");

    // Grow category 0 to twice the budget the snapshot statistics would
    // grant, without a checkpoint: the growth lives only in the WAL.
    let mut b = UdaBuilder::new();
    b.push(CatId(0), 1.0).expect("valid probability");
    let heavy = b.finish_normalized().expect("non-empty");
    let q = EqQuery::new(heavy.clone(), 0.1);
    let (_, stale) = idx.backend().index.plan_petq(&q);
    let stale_budget = OVERRUN_FACTOR * stale.postings_scanned + FALLBACK_BUDGET_FLOOR;
    let grown = 2 * stale_budget;
    for i in 0..grown {
        idx.insert(100_000 + i, &heavy).expect("in-memory insert");
    }
    drop(idx); // clean close — but the inserts were never checkpointed

    let (mut idx, report) = DurableIndex::<InvertedBackend>::open(storage, config).expect("reopen");
    assert_eq!(
        report.replayed_records, grown,
        "the growth schedule must be replayed, not folded into a checkpoint"
    );

    let (pick, prediction) = {
        let (backend, _) = idx.parts_mut();
        backend.strategy = Strategy::Auto;
        backend.index.plan_petq(&q)
    };
    let mut m = QueryMetrics::new();
    let got = idx.petq_metered(&q, &mut m).expect("in-memory query");
    assert!(
        got.len() as u64 >= grown,
        "every replayed tuple matches the probe"
    );
    assert!(
        m.postings_scanned > stale_budget,
        "the scenario must be real: {} postings scanned would have tripped \
         the stale budget of {stale_budget}",
        m.postings_scanned
    );
    assert_eq!(
        m.plan_fallbacks, 0,
        "recovered statistics must describe the replayed state \
         (picked {pick:?}, predicted {} postings, scanned {})",
        prediction.postings_scanned, m.postings_scanned
    );
    // The refreshed prediction and the measurement bound each other
    // within the planner's own overrun slack, in both directions.
    assert!(
        m.postings_scanned <= OVERRUN_FACTOR * prediction.postings_scanned + FALLBACK_BUDGET_FLOOR,
        "actual {} exceeds the refreshed prediction {} plus slack",
        m.postings_scanned,
        prediction.postings_scanned
    );
    assert!(
        prediction.postings_scanned <= OVERRUN_FACTOR * m.postings_scanned + FALLBACK_BUDGET_FLOOR,
        "refreshed prediction {} wildly exceeds the actual {}",
        prediction.postings_scanned,
        m.postings_scanned
    );
}
