//! Cross-crate persistence: both indexes built over one durable file,
//! snapshotted, "restarted", and queried — results must equal a fresh
//! in-memory build.

use std::path::PathBuf;
use std::sync::Arc;

use uncat::core::{EqQuery, TopKQuery};
use uncat::datagen::crm;
use uncat::prelude::*;
use uncat::query::UncertainIndex;
use uncat_inverted::{InvertedIndex, Strategy};
use uncat_pdrtree::{PdrConfig, PdrTree};
use uncat_storage::FileDisk;

struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> TempFile {
        let mut p = std::env::temp_dir();
        p.push(format!("uncat-persist-{tag}-{}.pages", std::process::id()));
        TempFile(p)
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn both_indexes_survive_restart_on_one_file() {
    let file = TempFile::new("both");
    let (domain, data) = crm::crm1(3000, 77);

    // Session 1: build both indexes into one page file; keep snapshots.
    let (inv_blob, pdr_blob) = {
        let store: uncat::storage::SharedStore =
            Arc::new(FileDisk::create(&file.0).expect("create page file"));
        let mut pool = BufferPool::with_capacity(store, 256);
        let inv =
            InvertedIndex::build(domain.clone(), &mut pool, data.iter().map(|(t, u)| (*t, u)))
                .expect("build inverted");
        let pdr = PdrTree::build(
            domain.clone(),
            PdrConfig::default(),
            &mut pool,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .expect("build pdr");
        pool.flush().expect("flush");
        (inv.snapshot(), pdr.snapshot())
    };

    // Session 2: reopen and compare against a fresh in-memory build.
    let store: uncat::storage::SharedStore =
        Arc::new(FileDisk::open(&file.0).expect("reopen page file"));
    let inv = InvertedIndex::open(&inv_blob).expect("inverted snapshot");
    let pdr = PdrTree::open(&pdr_blob).expect("pdr snapshot");
    assert_eq!(inv.len(), 3000);
    assert_eq!(pdr.len(), 3000);

    let mem_store = InMemoryDisk::shared();
    let mut mem_pool = BufferPool::with_capacity(mem_store, 256);
    let fresh = InvertedIndex::build(domain, &mut mem_pool, data.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");

    let mut pool = BufferPool::new(store);
    for (tid, q) in data.iter().take(5) {
        let eq = EqQuery::new(q.clone(), 0.4);
        let expect: Vec<u64> = fresh
            .petq(&mut mem_pool, &eq, Strategy::Nra)
            .expect("petq")
            .iter()
            .map(|m| m.tid)
            .collect();
        let a: Vec<u64> = inv
            .petq(&mut pool, &eq, Strategy::Nra)
            .expect("petq")
            .iter()
            .map(|m| m.tid)
            .collect();
        let b: Vec<u64> = UncertainIndex::petq(&pdr, &mut pool, &eq)
            .expect("petq")
            .iter()
            .map(|m| m.tid)
            .collect();
        assert_eq!(a, expect, "inverted after restart, query from tuple {tid}");
        assert_eq!(b, expect, "pdr after restart, query from tuple {tid}");

        let tk = TopKQuery::new(q.clone(), 7);
        let expect: Vec<u64> = fresh
            .top_k(&mut mem_pool, &tk)
            .expect("top_k")
            .iter()
            .map(|m| m.tid)
            .collect();
        assert_eq!(
            inv.top_k(&mut pool, &tk)
                .expect("top_k")
                .iter()
                .map(|m| m.tid)
                .collect::<Vec<_>>(),
            expect
        );
        assert_eq!(
            UncertainIndex::top_k(&pdr, &mut pool, &tk)
                .expect("top_k")
                .iter()
                .map(|m| m.tid)
                .collect::<Vec<_>>(),
            expect
        );
    }
    pdr.check_invariants(&mut pool).expect("pdr invariants");
    inv.check_invariants(&mut pool)
        .expect("inverted invariants");
}

/// The cost-statistics section appended to UIV2 snapshots
/// (`docs/FORMAT.md` §10) must survive a save/load cycle byte-exactly:
/// loading presets the decoded statistics verbatim, so re-snapshotting
/// a loaded index reproduces the identical byte string.
#[test]
fn cost_stats_section_round_trips_byte_exactly() {
    let (domain, data) = crm::crm1(800, 21);
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store, 256);
    let idx = InvertedIndex::build(domain, &mut pool, data.iter().map(|(t, u)| (*t, u)))
        .expect("build inverted");
    let blob = idx.snapshot();
    assert!(
        blob.len() > idx.snapshot_without_stats().len(),
        "UIV2 snapshots carry a statistics section"
    );

    let reopened = InvertedIndex::open(&blob).expect("open with stats");
    assert_eq!(
        reopened.cost_stats(),
        idx.cost_stats(),
        "loaded statistics equal the collected ones"
    );
    assert_eq!(
        reopened.snapshot(),
        blob,
        "save → load → save reproduces the identical bytes"
    );
}

/// Compatibility rule (`docs/FORMAT.md` §11): a UIV2 snapshot written
/// *without* the statistics section — any pre-stats snapshot — still
/// loads, and the statistics are rebuilt lazily from the in-memory
/// block directories on first use, landing on exactly what a stats-
/// carrying snapshot would have stored.
#[test]
fn pre_stats_snapshots_load_and_rebuild_lazily() {
    let (domain, data) = crm::crm1(800, 21);
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store, 256);
    let idx = InvertedIndex::build(domain, &mut pool, data.iter().map(|(t, u)| (*t, u)))
        .expect("build inverted");

    let legacy = idx.snapshot_without_stats();
    let reopened = InvertedIndex::open(&legacy).expect("pre-stats snapshot loads");
    assert_eq!(reopened.len(), idx.len());
    // First use triggers the lazy rebuild; it must agree with the
    // statistics the stats-carrying snapshot serializes.
    assert_eq!(reopened.cost_stats(), idx.cost_stats());
    assert_eq!(
        reopened.snapshot(),
        idx.snapshot(),
        "rebuilt statistics serialize identically to collected ones"
    );
}

#[test]
fn restarted_index_accepts_new_inserts() {
    let file = TempFile::new("insert");
    let (domain, data) = crm::crm1(500, 3);
    let blob = {
        let store: uncat::storage::SharedStore =
            Arc::new(FileDisk::create(&file.0).expect("create"));
        let mut pool = BufferPool::with_capacity(store, 128);
        let mut idx =
            InvertedIndex::build(domain.clone(), &mut pool, data.iter().map(|(t, u)| (*t, u)))
                .expect("build inverted");
        idx.delete(&mut pool, 0).expect("delete");
        pool.flush().expect("flush");
        idx.snapshot()
    };
    let store: uncat::storage::SharedStore = Arc::new(FileDisk::open(&file.0).expect("open"));
    let mut idx = InvertedIndex::open(&blob).expect("snapshot");
    assert_eq!(idx.len(), 499);
    let mut pool = BufferPool::with_capacity(store, 128);
    idx.insert(&mut pool, 9999, &data[0].1).expect("insert");
    assert_eq!(idx.len(), 500);
    assert_eq!(idx.check_invariants(&mut pool).expect("invariants"), 500);
    assert!(idx.get_tuple(&mut pool, 9999).expect("get").is_some());
}

#[test]
fn crash_between_flush_and_snapshot_commit_recovers_previous_snapshot() {
    let pages = TempFile::new("crash");
    let meta = TempFile::new("crash-meta");
    let (domain, data) = crm::crm1(400, 9);
    let probe = EqQuery::new(data[5].1.clone(), 0.4);

    // Session 1: build v1, flush its pages, commit its snapshot.
    let v1_results: Vec<u64> = {
        let store: uncat::storage::SharedStore =
            Arc::new(FileDisk::create(&pages.0).expect("create page file"));
        let mut pool = BufferPool::with_capacity(store, 128);
        let idx =
            InvertedIndex::build(domain.clone(), &mut pool, data.iter().map(|(t, u)| (*t, u)))
                .expect("build v1");
        pool.flush().expect("flush v1");
        idx.save(&meta.0).expect("commit v1 snapshot");
        idx.petq(&mut pool, &probe, Strategy::Nra)
            .expect("query v1")
            .iter()
            .map(|m| m.tid)
            .collect()
    };

    // Session 2: build a replacement index over the same page file (pages
    // flushed), then die between `pool.flush()` and `snapshot::commit` —
    // all that reaches disk is a torn temp file next to the snapshot.
    let torn = PathBuf::from(format!("{}.tmp-dead", meta.0.display()));
    let _torn_guard = TempFile(torn.clone());
    {
        let store: uncat::storage::SharedStore =
            Arc::new(FileDisk::open(&pages.0).expect("reopen page file"));
        let mut pool = BufferPool::with_capacity(store, 128);
        let (domain2, data2) = crm::crm1(700, 10);
        let v2 = InvertedIndex::build(domain2, &mut pool, data2.iter().map(|(t, u)| (*t, u)))
            .expect("build v2");
        pool.flush().expect("flush v2");
        // Simulated crash mid-commit: a prefix of the would-be snapshot
        // file is on disk under the temp name, never renamed over `meta`.
        let unreached = v2.snapshot();
        std::fs::write(&torn, &unreached[..unreached.len() / 2]).expect("torn write");
    }

    // Session 3: recovery. The previous snapshot is intact and answers
    // queries exactly as before the crash.
    let store: uncat::storage::SharedStore =
        Arc::new(FileDisk::open(&pages.0).expect("reopen page file"));
    let idx = InvertedIndex::load(&meta.0).expect("previous snapshot loadable");
    assert_eq!(idx.len(), 400, "recovered index is the committed v1");
    let mut pool = BufferPool::new(store);
    let after: Vec<u64> = idx
        .petq(&mut pool, &probe, Strategy::Nra)
        .expect("query after recovery")
        .iter()
        .map(|m| m.tid)
        .collect();
    assert_eq!(
        after, v1_results,
        "recovered results equal pre-crash results"
    );
}
