//! Cross-index differential property tests.
//!
//! Three implementations answer every query in this workspace: the
//! probabilistic inverted index (under five search strategies), the
//! PDR-tree, and the full-scan baseline. They share nothing but the data
//! model, which makes them ideal differential-testing oracles for each
//! other: on proptest-generated datasets and queries, all of them must
//! return the same tuples in the same order with scores agreeing to
//! 1e-9. A pruning bug, a bound that is not actually an upper bound, or
//! a posting-list truncation shows up here as a divergence long before
//! it would be caught by a hand-written example.

use proptest::prelude::*;

use uncat::core::query::{DstQuery, EqQuery, Match, TopKQuery};
use uncat::core::{CatId, Divergence, Domain, Uda};
use uncat::prelude::*;
use uncat::query::join::{
    block_join_metered, index_join, index_join_metered, parallel_join, JoinPair, JoinSpec,
};
use uncat::query::{BatchPools, InvertedBackend, ScanBaseline, UncertainIndex};
use uncat_inverted::{InvertedIndex, Strategy as SearchStrategy};
use uncat_pdrtree::{PdrConfig, PdrTree};

const CATS: u32 = 8;

/// Cases per property: `default`, or the `PROPTEST_CASES` environment
/// variable when set (the nightly CI job raises it to 256; the vendored
/// proptest does not read the variable itself).
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Strategy: a valid sparse UDA over `cats` categories.
fn uda_strategy(cats: u32) -> impl Strategy<Value = Uda> {
    prop::collection::btree_map(0..cats, 0.01f32..1.0f32, 1..=(cats.min(6) as usize)).prop_map(
        |m| {
            let mut b = uncat::core::UdaBuilder::new();
            for (c, p) in m {
                b.push(CatId(c), p)
                    .expect("strategy emits valid probabilities");
            }
            b.finish_normalized().expect("at least one entry")
        },
    )
}

fn dataset_strategy(cats: u32, max_n: usize) -> impl Strategy<Value = Vec<(u64, Uda)>> {
    prop::collection::vec(uda_strategy(cats), 1..=max_n).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, u)| (i as u64, u))
            .collect()
    })
}

/// Every backend under test, each with its own name for failure output.
/// The scan baseline is positionally first: it is the semantic reference
/// the others are diffed against.
fn all_backends(
    pool: &mut BufferPool,
    tuples: &[(u64, Uda)],
) -> Vec<(String, Box<dyn UncertainIndex>)> {
    let mut backends: Vec<(String, Box<dyn UncertainIndex>)> = vec![(
        "scan".into(),
        Box::new(
            ScanBaseline::build(pool, tuples.iter().map(|(t, u)| (*t, u)))
                .expect("in-memory build"),
        ),
    )];
    for strategy in SearchStrategy::ALL {
        let idx = InvertedIndex::build(
            Domain::anonymous(CATS),
            pool,
            tuples.iter().map(|(t, u)| (*t, u)),
        )
        .expect("in-memory build");
        backends.push((
            format!("inverted/{}", strategy.name()),
            Box::new(InvertedBackend::with_strategy(idx, strategy)),
        ));
    }
    backends.push((
        "pdr-tree".into(),
        Box::new(
            PdrTree::build(
                Domain::anonymous(CATS),
                PdrConfig::default(),
                pool,
                tuples.iter().map(|(t, u)| (*t, u)),
            )
            .expect("in-memory build"),
        ),
    ));
    backends
}

/// Outer relation for join tests: tids are offset so they never collide
/// with inner tids and a swapped left/right shows up immediately.
fn outer_strategy(cats: u32, max_n: usize) -> impl Strategy<Value = Vec<(u64, Uda)>> {
    prop::collection::vec(uda_strategy(cats), 1..=max_n).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, u)| (1_000_000 + i as u64, u))
            .collect()
    })
}

/// One of the paper's three join forms, with generated parameters
/// (selector-and-map in place of `prop_oneof`, which the vendored
/// proptest does not provide).
fn spec_strategy() -> impl Strategy<Value = JoinSpec> {
    (0u32..6, 0.01f64..0.9, 1usize..12).prop_map(|(sel, t, k)| match sel {
        0 | 1 => JoinSpec::Petj { tau: t },
        2 | 3 => JoinSpec::PejTopK { k },
        4 => JoinSpec::Dstj {
            tau_d: t * 1.6,
            divergence: Divergence::L1,
        },
        _ => JoinSpec::Dstj {
            tau_d: t * 1.6,
            divergence: Divergence::L2,
        },
    })
}

/// Same pairs, same order, scores within 1e-9 of the reference.
fn assert_pairs_agree(what: &str, name: &str, reference: &[JoinPair], got: &[JoinPair]) {
    assert_eq!(
        got.iter().map(|p| (p.left, p.right)).collect::<Vec<_>>(),
        reference
            .iter()
            .map(|p| (p.left, p.right))
            .collect::<Vec<_>>(),
        "{what}: {name} returned different pairs than the block plan"
    );
    for (r, g) in reference.iter().zip(got) {
        assert!(
            (r.score - g.score).abs() <= 1e-9,
            "{what}: {name} scored pair ({}, {}) as {} vs {}",
            g.left,
            g.right,
            g.score,
            r.score
        );
    }
}

/// Same tuples, same order, scores within 1e-9 of the reference.
fn assert_matches_agree(what: &str, name: &str, reference: &[Match], got: &[Match]) {
    assert_eq!(
        got.iter().map(|m| m.tid).collect::<Vec<_>>(),
        reference.iter().map(|m| m.tid).collect::<Vec<_>>(),
        "{what}: {name} returned different tuples than scan"
    );
    for (r, g) in reference.iter().zip(got) {
        assert!(
            (r.score - g.score).abs() <= 1e-9,
            "{what}: {name} scored tuple {} as {} vs scan's {}",
            g.tid,
            g.score,
            r.score
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(32)))]

    #[test]
    fn petq_agrees_across_every_index_and_strategy(
        tuples in dataset_strategy(CATS, 60),
        q in uda_strategy(CATS),
        tau in 0.01f64..0.9,
    ) {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
        let backends = all_backends(&mut pool, &tuples);
        let query = EqQuery::new(q, tau);
        let reference = backends[0].1.petq(&mut pool, &query).expect("in-memory query");
        for (name, backend) in &backends[1..] {
            let got = backend.petq(&mut pool, &query).expect("in-memory query");
            assert_matches_agree("petq", name, &reference, &got);
        }
    }

    #[test]
    fn top_k_agrees_across_every_index_and_strategy(
        tuples in dataset_strategy(CATS, 60),
        q in uda_strategy(CATS),
        k in 1usize..15,
    ) {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
        let backends = all_backends(&mut pool, &tuples);
        let query = TopKQuery::new(q, k);
        let reference = backends[0].1.top_k(&mut pool, &query).expect("in-memory query");
        // Zero-probability tuples are never returned, so the result may
        // be shorter than k; the property is agreement, not length.
        prop_assert!(reference.len() <= k);
        for (name, backend) in &backends[1..] {
            let got = backend.top_k(&mut pool, &query).expect("in-memory query");
            assert_matches_agree("top_k", name, &reference, &got);
        }
    }

    #[test]
    fn dstq_agrees_across_every_index_and_divergence(
        tuples in dataset_strategy(CATS, 60),
        q in uda_strategy(CATS),
        radius in 0.05f64..1.5,
    ) {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
        let backends = all_backends(&mut pool, &tuples);
        for dv in [Divergence::L1, Divergence::L2] {
            let query = DstQuery::new(q.clone(), radius, dv);
            let reference = backends[0].1.dstq(&mut pool, &query).expect("in-memory query");
            for (name, backend) in &backends[1..] {
                let got = backend.dstq(&mut pool, &query).expect("in-memory query");
                assert_matches_agree("dstq", name, &reference, &got);
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(32)))]

    // See `check_join_plans_agree` for the property; the body lives in a
    // plain function because `proptest!`'s recursive expansion is
    // token-hungry.
    #[test]
    fn join_plans_agree_across_backends(
        tuples in dataset_strategy(CATS, 40),
        outer in outer_strategy(CATS, 10),
        spec in spec_strategy(),
        threads in 1usize..4,
    ) {
        check_join_plans_agree(&tuples, &outer, spec, threads);
    }
}

fn check_join_plans_agree(
    tuples: &[(u64, Uda)],
    outer: &[(u64, Uda)],
    spec: JoinSpec,
    threads: usize,
) {
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 100);
    let scan = ScanBaseline::build(&mut pool, tuples.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");
    let inv = InvertedBackend::new(
        InvertedIndex::build(
            Domain::anonymous(CATS),
            &mut pool,
            tuples.iter().map(|(t, u)| (*t, u)),
        )
        .expect("in-memory build"),
    );
    let pdr = PdrTree::build(
        Domain::anonymous(CATS),
        PdrConfig::default(),
        &mut pool,
        tuples.iter().map(|(t, u)| (*t, u)),
    )
    .expect("in-memory build");
    pool.flush().expect("in-memory flush");

    let reference = block_join_metered(outer, &scan, &mut pool, spec, &mut QueryMetrics::new())
        .expect("in-memory join");

    let seq = index_join(outer, &inv, &mut pool, spec).expect("in-memory join");
    assert_pairs_agree("join", "index/inverted", &reference, &seq.pairs);
    let got = index_join_metered(outer, &pdr, &mut pool, spec, &mut QueryMetrics::new())
        .expect("in-memory join");
    assert_pairs_agree("join", "index/pdr-tree", &reference, &got);

    let par = parallel_join(
        outer,
        &inv,
        &store,
        &BatchPools::private(100),
        spec,
        threads,
    )
    .expect("in-memory join");
    assert_pairs_agree("join", "parallel/inverted", &reference, &par.pairs);

    if !matches!(spec, JoinSpec::PejTopK { .. }) {
        // PEJ-top-k probe work depends on floor timing; threshold joins
        // must match counter for counter.
        let mut par_counters = par.metrics;
        let mut seq_counters = seq.metrics;
        assert_eq!(
            par_counters.io.logical_reads,
            seq_counters.io.logical_reads,
            "{}: logical accesses are partition-independent",
            spec.name()
        );
        par_counters.io = IoStats::default();
        seq_counters.io = IoStats::default();
        assert_eq!(
            par_counters,
            seq_counters,
            "{}: counters must sum exactly",
            spec.name()
        );
    }
}
