//! Cross-index differential property tests.
//!
//! Three implementations answer every query in this workspace: the
//! probabilistic inverted index (under five search strategies plus the
//! cost-based `Auto` planner), the
//! PDR-tree, and the full-scan baseline. They share nothing but the data
//! model, which makes them ideal differential-testing oracles for each
//! other: on proptest-generated datasets and queries, all of them must
//! return the same tuples in the same order with scores agreeing to
//! 1e-9. A pruning bug, a bound that is not actually an upper bound, or
//! a posting-list truncation shows up here as a divergence long before
//! it would be caught by a hand-written example.

use std::collections::BTreeMap;

use proptest::prelude::*;

use uncat::core::query::{DstQuery, EqQuery, Match, TopKQuery};
use uncat::core::{CatId, Divergence, Domain, Uda};
use uncat::prelude::*;
use uncat::query::join::{
    block_join_metered, index_join, index_join_metered, parallel_join, JoinPair, JoinSpec,
};
use uncat::query::{
    BatchPools, DurableConfig, DurableIndex, DurableStorage, InvertedBackend, MutableBackend,
    ScanBaseline, UncertainIndex,
};
use uncat_inverted::{InvertedIndex, PostingFormat, Strategy as SearchStrategy};
use uncat_pdrtree::{PdrConfig, PdrTree};

const CATS: u32 = 8;

/// Cases per property: `default`, or the `PROPTEST_CASES` environment
/// variable when set (the nightly CI job raises it to 256; the vendored
/// proptest does not read the variable itself).
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Strategy: a valid sparse UDA over `cats` categories.
fn uda_strategy(cats: u32) -> impl Strategy<Value = Uda> {
    prop::collection::btree_map(0..cats, 0.01f32..1.0f32, 1..=(cats.min(6) as usize)).prop_map(
        |m| {
            let mut b = uncat::core::UdaBuilder::new();
            for (c, p) in m {
                b.push(CatId(c), p)
                    .expect("strategy emits valid probabilities");
            }
            b.finish_normalized().expect("at least one entry")
        },
    )
}

fn dataset_strategy(cats: u32, max_n: usize) -> impl Strategy<Value = Vec<(u64, Uda)>> {
    prop::collection::vec(uda_strategy(cats), 1..=max_n).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, u)| (i as u64, u))
            .collect()
    })
}

/// Every backend under test, each with its own name for failure output.
/// The scan baseline is positionally first: it is the semantic reference
/// the others are diffed against.
fn all_backends(
    pool: &mut BufferPool,
    tuples: &[(u64, Uda)],
) -> Vec<(String, Box<dyn UncertainIndex>)> {
    let mut backends: Vec<(String, Box<dyn UncertainIndex>)> = vec![(
        "scan".into(),
        Box::new(
            ScanBaseline::build(pool, tuples.iter().map(|(t, u)| (*t, u)))
                .expect("in-memory build"),
        ),
    )];
    // The five fixed strategies plus the cost-based planner: Auto must
    // be indistinguishable from the others on results, whatever plan it
    // picks (and even when its adaptive fallback fires mid-query).
    for strategy in SearchStrategy::ALL
        .into_iter()
        .chain([SearchStrategy::Auto])
    {
        let idx = InvertedIndex::build(
            Domain::anonymous(CATS),
            pool,
            tuples.iter().map(|(t, u)| (*t, u)),
        )
        .expect("in-memory build");
        backends.push((
            format!("inverted/{}", strategy.name()),
            Box::new(InvertedBackend::with_strategy(idx, strategy)),
        ));
    }
    backends.push((
        "pdr-tree".into(),
        Box::new(
            PdrTree::build(
                Domain::anonymous(CATS),
                PdrConfig::default(),
                pool,
                tuples.iter().map(|(t, u)| (*t, u)),
            )
            .expect("in-memory build"),
        ),
    ));
    backends
}

/// Outer relation for join tests: tids are offset so they never collide
/// with inner tids and a swapped left/right shows up immediately.
fn outer_strategy(cats: u32, max_n: usize) -> impl Strategy<Value = Vec<(u64, Uda)>> {
    prop::collection::vec(uda_strategy(cats), 1..=max_n).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, u)| (1_000_000 + i as u64, u))
            .collect()
    })
}

/// One of the paper's three join forms, with generated parameters
/// (selector-and-map in place of `prop_oneof`, which the vendored
/// proptest does not provide).
fn spec_strategy() -> impl Strategy<Value = JoinSpec> {
    (0u32..6, 0.01f64..0.9, 1usize..12).prop_map(|(sel, t, k)| match sel {
        0 | 1 => JoinSpec::Petj { tau: t },
        2 | 3 => JoinSpec::PejTopK { k },
        4 => JoinSpec::Dstj {
            tau_d: t * 1.6,
            divergence: Divergence::L1,
        },
        _ => JoinSpec::Dstj {
            tau_d: t * 1.6,
            divergence: Divergence::L2,
        },
    })
}

/// Same pairs, same order, scores within 1e-9 of the reference.
fn assert_pairs_agree(what: &str, name: &str, reference: &[JoinPair], got: &[JoinPair]) {
    assert_eq!(
        got.iter().map(|p| (p.left, p.right)).collect::<Vec<_>>(),
        reference
            .iter()
            .map(|p| (p.left, p.right))
            .collect::<Vec<_>>(),
        "{what}: {name} returned different pairs than the block plan"
    );
    for (r, g) in reference.iter().zip(got) {
        assert!(
            (r.score - g.score).abs() <= 1e-9,
            "{what}: {name} scored pair ({}, {}) as {} vs {}",
            g.left,
            g.right,
            g.score,
            r.score
        );
    }
}

/// Same tuples, same order, scores within 1e-9 of the reference.
fn assert_matches_agree(what: &str, name: &str, reference: &[Match], got: &[Match]) {
    assert_eq!(
        got.iter().map(|m| m.tid).collect::<Vec<_>>(),
        reference.iter().map(|m| m.tid).collect::<Vec<_>>(),
        "{what}: {name} returned different tuples than scan"
    );
    for (r, g) in reference.iter().zip(got) {
        assert!(
            (r.score - g.score).abs() <= 1e-9,
            "{what}: {name} scored tuple {} as {} vs scan's {}",
            g.tid,
            g.score,
            r.score
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(32)))]

    #[test]
    fn petq_agrees_across_every_index_and_strategy(
        tuples in dataset_strategy(CATS, 60),
        q in uda_strategy(CATS),
        tau in 0.01f64..0.9,
    ) {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
        let backends = all_backends(&mut pool, &tuples);
        let query = EqQuery::new(q, tau);
        let reference = backends[0].1.petq(&mut pool, &query).expect("in-memory query");
        for (name, backend) in &backends[1..] {
            let got = backend.petq(&mut pool, &query).expect("in-memory query");
            assert_matches_agree("petq", name, &reference, &got);
        }
    }

    #[test]
    fn top_k_agrees_across_every_index_and_strategy(
        tuples in dataset_strategy(CATS, 60),
        q in uda_strategy(CATS),
        k in 1usize..15,
    ) {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
        let backends = all_backends(&mut pool, &tuples);
        let query = TopKQuery::new(q, k);
        let reference = backends[0].1.top_k(&mut pool, &query).expect("in-memory query");
        // Zero-probability tuples are never returned, so the result may
        // be shorter than k; the property is agreement, not length.
        prop_assert!(reference.len() <= k);
        for (name, backend) in &backends[1..] {
            let got = backend.top_k(&mut pool, &query).expect("in-memory query");
            assert_matches_agree("top_k", name, &reference, &got);
        }
    }

    #[test]
    fn dstq_agrees_across_every_index_and_divergence(
        tuples in dataset_strategy(CATS, 60),
        q in uda_strategy(CATS),
        radius in 0.05f64..1.5,
    ) {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
        let backends = all_backends(&mut pool, &tuples);
        for dv in [Divergence::L1, Divergence::L2] {
            let query = DstQuery::new(q.clone(), radius, dv);
            let reference = backends[0].1.dstq(&mut pool, &query).expect("in-memory query");
            for (name, backend) in &backends[1..] {
                let got = backend.dstq(&mut pool, &query).expect("in-memory query");
                assert_matches_agree("dstq", name, &reference, &got);
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(32)))]

    // The block posting format is a pure layout change: against the raw
    // one-entry-per-posting layout it must return identical tuples with
    // scores within 1e-9 under every strategy, and its block accounting
    // must balance (every block of every opened list is either decoded
    // or charged as skipped).
    #[test]
    fn block_format_agrees_with_raw_and_accounts_blocks(
        tuples in dataset_strategy(CATS, 60),
        q in uda_strategy(CATS),
        tau in 0.01f64..0.9,
        k in 1usize..15,
    ) {
        check_block_format_differential(&tuples, &q, tau, k);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(32)))]

    // See `check_join_plans_agree` for the property; the body lives in a
    // plain function because `proptest!`'s recursive expansion is
    // token-hungry.
    #[test]
    fn join_plans_agree_across_backends(
        tuples in dataset_strategy(CATS, 40),
        outer in outer_strategy(CATS, 10),
        spec in spec_strategy(),
        threads in 1usize..4,
    ) {
        check_join_plans_agree(&tuples, &outer, spec, threads);
    }
}

// --- Sharded service scatter-gather differential ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    // The multi-tenant service's sharding is pure routing: for 1–4
    // shards and 1–3 tenants (alternating inverted and PDR-tree
    // backends), PETQ, top-k, DSTQ, and the PEJ-top-k join must gather
    // into exactly the unsharded (scan-baseline) answer, and a PETQ's
    // merged counters must equal the sum of probing each shard's index
    // directly — the partition, the merge, and nothing else.
    #[test]
    fn sharded_service_agrees_with_single_shard_plan(
        tuples in dataset_strategy(CATS, 60),
        outer in outer_strategy(CATS, 8),
        q in uda_strategy(CATS),
        tau in 0.01f64..0.9,
        k in 1usize..12,
        shards in 1usize..=4,
        tenants in 1usize..=3,
        threads in 1usize..3,
    ) {
        check_sharded_service(&tuples, &outer, &q, (tau, k), (shards, tenants, threads));
    }
}

fn check_sharded_service(
    tuples: &[(u64, Uda)],
    outer: &[(u64, Uda)],
    q: &Uda,
    (tau, k): (f64, usize),
    (shards, tenants, threads): (usize, usize, usize),
) {
    use uncat::service::{shard_of, QueryService, ServiceConfig, TenantConfig};

    let domain = Domain::anonymous(CATS);
    let service = QueryService::new(InMemoryDisk::shared(), ServiceConfig::default());
    for t in 0..tenants {
        let config = TenantConfig::new(format!("t{t}"));
        if t % 2 == 0 {
            service
                .register_tenant_inverted(config, &domain, tuples, shards, SearchStrategy::Auto)
                .expect("in-memory build");
        } else {
            service
                .register_tenant_pdr(config, &domain, tuples, shards)
                .expect("in-memory build");
        }
    }
    service.set_scatter_threads(threads);

    // Unsharded reference answers from the scan baseline.
    let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
    let scan = ScanBaseline::build(&mut pool, tuples.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");
    let petq = EqQuery::new(q.clone(), tau);
    let topk = TopKQuery::new(q.clone(), k);
    let dstq = DstQuery::new(q.clone(), 1.0, Divergence::L1);
    let want_petq = scan.petq(&mut pool, &petq).expect("in-memory query");
    let want_topk = scan.top_k(&mut pool, &topk).expect("in-memory query");
    let want_dstq = scan.dstq(&mut pool, &dstq).expect("in-memory query");
    let spec = JoinSpec::PejTopK { k };
    let want_join = block_join_metered(outer, &scan, &mut pool, spec, &mut QueryMetrics::new())
        .expect("in-memory join");

    for t in 0..tenants {
        let name = format!("t{t}");
        let got = service.petq(&name, &petq).expect("in-memory query");
        assert_matches_agree("service/petq", &name, &want_petq, &got.matches);
        let got_topk = service.top_k(&name, &topk).expect("in-memory query");
        assert_matches_agree("service/top_k", &name, &want_topk, &got_topk.matches);
        let got_dstq = service.dstq(&name, &dstq).expect("in-memory query");
        assert_matches_agree("service/dstq", &name, &want_dstq, &got_dstq.matches);
        let got_join = service
            .join(&name, outer, spec, threads)
            .expect("in-memory join");
        assert_pairs_agree("service/join", &name, &want_join, &got_join.pairs);

        // Merged PETQ counters are exactly the sum of probing the same
        // partition's shard indexes directly (inverted tenants only;
        // the I/O block rides the service's shared pool and is compared
        // by the service tests instead).
        if t % 2 == 0 {
            let mut manual = QueryMetrics::new();
            let mut mpool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
            for s in 0..shards {
                let part: Vec<(u64, &Uda)> = tuples
                    .iter()
                    .filter(|(tid, _)| shard_of(*tid, shards) == s)
                    .map(|(tid, u)| (*tid, u))
                    .collect();
                let idx = InvertedIndex::build(domain.clone(), &mut mpool, part.iter().copied())
                    .expect("in-memory build");
                let shard = InvertedBackend::with_strategy(idx, SearchStrategy::Auto);
                let mut m = QueryMetrics::new();
                shard
                    .petq_metered(&mut mpool, &petq, &mut m)
                    .expect("in-memory query");
                manual.merge(&m);
            }
            let mut got_counters = got.metrics;
            got_counters.io = IoStats::default();
            assert_eq!(
                got_counters, manual,
                "{name}: the service merge must equal the per-shard sum"
            );
        }
    }
}

// --- Interleaved mutation / query differential ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(16)))]

    // A mutated index must be indistinguishable from one rebuilt from
    // scratch. Both durable backends apply the same interleaved schedule
    // of inserts, updates, and deletes (with group commit batching and
    // auto-checkpoints firing mid-schedule); at every query point and
    // after a final crash-free reopen they must answer PETQ, top-k, and
    // DSTQ identically to a scan baseline and freshly built indexes over
    // the evolved model.
    #[test]
    fn interleaved_mutations_agree_with_rebuilt_indexes(
        initial in dataset_strategy(CATS, 30),
        ops in prop::collection::vec(
            (0u8..4, uda_strategy(CATS), 0u64..1 << 32),
            1..=24,
        ),
        queries in prop::collection::vec(
            (uda_strategy(CATS), 0.01f64..0.5, 1usize..12),
            1..=3,
        ),
    ) {
        check_interleaved_mutations(&initial, &ops, &queries);
    }
}

/// A concrete mutation, already validated against the model it was
/// derived from.
enum MutOp {
    Insert(u64, Uda),
    Update(u64, Uda),
    Delete(u64),
}

/// Interpret an abstract `(selector, uda, pick)` step against the
/// current model: inserts get fresh tids, updates and deletes target
/// existing tuples (falling back to insert when the model is empty).
fn concretize(
    (sel, uda, pick): &(u8, Uda, u64),
    model: &BTreeMap<u64, Uda>,
    next_tid: &mut u64,
) -> MutOp {
    let existing = |pick: u64| -> Option<u64> {
        if model.is_empty() {
            None
        } else {
            model
                .keys()
                .nth((pick % model.len() as u64) as usize)
                .copied()
        }
    };
    match sel {
        3 => match existing(*pick) {
            Some(tid) => MutOp::Delete(tid),
            None => {
                *next_tid += 1;
                MutOp::Insert(*next_tid - 1, uda.clone())
            }
        },
        2 => match existing(*pick) {
            Some(tid) => MutOp::Update(tid, uda.clone()),
            None => {
                *next_tid += 1;
                MutOp::Insert(*next_tid - 1, uda.clone())
            }
        },
        _ => {
            *next_tid += 1;
            MutOp::Insert(*next_tid - 1, uda.clone())
        }
    }
}

fn apply_mut<B: MutableBackend>(idx: &mut DurableIndex<B>, op: &MutOp) {
    match op {
        MutOp::Insert(tid, u) => idx.insert(*tid, u).expect("in-memory insert"),
        MutOp::Update(tid, u) => {
            idx.update(*tid, u).expect("in-memory update");
        }
        MutOp::Delete(tid) => {
            idx.delete(*tid).expect("in-memory delete");
        }
    }
}

/// Assert `got` matches the reference answers for one query triple.
fn assert_query_point(
    what: &str,
    reference: &(Vec<Match>, Vec<Match>, Vec<Match>),
    got: &(Vec<Match>, Vec<Match>, Vec<Match>),
) {
    assert_matches_agree("interleaved/petq", what, &reference.0, &got.0);
    assert_matches_agree("interleaved/top_k", what, &reference.1, &got.1);
    assert_matches_agree("interleaved/dstq", what, &reference.2, &got.2);
}

/// PETQ + top-k + DSTQ answers for one `(uda, tau, k)` probe against an
/// arbitrary backend.
fn answers(
    backend: &dyn UncertainIndex,
    pool: &mut BufferPool,
    (q, tau, k): &(Uda, f64, usize),
) -> (Vec<Match>, Vec<Match>, Vec<Match>) {
    (
        backend
            .petq(pool, &EqQuery::new(q.clone(), *tau))
            .expect("in-memory query"),
        backend
            .top_k(pool, &TopKQuery::new(q.clone(), *k))
            .expect("in-memory query"),
        backend
            .dstq(pool, &DstQuery::new(q.clone(), 1.0, Divergence::L1))
            .expect("in-memory query"),
    )
}

/// Same three answers from a durable index (which queries through its
/// own buffer pool).
fn durable_answers<B: MutableBackend>(
    idx: &mut DurableIndex<B>,
    (q, tau, k): &(Uda, f64, usize),
) -> (Vec<Match>, Vec<Match>, Vec<Match>) {
    (
        idx.petq(&EqQuery::new(q.clone(), *tau))
            .expect("in-memory query"),
        idx.top_k(&TopKQuery::new(q.clone(), *k))
            .expect("in-memory query"),
        idx.dstq(&DstQuery::new(q.clone(), 1.0, Divergence::L1))
            .expect("in-memory query"),
    )
}

/// Compare both durable indexes against a scan baseline and freshly
/// rebuilt indexes over the model, across every probe and (for the
/// inverted index) every search strategy.
fn compare_against_model(
    what: &str,
    inv: &mut DurableIndex<InvertedBackend>,
    pdr: &mut DurableIndex<PdrTree>,
    model: &BTreeMap<u64, Uda>,
    queries: &[(Uda, f64, usize)],
) {
    let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
    let scan = ScanBaseline::build(&mut pool, model.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");
    let rebuilt_inv = InvertedBackend::new(
        InvertedIndex::build(
            Domain::anonymous(CATS),
            &mut pool,
            model.iter().map(|(t, u)| (*t, u)),
        )
        .expect("in-memory build"),
    );
    let rebuilt_pdr = PdrTree::build(
        Domain::anonymous(CATS),
        PdrConfig::default(),
        &mut pool,
        model.iter().map(|(t, u)| (*t, u)),
    )
    .expect("in-memory build");

    for (qi, probe) in queries.iter().enumerate() {
        let reference = answers(&scan, &mut pool, probe);
        assert_query_point(
            &format!("{what}/q{qi}/rebuilt-inverted"),
            &reference,
            &answers(&rebuilt_inv, &mut pool, probe),
        );
        assert_query_point(
            &format!("{what}/q{qi}/rebuilt-pdr"),
            &reference,
            &answers(&rebuilt_pdr, &mut pool, probe),
        );
        // Auto rides along: its statistics were last refreshed at
        // build/checkpoint time and are stale for any mutations since —
        // staleness may change the *plan* (or trigger the adaptive
        // fallback) but must never change the answers.
        for strategy in SearchStrategy::ALL
            .into_iter()
            .chain([SearchStrategy::Auto])
        {
            inv.parts_mut().0.strategy = strategy;
            assert_query_point(
                &format!("{what}/q{qi}/mutated-inverted/{}", strategy.name()),
                &reference,
                &durable_answers(inv, probe),
            );
        }
        assert_query_point(
            &format!("{what}/q{qi}/mutated-pdr"),
            &reference,
            &durable_answers(pdr, probe),
        );
    }
}

fn check_interleaved_mutations(
    initial: &[(u64, Uda)],
    ops: &[(u8, Uda, u64)],
    queries: &[(Uda, f64, usize)],
) {
    // Group commit and a short auto-checkpoint interval so batching and
    // log folding both fire inside the schedule.
    let config = DurableConfig {
        group_commit: 2,
        pool_frames: 256,
        checkpoint_every: 5,
        ..DurableConfig::default()
    };
    let mut model: BTreeMap<u64, Uda> = initial.iter().cloned().collect();
    let mut next_tid = initial.len() as u64;

    let inv_storage = DurableStorage::in_memory();
    let mut inv = DurableIndex::create(inv_storage.clone(), config, |pool| {
        Ok(InvertedBackend::new(InvertedIndex::build(
            Domain::anonymous(CATS),
            pool,
            initial.iter().map(|(t, u)| (*t, u)),
        )?))
    })
    .expect("create durable inverted index");
    let pdr_storage = DurableStorage::in_memory();
    let mut pdr = DurableIndex::create(pdr_storage.clone(), config, |pool| {
        PdrTree::build(
            Domain::anonymous(CATS),
            PdrConfig::default(),
            pool,
            initial.iter().map(|(t, u)| (*t, u)),
        )
    })
    .expect("create durable pdr-tree");

    for (i, step) in ops.iter().enumerate() {
        let op = concretize(step, &model, &mut next_tid);
        apply_mut(&mut inv, &op);
        apply_mut(&mut pdr, &op);
        match op {
            MutOp::Insert(tid, u) | MutOp::Update(tid, u) => {
                model.insert(tid, u);
            }
            MutOp::Delete(tid) => {
                model.remove(&tid);
            }
        }
        if i % 4 == 3 {
            compare_against_model(&format!("step_{i}"), &mut inv, &mut pdr, &model, queries);
        }
    }
    compare_against_model("final", &mut inv, &mut pdr, &model, queries);

    // Structural invariants still hold on the mutated indexes.
    let (backend, pool) = inv.parts_mut();
    backend
        .index
        .check_invariants(pool)
        .expect("inverted invariants");
    let (backend, pool) = pdr.parts_mut();
    backend.check_invariants(pool).expect("pdr-tree invariants");

    // A crash-free reopen (snapshot + WAL replay) reproduces the same
    // state on both backends.
    drop(inv);
    drop(pdr);
    let (mut inv, _) =
        DurableIndex::<InvertedBackend>::open(inv_storage, config).expect("clean reopen");
    let (mut pdr, _) = DurableIndex::<PdrTree>::open(pdr_storage, config).expect("clean reopen");
    compare_against_model("reopened", &mut inv, &mut pdr, &model, queries);
}

fn check_block_format_differential(tuples: &[(u64, Uda)], q: &Uda, tau: f64, k: usize) {
    let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
    let raw = InvertedIndex::build_with_format(
        Domain::anonymous(CATS),
        &mut pool,
        tuples.iter().map(|(t, u)| (*t, u)),
        PostingFormat::Raw,
    )
    .expect("in-memory build");
    let blocks = InvertedIndex::build_with_format(
        Domain::anonymous(CATS),
        &mut pool,
        tuples.iter().map(|(t, u)| (*t, u)),
        PostingFormat::Blocks,
    )
    .expect("in-memory build");
    assert_eq!(raw.format(), PostingFormat::Raw);
    assert_eq!(blocks.format(), PostingFormat::Blocks);

    let query = EqQuery::new(q.clone(), tau);
    for strategy in SearchStrategy::ALL
        .into_iter()
        .chain([SearchStrategy::Auto])
    {
        let reference = raw
            .petq(&mut pool, &query, strategy)
            .expect("in-memory query");
        let got = blocks
            .petq(&mut pool, &query, strategy)
            .expect("in-memory query");
        assert_matches_agree(
            "format/petq",
            &format!("blocks/{}", strategy.name()),
            &reference,
            &got,
        );
    }
    let topk = TopKQuery::new(q.clone(), k);
    let reference = raw.top_k(&mut pool, &topk).expect("in-memory query");
    let got = blocks.top_k(&mut pool, &topk).expect("in-memory query");
    assert_matches_agree("format/top_k", "blocks", &reference, &got);

    // Block accounting: a full-support query opens every posting list,
    // so across any strategy the decoded + skipped blocks must add up to
    // exactly the index's block count — no block is both, none vanishes.
    let mut full = uncat::core::UdaBuilder::new();
    for c in 0..CATS {
        full.push(CatId(c), 0.01).expect("valid probability");
    }
    let full = full.finish_normalized().expect("non-empty");
    let total_blocks = blocks.stats().posting_blocks;
    for strategy in SearchStrategy::ALL
        .into_iter()
        .chain([SearchStrategy::Auto])
    {
        let mut metrics = QueryMetrics::new();
        blocks
            .petq_metered(
                &mut pool,
                &EqQuery::new(full.clone(), tau),
                strategy,
                &mut metrics,
            )
            .expect("in-memory query");
        let covered = metrics.blocks_decoded + metrics.blocks_skipped;
        if strategy == SearchStrategy::RowPruning {
            // Row pruning legitimately skips whole *lists* (those with
            // `q.p < τ`); their blocks are neither decoded nor skipped.
            assert!(covered <= total_blocks, "row-pruning overcounts blocks");
        } else if strategy == SearchStrategy::Auto {
            // Auto's pick may be row pruning (skips lists, under-covers)
            // and its mid-query fallback re-opens every list (covers the
            // directory at most twice); only those bounds are exact.
            assert!(
                covered <= 2 * total_blocks,
                "auto covers each block at most twice (drain + fallback)"
            );
            if metrics.plan_fallbacks == 0 {
                assert!(covered <= total_blocks, "auto without fallback overcounts");
            }
        } else {
            assert_eq!(
                covered,
                total_blocks,
                "{}: blocks decoded + skipped must cover every opened list",
                strategy.name()
            );
        }
    }
    let mut metrics = QueryMetrics::new();
    blocks
        .top_k_metered(&mut pool, &TopKQuery::new(full, k), &mut metrics)
        .expect("in-memory query");
    assert_eq!(
        metrics.blocks_decoded + metrics.blocks_skipped,
        total_blocks,
        "top_k: blocks decoded + skipped must cover every opened list"
    );
}

fn check_join_plans_agree(
    tuples: &[(u64, Uda)],
    outer: &[(u64, Uda)],
    spec: JoinSpec,
    threads: usize,
) {
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 100);
    let scan = ScanBaseline::build(&mut pool, tuples.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");
    let inv = InvertedBackend::new(
        InvertedIndex::build(
            Domain::anonymous(CATS),
            &mut pool,
            tuples.iter().map(|(t, u)| (*t, u)),
        )
        .expect("in-memory build"),
    );
    let pdr = PdrTree::build(
        Domain::anonymous(CATS),
        PdrConfig::default(),
        &mut pool,
        tuples.iter().map(|(t, u)| (*t, u)),
    )
    .expect("in-memory build");
    pool.flush().expect("in-memory flush");

    let reference = block_join_metered(outer, &scan, &mut pool, spec, &mut QueryMetrics::new())
        .expect("in-memory join");

    let seq = index_join(outer, &inv, &mut pool, spec).expect("in-memory join");
    assert_pairs_agree("join", "index/inverted", &reference, &seq.pairs);
    let got = index_join_metered(outer, &pdr, &mut pool, spec, &mut QueryMetrics::new())
        .expect("in-memory join");
    assert_pairs_agree("join", "index/pdr-tree", &reference, &got);

    let par = parallel_join(
        outer,
        &inv,
        &store,
        &BatchPools::private(100),
        spec,
        threads,
    )
    .expect("in-memory join");
    assert_pairs_agree("join", "parallel/inverted", &reference, &par.pairs);

    if !matches!(spec, JoinSpec::PejTopK { .. }) {
        // PEJ-top-k probe work depends on floor timing; threshold joins
        // must match counter for counter.
        let mut par_counters = par.metrics;
        let mut seq_counters = seq.metrics;
        assert_eq!(
            par_counters.io.logical_reads,
            seq_counters.io.logical_reads,
            "{}: logical accesses are partition-independent",
            spec.name()
        );
        par_counters.io = IoStats::default();
        seq_counters.io = IoStats::default();
        assert_eq!(
            par_counters,
            seq_counters,
            "{}: counters must sum exactly",
            spec.name()
        );
    }
}
