//! Golden-bytes tests pinning `docs/FORMAT.md` to the implementation.
//!
//! Every assertion here spells out exact wire bytes. If one of these
//! tests fails, either the change broke an on-disk format (old files
//! would no longer load) or the format was deliberately revised — in
//! which case `docs/FORMAT.md` and these goldens must change in the
//! same commit, together with a version bump of the affected artifact.

use std::fs;
use std::path::PathBuf;

use uncat::core::{codec, CatId, Domain, Uda, UdaBuilder};
use uncat::inverted::{
    decode_block, dequantize, encode_block, quantize_up, InvertedIndex, PostingFormat, PROB_SCALE,
};
use uncat::query::{split_snapshot, LogRecord};
use uncat::storage::crc::crc32c;
use uncat::storage::{
    snapshot, BufferPool, InMemoryDisk, LogDevice, MemLog, SharedLog, Wal, WalConfig,
};

/// Scratch directory removed on drop (no tempfile dependency).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("uncat-format-{tag}-{}", std::process::id()));
        fs::create_dir_all(&p).expect("create temp dir");
        TempDir(p)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Little cursor for hand-walking snapshot blobs in the header tests.
struct Walk<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Walk<'a> {
    fn new(buf: &'a [u8]) -> Walk<'a> {
        Walk { buf, at: 0 }
    }
    fn bytes(&mut self, n: usize) -> &'a [u8] {
        let b = &self.buf[self.at..self.at + n];
        self.at += n;
        b
    }
    fn u8(&mut self) -> u8 {
        self.bytes(1)[0]
    }
    fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.bytes(2).try_into().unwrap())
    }
    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.bytes(4).try_into().unwrap())
    }
    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.bytes(8).try_into().unwrap())
    }
    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

fn uda(entries: &[(u32, f32)]) -> Uda {
    let mut b = UdaBuilder::new();
    for &(c, p) in entries {
        b.push(CatId(c), p).expect("valid prob");
    }
    b.finish().expect("valid uda")
}

// ---------------------------------------------------------------------------
// CRC-32C (Castagnoli) — the checksum under every framed artifact.
// ---------------------------------------------------------------------------

#[test]
fn crc32c_reference_vectors() {
    // RFC 3720 §B.4 check values.
    assert_eq!(crc32c(b""), 0);
    assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    // Values quoted in the FORMAT.md worked examples.
    assert_eq!(crc32c(b"format-payload"), 0xE152_B3B3);
    assert_eq!(crc32c(b"hello"), 0x9A71_BB4C);
}

// ---------------------------------------------------------------------------
// Snapshot file protocol (`USNB`).
// ---------------------------------------------------------------------------

#[test]
fn snapshot_file_protocol_golden_bytes() {
    let dir = TempDir::new("usnb");
    let path = dir.path("idx.snap");
    let payload = b"format-payload";
    snapshot::commit(&path, payload).expect("commit");

    let raw = fs::read(&path).expect("read back");
    let mut want = Vec::new();
    want.extend_from_slice(b"USNB"); // file magic
    want.extend_from_slice(&1u32.to_le_bytes()); // file version
    want.extend_from_slice(&(payload.len() as u64).to_le_bytes()); // payload length
    want.extend_from_slice(&crc32c(payload).to_le_bytes()); // payload checksum
    want.extend_from_slice(payload);
    assert_eq!(raw, want, "USNB header must be 20 bytes, all fields LE");

    assert_eq!(snapshot::load(&path).expect("load"), payload);

    // A single flipped payload bit must be caught by the checksum.
    let mut torn = raw.clone();
    *torn.last_mut().unwrap() ^= 1;
    fs::write(&path, &torn).expect("write torn");
    assert!(
        snapshot::load(&path).is_err(),
        "corruption must be detected"
    );
}

// ---------------------------------------------------------------------------
// Write-ahead log frames (`WRC1`).
// ---------------------------------------------------------------------------

#[test]
fn wal_frame_golden_bytes() {
    let dev = MemLog::shared();
    let shared: SharedLog = dev.clone();
    let mut wal = Wal::new(shared, WalConfig { group_commit: 1 });
    wal.append(b"hello").expect("append");
    wal.append(b"").expect("append empty");

    let raw = dev.read_all().expect("read device");
    let mut want = Vec::new();
    for payload in [&b"hello"[..], &b""[..]] {
        want.extend_from_slice(b"WRC1"); // frame magic (u32 LE)
        want.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        want.extend_from_slice(&crc32c(payload).to_le_bytes());
        want.extend_from_slice(payload);
    }
    assert_eq!(
        raw, want,
        "WAL frame: magic ‖ len ‖ crc32c ‖ payload, all LE"
    );
}

// ---------------------------------------------------------------------------
// Logical log records (the WAL payloads).
// ---------------------------------------------------------------------------

#[test]
fn log_record_golden_bytes() {
    let begin = LogRecord::BeginEpoch(7).encode();
    assert_eq!(begin, [&[0u8][..], &7u64.to_le_bytes()].concat());

    let delete = LogRecord::Delete {
        tid: 0x0102_0304_0506_0708,
    }
    .encode();
    assert_eq!(
        delete,
        [&[3u8][..], &0x0102_0304_0506_0708u64.to_le_bytes()].concat()
    );

    let u = uda(&[(2, 0.25), (7, 0.75)]);
    let body = codec::encode_to_vec(&u);
    let insert = LogRecord::Insert {
        tid: 3,
        uda: u.clone(),
    }
    .encode();
    assert_eq!(insert, [&[1u8][..], &3u64.to_le_bytes(), &body].concat());
    let update = LogRecord::Update { tid: 3, uda: u }.encode();
    assert_eq!(update, [&[2u8][..], &3u64.to_le_bytes(), &body].concat());

    // Every encoding round-trips through decode.
    for rec in [begin, delete, insert, update] {
        let back = LogRecord::decode(&rec).expect("decode");
        assert_eq!(back.encode(), rec);
    }
}

// ---------------------------------------------------------------------------
// UDA codec (tuple payloads inside heap records and log records).
// ---------------------------------------------------------------------------

#[test]
fn uda_codec_golden_bytes() {
    let u = uda(&[(2, 0.25), (7, 0.75)]);
    let got = codec::encode_to_vec(&u);
    let mut want = Vec::new();
    want.extend_from_slice(&2u16.to_le_bytes()); // entry count
    want.extend_from_slice(&2u32.to_le_bytes()); // cat 2
    want.extend_from_slice(&0.25f32.to_le_bytes());
    want.extend_from_slice(&7u32.to_le_bytes()); // cat 7
    want.extend_from_slice(&0.75f32.to_le_bytes());
    assert_eq!(
        got, want,
        "u16 count ‖ count × (u32 cat ‖ f32 prob), all LE"
    );
    assert_eq!(codec::encoded_len(&u), want.len());
    let (back, used) = codec::decode(&got).expect("decode");
    assert_eq!(used, got.len());
    assert_eq!(codec::encode_to_vec(&back), got);
}

// ---------------------------------------------------------------------------
// Durable-index snapshot wrapper (`UDX1`).
// ---------------------------------------------------------------------------

#[test]
fn udx1_wrapper_golden_bytes() {
    let mut blob = Vec::new();
    blob.extend_from_slice(b"UDX1");
    blob.extend_from_slice(&42u64.to_le_bytes());
    blob.extend_from_slice(b"inner-snapshot");
    let (epoch, inner) = split_snapshot(&blob).expect("split");
    assert_eq!(epoch, 42);
    assert_eq!(inner, b"inner-snapshot");

    assert!(split_snapshot(b"UDX2aaaaaaaainner").is_err(), "bad magic");
    assert!(split_snapshot(b"UDX1abc").is_err(), "truncated epoch");
}

// ---------------------------------------------------------------------------
// Compressed posting block payload.
// ---------------------------------------------------------------------------

#[test]
fn block_payload_golden_bytes() {
    // Stream order (descending p): (tid 7, 0.75), (tid 2, 0.25).
    // Wire order is ascending tid: 2 then 7 (delta 5).
    let got = encode_block(&[(7, 0.75), (2, 0.25)]);
    let want = vec![
        0x02, 0x00, // u16 count = 2
        0x02, // varint tid 2 (first tid is absolute)
        0x05, // varint delta 5 (tid 7)
        0x00, 0x00, 0x80, 0x3E, // f32 0.25 LE (prob of tid 2)
        0x00, 0x00, 0x40, 0x3F, // f32 0.75 LE (prob of tid 7)
    ];
    assert_eq!(got, want);
    // decode returns stream order: descending p, ties ascending tid.
    assert_eq!(
        decode_block(&got).expect("decode"),
        vec![(7, 0.75), (2, 0.25)]
    );

    // Multi-byte varint: 300 = 0b10_0101100 → 0xAC 0x02 (LEB128).
    let got = encode_block(&[(300, 0.5)]);
    assert_eq!(got, vec![0x01, 0x00, 0xAC, 0x02, 0x00, 0x00, 0x00, 0x3F]);

    // Truncated payloads and trailing garbage are rejected, not misread.
    assert!(decode_block(&want[..want.len() - 1]).is_err());
    assert!(decode_block(&[&want[..], &[0u8][..]].concat()).is_err());
}

#[test]
fn block_max_quantization_golden_values() {
    assert_eq!(PROB_SCALE, 65_535);
    assert_eq!(quantize_up(1.0), 65_535);
    assert_eq!(quantize_up(0.5), 32_768); // ceil(0.5 · 65535) = 32768
    assert_eq!(quantize_up(0.25), 16_384); // ceil(0.25 · 65535) = 16384
                                           // The defining invariant: dequantized bound dominates the true prob.
    for q in [(0.5f32, 32_768u16), (0.25, 16_384), (1.0, 65_535)] {
        assert!(dequantize(q.1) >= q.0 as f64);
    }
}

// ---------------------------------------------------------------------------
// Inverted-index metadata snapshots (`UIV1` / `UIV2`).
// ---------------------------------------------------------------------------

/// Walk the shared store-parts prefix (after the magic): domain, heap
/// page list, record count, rid map. Returns the heap record count.
fn walk_store_parts(w: &mut Walk<'_>, domain_size: u32, tuples: &[(u64, Uda)]) {
    assert_eq!(w.u8(), 0, "anonymous domain tag");
    assert_eq!(w.u32(), domain_size, "domain cardinality");
    let heap_pages = w.u32();
    assert_eq!(heap_pages, 1, "one tuple fits one heap page");
    for _ in 0..heap_pages {
        w.u64(); // page id
    }
    assert_eq!(w.u64(), tuples.len() as u64, "heap record count");
    assert_eq!(w.u64(), tuples.len() as u64, "rid map entry count");
    for &(tid, _) in tuples {
        assert_eq!(w.u64(), tid, "rid map tuple id");
        w.u64(); // record page
        w.u16(); // record slot
    }
}

#[test]
fn uiv1_snapshot_header_walk() {
    let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 64);
    let tuples = vec![(9u64, uda(&[(1, 0.75), (3, 0.25)]))];
    let idx = InvertedIndex::build_with_format(
        Domain::anonymous(4),
        &mut pool,
        tuples.iter().map(|(t, u)| (*t, u)),
        PostingFormat::Raw,
    )
    .expect("build raw");

    let blob = idx.snapshot();
    let mut w = Walk::new(&blob);
    assert_eq!(w.bytes(4), b"UIV1");
    walk_store_parts(&mut w, 4, &tuples);
    // Posting map: u32 list count, then per list cat ‖ root pid ‖ len ‖ depth.
    assert_eq!(w.u32(), 2, "one posting list per category with mass");
    for want_cat in [1u32, 3] {
        assert_eq!(w.u32(), want_cat, "lists ordered by category id");
        w.u64(); // tree root page
        assert_eq!(w.u64(), 1, "one posting per list");
        assert_eq!(w.u32(), 1, "single-node tree has depth 1");
    }
    assert!(w.done(), "no trailing bytes");
}

#[test]
fn uiv2_snapshot_header_walk() {
    let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 64);
    let tuples = vec![(9u64, uda(&[(1, 0.75), (3, 0.25)]))];
    let idx = InvertedIndex::build_with_format(
        Domain::anonymous(4),
        &mut pool,
        tuples.iter().map(|(t, u)| (*t, u)),
        PostingFormat::Blocks,
    )
    .expect("build blocks");

    let blob = idx.snapshot();
    let mut w = Walk::new(&blob);
    assert_eq!(w.bytes(4), b"UIV2");
    walk_store_parts(&mut w, 4, &tuples);
    // Block-heap store parts (payload blobs live in their own heap).
    let block_pages = w.u32();
    assert_eq!(block_pages, 1, "two tiny payloads fit one block page");
    for _ in 0..block_pages {
        w.u64();
    }
    assert_eq!(w.u64(), 2, "one payload record per block");
    // Posting map: u32 list count, then per list the block directory.
    assert_eq!(w.u32(), 2, "one posting list per category with mass");
    for (want_cat, p) in [(1u32, 0.75f32), (3, 0.25)] {
        assert_eq!(w.u32(), want_cat, "lists ordered by category id");
        assert_eq!(w.u64(), 1, "one posting in this list");
        assert_eq!(w.u32(), 1, "one block in this list");
        // Separator = the 8-byte posting key f32_desc(p) ‖ u32_be(tid),
        // read back as a big-endian u64.
        let want_sep = ((!p.to_bits()) as u64) << 32 | 9;
        assert_eq!(w.u64(), want_sep, "exact separator key");
        assert_eq!(w.u16(), 1, "block entry count");
        assert_eq!(w.u16(), quantize_up(p), "quantized-up block max");
        w.u64(); // payload record page
        w.u16(); // payload record slot
    }
    // Cost-statistics section (docs/FORMAT.md §10): global counts, then
    // one entry per posting list with its length, block count, max
    // probability, and two 16-bucket histograms.
    assert_eq!(w.u64(), 1, "stats: tuple count");
    assert_eq!(w.u64(), 1, "stats: heap page count");
    assert_eq!(w.u64(), 1, "stats: block page count");
    assert_eq!(w.u32(), 2, "stats: one entry per posting list");
    for (want_cat, p) in [(1u32, 0.75f32), (3, 0.25)] {
        assert_eq!(w.u32(), want_cat, "stats entries ordered by category");
        assert_eq!(w.u64(), 1, "stats: list length");
        assert_eq!(w.u32(), 1, "stats: block count");
        assert_eq!(w.u16(), quantize_up(p), "stats: list max probability");
        let block_hist: u32 = (0..16).map(|_| w.u32()).sum();
        assert_eq!(block_hist, 1, "one block across the block histogram");
        let entry_hist: u64 = (0..16).map(|_| w.u64()).sum();
        assert_eq!(entry_hist, 1, "one posting across the entry histogram");
    }
    assert!(w.done(), "no trailing bytes");

    // The walked blob is exactly what open() accepts.
    let back = InvertedIndex::open(&blob).expect("reopen");
    assert_eq!(back.format(), PostingFormat::Blocks);
}
