//! Cross-crate structural invariants of the latency tracing layer
//! (`uncat_storage::trace`, DESIGN.md §6g).
//!
//! Everything here is pinned to [`FakeClock`] or to pure histogram
//! arithmetic: tier-1 asserts span-tree *structure* and histogram
//! *algebra*, never real wall-clock magnitudes.

#![recursion_limit = "1024"]

use std::sync::Arc;

use proptest::prelude::*;
use uncat::core::query::{EqQuery, TopKQuery};
use uncat::core::{CatId, Domain, Uda};
use uncat::inverted::{InvertedIndex, Strategy};
use uncat::query::parallel::{petq_batch_traced, top_k_batch_traced};
use uncat::query::{batch_trace, BatchPools, InvertedBackend, UncertainIndex};
use uncat::storage::trace::{Clock, FakeClock, LatencyHistogram, Phase, Tracer};
use uncat::storage::{BufferPool, InMemoryDisk, QueryMetrics, SharedStore};

fn uda(pairs: &[(u32, f32)]) -> Uda {
    Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
}

fn seeded_dataset(n: u64) -> (Domain, Vec<(u64, Uda)>) {
    let domain = Domain::anonymous(11);
    let data = (0..n)
        .map(|i| {
            let c = (i % 11) as u32;
            let p = if i % 3 == 0 { 0.8 } else { 0.3 };
            (i, uda(&[(c, p), ((c + 4) % 11, 1.0 - p)]))
        })
        .collect();
    (domain, data)
}

fn build(n: u64) -> (Domain, InvertedIndex, SharedStore) {
    let (domain, data) = seeded_dataset(n);
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 256);
    let idx =
        InvertedIndex::build(domain.clone(), &mut pool, data.iter().map(|(t, u)| (*t, u))).unwrap();
    pool.flush().unwrap();
    (domain, idx, store)
}

/// Run one traced PETQ on a fresh pool with an auto-advancing fake
/// clock; returns (matches, trace).
fn traced_petq(
    backend: &InvertedBackend,
    store: &SharedStore,
    query: &EqQuery,
) -> (
    Vec<uncat::core::query::Match>,
    uncat::storage::trace::QueryTrace,
) {
    let mut pool = BufferPool::with_capacity(store.clone(), 100);
    pool.set_tracer(Tracer::enabled(Arc::new(FakeClock::auto(7))));
    let root = pool.trace_begin(Phase::Query);
    let mut m = QueryMetrics::new();
    let matches = backend.petq_metered(&mut pool, query, &mut m).unwrap();
    pool.trace_end(root);
    let trace = pool.take_trace().expect("tracer was installed");
    (matches, trace)
}

#[test]
fn fake_clock_span_tree_is_nested_and_deterministic() {
    let query = EqQuery::new(uda(&[(3, 1.0)]), 0.5);
    for strategy in Strategy::ALL {
        let (_, idx, store) = build(600);
        let backend = InvertedBackend::with_strategy(idx, strategy);
        let (matches, trace) = traced_petq(&backend, &store, &query);
        assert!(!matches.is_empty(), "{strategy:?} found nothing");

        // Exactly one root, and it is the `query` phase.
        let roots: Vec<_> = trace.spans.iter().filter(|s| s.is_root()).collect();
        assert_eq!(roots.len(), 1, "{strategy:?}: one root span");
        assert_eq!(roots[0].phase, Phase::Query);
        assert!(
            trace.spans.len() >= 2,
            "{strategy:?}: search phases recorded under the root"
        );

        // Every child nests strictly inside its parent (the auto clock
        // ticks on each reading, so closed intervals nest strictly).
        for (i, s) in trace.spans.iter().enumerate() {
            if s.is_root() {
                continue;
            }
            let p = &trace.spans[s.parent as usize];
            assert!(
                s.start_ns >= p.start_ns && s.start_ns + s.dur_ns <= p.start_ns + p.dur_ns,
                "{strategy:?}: span {i} ({:?}) escapes its parent ({:?})",
                s.phase,
                p.phase,
            );
        }

        // Self times partition the root total exactly: with one root and
        // properly nested children, Σ self(i) == total.
        let self_sum: u64 = (0..trace.spans.len()).map(|i| trace.self_ns(i)).sum();
        assert_eq!(
            self_sum,
            trace.total_ns(),
            "{strategy:?}: child self-times must partition the root total"
        );

        // Determinism: the same query under the same fake clock yields
        // the identical phase sequence and durations.
        let (_, again) = traced_petq(&backend, &store, &query);
        let shape = |t: &uncat::storage::trace::QueryTrace| -> Vec<(Phase, u32, u64, u64)> {
            t.spans
                .iter()
                .map(|s| (s.phase, s.parent, s.start_ns, s.dur_ns))
                .collect()
        };
        assert_eq!(
            shape(&trace),
            shape(&again),
            "{strategy:?}: not deterministic"
        );
    }
}

#[test]
fn disabled_tracer_yields_no_trace_and_identical_results() {
    let (_, idx, store) = build(400);
    let backend = InvertedBackend::with_strategy(idx, Strategy::Nra);
    let query = EqQuery::new(uda(&[(2, 1.0)]), 0.4);

    let mut plain_pool = BufferPool::with_capacity(store.clone(), 100);
    let mut m = QueryMetrics::new();
    let plain = backend
        .petq_metered(&mut plain_pool, &query, &mut m)
        .unwrap();
    assert!(
        plain_pool.take_trace().is_none(),
        "no tracer installed → no trace"
    );
    assert!(!plain_pool.trace_enabled());

    let (traced, trace) = traced_petq(&backend, &store, &query);
    assert_eq!(plain, traced, "tracing must not change results");
    assert!(trace.total_ns() > 0);
}

#[test]
fn trace_accounts_for_buffer_pool_io() {
    let (_, idx, store) = build(1200);
    let backend = InvertedBackend::with_strategy(idx, Strategy::Brute);
    // Cold fresh pool → the brute scan must fault posting pages in.
    let (_, trace) = traced_petq(&backend, &store, &EqQuery::new(uda(&[(1, 1.0)]), 0.25));
    assert!(
        trace.hist.buffer_read.count() > 0,
        "cold brute scan must record physical reads"
    );
    assert!(
        trace.total_ns() >= trace.hist.io_total_ns(),
        "span tree total ({}) must cover summed buffer-pool I/O time ({})",
        trace.total_ns(),
        trace.hist.io_total_ns(),
    );
}

#[test]
fn batch_trace_merges_worker_traces_exactly() {
    let (_, idx, store) = build(800);
    let backend = InvertedBackend::with_strategy(idx, Strategy::Nra);
    let eqs: Vec<EqQuery> = (0..8)
        .map(|i| EqQuery::new(uda(&[(i % 11, 1.0)]), 0.3))
        .collect();
    let topks: Vec<TopKQuery> = (0..8)
        .map(|i| TopKQuery::new(uda(&[(i % 11, 1.0)]), 5))
        .collect();
    let pools = BatchPools::private(100);
    let clock: Arc<dyn Clock> = Arc::new(FakeClock::auto(3));

    let results = petq_batch_traced(&backend, &store, &pools, &eqs, 3, &clock);
    let more = top_k_batch_traced(&backend, &store, &pools, &topks, 3, &clock);

    for batch in [&results, &more] {
        let merged = batch_trace(batch);
        let ok: Vec<_> = batch.iter().filter_map(|r| r.as_ref().ok()).collect();
        assert_eq!(ok.len(), 8, "all queries succeed");
        // Merging is exact, field-wise addition: counts, sums, and the
        // span population all add up across workers however the batch
        // was scheduled.
        let traces: Vec<_> = ok.iter().map(|o| o.trace.as_ref().unwrap()).collect();
        assert_eq!(
            merged.spans.len(),
            traces.iter().map(|t| t.spans.len()).sum::<usize>()
        );
        assert_eq!(
            merged.total_ns(),
            traces.iter().map(|t| t.total_ns()).sum::<u64>()
        );
        for field in 0..4 {
            let name = merged.hist.named()[field].0;
            assert_eq!(
                merged.hist.named()[field].1.count(),
                traces
                    .iter()
                    .map(|t| t.hist.named()[field].1.count())
                    .sum::<u64>(),
                "histogram {name} count must be additive"
            );
            assert_eq!(
                merged.hist.named()[field].1.sum_ns(),
                traces
                    .iter()
                    .map(|t| t.hist.named()[field].1.sum_ns())
                    .sum::<u64>(),
                "histogram {name} sum must be additive"
            );
        }
    }
}

/// Exact quantile of a sample set under the histogram's rank rule
/// (`rank = ceil(q·n)`, 1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn hist_eq(x: &LatencyHistogram, y: &LatencyHistogram) -> bool {
    x.buckets() == y.buckets()
        && x.count() == y.count()
        && x.sum_ns() == y.sum_ns()
        && x.max_ns() == y.max_ns()
}

/// Upper-edge quantile estimates: never below the exact sample
/// quantile, and less than 2× it (one log₂ bucket of slack); the
/// estimate is also capped by the exact max.
fn check_quantile_bounds(mut samples: Vec<u64>, q: f64) {
    let h = hist_of(&samples);
    samples.sort_unstable();
    let exact = exact_quantile(&samples, q);
    let est = h.quantile_ns(q);
    prop_assert!(est >= exact, "estimate {est} below exact {exact}");
    prop_assert!(
        est <= (2 * exact.max(1)).min(*samples.last().unwrap()).max(exact),
        "estimate {est} overshoots exact {exact} by ≥ 2×"
    );
    prop_assert_eq!(h.max_ns(), *samples.last().unwrap());
    prop_assert_eq!(h.count(), samples.len() as u64);
}

/// Merge is associative and commutative: any grouping/order of
/// per-worker histograms produces the identical batch histogram.
fn check_merge_algebra(a: &[u64], b: &[u64], c: &[u64]) {
    // (a ∪ b) ∪ c == a ∪ (b ∪ c)
    let mut left = hist_of(a);
    left.merge(&hist_of(b));
    left.merge(&hist_of(c));
    let mut right_inner = hist_of(b);
    right_inner.merge(&hist_of(c));
    let mut right = hist_of(a);
    right.merge(&right_inner);
    prop_assert!(hist_eq(&left, &right), "merge is not associative");

    // a ∪ b == b ∪ a
    let mut ab = hist_of(a);
    ab.merge(&hist_of(b));
    let mut ba = hist_of(b);
    ba.merge(&hist_of(a));
    prop_assert!(hist_eq(&ab, &ba), "merge is not commutative");

    // And both equal the histogram of the concatenated samples.
    let mut all = a.to_vec();
    all.extend_from_slice(b);
    let direct = hist_of(&all);
    prop_assert!(hist_eq(&ab, &direct), "merge differs from direct recording");
}

proptest! {
    #[test]
    fn histogram_quantiles_bound_the_exact_value(
        samples in proptest::collection::vec(0u64..=1_000_000_000, 1..200),
        q in 0.01f64..=1.0,
    ) {
        check_quantile_bounds(samples, q);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..=1_000_000_000, 0..50),
        b in proptest::collection::vec(0u64..=1_000_000_000, 0..50),
        c in proptest::collection::vec(0u64..=1_000_000_000, 0..50),
    ) {
        check_merge_algebra(&a, &b, &c);
    }
}
