//! Planner-vs-oracle harness.
//!
//! Three properties pin the cost-based planner to the ground truth of
//! actually running every plan:
//!
//! 1. **Exactness** — whatever plan `Strategy::Auto` (and the
//!    cross-backend [`Planner`]) picks, the results are tid-exact
//!    against the scan baseline. Planning is allowed to be wrong about
//!    cost, never about answers.
//! 2. **Competitiveness** — on statistics that are fresh (collected at
//!    build time, no mutations since), the plan the planner executes
//!    costs at most twice what the per-query best fixed strategy costs
//!    under the scalar cost model, measured on real counters with a
//!    cold buffer pool per run.
//! 3. **Bounded regret** — when statistics are stale enough that the
//!    picked plan overruns its prediction, the adaptive executor
//!    abandons it; the total work (postings scanned, physical reads)
//!    never exceeds running the losing plan to completion *plus* a
//!    cold fallback run.

use proptest::prelude::*;

use uncat::core::query::{EqQuery, Match, TopKQuery};
use uncat::core::{CatId, Domain, Uda, UdaBuilder};
use uncat::datagen::crm;
use uncat::prelude::*;
use uncat::query::{Plan, PlannedBackend, Planner, ScanBaseline, UncertainIndex};
use uncat_inverted::{
    InvertedIndex, Strategy, ENTRIES_PER_PAGE, FALLBACK_BUDGET_FLOOR, OVERRUN_FACTOR,
};
use uncat_pdrtree::{PdrConfig, PdrTree};

/// Cases per property: `default`, or `PROPTEST_CASES` when set (the
/// vendored proptest does not read the variable itself).
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The scalar cost the planner optimizes, applied to *measured*
/// counters: postings scanned plus physical reads at the sequential
/// entries-per-page equivalence (docs/METRICS.md).
fn scalar_cost(m: &QueryMetrics) -> u64 {
    m.postings_scanned + ENTRIES_PER_PAGE * m.io.physical_reads
}

/// Same tuples, same order, scores within 1e-9 of the reference.
fn assert_matches_agree(what: &str, reference: &[Match], got: &[Match]) {
    assert_eq!(
        got.iter().map(|m| m.tid).collect::<Vec<_>>(),
        reference.iter().map(|m| m.tid).collect::<Vec<_>>(),
        "{what}: planned run returned different tuples than scan"
    );
    for (r, g) in reference.iter().zip(got) {
        assert!(
            (r.score - g.score).abs() <= 1e-9,
            "{what}: tuple {} scored {} vs scan's {}",
            g.tid,
            g.score,
            r.score
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    // Property 1: exactness. Auto and the cross-backend planner's pick
    // answer every query identically to the scan baseline on CRM
    // corpora — the datasets the planner was tuned against are not
    // allowed to be the datasets it is correct on by accident, so size,
    // seed, threshold, and probe tuple are all generated.
    #[test]
    fn planned_queries_are_tid_exact_against_scan(
        n in 200usize..1200,
        seed in 0u64..1000,
        tau in 0.05f64..0.6,
        probe in 0usize..1 << 16,
        k in 1usize..20,
    ) {
        check_planned_exactness(n, seed, tau, probe, k);
    }
}

fn check_planned_exactness(n: usize, seed: u64, tau: f64, probe: usize, k: usize) {
    let (domain, data) = crm::crm1(n, seed);
    let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 512);
    let scan =
        ScanBaseline::build(&mut pool, data.iter().map(|(t, u)| (*t, u))).expect("in-memory build");
    let idx = InvertedIndex::build(domain.clone(), &mut pool, data.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");
    let pdr = PdrTree::build(
        domain,
        PdrConfig::default(),
        &mut pool,
        data.iter().map(|(t, u)| (*t, u)),
    )
    .expect("in-memory build");

    let q = data[probe % data.len()].1.clone();
    let eq = EqQuery::new(q.clone(), tau);
    let reference = scan.petq(&mut pool, &eq).expect("in-memory query");

    // The in-index planner: Auto against the scan baseline.
    let auto = idx
        .petq(&mut pool, &eq, Strategy::Auto)
        .expect("in-memory query");
    assert_matches_agree("petq/auto", &reference, &auto);

    // The cross-backend planner: execute exactly the backend it picked.
    let planner = Planner::for_both(&idx, &pdr);
    let run = |plan: &Plan, pool: &mut BufferPool| match plan.backend {
        PlannedBackend::Inverted(s) => idx.petq(pool, &eq, s).expect("in-memory query"),
        PlannedBackend::PdrTree => UncertainIndex::petq(&pdr, pool, &eq).expect("in-memory query"),
        PlannedBackend::Scan => scan.petq(pool, &eq).expect("in-memory query"),
    };
    let plan = planner.plan_petq(&eq);
    assert_matches_agree(
        &format!("petq/planned/{}", plan.backend.name()),
        &reference,
        &run(&plan, &mut pool),
    );

    // Top-k rides along: the planner may route it to either index; both
    // must agree with scan.
    let tk = TopKQuery::new(q, k);
    let reference = scan.top_k(&mut pool, &tk).expect("in-memory query");
    let got = match planner.plan_top_k(&tk).backend {
        PlannedBackend::PdrTree => {
            UncertainIndex::top_k(&pdr, &mut pool, &tk).expect("in-memory query")
        }
        _ => idx.top_k(&mut pool, &tk).expect("in-memory query"),
    };
    assert_matches_agree("top_k/planned", &reference, &got);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(8)))]

    // Property 2: competitiveness. With fresh statistics, the cost Auto
    // actually pays is within 2x of the per-query oracle (the cheapest
    // fixed strategy *for this very query*, measured, cold pool each
    // run). One page of additive slack absorbs the discreteness of
    // page-granular reads on small corpora.
    #[test]
    fn auto_cost_is_within_twice_the_per_query_oracle(
        n in 500usize..2000,
        seed in 0u64..1000,
        tau in 0.05f64..0.6,
        probe in 0usize..1 << 16,
    ) {
        check_cost_vs_oracle(n, seed, tau, probe);
    }
}

fn check_cost_vs_oracle(n: usize, seed: u64, tau: f64, probe: usize) {
    let (domain, data) = crm::crm1(n, seed);
    let store = InMemoryDisk::shared();
    let mut build_pool = BufferPool::with_capacity(store.clone(), 512);
    let idx = InvertedIndex::build(domain, &mut build_pool, data.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");
    build_pool.flush().expect("in-memory flush");
    drop(build_pool); // every measured run below starts cold

    let q = EqQuery::new(data[probe % data.len()].1.clone(), tau);
    let mut oracle = u64::MAX;
    let mut oracle_name = "";
    for strategy in Strategy::ALL {
        let mut pool = BufferPool::with_capacity(store.clone(), 512);
        let mut m = QueryMetrics::new();
        idx.petq_metered(&mut pool, &q, strategy, &mut m)
            .expect("in-memory query");
        if scalar_cost(&m) < oracle {
            oracle = scalar_cost(&m);
            oracle_name = strategy.name();
        }
    }

    let mut pool = BufferPool::with_capacity(store, 512);
    let mut m = QueryMetrics::new();
    idx.petq_metered(&mut pool, &q, Strategy::Auto, &mut m)
        .expect("in-memory query");
    let auto = scalar_cost(&m);
    assert!(
        auto <= 2 * oracle + ENTRIES_PER_PAGE,
        "auto cost {auto} exceeds twice the oracle ({oracle_name}: {oracle}) plus one page"
    );
}

/// Property 3: bounded regret under stale statistics. Statistics are
/// primed on a small corpus, then one posting list is grown far past
/// the overrun budget without a checkpoint — the staleness-by-design
/// case. Auto's pick must overrun, the fallback must fire, and the
/// total work must stay under (losing plan run to completion) + (cold
/// fallback run): abandoning a plan is never worse than stubbornly
/// finishing it and then some.
#[test]
fn adaptive_fallback_work_is_bounded() {
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 1024);
    let (domain, data) = crm::crm1(300, 5);
    let mut idx = InvertedIndex::build(domain, &mut pool, data.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");
    // Prime the statistics: this is what build/checkpoint time does.
    let stale_len = idx.cost_stats().cats.get(&CatId(0)).map_or(0, |c| c.len);

    // Grow category 0 far past any budget the stale statistics allow.
    let mut b = UdaBuilder::new();
    b.push(CatId(0), 1.0).expect("valid probability");
    let heavy = b.finish_normalized().expect("non-empty");
    let grown = 20 * (OVERRUN_FACTOR * stale_len + FALLBACK_BUDGET_FLOOR);
    for i in 0..grown {
        idx.insert(&mut pool, 100_000 + i, &heavy)
            .expect("in-memory insert");
    }
    pool.flush().expect("in-memory flush");
    drop(pool);

    let mut probe = UdaBuilder::new();
    probe.push(CatId(0), 1.0).expect("valid probability");
    let q = EqQuery::new(probe.finish_normalized().expect("non-empty"), 0.1);

    // The (stale) pick, run to completion, and a cold fallback run.
    let (pick, prediction) = idx.plan_petq(&q);
    let budget = OVERRUN_FACTOR * prediction.postings_scanned + FALLBACK_BUDGET_FLOOR;
    let mut lose = QueryMetrics::new();
    let mut pool = BufferPool::with_capacity(store.clone(), 1024);
    let reference = idx
        .petq_metered(&mut pool, &q, pick, &mut lose)
        .expect("in-memory query");
    assert!(
        lose.postings_scanned > budget,
        "the scenario must actually overrun: {} postings vs budget {budget}",
        lose.postings_scanned
    );
    let mut fallback = QueryMetrics::new();
    let mut pool = BufferPool::with_capacity(store.clone(), 1024);
    idx.petq_metered(&mut pool, &q, Strategy::ColumnPruning, &mut fallback)
        .expect("in-memory query");

    let mut auto = QueryMetrics::new();
    let mut pool = BufferPool::with_capacity(store, 1024);
    let got = idx
        .petq_metered(&mut pool, &q, Strategy::Auto, &mut auto)
        .expect("in-memory query");

    assert!(
        auto.plan_fallbacks >= 1,
        "stale statistics past the overrun budget must trigger the fallback"
    );
    assert_matches_agree("petq/auto-after-fallback", &reference, &got);
    assert!(
        auto.postings_scanned <= lose.postings_scanned + fallback.postings_scanned,
        "fallback did more postings work ({}) than losing-to-completion ({}) + cold fallback ({})",
        auto.postings_scanned,
        lose.postings_scanned,
        fallback.postings_scanned
    );
    assert!(
        auto.io.physical_reads <= lose.io.physical_reads + fallback.io.physical_reads,
        "fallback did more physical reads ({}) than losing-to-completion ({}) + cold fallback ({})",
        auto.io.physical_reads,
        lose.io.physical_reads,
        fallback.io.physical_reads
    );
}

/// Sanity anchor for the estimator on a dataset where every prediction
/// is exactly computable by hand: one list, uniform probabilities. The
/// planner must not pick a plan whose *measured* cost exceeds the
/// oracle at all here — there is nothing to be uncertain about.
#[test]
fn planner_is_exactly_optimal_on_a_single_uniform_list() {
    let store = InMemoryDisk::shared();
    let mut build_pool = BufferPool::with_capacity(store.clone(), 256);
    let mut b = UdaBuilder::new();
    b.push(CatId(2), 1.0).expect("valid probability");
    let u: Uda = b.finish_normalized().expect("non-empty");
    let tuples: Vec<(u64, Uda)> = (0..4000).map(|t| (t, u.clone())).collect();
    let idx = InvertedIndex::build(
        Domain::anonymous(8),
        &mut build_pool,
        tuples.iter().map(|(t, v)| (*t, v)),
    )
    .expect("in-memory build");
    build_pool.flush().expect("in-memory flush");
    drop(build_pool);

    let q = EqQuery::new(u, 0.4);
    let mut oracle = u64::MAX;
    for strategy in Strategy::ALL {
        let mut pool = BufferPool::with_capacity(store.clone(), 256);
        let mut m = QueryMetrics::new();
        idx.petq_metered(&mut pool, &q, strategy, &mut m)
            .expect("in-memory query");
        oracle = oracle.min(scalar_cost(&m));
    }
    let mut pool = BufferPool::with_capacity(store, 256);
    let mut m = QueryMetrics::new();
    idx.petq_metered(&mut pool, &q, Strategy::Auto, &mut m)
        .expect("in-memory query");
    assert_eq!(
        m.plan_fallbacks, 0,
        "fresh statistics must not trigger a fallback"
    );
    assert!(
        scalar_cost(&m) <= oracle,
        "auto paid {} where the oracle pays {oracle}",
        scalar_cost(&m)
    );
}
