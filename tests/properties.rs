//! Property-based tests (proptest) over the core invariants listed in
//! DESIGN.md §7.

use std::collections::BTreeMap;
use std::ops::ControlFlow;

use proptest::prelude::*;

use uncat::core::distance::{l1, l2};
use uncat::core::equality::eq_prob;
use uncat::core::query::EqQuery;
use uncat::core::topk::TopKHeap;
use uncat::core::{codec, CatId, Divergence, Domain, Uda};
use uncat::prelude::*;
use uncat::query::{InvertedBackend, ScanBaseline, UncertainIndex};
use uncat_inverted::InvertedIndex;
use uncat_pdrtree::{PdrConfig, PdrTree};
use uncat_storage::btree::keys::u64_be;
use uncat_storage::btree::BTree;

/// Strategy: a valid sparse UDA over `cats` categories.
fn uda_strategy(cats: u32) -> impl Strategy<Value = Uda> {
    prop::collection::btree_map(0..cats, 0.01f32..1.0f32, 1..=(cats.min(6) as usize)).prop_map(
        |m| {
            let mut b = uncat::core::UdaBuilder::new();
            for (c, p) in m {
                b.push(CatId(c), p)
                    .expect("strategy emits valid probabilities");
            }
            b.finish_normalized().expect("at least one entry")
        },
    )
}

fn dataset_strategy(cats: u32, max_n: usize) -> impl Strategy<Value = Vec<Uda>> {
    prop::collection::vec(uda_strategy(cats), 1..=max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_roundtrips_any_valid_uda(u in uda_strategy(2000)) {
        let bytes = codec::encode_to_vec(&u);
        let (v, used) = codec::decode(&bytes).expect("roundtrip");
        prop_assert_eq!(&u, &v);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn eq_prob_is_symmetric_bounded_probability(u in uda_strategy(12), v in uda_strategy(12)) {
        let puv = eq_prob(&u, &v);
        let pvu = eq_prob(&v, &u);
        prop_assert!((puv - pvu).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&puv));
        // Tighter bounds from §3's pruning arguments.
        prop_assert!(puv <= u.max_prob() as f64 + 1e-9);
        prop_assert!(puv <= v.max_prob() as f64 + 1e-9);
    }

    #[test]
    fn metric_divergences_satisfy_axioms(
        a in uda_strategy(10),
        b in uda_strategy(10),
        c in uda_strategy(10),
    ) {
        for dv in [Divergence::L1, Divergence::L2] {
            let ab = dv.eval(a.entries(), b.entries());
            let ba = dv.eval(b.entries(), a.entries());
            prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
            prop_assert!(ab >= 0.0, "non-negativity");
            let ac = dv.eval(a.entries(), c.entries());
            let cb = dv.eval(c.entries(), b.entries());
            prop_assert!(ab <= ac + cb + 1e-9, "triangle inequality for {:?}", dv);
        }
        prop_assert!(l1(a.entries(), a.entries()) == 0.0);
        prop_assert!(l2(a.entries(), a.entries()) == 0.0);
    }

    #[test]
    fn kl_is_nonnegative_and_finite(a in uda_strategy(10), b in uda_strategy(10)) {
        let d = Divergence::Kl.eval(a.entries(), b.entries());
        prop_assert!(d.is_finite());
        prop_assert!(d >= -1e-9);
    }

    #[test]
    fn topk_heap_equals_sort_and_truncate(
        scores in prop::collection::vec(0.0f64..1.0, 0..60),
        k in 1usize..20,
    ) {
        let mut h = TopKHeap::new(k, 0.0);
        for (tid, &s) in scores.iter().enumerate() {
            h.offer(tid as u64, s);
        }
        let got: Vec<(u64, f64)> = h.into_sorted().into_iter().map(|m| (m.tid, m.score)).collect();
        let mut expect: Vec<(u64, f64)> =
            scores.iter().enumerate().map(|(t, &s)| (t as u64, s)).collect();
        expect.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        expect.truncate(k);
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn btree_behaves_like_btreemap(ops in prop::collection::vec((0u8..3, 0u64..500), 1..400)) {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 64);
        let mut tree: BTree<8, 8> = BTree::create(&mut pool).expect("in-memory create");
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, key) in ops {
            match op {
                0 => {
                    let val = key.wrapping_mul(31);
                    let a = tree.insert(&mut pool, &u64_be(key), &u64_be(val)).expect("in-memory insert");
                    let b = model.insert(key, val);
                    prop_assert_eq!(a.map(u64::from_be_bytes), b);
                }
                1 => {
                    let a = tree.remove(&mut pool, &u64_be(key)).expect("in-memory remove");
                    let b = model.remove(&key);
                    prop_assert_eq!(a.map(u64::from_be_bytes), b);
                }
                _ => {
                    let a = tree.get(&mut pool, &u64_be(key)).expect("in-memory get");
                    let b = model.get(&key).copied();
                    prop_assert_eq!(a.map(u64::from_be_bytes), b);
                }
            }
        }
        prop_assert_eq!(tree.len() as usize, model.len());
        let mut scanned = Vec::new();
        tree.scan_all(&mut pool, |k, v| {
            scanned.push((u64::from_be_bytes(*k), u64::from_be_bytes(*v)));
            ControlFlow::Continue(())
        })
        .expect("in-memory scan");
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }

    #[test]
    fn inverted_index_agrees_with_scan_on_arbitrary_data(
        data in dataset_strategy(8, 60),
        q in uda_strategy(8),
        tau in 0.01f64..0.9,
    ) {
        let tuples: Vec<(u64, Uda)> =
            data.into_iter().enumerate().map(|(i, u)| (i as u64, u)).collect();
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
        let idx = InvertedBackend::with_strategy(
            InvertedIndex::build(Domain::anonymous(8), &mut pool, tuples.iter().map(|(t, u)| (*t, u)))
                .expect("in-memory build"),
            uncat_inverted::Strategy::Nra,
        );
        let scan = ScanBaseline::build(&mut pool, tuples.iter().map(|(t, u)| (*t, u)))
            .expect("in-memory build");
        let query = EqQuery::new(q, tau);
        let a = idx.petq(&mut pool, &query).expect("in-memory query");
        let b = scan.petq(&mut pool, &query).expect("in-memory query");
        prop_assert_eq!(
            a.iter().map(|m| m.tid).collect::<Vec<_>>(),
            b.iter().map(|m| m.tid).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pdr_tree_agrees_with_scan_on_arbitrary_data(
        data in dataset_strategy(8, 60),
        q in uda_strategy(8),
        tau in 0.01f64..0.9,
    ) {
        let tuples: Vec<(u64, Uda)> =
            data.into_iter().enumerate().map(|(i, u)| (i as u64, u)).collect();
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
        let tree = PdrTree::build(
            Domain::anonymous(8),
            PdrConfig::default(),
            &mut pool,
            tuples.iter().map(|(t, u)| (*t, u)),
        )
        .expect("in-memory build");
        let scan = ScanBaseline::build(&mut pool, tuples.iter().map(|(t, u)| (*t, u)))
            .expect("in-memory build");
        let query = EqQuery::new(q, tau);
        let a = UncertainIndex::petq(&tree, &mut pool, &query).expect("in-memory query");
        let b = scan.petq(&mut pool, &query).expect("in-memory query");
        prop_assert_eq!(
            a.iter().map(|m| m.tid).collect::<Vec<_>>(),
            b.iter().map(|m| m.tid).collect::<Vec<_>>()
        );
        tree.check_invariants(&mut pool).expect("in-memory read");
    }

    #[test]
    fn uda_mass_never_exceeds_one(u in uda_strategy(30)) {
        prop_assert!(u.mass() <= 1.0 + 1e-4);
        prop_assert!(!u.is_empty());
        let mode = u.mode().expect("non-empty");
        prop_assert!(u.iter().all(|(_, p)| p <= mode.prob));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ordered_trichotomy_partitions_unit_mass(u in uda_strategy(12), v in uda_strategy(12)) {
        use uncat::core::ordered::{pr_greater, pr_less};
        let total = pr_less(&u, &v) + pr_greater(&u, &v) + eq_prob(&u, &v);
        prop_assert!((total - 1.0).abs() < 1e-4, "trichotomy sum {total}");
        prop_assert!(pr_less(&u, &v) >= 0.0 && pr_greater(&u, &v) >= 0.0);
    }

    #[test]
    fn window_probability_is_monotone_in_c(u in uda_strategy(12), v in uda_strategy(12)) {
        use uncat::core::ordered::pr_within;
        let mut prev = -1.0f64;
        for c in 0..6u32 {
            let p = pr_within(&u, &v, c);
            prop_assert!(p >= prev - 1e-12, "window must widen monotonically");
            prop_assert!(p <= 1.0 + 1e-4);
            prev = p;
        }
        prop_assert!((pr_within(&u, &v, 0) - eq_prob(&u, &v)).abs() < 1e-9);
        prop_assert!((pr_within(&u, &v, 64) - 1.0).abs() < 1e-4, "window covers the domain");
    }

    #[test]
    fn window_smooth_agrees_with_direct_window(u in uda_strategy(10), v in uda_strategy(10), c in 0u32..5) {
        use uncat::core::ordered::{pr_within, window_smooth};
        let smooth = window_smooth(&u, c, 10);
        let ip: f64 = v
            .iter()
            .map(|(cat, p)| {
                smooth
                    .binary_search_by_key(&cat, |e| e.cat)
                    .map(|k| smooth[k].prob as f64)
                    .unwrap_or(0.0)
                    * p as f64
            })
            .sum();
        prop_assert!((ip - pr_within(&u, &v, c)).abs() < 1e-5);
    }

    #[test]
    fn codec_decode_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Decoding untrusted bytes must fail gracefully, never panic.
        let _ = codec::decode(&bytes);
    }

    #[test]
    fn posting_key_encoding_orders_by_descending_probability(
        mut probs in prop::collection::vec(0.001f32..1.0, 2..20),
    ) {
        use uncat_storage::btree::keys::{concat, f32_desc, u32_be};
        probs.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let keys: Vec<[u8; 8]> =
            probs.iter().enumerate().map(|(i, &p)| concat(f32_desc(p), u32_be(i as u32))).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        prop_assert_eq!(keys, sorted, "descending probability = ascending key order");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pr_less_matches_quadratic_reference(u in uda_strategy(10), v in uda_strategy(10)) {
        // O(n²) reference for the merge-based implementation.
        let mut expect = 0.0f64;
        for (cu, pu) in u.iter() {
            for (cv, pv) in v.iter() {
                if cu < cv {
                    expect += pu as f64 * pv as f64;
                }
            }
        }
        let got = uncat::core::ordered::pr_less(&u, &v);
        prop_assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn pr_within_matches_quadratic_reference(
        u in uda_strategy(10),
        v in uda_strategy(10),
        c in 0u32..6,
    ) {
        let mut expect = 0.0f64;
        for (cu, pu) in u.iter() {
            for (cv, pv) in v.iter() {
                if cu.0.abs_diff(cv.0) <= c {
                    expect += pu as f64 * pv as f64;
                }
            }
        }
        let got = uncat::core::ordered::pr_within(&u, &v, c);
        prop_assert!((got - expect).abs() < 1e-9, "c={c}: {got} vs {expect}");
    }

    #[test]
    fn bottom_k_heap_equals_sort_and_truncate(
        scores in prop::collection::vec(0.0f64..2.0, 0..60),
        k in 1usize..20,
    ) {
        use uncat::core::topk::BottomKHeap;
        let mut h = BottomKHeap::new(k);
        for (tid, &s) in scores.iter().enumerate() {
            h.offer(tid as u64, s);
        }
        let got: Vec<(u64, f64)> = h.into_sorted().into_iter().map(|m| (m.tid, m.score)).collect();
        let mut expect: Vec<(u64, f64)> =
            scores.iter().enumerate().map(|(t, &s)| (t as u64, s)).collect();
        expect.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        expect.truncate(k);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn heap_file_behaves_like_a_vec_of_records(
        ops in prop::collection::vec((0u8..2, prop::collection::vec(any::<u8>(), 1..64)), 1..120),
    ) {
        use uncat_storage::HeapFile;
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 32);
        let mut heap = HeapFile::new();
        let mut model: Vec<(uncat_storage::RecordId, Option<Vec<u8>>)> = Vec::new();
        for (op, bytes) in ops {
            if op == 0 || model.is_empty() {
                let rid = heap.insert(&mut pool, &bytes).expect("in-memory insert");
                model.push((rid, Some(bytes)));
            } else {
                // Delete a pseudo-random live record.
                let i = bytes.len() % model.len();
                let (rid, live) = &mut model[i];
                let deleted = heap.delete(&mut pool, *rid).expect("in-memory delete");
                prop_assert_eq!(deleted, live.is_some());
                *live = None;
            }
        }
        let live_count = model.iter().filter(|(_, l)| l.is_some()).count();
        prop_assert_eq!(heap.len() as usize, live_count);
        for (rid, expect) in &model {
            prop_assert_eq!(&heap.get(&mut pool, *rid).expect("in-memory get"), expect);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn boundary_always_dominates_merged_udas(data in dataset_strategy(10, 30)) {
        use uncat_pdrtree::{Boundary, Compression};
        for compression in [
            Compression::None,
            Compression::Signature { width: 3 },
        ] {
            let mut b = Boundary::empty(compression);
            for u in &data {
                b.merge_uda(u);
            }
            for u in &data {
                prop_assert!(b.dominates(u), "{compression:?} lost domination");
                // Lemma 2 soundness against every member as the query.
                for t in &data {
                    let pr = eq_prob(u, t);
                    prop_assert!(pr <= b.eq_upper_bound(u) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn ds_top_k_matches_sorted_reference(
        data in dataset_strategy(8, 50),
        q in uda_strategy(8),
        k in 1usize..15,
    ) {
        use uncat::core::query::DsTopKQuery;
        let tuples: Vec<(u64, Uda)> =
            data.into_iter().enumerate().map(|(i, u)| (i as u64, u)).collect();
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
        let tree = PdrTree::build(
            Domain::anonymous(8),
            PdrConfig::default(),
            &mut pool,
            tuples.iter().map(|(t, u)| (*t, u)),
        )
        .expect("in-memory build");
        for dv in [Divergence::L1, Divergence::L2] {
            let got = UncertainIndex::ds_top_k(&tree, &mut pool, &DsTopKQuery::new(q.clone(), k, dv))
                .expect("in-memory query");
            let mut expect: Vec<(f64, u64)> = tuples
                .iter()
                .map(|(tid, t)| (dv.eval(q.entries(), t.entries()), *tid))
                .collect();
            expect.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            expect.truncate(k);
            prop_assert_eq!(
                got.iter().map(|m| m.tid).collect::<Vec<_>>(),
                expect.iter().map(|&(_, tid)| tid).collect::<Vec<_>>()
            );
        }
    }
}

/// Body of `mutated_snapshot_blob_is_detected_or_decodes_equal`, kept out
/// of the `proptest!` macro. Returns the byte index, loaded payload, and
/// original blob if a mutation went undetected.
fn check_mutated_snapshot(
    data: Vec<Uda>,
    pos: usize,
    xor: u8,
) -> Option<(usize, Vec<u8>, Vec<u8>)> {
    use uncat_storage::snapshot;

    let tuples: Vec<(u64, Uda)> = data
        .into_iter()
        .enumerate()
        .map(|(i, u)| (i as u64, u))
        .collect();
    let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
    let idx = InvertedIndex::build(
        Domain::anonymous(6),
        &mut pool,
        tuples.iter().map(|(t, u)| (*t, u)),
    )
    .expect("in-memory build");
    let blob = idx.snapshot();

    // Blob level: decoding after a flip must not panic.
    let mut bad = blob.clone();
    let i = pos % bad.len();
    bad[i] ^= xor;
    let _ = InvertedIndex::open(&bad);
    let _ = PdrTree::open(&bad);

    // File level: the snapshot file protocol detects the flip.
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "uncat-prop-snap-{}-{}.meta",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    ));
    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
    let _guard = Cleanup(path.clone());
    snapshot::commit(&path, &blob).expect("commit");
    let good = std::fs::read(&path).expect("read committed file");
    let mut torn = good.clone();
    let j = pos % torn.len();
    torn[j] ^= xor;
    std::fs::write(&path, &torn).expect("plant corruption");
    match snapshot::load(&path) {
        Err(_) => None,
        Ok(p) if p == blob => None,
        Ok(p) => Some((j, p, blob)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Satellite of the durability work: a committed snapshot with any
    // single byte flipped must either be rejected on load or read back
    // byte-identical — and decoding a mutated metadata blob directly must
    // never panic, only return a typed error (or a successfully decoded
    // index, when the flip lands in a don't-care position).
    #[test]
    fn mutated_snapshot_blob_is_detected_or_decodes_equal(
        data in dataset_strategy(6, 40),
        pos in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let undetected = check_mutated_snapshot(data, pos, xor);
        prop_assert!(undetected.is_none(), "undetected mutation: {:?}", undetected);
    }
}

/// The checked-in `tests/properties.proptest-regressions` file is found
/// by the replay machinery: every `proptest!` test in this file runs its
/// recorded seed before the generated cases (vendor/proptest replays
/// `cc <hex>` lines from the sibling regression file).
#[test]
fn regression_file_is_discovered_for_replay() {
    let seeds = proptest::regression_seeds(file!());
    assert_eq!(
        seeds.len(),
        1,
        "tests/properties.proptest-regressions holds one recorded failure"
    );
}
