//! `uncat` — indexing uncertain categorical data.
//!
//! A faithful, production-quality reproduction of Singh, Mayfield,
//! Prabhakar, Shah & Hambrusch, *Indexing Uncertain Categorical Data*
//! (ICDE 2007). This facade crate re-exports the workspace:
//!
//! * [`core`] — the UDA data model, equality semantics, divergences and
//!   query definitions.
//! * [`storage`] — the paged storage substrate (8 KB pages, clock buffer
//!   pool, heap files, B+tree) whose buffer misses are the paper's I/O
//!   metric.
//! * [`inverted`] — the probabilistic inverted index (§3.1) with the four
//!   search strategies and the no-random-access variant.
//! * [`pdrtree`] — the Probabilistic Distribution R-tree (§3.2) with both
//!   split strategies and both boundary-compression schemes.
//! * [`datagen`] — the evaluation's dataset generators and workloads.
//! * [`query`] — a unified executor, full-scan baseline, and the join
//!   operators (PETJ and friends).
//! * [`service`] — the multi-tenant sharded query service: named
//!   indexes over one shared pool, per-tenant admission control, exact
//!   scatter-gather execution (`docs/SERVICE.md`).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use uncat_core as core;
pub use uncat_datagen as datagen;
pub use uncat_inverted as inverted;
pub use uncat_pdrtree as pdrtree;
pub use uncat_query as query;
pub use uncat_service as service;
pub use uncat_storage as storage;

/// Commonly used items, for `use uncat::prelude::*`.
pub mod prelude {
    pub use uncat_core::{
        CatId, Divergence, Domain, DstQuery, EqQuery, TopKQuery, TupleId, Uda, UdaBuilder,
    };
    pub use uncat_storage::{BufferPool, InMemoryDisk, IoStats, PageId, QueryMetrics};
}
