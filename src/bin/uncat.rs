//! `uncat` — command-line front end for the uncertain-categorical-data
//! indexes.
//!
//! ```text
//! uncat gen    --dataset crm1 --n 10000 --seed 42 --out data.uds
//! uncat build  --index pdr [--bulk] --data data.uds --pages idx.pages --meta idx.meta
//! uncat query  --index pdr --pages idx.pages --meta idx.meta --cat 3 --tau 0.5
//! uncat topk   --index pdr --pages idx.pages --meta idx.meta --cat 3 --k 10
//! uncat stats  --index pdr --pages idx.pages --meta idx.meta
//! ```
//!
//! Indexes are persisted as a page file (`--pages`) plus a metadata
//! snapshot (`--meta`); `query`/`topk`/`stats` reopen both.
//!
//! Online mutation (`put`/`delete`) runs through the durable layer: the
//! first mutation adopts the index (creating `<meta>.durable`, a
//! `<meta>.wal` write-ahead log, and a `<meta>.journal` checkpoint
//! journal) and every mutation is logged before it touches a page.
//! `checkpoint` folds the log into a new durable base; `recover` replays
//! it after a crash. Read commands recover automatically when a durable
//! sidecar exists, so they always see the latest acknowledged mutation.
//!
//! `--trace` / `--trace-json` turn on the latency tracing layer
//! (docs/METRICS.md): the query records a span tree over its execution
//! phases plus buffer-pool and WAL latency histograms, rendered as an
//! indented tree or written as a Chrome trace-event file.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use uncat::core::{CatId, Divergence, EqQuery, TopKQuery, Uda};
use uncat::datagen;
use uncat::inverted::{
    CostPrediction, InvertedIndex, PostingFormat, Strategy, FALLBACK_BUDGET_FLOOR, OVERRUN_FACTOR,
};
use uncat::pdrtree::{PdrConfig, PdrTree};
use uncat::query::join::{block_join, index_join, parallel_join, JoinOutcome, JoinSpec};
use uncat::query::parallel::{batch_metrics, batch_trace, petq_batch_traced, petq_batch_with};
use uncat::query::{
    BatchPools, DurableConfig, DurableIndex, DurableStorage, InvertedBackend, MutableBackend,
    RecoveryReport, ScanBaseline, UncertainIndex,
};
use uncat::storage::{
    BufferPool, Clock, FileDisk, InMemoryDisk, LatencyHistogram, MonotonicClock, Phase,
    QueryMetrics, QueryTrace, SharedStore, StorageError, TailStatus, Tracer,
};

/// Everything that can go wrong in the CLI, with enough context to act
/// on: the failing path for file problems, the offending flag for usage
/// problems. Storage-layer failures pass through with their own typed
/// detail (`StorageError` already names the operation and page).
#[derive(Debug)]
enum CliError {
    /// Bad invocation: unknown command, missing flag, unparsable value.
    Usage(String),
    /// A storage-layer failure (I/O, corruption, a poisoned index).
    Storage(StorageError),
    /// An OS-level file operation failed.
    Io {
        /// The file being read or written.
        path: String,
        source: std::io::Error,
    },
    /// A file exists but its contents do not decode.
    Format {
        /// The file that failed to decode.
        path: String,
        detail: String,
    },
}

impl CliError {
    fn io(path: impl Into<String>, source: std::io::Error) -> CliError {
        CliError::Io {
            path: path.into(),
            source,
        }
    }

    fn format(path: impl Into<String>, detail: impl fmt::Display) -> CliError {
        CliError::Format {
            path: path.into(),
            detail: detail.to_string(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Storage(e) => write!(f, "{e}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Format { path, detail } => write!(f, "{path}: {detail}"),
        }
    }
}

impl From<StorageError> for CliError {
    fn from(e: StorageError) -> CliError {
        CliError::Storage(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage(USAGE.trim().to_owned()));
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "gen" => gen(&flags),
        "build" => build(&flags),
        "query" => query(&flags, false),
        "topk" => query(&flags, true),
        "batch" => batch(&flags),
        "join" => join(&flags),
        "explain" => explain(&flags),
        "stats" => stats(&flags),
        "put" => put(&flags),
        "delete" => delete(&flags),
        "checkpoint" => checkpoint(&flags),
        "recover" => recover(&flags),
        "serve" => serve(&flags),
        "bench-service" => bench_service(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", USAGE.trim());
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{}",
            USAGE.trim()
        ))),
    }
}

const USAGE: &str = r#"
usage:
  uncat gen    --dataset <crm1|crm2|uniform|pairwise|gen3|textsim> --n <N>
               [--domain <D>] [--seed <S>] --out <file.uds>
  uncat build  --index <inverted|pdr> [--bulk] [--format <raw|blocks>]
               --data <file.uds> --pages <file.pages> --meta <file.meta>
  uncat query  --index <inverted|pdr> --pages <...> --meta <...>
               --cat <id> --tau <t> [--limit <n>] [--strategy <s>]
               [--explain] [--trace] [--trace-json <file>]
  uncat topk   --index <inverted|pdr> --pages <...> --meta <...>
               --cat <id> --k <k> [--explain] [--trace] [--trace-json <file>]
  uncat batch  --index <inverted|pdr> --pages <...> --meta <...>
               [--pool <private|shared>] [--shards <N>] [--frames <F>]
               [--threads <T>] [--n <Q>] [--tau <t>] [--zipf <s>]
               [--seed <S>] [--explain] [--trace]
  uncat join   --data <file.uds> --kind <petj|pej-topk|dstj>
               [--plan <block|index|parallel>] [--index <inverted|pdr>]
               [--tau <t>] [--k <k>] [--radius <r>] [--divergence <l1|l2|kl>]
               [--outer <N>] [--zipf <s>] [--seed <S>] [--pool <private|shared>]
               [--threads <T>] [--frames <F>] [--shards <N>] [--limit <n>]
               [--explain]
  uncat explain --index <inverted|pdr> --pages <...> --meta <...>
               --cat <id> --tau <t>
  uncat stats  --index <inverted|pdr> --pages <...> --meta <...>
  uncat put    --index <inverted|pdr> --pages <...> --meta <...>
               --tid <id> --uda <cat:prob[,cat:prob...]>
               [--group-commit <n>] [--explain]
  uncat delete --index <inverted|pdr> --pages <...> --meta <...>
               --tid <id> [--explain]
  uncat checkpoint --index <inverted|pdr> --pages <...> --meta <...>
  uncat recover    --index <inverted|pdr> --pages <...> --meta <...>
  uncat serve  [--tenants <N>] [--shards <S>] [--n <tuples>] [--seed <S>]
               [--quota <frames>] [--queue <depth>]
  uncat bench-service [--quick] [--tenants <N>] [--shards <S>]
               [--out <file.json>] [--validate <file.json>]

--strategy (inverted PETQ only): brute | highest-prob-first | row-pruning
  | column-pruning | nra | auto (default: auto — a cost-based planner
  picks the cheapest strategy from cached statistics and falls back
  mid-query when live counters overrun the prediction)
--format (inverted only): posting-list layout. blocks (default) packs
  each list into delta-compressed blocks with a block-max directory so
  searches skip whole blocks without decoding them; raw keeps one B-tree
  entry per posting (the pre-block layout, snapshot format UIV1). See
  docs/FORMAT.md for the bytes.
--explain: print the query's execution counters (see docs/METRICS.md)
--trace: record and print the query's latency span tree (execution
  phases with total/self times) and its buffer-pool/WAL latency
  histograms. For batch, prints the histograms merged across all
  workers. --trace-json <file> writes the span tree in Chrome
  trace-event format (load it at chrome://tracing or in Perfetto).
explain: run one PETQ under every inverted strategy and compare counters
  plus wall-clock time (for --index pdr, prints the single PDR-tree
  profile)
batch: run a Zipf-skewed PETQ batch on T threads. --pool private gives
  each query its own F-frame pool (the paper's model); --pool shared runs
  the batch against one F×T-frame pool striped over --shards shards, so
  hot pages are read once per batch. --explain adds the summed execution
  counters and, for the shared pool, a per-shard hit-rate table.
join: join a Zipf-skewed outer relation of N certain-category probes
  against file.uds. --plan block scans the inner relation once (no
  index), --plan index probes the chosen index per outer tuple, --plan
  parallel partitions the outer relation over T workers (pej-topk shares
  a rising score floor so warm probes run as prunable threshold probes).
  --explain prints the join's execution counter table (and the per-shard
  hit-rate table under --pool shared).
serve: host a multi-tenant sharded query service over generated CRM1
  tenants (t0, t1, ...) and answer line commands on stdin:
  petq <tenant> <cat> <tau> | topk <tenant> <cat> <k> | stats <tenant> |
  tenants | quit. Each tenant's dataset is hash-partitioned over S
  shards behind a per-tenant admission gate (--quota frames, --queue
  waiters); top-k queries share a rising score floor across shard
  probes. See docs/SERVICE.md.
bench-service: drive the service with the closed- and open-loop
  Zipf-skewed workload and write the schema-validated
  BENCH_service.json artifact (per-tenant QPS and latency quantiles,
  plus the floored-vs-floorless postings comparison). --validate
  re-checks an existing artifact and exits nonzero on any violation.
put/delete: online mutation through a write-ahead log. The first
  mutation adopts the built index, creating <meta>.durable (epoch
  snapshot), <meta>.wal, and <meta>.journal; the original --meta file is
  no longer consulted afterwards. put is an upsert; --group-commit N
  batches N records per fsync (the log is flushed before exit either
  way). checkpoint folds the log into a new durable base and truncates
  it; recover replays a crashed log explicitly and reports what it did
  (read commands also recover automatically).
"#;

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(CliError::Usage(format!("expected a --flag, found {a:?}")));
        };
        if name == "bulk" || name == "explain" || name == "trace" || name == "quick" {
            flags.insert(name.to_owned(), "true".to_owned());
            continue;
        }
        let Some(v) = it.next() else {
            return Err(CliError::Usage(format!("flag --{name} needs a value")));
        };
        flags.insert(name.to_owned(), v.clone());
    }
    Ok(flags)
}

fn need<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, CliError> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage(format!("missing --{name}")))
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError::Usage(format!("invalid {what}: {s:?}")))
}

fn gen(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let dataset = need(flags, "dataset")?;
    let n: usize = parse(need(flags, "n")?, "--n")?;
    let seed: u64 = flags.get("seed").map_or(Ok(42), |s| parse(s, "--seed"))?;
    let out = need(flags, "out")?;
    let (domain, data) = match dataset {
        "crm1" => datagen::crm::crm1(n, seed),
        "crm2" => datagen::crm::crm2(n, seed),
        "uniform" => datagen::uniform::generate(n, seed),
        "pairwise" => datagen::pairwise::generate(n, seed),
        "gen3" => {
            let d: u32 = flags
                .get("domain")
                .map_or(Ok(50), |s| parse(s, "--domain"))?;
            datagen::gen3::generate(n, d, seed)
        }
        "textsim" => {
            let (domain, data, accuracy) = datagen::textsim::generate(n, seed);
            println!("classifier top-1 accuracy vs generative truth: {accuracy:.3}");
            (domain, data)
        }
        other => return Err(CliError::Usage(format!("unknown dataset {other:?}"))),
    };
    datagen::io::save(out, &domain, &data).map_err(|e| CliError::io(out, e))?;
    println!(
        "wrote {n} tuples over {} categories to {out}",
        domain.size()
    );
    Ok(())
}

fn build(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let index = need(flags, "index")?;
    let data_path = need(flags, "data")?;
    let pages = need(flags, "pages")?;
    let meta = need(flags, "meta")?;
    let bulk = flags.contains_key("bulk");

    let (domain, data) = datagen::io::load(data_path).map_err(|e| CliError::io(data_path, e))?;
    let disk = FileDisk::create(pages).map_err(|e| CliError::io(pages, e))?;
    let store: SharedStore = Arc::new(disk);
    let mut pool = BufferPool::with_capacity(store.clone(), 512);
    let t0 = std::time::Instant::now();
    match index {
        "inverted" => {
            if bulk {
                return Err(CliError::Usage(
                    "--bulk applies to the pdr index only".into(),
                ));
            }
            let format = match flags.get("format").map(String::as_str) {
                None | Some("blocks") => PostingFormat::Blocks,
                Some("raw") => PostingFormat::Raw,
                Some(other) => {
                    return Err(CliError::Usage(format!(
                        "unknown --format {other:?} (raw|blocks)"
                    )))
                }
            };
            let idx = InvertedIndex::build_with_format(
                domain,
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
                format,
            )?;
            pool.flush()?;
            idx.save(meta.as_ref())
                .map_err(|e| CliError::format(meta, e))?;
        }
        "pdr" => {
            let tree = if bulk {
                PdrTree::bulk_build(
                    domain,
                    PdrConfig::default(),
                    &mut pool,
                    data.iter().map(|(t, u)| (*t, u)),
                )
            } else {
                PdrTree::build(
                    domain,
                    PdrConfig::default(),
                    &mut pool,
                    data.iter().map(|(t, u)| (*t, u)),
                )
            }?;
            pool.flush()?;
            tree.save(meta.as_ref())
                .map_err(|e| CliError::format(meta, e))?;
        }
        other => return Err(CliError::Usage(format!("unknown index {other:?}"))),
    };
    drop(pool);
    println!(
        "built {index} index over {} tuples in {:.1}s ({} pages)",
        data.len(),
        t0.elapsed().as_secs_f64(),
        store.num_pages()
    );
    Ok(())
}

enum AnyIndex {
    Inverted(InvertedIndex),
    Pdr(PdrTree),
}

/// The durable sidecar files that appear next to `--meta` once an index
/// is mutated online.
struct Sidecar {
    wal: PathBuf,
    journal: PathBuf,
    snap: PathBuf,
}

fn sidecar(meta: &str) -> Sidecar {
    Sidecar {
        wal: PathBuf::from(format!("{meta}.wal")),
        journal: PathBuf::from(format!("{meta}.journal")),
        snap: PathBuf::from(format!("{meta}.durable")),
    }
}

enum AnyDurable {
    Inverted(DurableIndex<InvertedBackend>),
    Pdr(DurableIndex<PdrTree>),
}

impl AnyDurable {
    fn update(&mut self, tid: u64, uda: &Uda, m: &mut QueryMetrics) -> Result<bool, CliError> {
        Ok(match self {
            AnyDurable::Inverted(d) => d.update_metered(tid, uda, m),
            AnyDurable::Pdr(d) => d.update_metered(tid, uda, m),
        }?)
    }

    fn delete(&mut self, tid: u64, m: &mut QueryMetrics) -> Result<bool, CliError> {
        Ok(match self {
            AnyDurable::Inverted(d) => d.delete_metered(tid, m),
            AnyDurable::Pdr(d) => d.delete_metered(tid, m),
        }?)
    }

    fn checkpoint(&mut self) -> Result<(), CliError> {
        Ok(match self {
            AnyDurable::Inverted(d) => d.checkpoint(),
            AnyDurable::Pdr(d) => d.checkpoint(),
        }?)
    }

    fn flush_wal(&mut self) -> Result<(), CliError> {
        Ok(match self {
            AnyDurable::Inverted(d) => d.flush_wal(),
            AnyDurable::Pdr(d) => d.flush_wal(),
        }?)
    }

    fn enable_tracing(&mut self, clock: Arc<dyn Clock>) {
        match self {
            AnyDurable::Inverted(d) => d.enable_tracing(clock),
            AnyDurable::Pdr(d) => d.enable_tracing(clock),
        }
    }

    fn take_trace(&mut self) -> Option<QueryTrace> {
        match self {
            AnyDurable::Inverted(d) => d.take_trace(),
            AnyDurable::Pdr(d) => d.take_trace(),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            AnyDurable::Inverted(d) => d.epoch(),
            AnyDurable::Pdr(d) => d.epoch(),
        }
    }

    fn tuple_count(&self) -> u64 {
        match self {
            AnyDurable::Inverted(d) => d.tuple_count(),
            AnyDurable::Pdr(d) => d.tuple_count(),
        }
    }

    fn replayed_records(&self) -> u64 {
        match self {
            AnyDurable::Inverted(d) => d.replayed_records(),
            AnyDurable::Pdr(d) => d.replayed_records(),
        }
    }

    fn mutations_since_checkpoint(&self) -> u64 {
        match self {
            AnyDurable::Inverted(d) => d.mutations_since_checkpoint(),
            AnyDurable::Pdr(d) => d.mutations_since_checkpoint(),
        }
    }
}

/// Open the durable layer over `--pages`/`--meta`. A first mutation
/// adopts a plain-built index (its `--meta` snapshot becomes the durable
/// base); afterwards the `<meta>.durable` sidecar is authoritative.
/// Returns the recovery report when an existing durable index was
/// reopened (`None` on adoption).
fn open_durable(
    flags: &HashMap<String, String>,
) -> Result<(AnyDurable, Option<RecoveryReport>), CliError> {
    let index = need(flags, "index")?;
    let pages = need(flags, "pages")?;
    let meta = need(flags, "meta")?;
    let side = sidecar(meta);
    let group_commit: usize = flags
        .get("group-commit")
        .map_or(Ok(1), |s| parse(s, "--group-commit"))?;
    let config = DurableConfig {
        group_commit,
        pool_frames: 256,
        ..DurableConfig::default()
    };
    let adopt = !side.snap.exists();
    let storage = DurableStorage::open_files(
        Path::new(pages),
        &side.wal,
        &side.journal,
        &side.snap,
        false,
    )?;
    if adopt {
        let blob = uncat::storage::snapshot::load(meta).map_err(|e| CliError::format(meta, e))?;
        let idx = match index {
            "inverted" => AnyDurable::Inverted(DurableIndex::create(storage, config, |_pool| {
                InvertedBackend::open_blob(&blob)
            })?),
            "pdr" => AnyDurable::Pdr(DurableIndex::create(storage, config, |_pool| {
                PdrTree::open_blob(&blob)
            })?),
            other => return Err(CliError::Usage(format!("unknown index {other:?}"))),
        };
        Ok((idx, None))
    } else {
        match index {
            "inverted" => {
                let (d, r) = DurableIndex::<InvertedBackend>::open(storage, config)?;
                Ok((AnyDurable::Inverted(d), Some(r)))
            }
            "pdr" => {
                let (d, r) = DurableIndex::<PdrTree>::open(storage, config)?;
                Ok((AnyDurable::Pdr(d), Some(r)))
            }
            other => Err(CliError::Usage(format!("unknown index {other:?}"))),
        }
    }
}

fn reopen(
    flags: &HashMap<String, String>,
) -> Result<(AnyIndex, SharedStore, Option<RecoveryReport>), CliError> {
    let index = need(flags, "index")?;
    let pages = need(flags, "pages")?;
    let meta = need(flags, "meta")?;
    let side = sidecar(meta);
    let mut report = None;
    if side.snap.exists() {
        // A mutated index: recover (replaying any crashed log) and fold
        // the result into the page file so the plain read path below
        // sees the latest acknowledged state.
        let (mut d, r) = open_durable(flags)?;
        if let Some(r) = &r {
            if r.replayed_records > 0 || r.journal_redone {
                d.checkpoint()?;
            }
        }
        report = r;
    }
    let store: SharedStore = Arc::new(FileDisk::open(pages).map_err(|e| CliError::io(pages, e))?);
    let idx = if side.snap.exists() {
        let snap_path = side.snap.display().to_string();
        let wrapped = uncat::storage::snapshot::load(&side.snap)
            .map_err(|e| CliError::format(&snap_path, e))?;
        let (_epoch, blob) = uncat::query::split_snapshot(&wrapped)?;
        match index {
            "inverted" => AnyIndex::Inverted(
                InvertedIndex::open(blob).map_err(|e| CliError::format(&snap_path, e))?,
            ),
            "pdr" => {
                AnyIndex::Pdr(PdrTree::open(blob).map_err(|e| CliError::format(&snap_path, e))?)
            }
            other => return Err(CliError::Usage(format!("unknown index {other:?}"))),
        }
    } else {
        match index {
            "inverted" => AnyIndex::Inverted(
                InvertedIndex::load(meta.as_ref()).map_err(|e| CliError::format(meta, e))?,
            ),
            "pdr" => {
                AnyIndex::Pdr(PdrTree::load(meta.as_ref()).map_err(|e| CliError::format(meta, e))?)
            }
            other => return Err(CliError::Usage(format!("unknown index {other:?}"))),
        }
    };
    Ok((idx, store, report))
}

/// Parse `cat:prob[,cat:prob...]` into a distribution.
fn parse_uda(s: &str) -> Result<Uda, CliError> {
    let mut pairs = Vec::new();
    for part in s.split(',') {
        let (c, p) = part.split_once(':').ok_or_else(|| {
            CliError::Usage(format!("bad uda component {part:?} (want cat:prob)"))
        })?;
        let cat: u32 = parse(c.trim(), "--uda category")?;
        let prob: f32 = parse(p.trim(), "--uda probability")?;
        pairs.push((CatId(cat), prob));
    }
    Uda::from_pairs(pairs).map_err(|e| CliError::Usage(format!("invalid uda: {e}")))
}

fn note_recovery(report: &Option<RecoveryReport>) {
    if let Some(r) = report {
        if r.replayed_records > 0 || r.journal_redone || r.stale_wal_discarded {
            println!(
                "recovered epoch {}: {} wal records replayed{}{}",
                r.epoch,
                r.replayed_records,
                if r.journal_redone {
                    ", checkpoint journal redone"
                } else {
                    ""
                },
                if r.stale_wal_discarded {
                    ", stale log discarded"
                } else {
                    ""
                },
            );
        }
        if let TailStatus::Torn {
            valid_len,
            dropped_bytes,
            reason,
        } = r.wal_tail
        {
            println!(
                "wal tail repaired: {dropped_bytes} bytes dropped after offset {valid_len} ({reason})"
            );
        }
    }
}

/// Whether either tracing flag was passed.
fn trace_requested(flags: &HashMap<String, String>) -> bool {
    flags.contains_key("trace") || flags.contains_key("trace-json")
}

/// Print and/or persist a collected trace according to the flags.
fn emit_trace(flags: &HashMap<String, String>, trace: &QueryTrace) -> Result<(), CliError> {
    if flags.contains_key("trace") {
        println!("latency trace:");
        print!("{}", trace.render_tree());
    }
    if let Some(path) = flags.get("trace-json") {
        std::fs::write(path, trace.to_chrome_json()).map_err(|e| CliError::io(path, e))?;
        println!("wrote chrome trace-event file to {path}");
    }
    Ok(())
}

fn put(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let tid: u64 = parse(need(flags, "tid")?, "--tid")?;
    let uda = parse_uda(need(flags, "uda")?)?;
    let (mut idx, report) = open_durable(flags)?;
    note_recovery(&report);
    if trace_requested(flags) {
        idx.enable_tracing(Arc::new(MonotonicClock::new()));
    }
    let mut metrics = QueryMetrics::new();
    let replaced = idx.update(tid, &uda, &mut metrics)?;
    idx.flush_wal()?;
    println!(
        "{} tuple {tid} (epoch {}, {} tuples, {} logged since checkpoint)",
        if replaced { "replaced" } else { "inserted" },
        idx.epoch(),
        idx.tuple_count(),
        idx.mutations_since_checkpoint(),
    );
    if flags.contains_key("explain") {
        metrics.replayed_records = idx.replayed_records();
        println!("execution counters:");
        print!("{metrics}");
    }
    if let Some(trace) = idx.take_trace() {
        emit_trace(flags, &trace)?;
    }
    Ok(())
}

fn delete(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let tid: u64 = parse(need(flags, "tid")?, "--tid")?;
    let (mut idx, report) = open_durable(flags)?;
    note_recovery(&report);
    if trace_requested(flags) {
        idx.enable_tracing(Arc::new(MonotonicClock::new()));
    }
    let mut metrics = QueryMetrics::new();
    let existed = idx.delete(tid, &mut metrics)?;
    idx.flush_wal()?;
    if existed {
        println!(
            "deleted tuple {tid} (epoch {}, {} tuples remain)",
            idx.epoch(),
            idx.tuple_count()
        );
    } else {
        println!("tuple {tid} was not indexed (nothing logged)");
    }
    if flags.contains_key("explain") {
        metrics.replayed_records = idx.replayed_records();
        println!("execution counters:");
        print!("{metrics}");
    }
    if let Some(trace) = idx.take_trace() {
        emit_trace(flags, &trace)?;
    }
    Ok(())
}

fn checkpoint(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let (mut idx, report) = open_durable(flags)?;
    note_recovery(&report);
    let folded = idx.mutations_since_checkpoint();
    idx.checkpoint()?;
    println!(
        "checkpoint complete: epoch {}, {folded} logged mutations folded, log truncated",
        idx.epoch()
    );
    Ok(())
}

fn recover(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let (mut idx, report) = open_durable(flags)?;
    match &report {
        None => println!("adopted plain-built index; nothing to recover"),
        Some(r) => {
            println!("recovered to epoch {}", r.epoch);
            println!("  replayed records:     {}", r.replayed_records);
            match r.wal_tail {
                TailStatus::Clean => println!("  wal tail:             clean"),
                TailStatus::Torn {
                    valid_len,
                    dropped_bytes,
                    reason,
                } => println!(
                    "  wal tail:             torn — {dropped_bytes} bytes dropped after offset {valid_len} ({reason})"
                ),
            }
            println!("  journal redone:       {}", r.journal_redone);
            println!("  stale log discarded:  {}", r.stale_wal_discarded);
        }
    }
    idx.checkpoint()?;
    println!(
        "state checkpointed at epoch {} ({} tuples)",
        idx.epoch(),
        idx.tuple_count()
    );
    Ok(())
}

fn parse_strategy(s: &str) -> Result<Strategy, CliError> {
    match s {
        "brute" | "inv-index-search" => Ok(Strategy::Brute),
        "hpf" | "highest-prob-first" => Ok(Strategy::HighestProbFirst),
        "row" | "row-pruning" => Ok(Strategy::RowPruning),
        "col" | "column-pruning" => Ok(Strategy::ColumnPruning),
        "nra" => Ok(Strategy::Nra),
        "auto" => Ok(Strategy::Auto),
        other => Err(CliError::Usage(format!("unknown strategy {other:?}"))),
    }
}

fn query(flags: &HashMap<String, String>, topk: bool) -> Result<(), CliError> {
    let (idx, store, recovered) = reopen(flags)?;
    note_recovery(&recovered);
    let cat: u32 = parse(need(flags, "cat")?, "--cat")?;
    let q = Uda::certain(CatId(cat));
    let strategy = flags
        .get("strategy")
        .map_or(Ok(Strategy::Auto), |s| parse_strategy(s))?;
    let mut pool = BufferPool::new(store);
    if trace_requested(flags) {
        pool.set_tracer(Tracer::enabled(Arc::new(MonotonicClock::new())));
    }
    let root = pool.trace_begin(Phase::Query);
    let mut metrics = QueryMetrics::new();
    let matches = if topk {
        let k: usize = parse(need(flags, "k")?, "--k")?;
        match &idx {
            AnyIndex::Inverted(i) => {
                i.top_k_metered(&mut pool, &TopKQuery::new(q, k), &mut metrics)
            }
            AnyIndex::Pdr(t) => t.top_k_metered(&mut pool, &TopKQuery::new(q, k), &mut metrics),
        }?
    } else {
        let tau: f64 = parse(need(flags, "tau")?, "--tau")?;
        match &idx {
            AnyIndex::Inverted(i) => {
                i.petq_metered(&mut pool, &EqQuery::new(q, tau), strategy, &mut metrics)
            }
            AnyIndex::Pdr(t) => t.petq_metered(&mut pool, &EqQuery::new(q, tau), &mut metrics),
        }?
    };
    pool.trace_end(root);
    let limit: usize = flags.get("limit").map_or(Ok(20), |s| parse(s, "--limit"))?;
    for m in matches.iter().take(limit) {
        println!("tuple {:8}  Pr = {:.4}", m.tid, m.score);
    }
    if matches.len() > limit {
        println!("… and {} more", matches.len() - limit);
    }
    println!(
        "{} matches, {} page reads",
        matches.len(),
        pool.stats().physical_reads
    );
    if flags.contains_key("explain") {
        metrics.io = pool.stats();
        if let Some(r) = &recovered {
            metrics.replayed_records = r.replayed_records;
        }
        println!("execution counters:");
        print!("{metrics}");
    }
    if let Some(trace) = pool.take_trace() {
        emit_trace(flags, &trace)?;
    }
    Ok(())
}

/// Print the merged latency histograms of a batch (one row per
/// boundary), quantiles in microseconds.
fn print_histograms(named: &[(&'static str, &LatencyHistogram)]) {
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "histogram", "count", "p50_us", "p95_us", "p99_us", "max_us"
    );
    for (name, h) in named {
        if h.count() == 0 {
            continue;
        }
        println!(
            "{name:<14} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            h.count(),
            h.p50_ns() as f64 / 1e3,
            h.p95_ns() as f64 / 1e3,
            h.p99_ns() as f64 / 1e3,
            h.max_ns() as f64 / 1e3,
        );
    }
}

/// Run a Zipf-skewed batch of certain-category PETQs on a worker pool,
/// against either private per-query buffer pools (the paper's model) or
/// one shared lock-striped pool for the whole batch.
fn batch(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let (idx, store, recovered) = reopen(flags)?;
    note_recovery(&recovered);
    let n: usize = flags.get("n").map_or(Ok(64), |s| parse(s, "--n"))?;
    let tau: f64 = flags.get("tau").map_or(Ok(0.3), |s| parse(s, "--tau"))?;
    let seed: u64 = flags.get("seed").map_or(Ok(42), |s| parse(s, "--seed"))?;
    let zipf_s: f64 = flags.get("zipf").map_or(Ok(1.2), |s| parse(s, "--zipf"))?;
    let threads: usize = flags
        .get("threads")
        .map_or(Ok(4), |s| parse(s, "--threads"))?;
    let frames: usize = flags
        .get("frames")
        .map_or(Ok(100), |s| parse(s, "--frames"))?;
    let shards: usize = flags
        .get("shards")
        .map_or(Ok(8), |s| parse(s, "--shards"))?;
    let pool_kind = flags.get("pool").map_or("private", String::as_str);
    let strategy = flags
        .get("strategy")
        .map_or(Ok(Strategy::Auto), |s| parse_strategy(s))?;
    let tracing = flags.contains_key("trace");

    let domain_size = match &idx {
        AnyIndex::Inverted(i) => i.domain().size(),
        AnyIndex::Pdr(t) => t.domain().size(),
    };
    let queries: Vec<EqQuery> = datagen::zipf::zipf_ranks(domain_size as usize, zipf_s, n, seed)
        .into_iter()
        .map(|rank| EqQuery::new(Uda::certain(CatId(rank as u32)), tau))
        .collect();

    // Memory parity: the shared pool gets the same frame budget the
    // private mode hands out across its workers.
    let pools = match pool_kind {
        "private" => BatchPools::private(frames),
        "shared" => BatchPools::shared(&store, frames * threads.max(1), shards),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --pool {other:?} (private|shared)"
            )))
        }
    };

    let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
    let t0 = std::time::Instant::now();
    let results = match idx {
        AnyIndex::Inverted(i) => {
            let backend = InvertedBackend::with_strategy(i, strategy);
            if tracing {
                petq_batch_traced(&backend, &store, &pools, &queries, threads, &clock)
            } else {
                petq_batch_with(&backend, &store, &pools, &queries, threads)
            }
        }
        AnyIndex::Pdr(t) => {
            if tracing {
                petq_batch_traced(&t, &store, &pools, &queries, threads, &clock)
            } else {
                petq_batch_with(&t, &store, &pools, &queries, threads)
            }
        }
    };
    let elapsed = t0.elapsed().as_secs_f64();

    let failed = results.iter().filter(|r| r.is_err()).count();
    let total_matches: usize = results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|o| o.matches.len())
        .sum();
    let totals = batch_metrics(&results);
    println!(
        "{} queries ({failed} failed) on {threads} threads, {pool_kind} pool: \
         {total_matches} matches in {elapsed:.2}s",
        results.len()
    );
    println!(
        "I/O: {} physical reads, {} hits / {} logical reads ({:.1}% hit rate)",
        totals.io.physical_reads,
        totals.io.hits,
        totals.io.logical_reads,
        totals.io.hit_ratio() * 100.0
    );
    if flags.contains_key("explain") {
        println!("summed execution counters:");
        print!("{totals}");
        if let Some(shared) = pools.shared_pool() {
            println!(
                "shared pool: {} frames over {} shards",
                shared.capacity(),
                shared.shard_count()
            );
            println!(
                "{:<8} {:>10} {:>10} {:>10} {:>10}",
                "shard", "logical", "hits", "reads", "hit-rate"
            );
            for (i, s) in shared.shard_stats().iter().enumerate() {
                println!(
                    "{i:<8} {:>10} {:>10} {:>10} {:>9.1}%",
                    s.logical_reads,
                    s.hits,
                    s.physical_reads,
                    s.hit_ratio() * 100.0
                );
            }
        }
    }
    if tracing {
        let merged = batch_trace(&results);
        println!(
            "merged latency histograms across {} workers ({} spans recorded):",
            threads,
            merged.spans.len()
        );
        print_histograms(&merged.hist.named());
    }
    if failed > 0 {
        for (i, r) in results.iter().enumerate() {
            if let Err(e) = r {
                eprintln!("query {i} failed: {e}");
            }
        }
        return Err(CliError::Usage(format!("{failed} queries failed")));
    }
    Ok(())
}

/// Join a synthesized Zipf-skewed outer relation against a stored
/// relation under one of the three join kinds and three physical plans.
/// The inner relation (and its index, for the index/parallel plans) is
/// built in memory from `--data`, mirroring the bench setup, so the
/// printed physical reads are cold-pool counts.
fn join(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let data_path = need(flags, "data")?;
    let (domain, data) = datagen::io::load(data_path).map_err(|e| CliError::io(data_path, e))?;
    let kind = need(flags, "kind")?;
    let plan = flags.get("plan").map_or("index", String::as_str);
    let index = flags.get("index").map_or("inverted", String::as_str);
    let outer_n: usize = flags.get("outer").map_or(Ok(64), |s| parse(s, "--outer"))?;
    let zipf_s: f64 = flags.get("zipf").map_or(Ok(1.2), |s| parse(s, "--zipf"))?;
    let seed: u64 = flags.get("seed").map_or(Ok(42), |s| parse(s, "--seed"))?;
    let threads: usize = flags
        .get("threads")
        .map_or(Ok(4), |s| parse(s, "--threads"))?;
    let frames: usize = flags
        .get("frames")
        .map_or(Ok(100), |s| parse(s, "--frames"))?;
    let shards: usize = flags
        .get("shards")
        .map_or(Ok(8), |s| parse(s, "--shards"))?;
    let pool_kind = flags.get("pool").map_or("private", String::as_str);
    let limit: usize = flags.get("limit").map_or(Ok(10), |s| parse(s, "--limit"))?;

    let spec = match kind {
        "petj" => JoinSpec::Petj {
            tau: flags.get("tau").map_or(Ok(0.5), |s| parse(s, "--tau"))?,
        },
        "pej-topk" | "topk" => JoinSpec::PejTopK {
            k: flags.get("k").map_or(Ok(10), |s| parse(s, "--k"))?,
        },
        "dstj" => JoinSpec::Dstj {
            tau_d: flags
                .get("radius")
                .map_or(Ok(0.25), |s| parse(s, "--radius"))?,
            divergence: match flags.get("divergence").map(String::as_str) {
                None | Some("l1") => Divergence::L1,
                Some("l2") => Divergence::L2,
                Some("kl") => Divergence::Kl,
                Some(other) => {
                    return Err(CliError::Usage(format!(
                        "unknown --divergence {other:?} (l1|l2|kl)"
                    )))
                }
            },
        },
        other => {
            return Err(CliError::Usage(format!(
                "unknown --kind {other:?} (petj|pej-topk|dstj)"
            )))
        }
    };

    // The outer relation: Zipf-skewed certain-category probes, disjoint
    // tids so joined pairs are unambiguous.
    let outer: Vec<(u64, Uda)> =
        datagen::zipf::zipf_ranks(domain.size() as usize, zipf_s, outer_n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, rank)| (1_000_000 + i as u64, Uda::certain(CatId(rank as u32))))
            .collect();

    let store: SharedStore = InMemoryDisk::shared();
    let mut build_pool = BufferPool::with_capacity(store.clone(), 512);
    let t0 = std::time::Instant::now();
    let (outcome, shared_pool): (
        JoinOutcome,
        Option<std::sync::Arc<uncat::storage::SharedBufferPool>>,
    ) = match plan {
        "block" => {
            let scan = ScanBaseline::build(&mut build_pool, data.iter().map(|(t, u)| (*t, u)))?;
            build_pool.flush()?;
            drop(build_pool);
            let mut pool = BufferPool::with_capacity(store.clone(), frames);
            (block_join(&outer, &scan, &mut pool, spec)?, None)
        }
        "index" | "parallel" => {
            let backend: Box<dyn UncertainIndex + Sync> = match index {
                "inverted" => Box::new(InvertedBackend::new(InvertedIndex::build(
                    domain.clone(),
                    &mut build_pool,
                    data.iter().map(|(t, u)| (*t, u)),
                )?)),
                "pdr" => Box::new(PdrTree::build(
                    domain.clone(),
                    PdrConfig::default(),
                    &mut build_pool,
                    data.iter().map(|(t, u)| (*t, u)),
                )?),
                other => return Err(CliError::Usage(format!("unknown index {other:?}"))),
            };
            build_pool.flush()?;
            drop(build_pool);
            if plan == "index" {
                let mut pool = BufferPool::with_capacity(store.clone(), frames);
                (index_join(&outer, &backend, &mut pool, spec)?, None)
            } else {
                let pools = match pool_kind {
                    "private" => BatchPools::private(frames),
                    "shared" => BatchPools::shared(&store, frames * threads.max(1), shards),
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown --pool {other:?} (private|shared)"
                        )))
                    }
                };
                let outcome = parallel_join(&outer, &backend, &store, &pools, spec, threads)?;
                (outcome, pools.shared_pool().cloned())
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --plan {other:?} (block|index|parallel)"
            )))
        }
    };
    let elapsed = t0.elapsed().as_secs_f64();

    for p in outcome.pairs.iter().take(limit) {
        println!("({:8}, {:8})  score = {:.4}", p.left, p.right, p.score);
    }
    if outcome.pairs.len() > limit {
        println!("… and {} more", outcome.pairs.len() - limit);
    }
    println!(
        "{} {} pairs via {plan} plan in {elapsed:.2}s, {} physical reads",
        outcome.pairs.len(),
        spec.name(),
        outcome.metrics.io.physical_reads
    );
    if flags.contains_key("explain") {
        println!("execution counters:");
        print!("{}", outcome.metrics);
        if let Some(shared) = shared_pool {
            println!(
                "shared pool: {} frames over {} shards",
                shared.capacity(),
                shared.shard_count()
            );
            println!(
                "{:<8} {:>10} {:>10} {:>10} {:>10}",
                "shard", "logical", "hits", "reads", "hit-rate"
            );
            for (i, s) in shared.shard_stats().iter().enumerate() {
                println!(
                    "{i:<8} {:>10} {:>10} {:>10} {:>9.1}%",
                    s.logical_reads,
                    s.hits,
                    s.physical_reads,
                    s.hit_ratio() * 100.0
                );
            }
        }
    }
    Ok(())
}

/// Run one PETQ under every inverted strategy and print the counters side
/// by side (one column per strategy), with a wall-clock timing row, the
/// planner's predicted counters (`pred_*` rows), its pick, and a
/// `misprediction:` line for every prediction off by more than the
/// adaptive executor's tolerance. For the PDR-tree there is a single
/// algorithm, so the output is one profile.
fn explain(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let (idx, store, recovered) = reopen(flags)?;
    note_recovery(&recovered);
    let cat: u32 = parse(need(flags, "cat")?, "--cat")?;
    let tau: f64 = parse(need(flags, "tau")?, "--tau")?;
    let q = EqQuery::new(Uda::certain(CatId(cat)), tau);
    match &idx {
        AnyIndex::Inverted(i) => {
            // Predict before running: the planner sees exactly the
            // statistics a real query would.
            let predictions = i.predict_petq(&q);
            let (pick, _) = i.plan_petq(&q);
            let mut cols: Vec<(&'static str, QueryMetrics, usize, u64)> = Vec::new();
            for strategy in Strategy::ALL {
                // A cold pool per strategy keeps the I/O columns comparable.
                let mut pool = BufferPool::new(store.clone());
                let mut m = QueryMetrics::new();
                let t0 = std::time::Instant::now();
                let matches = i.petq_metered(&mut pool, &q, strategy, &mut m)?;
                let elapsed_us = t0.elapsed().as_micros() as u64;
                m.io = pool.stats();
                cols.push((strategy.name(), m, matches.len(), elapsed_us));
            }
            print!("{:<22}", "counter");
            for (name, _, _, _) in &cols {
                print!(" {name:>18}");
            }
            println!();
            print!("{:<22}", "matches");
            for (_, _, n, _) in &cols {
                print!(" {n:>18}");
            }
            println!();
            print!("{:<22}", "elapsed_us");
            for (_, _, _, us) in &cols {
                print!(" {us:>18}");
            }
            println!();
            let rows = cols[0].1.fields().len();
            for r in 0..rows {
                let (label, _) = cols[0].1.fields()[r];
                print!("{label:<22}");
                for (_, m, _, _) in &cols {
                    print!(" {:>18}", m.fields()[r].1);
                }
                println!();
            }
            // Predicted counters, one row per predictor, aligned under
            // the same strategy columns (predictions and runs both
            // iterate Strategy::ALL).
            type PredField = fn(&CostPrediction) -> u64;
            let pred_rows: [(&str, PredField); 4] = [
                ("pred_postings_scanned", |p| p.postings_scanned),
                ("pred_blocks_decoded", |p| p.blocks_decoded),
                ("pred_cand_verified", |p| p.candidates_verified),
                ("pred_physical_reads", |p| p.physical_reads),
            ];
            for (label, get) in pred_rows {
                print!("{label:<22}");
                for (_, p) in &predictions {
                    print!(" {:>18}", get(p));
                }
                println!();
            }
            println!("planner picks {}", pick.name());
            // Flag predictions that miss by more than the adaptive
            // executor's own tolerance, in either direction: an
            // under-estimate is what triggers a mid-query fallback, an
            // over-estimate steers the planner away from a cheap plan.
            let slack = |v: u64| OVERRUN_FACTOR * v + FALLBACK_BUDGET_FLOOR;
            for ((_, p), (name, m, _, _)) in predictions.iter().zip(&cols) {
                let checks = [
                    ("postings_scanned", p.postings_scanned, m.postings_scanned),
                    ("physical_reads", p.physical_reads, m.io.physical_reads),
                ];
                for (counter, predicted, actual) in checks {
                    if actual > slack(predicted) {
                        println!(
                            "misprediction: {name} {counter} under-estimated \
                             (predicted {predicted}, actual {actual})"
                        );
                    } else if predicted > slack(actual) {
                        println!(
                            "misprediction: {name} {counter} over-estimated \
                             (predicted {predicted}, actual {actual})"
                        );
                    }
                }
            }
        }
        AnyIndex::Pdr(t) => {
            let mut pool = BufferPool::new(store.clone());
            let mut m = QueryMetrics::new();
            let t0 = std::time::Instant::now();
            let matches = t.petq_metered(&mut pool, &q, &mut m)?;
            let elapsed_us = t0.elapsed().as_micros() as u64;
            m.io = pool.stats();
            println!("pdr-tree PETQ: {} matches", matches.len());
            println!("elapsed_us            {elapsed_us:>18}");
            print!("{m}");
        }
    }
    Ok(())
}

fn stats(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let (idx, store, recovered) = reopen(flags)?;
    note_recovery(&recovered);
    let mut pool = BufferPool::with_capacity(store.clone(), 512);
    match &idx {
        AnyIndex::Inverted(i) => {
            let s = i.stats();
            println!("inverted index: {} tuples", i.len());
            println!(
                "  format:         {}",
                match i.format() {
                    PostingFormat::Raw => "raw (UIV1)",
                    PostingFormat::Blocks => "blocks (UIV2)",
                }
            );
            println!("  posting lists:  {}", s.lists);
            println!("  postings:       {}", s.postings);
            println!("  longest list:   {}", s.longest_list);
            println!("  avg list:       {:.1}", s.avg_list_len());
            if i.format() == PostingFormat::Blocks {
                println!("  posting blocks: {}", s.posting_blocks);
                println!("  block pages:    {}", s.block_pages);
            }
            println!("  heap pages:     {}", s.heap_pages);
        }
        AnyIndex::Pdr(t) => {
            let s = t.stats(&mut pool)?;
            println!("pdr-tree: {} tuples, depth {}", s.entries, s.depth);
            println!("  nodes:          {} ({} leaves)", s.nodes, s.leaves);
            println!("  avg fanout:     {:.1}", s.avg_fanout());
            println!("  avg leaf fill:  {:.1} entries", s.avg_leaf_entries());
            println!("  page fill:      {:.0}%", s.fill_factor() * 100.0);
        }
    }
    println!("  store pages:    {}", store.num_pages());
    Ok(())
}

/// Map a service failure into the CLI's error space.
fn service_cli_err(e: uncat::service::ServiceError) -> CliError {
    use uncat::service::ServiceError;
    match e {
        ServiceError::Storage(s) => CliError::Storage(s),
        other => CliError::Usage(other.to_string()),
    }
}

/// `uncat serve`: host generated tenants and answer stdin commands.
fn serve(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use uncat::service::{QueryService, ServiceConfig, TenantConfig};

    let tenants: usize = flags
        .get("tenants")
        .map_or(Ok(2), |s| parse(s, "--tenants"))?;
    let shards: usize = flags
        .get("shards")
        .map_or(Ok(2), |s| parse(s, "--shards"))?;
    let n: usize = flags.get("n").map_or(Ok(2_000), |s| parse(s, "--n"))?;
    let seed: u64 = flags.get("seed").map_or(Ok(42), |s| parse(s, "--seed"))?;
    let quota: usize = flags
        .get("quota")
        .map_or(Ok(200), |s| parse(s, "--quota"))?;
    let queue: usize = flags.get("queue").map_or(Ok(2), |s| parse(s, "--queue"))?;
    if tenants == 0 || shards == 0 {
        return Err(CliError::Usage(
            "--tenants and --shards must be at least 1".into(),
        ));
    }

    let service = QueryService::new(InMemoryDisk::shared(), ServiceConfig::default());
    for t in 0..tenants {
        let (domain, data) = datagen::crm::crm1(n, seed ^ (t as u64).wrapping_mul(7919));
        service
            .register_tenant_inverted(
                TenantConfig::new(format!("t{t}"))
                    .frame_quota(quota)
                    .queue_depth(queue),
                &domain,
                &data,
                shards,
                Strategy::Auto,
            )
            .map_err(service_cli_err)?;
    }
    println!(
        "serving {tenants} tenant(s), {n} tuples x {shards} shard(s) each \
         (quota {quota} frames, queue {queue})"
    );
    println!(
        "commands: petq <tenant> <cat> <tau> | topk <tenant> <cat> <k> | \
         stats <tenant> | tenants | quit"
    );

    let certain = |cat: u32| -> Result<Uda, CliError> {
        Uda::from_pairs([(CatId(cat), 1.0f32)])
            .map_err(|e| CliError::Usage(format!("bad category {cat}: {e}")))
    };
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        use std::io::BufRead;
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| CliError::io("<stdin>", e))?
            == 0
        {
            break; // EOF: the driving process closed our input
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        // One bad request must not take the service down: report and
        // keep serving (storage failures still end the session).
        let outcome: Result<(), CliError> = match parts.as_slice() {
            [] => Ok(()),
            ["quit"] | ["exit"] => break,
            ["tenants"] => {
                println!("{}", service.tenant_names().join(" "));
                Ok(())
            }
            ["stats", tenant] => match service.tenant_stats(tenant) {
                Ok(s) => {
                    println!(
                        "{tenant}: completed={} rejected={} waits={} \
                         p50_us={:.1} p95_us={:.1} p99_us={:.1}",
                        s.completed,
                        s.rejected,
                        s.metrics.admission_waits,
                        s.latency.p50_ns() as f64 / 1e3,
                        s.latency.p95_ns() as f64 / 1e3,
                        s.latency.p99_ns() as f64 / 1e3,
                    );
                    Ok(())
                }
                Err(e) => Err(service_cli_err(e)),
            },
            ["petq", tenant, cat, tau] => {
                let q = EqQuery::new(certain(parse(cat, "<cat>")?)?, parse(tau, "<tau>")?);
                match service.petq(tenant, &q) {
                    Ok(out) => {
                        println!(
                            "petq {tenant}: {} matches, {} postings, {} reads, wall {:.1}us",
                            out.matches.len(),
                            out.metrics.postings_scanned,
                            out.metrics.io.physical_reads,
                            out.wall_ns as f64 / 1e3,
                        );
                        for m in out.matches.iter().take(5) {
                            println!("  {}\t{:.6}", m.tid, m.score);
                        }
                        Ok(())
                    }
                    Err(e) => Err(service_cli_err(e)),
                }
            }
            ["topk", tenant, cat, k] => {
                let q = TopKQuery::new(certain(parse(cat, "<cat>")?)?, parse(k, "<k>")?);
                match service.top_k(tenant, &q) {
                    Ok(out) => {
                        println!(
                            "topk {tenant}: {} matches, {} postings, {} reads, wall {:.1}us",
                            out.matches.len(),
                            out.metrics.postings_scanned,
                            out.metrics.io.physical_reads,
                            out.wall_ns as f64 / 1e3,
                        );
                        for m in out.matches.iter().take(5) {
                            println!("  {}\t{:.6}", m.tid, m.score);
                        }
                        Ok(())
                    }
                    Err(e) => Err(service_cli_err(e)),
                }
            }
            other => {
                println!("? unknown command: {}", other.join(" "));
                Ok(())
            }
        };
        if let Err(e) = outcome {
            match e {
                CliError::Storage(s) => return Err(CliError::Storage(s)),
                recoverable => println!("error: {recoverable}"),
            }
        }
    }
    Ok(())
}

/// `uncat bench-service`: the service workload driver, as a subcommand.
fn bench_service(flags: &HashMap<String, String>) -> Result<(), CliError> {
    use uncat_bench::service::{
        report_to_json, service_sweep, validate_report, ServiceBenchConfig,
    };
    use uncat_bench::{Json, Scale};

    let bench_err = |e: uncat_bench::BenchError| CliError::Format {
        path: "bench-service".into(),
        detail: e.to_string(),
    };
    if let Some(path) = flags.get("validate") {
        let text = std::fs::read_to_string(path).map_err(|e| CliError::io(path.clone(), e))?;
        let doc = Json::parse(&text).map_err(|e| CliError::format(path.clone(), e))?;
        validate_report(&doc).map_err(bench_err)?;
        println!("{path}: valid");
        return Ok(());
    }

    let quick = flags.contains_key("quick");
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::from_env()
    };
    let mut config = if quick {
        ServiceBenchConfig::quick()
    } else {
        ServiceBenchConfig::full()
    };
    if let Some(t) = flags.get("tenants") {
        config.tenants = parse(t, "--tenants")?;
    }
    if let Some(s) = flags.get("shards") {
        config.shards = parse(s, "--shards")?;
    }
    let out = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("BENCH_service.json");

    let report = service_sweep(&scale, &config).map_err(bench_err)?;
    let doc = report_to_json(&report);
    validate_report(&doc).map_err(bench_err)?; // never write an invalid artifact
    std::fs::write(out, doc.render_pretty()).map_err(|e| CliError::io(out, e))?;
    for run in &report.runs {
        println!(
            "{:<8} {:<8} completed={:<6} rejected={:<4} waits={:<4} qps={:<9.1} \
             p50_us={:<9.1} p95_us={:<9.1} p99_us={:.1}",
            run.loop_mode,
            run.tenant,
            run.completed,
            run.rejected,
            run.waits,
            run.qps,
            run.hist.p50_ns() as f64 / 1e3,
            run.hist.p95_ns() as f64 / 1e3,
            run.hist.p99_ns() as f64 / 1e3,
        );
    }
    println!(
        "floor: {} postings floored vs {} floorless",
        report.floor.floored_postings, report.floor.floorless_postings
    );
    println!("wrote {out}");
    Ok(())
}
