//! Deep-web price integration — ordered-domain operators.
//!
//! The paper's web-integration motivation: "it may be known that the page
//! contains prices for data items … existing algorithms generate multiple
//! candidates for the value of an attribute, each with a likelihood".
//! Prices live in a *totally ordered* categorical domain (price buckets),
//! which enables the paper's §2 extension operators: `Pr(u > v)`,
//! `Pr(|u − v| ≤ c)`, and windowed equality.
//!
//! ```text
//! cargo run --example price_integration
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uncat::core::ordered::{pr_greater, pr_less, pr_within};
use uncat::prelude::*;
use uncat::query::ScanBaseline;

/// Price buckets: $10 steps from $0 to $500.
const BUCKETS: u32 = 50;

/// An extractor's price guess: 1–3 adjacent-ish candidate buckets.
fn extract_price(rng: &mut StdRng, true_bucket: u32) -> Uda {
    let mut b = uncat::core::UdaBuilder::new();
    b.push(CatId(true_bucket), rng.random_range(0.5..0.9f32))
        .unwrap();
    for delta in 1..=rng.random_range(1..3u32) {
        let neighbor = (true_bucket + delta).min(BUCKETS - 1);
        if neighbor != true_bucket {
            b.push(CatId(neighbor), rng.random_range(0.05..0.3f32))
                .unwrap();
        }
    }
    b.finish_normalized().unwrap()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(500);

    // Integrated catalog: 5 000 products with uncertain extracted prices.
    let catalog: Vec<(u64, Uda)> = (0..5000u64)
        .map(|id| {
            let bucket = rng.random_range(0..BUCKETS - 3);
            (id, extract_price(&mut rng, bucket))
        })
        .collect();

    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 256);
    let relation = ScanBaseline::build(&mut pool, catalog.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");

    // "Probably cheaper than $100": Pr(price < bucket 10) via Pr(u < v).
    let hundred = Uda::certain(CatId(10));
    let cheaper: Vec<_> = catalog
        .iter()
        .filter(|(_, u)| pr_less(u, &hundred) >= 0.9)
        .take(5)
        .collect();
    println!("First products with Pr(price < $100) ≥ 0.9:");
    for (id, u) in &cheaper {
        println!(
            "  product {id:4}  Pr = {:.2}  price dist {u:?}",
            pr_less(u, &hundred)
        );
    }

    // Same-price-within-$20 matching between two extractions of one item:
    // windowed equality Pr(|u − v| ≤ 2 buckets).
    let a = &catalog[0].1;
    println!("\nPr(|price₀ − priceᵢ| ≤ $20) for the first items:");
    for (id, u) in catalog.iter().take(5) {
        println!("  product {id:4}  Pr = {:.2}", pr_within(a, u, 2));
    }

    // The windowed threshold query as a relation-level operator
    // (cold cache, so the page reads are meaningful).
    pool.clear().expect("in-memory flush");
    pool.reset_stats();
    let matches = relation
        .window_petq(&mut pool, a, 2, 0.8)
        .expect("in-memory query");
    println!(
        "\n{} products are within $20 of product 0's price with Pr ≥ 0.8 \
         ({} page reads)",
        matches.len(),
        pool.stats().physical_reads
    );

    // Trichotomy sanity: less + greater + equal = 1 for unit-mass prices.
    let u = &catalog[1].1;
    let v = &catalog[2].1;
    let total = pr_less(u, v) + pr_greater(u, v) + uncat::core::equality::eq_prob(u, v);
    println!("\nPr(u<v) + Pr(u>v) + Pr(u=v) = {total:.4} (must be 1)");
}
