//! CRM complaint triage — the paper's motivating CRM workload at scale.
//!
//! A text classifier has labeled 20 000 customer complaints with uncertain
//! categories (the CRM1 simulator). The support team wants:
//!
//! 1. every complaint that is highly likely about a given category
//!    (PETQ with a certain query value);
//! 2. the 10 complaints most similar to a newly arrived one (PEQ-top-k);
//! 3. complaints with near-identical category distributions (DSTQ),
//!    e.g. to spot duplicate tickets.
//!
//! Both index structures answer each query; the example prints their disk
//! I/O side by side with the full-scan baseline.
//!
//! ```text
//! cargo run --release --example crm_triage
//! ```

use uncat::core::{DstQuery, EqQuery, TopKQuery};
use uncat::prelude::*;
use uncat::query::{ScanBaseline, UncertainIndex};
use uncat_inverted::{InvertedIndex, Strategy};
use uncat_pdrtree::{PdrConfig, PdrTree};
use uncat_query::InvertedBackend;

const N: usize = 20_000;

fn main() {
    let (domain, data) = uncat::datagen::crm::crm1(N, 7);
    println!("dataset: {N} complaints over {} categories", domain.size());

    // Build all three backends on one simulated disk.
    let store = InMemoryDisk::shared();
    let mut build_pool = BufferPool::with_capacity(store.clone(), 512);
    let inverted = InvertedBackend::with_strategy(
        InvertedIndex::build(
            domain.clone(),
            &mut build_pool,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .expect("in-memory build"),
        Strategy::Nra,
    );
    let pdr = PdrTree::build(
        domain.clone(),
        PdrConfig::default(),
        &mut build_pool,
        data.iter().map(|(t, u)| (*t, u)),
    )
    .expect("in-memory build");
    let scan = ScanBaseline::build(&mut build_pool, data.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");
    build_pool.flush().expect("in-memory flush");
    drop(build_pool);

    let backends: [(&str, &dyn UncertainIndex); 3] = [
        ("inverted", &inverted),
        ("pdr-tree", &pdr),
        ("full scan", &scan),
    ];

    // 1. All complaints highly likely about category #0.
    let petq = EqQuery::new(Uda::certain(CatId(0)), 0.8);
    println!("\nPETQ: Pr(category = #0) ≥ 0.8");
    for (name, idx) in backends {
        let mut pool = BufferPool::new(store.clone());
        let out = idx.petq(&mut pool, &petq).expect("in-memory query");
        println!(
            "  {name:9}  {:5} matches   {:6} page reads",
            out.len(),
            pool.stats().physical_reads
        );
    }

    // 2. The 10 complaints most similar to a fresh one.
    let fresh = data[N / 2].1.clone();
    let topk = TopKQuery::new(fresh.clone(), 10);
    println!("\nTop-10 complaints most likely equal to ticket #{}", N / 2);
    for (name, idx) in backends {
        let mut pool = BufferPool::new(store.clone());
        let out = idx.top_k(&mut pool, &topk).expect("in-memory query");
        println!(
            "  {name:9}  best Pr = {:.3}   {:6} page reads",
            out.first().map_or(0.0, |m| m.score),
            pool.stats().physical_reads
        );
    }

    // 3. Near-duplicate distributions (possible duplicate tickets).
    let dstq = DstQuery::new(fresh, 0.1, Divergence::L1);
    println!("\nDSTQ: L1 distance ≤ 0.1 from ticket #{}", N / 2);
    for (name, idx) in backends {
        let mut pool = BufferPool::new(store.clone());
        let out = idx.dstq(&mut pool, &dstq).expect("in-memory query");
        println!(
            "  {name:9}  {:5} near-duplicates   {:6} page reads",
            out.len(),
            pool.stats().physical_reads
        );
    }
}
