//! Probabilistic deduplication across two integrated databases.
//!
//! The paper's web-integration motivation: two sources describe the same
//! employees, but an extraction pipeline produced *uncertain* department
//! assignments for both. Find record pairs that probably refer to the
//! same placement — a probabilistic equality threshold join (PETJ,
//! Definition 6) — and the k most confident matches (PEJ-top-k), then
//! compare the index-nested-loop plan with the block-nested-loop baseline.
//!
//! ```text
//! cargo run --release --example dedup_join
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uncat::prelude::*;
use uncat::query::ScanBaseline;
use uncat_pdrtree::{PdrConfig, PdrTree};
use uncat_query::join::{block_nested_loop_petj, index_nested_loop_petj, index_top_k_pej};

const DEPARTMENTS: u32 = 24;
const SOURCE_A: usize = 150;
const SOURCE_B: usize = 5_000;

/// An extractor's department guess: one or two candidates.
fn extract(rng: &mut StdRng) -> Uda {
    let d1 = rng.random_range(0..DEPARTMENTS);
    if rng.random_range(0.0..1.0f64) < 0.35 {
        Uda::certain(CatId(d1))
    } else {
        let d2 = (d1 + rng.random_range(1..DEPARTMENTS)) % DEPARTMENTS;
        let p = rng.random_range(0.55..0.9f32);
        Uda::from_pairs([(CatId(d1), p), (CatId(d2), 1.0 - p)]).expect("valid pair")
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let domain = Domain::anonymous(DEPARTMENTS);

    let source_a: Vec<(u64, Uda)> = (0..SOURCE_A as u64)
        .map(|i| (i, extract(&mut rng)))
        .collect();
    let source_b: Vec<(u64, Uda)> = (0..SOURCE_B as u64)
        .map(|i| (100_000 + i, extract(&mut rng)))
        .collect();

    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 256);
    let index_b = PdrTree::build(
        domain.clone(),
        PdrConfig::default(),
        &mut pool,
        source_b.iter().map(|(t, u)| (*t, u)),
    )
    .expect("in-memory build");
    let scan_b = ScanBaseline::build(&mut pool, source_b.iter().map(|(t, u)| (*t, u)))
        .expect("in-memory build");
    pool.flush().expect("in-memory flush");

    let tau = 0.6;
    println!(
        "PETJ: {} × {} records, Pr(same department) ≥ {tau}",
        SOURCE_A, SOURCE_B
    );

    let mut inl_pool = BufferPool::new(store.clone());
    let inl =
        index_nested_loop_petj(&source_a, &index_b, &mut inl_pool, tau).expect("in-memory join");
    println!(
        "  index nested loop: {:6} pairs, {:6} page reads",
        inl.len(),
        inl_pool.stats().physical_reads
    );

    let mut bnl_pool = BufferPool::new(store.clone());
    let bnl =
        block_nested_loop_petj(&source_a, &scan_b, &mut bnl_pool, tau).expect("in-memory join");
    println!(
        "  block nested loop: {:6} pairs, {:6} page reads",
        bnl.len(),
        bnl_pool.stats().physical_reads
    );
    assert_eq!(
        inl.iter().map(|p| (p.left, p.right)).collect::<Vec<_>>(),
        bnl.iter().map(|p| (p.left, p.right)).collect::<Vec<_>>(),
        "both plans must produce the same join"
    );

    let mut topk_pool = BufferPool::new(store.clone());
    let best = index_top_k_pej(&source_a, &index_b, &mut topk_pool, 5).expect("in-memory join");
    println!("\nFive most confident matches:");
    for p in &best {
        println!("  A#{:<4} ↔ B#{:<7} Pr = {:.3}", p.left, p.right, p.score);
    }
}
