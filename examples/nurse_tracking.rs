//! RFID nurse tracking — the paper's introductory motivating application.
//!
//! "Nurses carry RFID tags as they move about a hospital. Numerous readers
//! located around the building report the presence of tags in their
//! vicinity. … the application may not be able to identify with certainty
//! a single location for the nurse." Each nurse's current location is a
//! UDA over rooms; the example answers the queries the study needs:
//!
//! * who is probably in the ICU right now (PETQ with a certain value);
//! * which pairs of nurses are probably co-located (PETJ);
//! * whose movement profile is closest to a given nurse's (DSQ-top-k
//!   flavored via DSTQ).
//!
//! ```text
//! cargo run --example nurse_tracking
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uncat::core::{DstQuery, EqQuery};
use uncat::prelude::*;
use uncat::query::UncertainIndex;
use uncat_pdrtree::{PdrConfig, PdrTree};
use uncat_query::join::index_nested_loop_petj;

const ROOMS: [&str; 8] = [
    "ICU",
    "ER",
    "Ward-A",
    "Ward-B",
    "Pharmacy",
    "Lab",
    "Break-Room",
    "Front-Desk",
];
const NURSES: usize = 40;

/// Simulate one reader sweep: a nurse is near 1–3 readers with signal
/// strengths that normalize into a location distribution.
fn observe(rng: &mut StdRng, home_room: usize) -> Uda {
    let mut b = uncat::core::UdaBuilder::new();
    // Strong signal near the nurse's actual room, spillover to neighbors.
    let spill = rng.random_range(0..2usize) + 1;
    b.push(CatId(home_room as u32), rng.random_range(0.5..0.9f32))
        .unwrap();
    for step in 1..=spill {
        let neighbor = (home_room + step) % ROOMS.len();
        b.push(CatId(neighbor as u32), rng.random_range(0.05..0.3f32))
            .unwrap();
    }
    b.finish_normalized().unwrap()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let rooms = Domain::from_labels(ROOMS);

    // Current positions: each nurse has a "true" room plus reader noise.
    let positions: Vec<(u64, Uda)> = (0..NURSES as u64)
        .map(|nurse| {
            let home = rng.random_range(0..ROOMS.len());
            (nurse, observe(&mut rng, home))
        })
        .collect();

    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::new(store.clone());
    let tree = PdrTree::build(
        rooms.clone(),
        PdrConfig::default(),
        &mut pool,
        positions.iter().map(|(t, u)| (*t, u)),
    )
    .expect("in-memory build");

    // Who is probably in the ICU?
    let icu = rooms.id_of("ICU").expect("known room");
    println!("Nurses with Pr(location = ICU) ≥ 0.5:");
    let q = EqQuery::new(Uda::certain(icu), 0.5);
    for m in UncertainIndex::petq(&tree, &mut pool, &q).expect("in-memory query") {
        println!("  nurse {:2}  Pr = {:.2}", m.tid, m.score);
    }

    // Probable co-locations (e.g. to study hand-off behaviour): PETJ of
    // the positions with themselves.
    println!("\nProbably co-located pairs (Pr ≥ 0.45):");
    let pairs = index_nested_loop_petj(&positions, &tree, &mut pool, 0.45).expect("in-memory join");
    let mut shown = 0;
    for p in pairs.iter().filter(|p| p.left < p.right) {
        println!(
            "  nurse {:2} & nurse {:2}  Pr = {:.2}",
            p.left, p.right, p.score
        );
        shown += 1;
        if shown == 8 {
            println!("  …");
            break;
        }
    }

    // Whose reading profile looks most like nurse 0's? (Distribution
    // similarity, not equality — the paper's §2 distinction.)
    println!("\nReading profiles within L1 ≤ 0.5 of nurse 0:");
    let dq = DstQuery::new(positions[0].1.clone(), 0.5, Divergence::L1);
    let near = UncertainIndex::dstq(&tree, &mut pool, &dq).expect("in-memory query");
    for m in near.iter().filter(|m| m.tid != 0).take(5) {
        println!("  nurse {:2}  L1 = {:.2}", m.tid, m.score);
    }

    println!("\ntotal I/O: {:?}", pool.stats());
}
