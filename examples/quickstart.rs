//! Quickstart: the paper's Table 1 as running code.
//!
//! Builds the two example relations (car problems, employee departments),
//! indexes them, and runs each query family.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use uncat::prelude::*;
use uncat::query::UncertainIndex;
use uncat_inverted::InvertedIndex;
use uncat_pdrtree::{PdrConfig, PdrTree};

fn main() {
    // --- Table 1(a): car complaints with an uncertain Problem attribute.
    let problems = Domain::from_labels(["Brake", "Tires", "Trans", "Suspension", "Exhaust"]);
    let p = |label: &str| problems.id_of(label).expect("known label");

    let cars: Vec<(&str, Uda)> = vec![
        (
            "Explorer",
            Uda::from_pairs([(p("Brake"), 0.5), (p("Tires"), 0.5)]).unwrap(),
        ),
        (
            "Camry",
            Uda::from_pairs([(p("Trans"), 0.2), (p("Suspension"), 0.8)]).unwrap(),
        ),
        (
            "Civic",
            Uda::from_pairs([(p("Exhaust"), 0.4), (p("Brake"), 0.6)]).unwrap(),
        ),
        ("Caravan", Uda::from_pairs([(p("Trans"), 1.0)]).unwrap()),
    ];

    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::new(store.clone());
    let index = InvertedIndex::build(
        problems.clone(),
        &mut pool,
        cars.iter().enumerate().map(|(i, (_, u))| (i as u64, u)),
    )
    .expect("in-memory build");

    // "Report all the tuples which are highly likely to have a brake
    // problem (Problem = Brake)."
    println!("Cars with Pr(Problem = Brake) ≥ 0.5:");
    let query = uncat::core::EqQuery::new(Uda::certain(p("Brake")), 0.5);
    for m in index
        .petq(&mut pool, &query, uncat::inverted::Strategy::ColumnPruning)
        .expect("in-memory query")
    {
        println!("  {:10}  Pr = {:.2}", cars[m.tid as usize].0, m.score);
    }

    // --- Table 1(b): employees with an uncertain Department attribute.
    let departments = Domain::from_labels(["Shoes", "Sales", "Clothes", "Hardware", "HR"]);
    let d = |label: &str| departments.id_of(label).expect("known label");

    let employees: Vec<(&str, Uda)> = vec![
        (
            "Jim",
            Uda::from_pairs([(d("Shoes"), 0.5), (d("Sales"), 0.5)]).unwrap(),
        ),
        (
            "Tom",
            Uda::from_pairs([(d("Sales"), 0.4), (d("Clothes"), 0.6)]).unwrap(),
        ),
        (
            "Lin",
            Uda::from_pairs([(d("Hardware"), 0.6), (d("Sales"), 0.4)]).unwrap(),
        ),
        ("Nancy", Uda::from_pairs([(d("HR"), 1.0)]).unwrap()),
    ];

    let tree = PdrTree::build(
        departments.clone(),
        PdrConfig::default(),
        &mut pool,
        employees
            .iter()
            .enumerate()
            .map(|(i, (_, u))| (i as u64, u)),
    )
    .expect("in-memory build");

    // "Which pairs of employees have a given minimum probability of
    // potentially working for the same department?" — probe each employee
    // against the tree (a PETJ).
    println!("\nEmployee pairs with Pr(same department) ≥ 0.2:");
    for (i, (name, uda)) in employees.iter().enumerate() {
        let q = uncat::core::EqQuery::new(uda.clone(), 0.2);
        for m in UncertainIndex::petq(&tree, &mut pool, &q).expect("in-memory query") {
            if m.tid as usize > i {
                println!(
                    "  {name:6} & {:6}  Pr = {:.2}",
                    employees[m.tid as usize].0, m.score
                );
            }
        }
    }

    // The paper's §2 example: distributional similarity is NOT equality.
    let flat = Uda::from_pairs((0..5).map(|i| (CatId(i), 0.2))).unwrap();
    println!(
        "\nPr(flat = flat) = {:.2}  (identical distributions, low equality)",
        uncat::core::equality::eq_prob(&flat, &flat)
    );
    let u = Uda::from_pairs([(CatId(0), 0.6), (CatId(1), 0.4)]).unwrap();
    let v = Uda::from_pairs([(CatId(0), 0.4), (CatId(1), 0.6)]).unwrap();
    println!(
        "Pr(u = v)       = {:.2}  (different distributions, higher equality)",
        uncat::core::equality::eq_prob(&u, &v)
    );

    // Top-k: the 2 employees most likely to share Jim's department.
    println!("\nMost similar colleagues to Jim (top-2 by equality probability):");
    let topk = uncat::core::TopKQuery::new(employees[0].1.clone(), 3);
    let similar = UncertainIndex::top_k(&tree, &mut pool, &topk).expect("in-memory query");
    for m in similar.into_iter().filter(|m| m.tid != 0).take(2) {
        println!("  {:6}  Pr = {:.2}", employees[m.tid as usize].0, m.score);
    }

    println!("\nI/O so far: {:?}", pool.stats());
}
