//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors minimal implementations of its few external
//! dependencies (see `vendor/README.md`). This crate reimplements the
//! subset of proptest the test-suite uses: the [`proptest!`] macro,
//! range/tuple/`any` strategies, `prop::collection::{vec, btree_map}`,
//! [`Strategy::prop_map`], and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for an offline test
//! harness: failing cases are **not shrunk** (the panic reports the
//! assertion only), and case generation uses a fixed per-test seed
//! derived from the test name, so runs are fully deterministic.
//!
//! Upstream's `<test-file>.proptest-regressions` files are honoured in
//! spirit: before the seeded case loop, every `cc <hex>` line in the
//! sibling regression file is folded to a seed and replayed as an extra
//! case (see [`regression_seeds`]). The stand-in cannot reproduce the
//! exact upstream values behind a hash, but checked-in failure seeds keep
//! exercising extra deterministic cases on every `cargo test` run.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// Derive the deterministic per-test generator from the test's name.
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Build the RNG replaying one recorded regression seed.
pub fn rng_from_seed(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// Seeds recorded in the regression file next to `source_file` (the
/// `file!()` of the invoking test). Upstream proptest persists failures
/// as `cc <hex> # shrinks to ...` lines in
/// `<test-file>.proptest-regressions`; each hex blob is folded to a
/// replay seed. A missing file means no recorded regressions.
pub fn regression_seeds(source_file: &str) -> Vec<u64> {
    let path = std::path::Path::new(source_file).with_extension("proptest-regressions");
    match std::fs::read_to_string(path) {
        Ok(content) => parse_regression_seeds(&content),
        Err(_) => Vec::new(),
    }
}

/// Parse `cc <hex>` lines into replay seeds (see [`regression_seeds`]).
pub fn parse_regression_seeds(content: &str) -> Vec<u64> {
    content
        .lines()
        .filter_map(|line| {
            let mut words = line.split_whitespace();
            if words.next() != Some("cc") {
                return None; // comments, blanks, unknown directives
            }
            let hex = words.next()?;
            // FNV-1a over the hex text: upstream seeds are 32-byte blobs,
            // ours are u64s, so fold all the entropy down deterministically.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in hex.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Some(h)
        })
        .collect()
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical full-domain strategy (the `any::<T>()` form).
pub trait ArbitraryPrim: Sized {
    /// Sample uniformly over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_prim {
    ($($t:ty => $e:expr),*) => {$(
        impl ArbitraryPrim for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $e;
                f(rng)
            }
        }
    )*};
}

arbitrary_prim! {
    u8 => |rng| rng.random_range(0..=u8::MAX),
    u16 => |rng| rng.random_range(0..=u16::MAX),
    u32 => |rng| rng.random_range(0..=u32::MAX),
    u64 => |rng| rng.random_range(0..=u64::MAX),
    bool => |rng| rng.random_range(0..2u8) == 1,
    f32 => |rng| rng.random_range(-1e6..1e6f32),
    f64 => |rng| rng.random_range(-1e12..1e12f64)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryPrim> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical full-domain strategy for `T`.
pub fn any<T: ArbitraryPrim>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Size specification accepted by the collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.lo..=self.hi)
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with size in `size`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generate maps with keys from `key`, values from `value`, and entry
    /// count in `size` (the key domain must be large enough to reach the
    /// minimum).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < 100 * (n + 1) {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.size.lo,
                "btree_map strategy could not reach the minimum size {} (key domain too small?)",
                self.size.lo
            );
            out
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Module alias so `prop::collection::vec(..)` resolves as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a proptest case (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a proptest case (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declare property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a regular `#[test]` running `cases` seeded iterations.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(#[test] fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                // Recorded failures replay first, one case per seed.
                for __seed in $crate::regression_seeds(file!()) {
                    let mut __rng = $crate::rng_from_seed(__seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 1u32..10, (a, b) in (0u8..4, 0.0f64..1.0)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 2..7),
            m in prop::collection::btree_map(0u32..100, 0.0f32..1.0, 1..=5),
        ) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!((1..=5).contains(&m.len()));
        }

        #[test]
        fn prop_map_transforms(mut s in (0u64..50).prop_map(|x| x * 2)) {
            s += 1;
            prop_assert!(s % 2 == 1 && s < 101);
        }
    }

    #[test]
    fn regression_seed_parsing_skips_everything_but_cc_lines() {
        let file = "\
# Seeds for failure cases proptest has generated in the past.
cc 79ea9dbfde74cd154cdcfb911581f6b22e66f1365779ba8a89a7efc9ba2273e5 # shrinks to ops = [(0, [])]

xx not-a-directive
cc deadbeef
";
        let seeds = crate::parse_regression_seeds(file);
        assert_eq!(seeds.len(), 2, "two cc lines, two seeds");
        assert_eq!(seeds, crate::parse_regression_seeds(file), "deterministic");
        assert_ne!(seeds[0], seeds[1], "distinct blobs, distinct seeds");
        assert!(crate::parse_regression_seeds("# only comments\n").is_empty());
    }

    #[test]
    fn missing_regression_file_means_no_replays() {
        assert!(crate::regression_seeds("src/does-not-exist.rs").is_empty());
    }

    #[test]
    fn replayed_seed_reproduces_its_case() {
        let s = prop::collection::vec(0u32..1000, 5..6);
        let seeds = crate::parse_regression_seeds("cc 79ea9dbf\n");
        let mut a = crate::rng_from_seed(seeds[0]);
        let mut b = crate::rng_from_seed(seeds[0]);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let s = prop::collection::vec(0u32..1000, 5..6);
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
