//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this workspace has no network access to a
//! crates registry, so the handful of external dependencies are provided
//! as minimal in-tree implementations (see `vendor/README.md`). This one
//! wraps `std::sync` primitives behind the `parking_lot` API surface the
//! workspace actually uses: `Mutex::lock`, `RwLock::read`, and
//! `RwLock::write`, none of which return poison errors.

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutex whose `lock` never fails: poisoning is ignored, matching
/// `parking_lot` semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
