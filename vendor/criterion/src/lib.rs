//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors minimal implementations of its few external
//! dependencies (see `vendor/README.md`). This crate keeps the bench
//! targets compiling and producing useful wall-clock numbers: each
//! benchmark runs a short warm-up plus a fixed number of timed
//! iterations and prints the fastest observed time. There is no
//! statistical analysis, HTML report, or regression comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, constructed by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Run one parameterised benchmark under this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark: `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Build an id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    samples: usize,
    best: Option<Duration>,
}

impl Bencher {
    /// Time `f`, keeping the fastest of the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up to populate caches and the buffer pool.
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            let elapsed = start.elapsed();
            if self.best.is_none_or(|b| elapsed < b) {
                self.best = Some(elapsed);
            }
        }
    }
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        best: None,
    };
    f(&mut b);
    match b.best {
        Some(t) => println!("{label:<50} fastest of {samples}: {t:>12.3?}"),
        None => println!("{label:<50} (no measurement)"),
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Define a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_every_benchmark() {
        benches();
    }
}
