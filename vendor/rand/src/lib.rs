//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors minimal implementations of its few external
//! dependencies (see `vendor/README.md`). This crate provides exactly the
//! surface the workspace uses:
//!
//! - [`SeedableRng::seed_from_u64`] for reproducible generators,
//! - [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — *not* the
//!   upstream ChaCha12 stream, so sequences differ from real `rand`, but
//!   every consumer in this workspace only relies on determinism and
//!   statistical quality, not on exact upstream streams),
//! - [`Rng::random_range`] over integer and float ranges.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range`. Panics on an empty range, like
    /// upstream `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// SplitMix64 — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Widening-multiply bounded sample in `[0, n)`; bias is `O(n / 2^64)`,
/// immaterial for the workspace's statistical tests.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    (((rng.next_u64() as u128) * (n as u128)) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty, $bits:expr, $shift:expr);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> $shift) as $t / (1u64 << $bits) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> $shift) as $t / ((1u64 << $bits) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, 24, 40; f64, 53, 11);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Upstream `StdRng` is ChaCha12; this stand-in only promises a
    /// deterministic, statistically solid stream per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero words from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i = rng.random_range(3..17u32);
            assert!((3..17).contains(&i));
            let j = rng.random_range(1..=6usize);
            assert!((1..=6).contains(&j));
            let f = rng.random_range(0.25..0.75f32);
            assert!((0.25..0.75).contains(&f));
            let d = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(d > 0.0 && d < 1.0);
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.random_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
