#!/usr/bin/env bash
# Markdown link checker: every relative link target in the repo's
# documentation must exist. Pure shell + grep, no dependencies, so it
# runs identically in CI and locally:
#
#   scripts/check_links.sh [file.md ...]     # default: all tracked *.md
#
# Checked: inline links/images `[text](target)`. External schemes
# (http/https/mailto) and pure in-page anchors (#...) are skipped;
# a relative target's anchor suffix is stripped before the existence
# check. Exits non-zero listing every broken link.
set -u

if [ "$#" -gt 0 ]; then
    files="$*"
elif git rev-parse --git-dir >/dev/null 2>&1; then
    files=$(git ls-files '*.md')
else
    files=$(find . -name '*.md' -not -path './target/*' -not -path './.git/*')
fi

fail=0
for f in $files; do
    [ -f "$f" ] || continue
    dir=$(dirname "$f")
    # One inline link target per match; tolerates several links per line.
    targets=$(grep -o ']([^)]*)' "$f" 2>/dev/null | sed 's/^](//; s/)$//')
    for t in $targets; do
        case "$t" in
        http://* | https://* | mailto:*) continue ;;
        '#'*) continue ;;
        esac
        path=${t%%#*}                      # strip anchor
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "BROKEN: $f -> $t"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "markdown link check failed" >&2
    exit 1
fi
echo "markdown links OK"
