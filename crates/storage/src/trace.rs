//! Latency tracing: per-query span trees and mergeable latency histograms.
//!
//! The counter layer ([`crate::QueryMetrics`]) answers *how much work* a
//! query did; this module answers *where the time went*. It is built from
//! three pieces, all dependency-free:
//!
//! * [`Clock`] — a nanosecond time source. [`MonotonicClock`] wraps
//!   `std::time::Instant`; [`FakeClock`] is a deterministic counter so
//!   tier-1 tests can pin exact span shapes without ever asserting on real
//!   wall-clock durations.
//! * [`Span`]s — one record per traced phase ([`Phase`]), carrying a
//!   parent link so the records of one query form a tree (plan → posting
//!   scan → verification, …). Recording is two clock reads and one `Vec`
//!   push per span.
//! * [`LatencyHistogram`] — log₂-bucketed durations with p50/p95/p99/max.
//!   Histograms merge by field-wise addition, so per-worker histograms
//!   from a parallel batch sum *exactly* to the batch histogram, the same
//!   additivity contract `QueryMetrics` counters obey.
//!
//! The whole subsystem is opt-in per query: a disabled [`Tracer`] is a
//! single `None` check on every instrumentation point — no clock read, no
//! allocation, no counter update (see `docs/METRICS.md`, "Timing").

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond time source.
///
/// Shared behind `Arc<dyn Clock>` so one clock can time every pool and
/// worker of a batch on a common origin.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin. Must never decrease.
    fn now_ns(&self) -> u64;
}

/// Real time: nanoseconds since the clock was created
/// (`std::time::Instant` underneath, so it is monotonic).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic clock for tests: time advances only when told to, or by
/// a fixed step per reading (`auto_step`), never by wall time. Atomic so
/// one instance can serve parallel workers.
#[derive(Debug, Default)]
pub struct FakeClock {
    now: AtomicU64,
    auto_step: u64,
}

impl FakeClock {
    /// A clock stuck at 0 until advanced.
    pub fn new() -> FakeClock {
        FakeClock::default()
    }

    /// A clock that advances itself by `step_ns` on every reading — every
    /// traced interval then has a positive, reproducible duration.
    pub fn auto(step_ns: u64) -> FakeClock {
        FakeClock {
            now: AtomicU64::new(0),
            auto_step: step_ns,
        }
    }

    /// Advance the clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.auto_step, Ordering::Relaxed)
    }
}

/// The traced execution phases. One query produces a tree of these, rooted
/// at [`Phase::Query`] (or [`Phase::Mutation`] on the durable write path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Phase {
    /// Root span of a read query.
    Query,
    /// Query preparation: opening posting cursors, seeding frontiers.
    Plan,
    /// Sequential posting-list consumption (brute / row / column pruning).
    PostingScan,
    /// Sorted-frontier upkeep in highest-prob-first drains.
    FrontierMaintenance,
    /// The NRA drain loop: bound maintenance and candidate sweeps.
    NraDrain,
    /// Random-access candidate verification against the tuple heap.
    Verification,
    /// Probing one side of a join for one outer tuple/pair.
    JoinProbe,
    /// PDR-tree node traversal (threshold or best-first).
    TreeTraversal,
    /// Full tuple-heap scan (the DSTQ/KL fallback plan).
    HeapScan,
    /// Root span of a durable mutation (insert/delete).
    Mutation,
    /// Checkpoint: writing and syncing the redo journal.
    CheckpointJournal,
    /// Checkpoint: installing dirty pages into the durable store.
    CheckpointInstall,
    /// Checkpoint: committing the snapshot.
    CheckpointCommit,
    /// Checkpoint: WAL reset and epoch roll.
    CheckpointReset,
}

impl Phase {
    /// Stable display name (used by the tree renderer and Chrome export).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Query => "query",
            Phase::Plan => "plan",
            Phase::PostingScan => "posting_scan",
            Phase::FrontierMaintenance => "frontier_maintenance",
            Phase::NraDrain => "nra_drain",
            Phase::Verification => "verification",
            Phase::JoinProbe => "join_probe",
            Phase::TreeTraversal => "tree_traversal",
            Phase::HeapScan => "heap_scan",
            Phase::Mutation => "mutation",
            Phase::CheckpointJournal => "checkpoint_journal",
            Phase::CheckpointInstall => "checkpoint_install",
            Phase::CheckpointCommit => "checkpoint_commit",
            Phase::CheckpointReset => "checkpoint_reset",
        }
    }
}

/// Handle to an open span. [`SpanId::NONE`] is the disabled-tracer
/// sentinel: ending it is a no-op, so instrumentation points never need
/// to branch on whether tracing is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The "no span" sentinel returned by a disabled tracer.
    pub const NONE: SpanId = SpanId(u32::MAX);
}

/// One recorded phase interval. `parent` is the index of the enclosing
/// span in [`QueryTrace::spans`] (`u32::MAX` for a root).
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// What was being done.
    pub phase: Phase,
    /// Index of the enclosing span, or `u32::MAX` for a root.
    pub parent: u32,
    /// Start time, clock nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 until the span is ended).
    pub dur_ns: u64,
}

impl Span {
    /// Whether this span has no parent.
    pub fn is_root(&self) -> bool {
        self.parent == u32::MAX
    }
}

/// Number of log₂ buckets in a [`LatencyHistogram`]: bucket `i` holds
/// durations whose bit length is `i`, i.e. `[2^(i-1), 2^i)` ns for
/// `i ≥ 1` and the single value 0 for bucket 0. 64 buckets cover the full
/// `u64` nanosecond range (≈ 584 years), so recording can never overflow
/// into a sentinel bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A mergeable latency histogram with power-of-two nanosecond buckets.
///
/// Quantile estimates return the *upper edge* of the bucket holding the
/// requested rank, so an estimate is never below the true quantile and
/// overshoots by less than the bucket width (a factor of 2). `max` and
/// `sum`/`count` are exact. Merging adds every field; it is associative
/// and commutative, so any grouping of per-worker histograms produces the
/// identical batch histogram.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// The bucket index a duration falls into (its bit length).
    pub fn bucket_of(ns: u64) -> usize {
        (u64::BITS - ns.leading_zeros()) as usize
    }

    /// Inclusive upper edge of bucket `i` in nanoseconds.
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one duration.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns).min(HISTOGRAM_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded durations (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Exact maximum recorded duration (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean duration in nanoseconds (`NaN` when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper-edge estimate of quantile `q` in `[0, 1]`. Returns 0 for an
    /// empty histogram. The estimate is ≥ the exact quantile and within
    /// the containing bucket's width of it; the top bucket reports the
    /// exact max instead of its open upper edge.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median estimate (upper-edge, see [`quantile_ns`](Self::quantile_ns)).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Field-wise merge: `self` becomes the histogram of both inputs'
    /// samples. Associative and commutative.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Per-bucket counts (index = bit length of the duration).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }
}

/// The boundary-crossing histograms a trace collects alongside its spans:
/// each buffer-pool physical read/write and each WAL append/fsync is one
/// sample. Merging is field-wise, like [`crate::QueryMetrics::merge`].
#[derive(Debug, Clone, Default)]
pub struct TraceHistograms {
    /// Buffer-pool operations that performed ≥ 1 physical page read.
    pub buffer_read: LatencyHistogram,
    /// Buffer-pool operations that performed ≥ 1 physical page write
    /// (eviction write-back or flush).
    pub buffer_write: LatencyHistogram,
    /// WAL appends (group commit included; an append that triggered an
    /// fsync carries the fsync time).
    pub wal_append: LatencyHistogram,
    /// WAL appends/flushes that performed a durable sync. The sampled
    /// duration is the whole append call, so `wal_fsync` isolates *which*
    /// operations paid for a sync, not sync time net of buffering.
    pub wal_fsync: LatencyHistogram,
}

impl TraceHistograms {
    /// Merge another trace's histograms into this one (field-wise).
    pub fn merge(&mut self, other: &TraceHistograms) {
        self.buffer_read.merge(&other.buffer_read);
        self.buffer_write.merge(&other.buffer_write);
        self.wal_append.merge(&other.wal_append);
        self.wal_fsync.merge(&other.wal_fsync);
    }

    /// Total nanoseconds spent in buffer-pool physical I/O (reads +
    /// writes): the time the span tree must account for.
    pub fn io_total_ns(&self) -> u64 {
        self.buffer_read
            .sum_ns()
            .saturating_add(self.buffer_write.sum_ns())
    }

    /// Named views of the four histograms, display order.
    pub fn named(&self) -> [(&'static str, &LatencyHistogram); 4] {
        [
            ("buffer_read", &self.buffer_read),
            ("buffer_write", &self.buffer_write),
            ("wal_append", &self.wal_append),
            ("wal_fsync", &self.wal_fsync),
        ]
    }
}

/// Live recording state: only exists while a tracer is enabled, so the
/// disabled path carries one machine word.
#[derive(Debug)]
struct TraceState {
    clock: Arc<dyn Clock>,
    spans: Vec<Span>,
    stack: Vec<u32>,
    hist: TraceHistograms,
}

impl std::fmt::Debug for dyn Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Clock")
    }
}

/// Per-query span/histogram recorder. Disabled by default; every method
/// on a disabled tracer is a branch on `None` and nothing else — no clock
/// read, no allocation (the zero-overhead contract, tested in
/// `trace::tests` and `tests/trace.rs`).
#[derive(Debug, Default)]
pub struct Tracer {
    state: Option<Box<TraceState>>,
}

impl Tracer {
    /// A disabled tracer (the default for every pool).
    pub fn disabled() -> Tracer {
        Tracer { state: None }
    }

    /// An enabled tracer recording against `clock`.
    pub fn enabled(clock: Arc<dyn Clock>) -> Tracer {
        Tracer {
            state: Some(Box::new(TraceState {
                clock,
                spans: Vec::new(),
                stack: Vec::new(),
                hist: TraceHistograms::default(),
            })),
        }
    }

    /// Whether spans and histograms are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Open a span of `phase` under the innermost open span.
    pub fn begin(&mut self, phase: Phase) -> SpanId {
        let Some(state) = self.state.as_deref_mut() else {
            return SpanId::NONE;
        };
        let parent = state.stack.last().copied().unwrap_or(u32::MAX);
        let id = state.spans.len() as u32;
        state.spans.push(Span {
            phase,
            parent,
            start_ns: state.clock.now_ns(),
            dur_ns: 0,
        });
        state.stack.push(id);
        SpanId(id)
    }

    /// Close span `id` (and any spans opened inside it and not yet
    /// closed). A [`SpanId::NONE`] is ignored, as is an id that was
    /// already closed.
    pub fn end(&mut self, id: SpanId) {
        let Some(state) = self.state.as_deref_mut() else {
            return;
        };
        if id == SpanId::NONE {
            return;
        }
        let Some(pos) = state.stack.iter().rposition(|&s| s == id.0) else {
            return;
        };
        let now = state.clock.now_ns();
        // Closing an outer span force-closes unclosed inner ones at the
        // same instant, keeping the tree well-nested on early return.
        for &open in &state.stack[pos..] {
            let span = &mut state.spans[open as usize];
            span.dur_ns = now.saturating_sub(span.start_ns);
        }
        state.stack.truncate(pos);
    }

    /// The current clock reading, or `None` when disabled. Call sites
    /// timing a foreign operation (a WAL append) bracket it with two
    /// `now_ns` calls and feed [`record_wal`](Self::record_wal).
    pub fn now_ns(&self) -> Option<u64> {
        self.state.as_deref().map(|s| s.clock.now_ns())
    }

    /// Record a buffer-pool operation that performed physical I/O.
    pub fn record_io(&mut self, dur_ns: u64, read: bool, write: bool) {
        if let Some(state) = self.state.as_deref_mut() {
            if read {
                state.hist.buffer_read.record(dur_ns);
            }
            if write {
                state.hist.buffer_write.record(dur_ns);
            }
        }
    }

    /// Record a WAL append; `synced` marks the appends that performed a
    /// durable sync (group-commit leaders).
    pub fn record_wal(&mut self, dur_ns: u64, synced: bool) {
        if let Some(state) = self.state.as_deref_mut() {
            state.hist.wal_append.record(dur_ns);
            if synced {
                state.hist.wal_fsync.record(dur_ns);
            }
        }
    }

    /// Record a standalone WAL sync (an explicit flush with no append).
    pub fn record_wal_sync(&mut self, dur_ns: u64) {
        if let Some(state) = self.state.as_deref_mut() {
            state.hist.wal_fsync.record(dur_ns);
        }
    }

    /// Finish recording: close any open spans and return the trace,
    /// leaving the tracer disabled. `None` if the tracer was disabled.
    pub fn take(&mut self) -> Option<QueryTrace> {
        let mut state = self.state.take()?;
        if !state.stack.is_empty() {
            let now = state.clock.now_ns();
            for &open in &state.stack {
                let span = &mut state.spans[open as usize];
                span.dur_ns = now.saturating_sub(span.start_ns);
            }
            state.stack.clear();
        }
        Some(QueryTrace {
            spans: state.spans,
            hist: state.hist,
        })
    }
}

/// The finished trace of one query: a span tree plus the I/O and WAL
/// latency histograms collected while it ran.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// Recorded spans; a span's `parent` indexes into this vector.
    pub spans: Vec<Span>,
    /// Boundary-crossing latency histograms.
    pub hist: TraceHistograms,
}

impl QueryTrace {
    /// Total traced time: the summed duration of root spans.
    pub fn total_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.is_root())
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Self time of span `i`: its duration minus its children's.
    pub fn self_ns(&self, i: usize) -> u64 {
        let child_total: u64 = self
            .spans
            .iter()
            .filter(|s| s.parent as usize == i)
            .map(|s| s.dur_ns)
            .sum();
        self.spans[i].dur_ns.saturating_sub(child_total)
    }

    /// Merge another trace into this one: spans are appended (parent
    /// links re-based) and histograms added. Used to fold per-worker
    /// traces into a batch trace.
    pub fn merge(&mut self, other: &QueryTrace) {
        let base = self.spans.len() as u32;
        for s in &other.spans {
            let mut s = *s;
            if s.parent != u32::MAX {
                s.parent += base;
            }
            self.spans.push(s);
        }
        self.hist.merge(&other.hist);
    }

    /// Render the span tree, one line per span with total and self time,
    /// followed by the histogram summary. The tree is indented by depth;
    /// sibling order is recording order.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            if s.is_root() {
                roots.push(i);
            } else {
                children[s.parent as usize].push(i);
            }
        }
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&r| (r, 0)).collect();
        while let Some((i, depth)) = stack.pop() {
            let s = &self.spans[i];
            let _ = writeln!(
                out,
                "{:indent$}{:<22} total {:>12}  self {:>12}",
                "",
                s.phase.name(),
                fmt_ns(s.dur_ns),
                fmt_ns(self.self_ns(i)),
                indent = depth * 2,
            );
            for &c in children[i].iter().rev() {
                stack.push((c, depth + 1));
            }
        }
        let io = self.hist.io_total_ns();
        let _ = writeln!(
            out,
            "traced total {}  buffer-pool i/o {}",
            fmt_ns(self.total_ns()),
            fmt_ns(io)
        );
        for (name, h) in self.hist.named() {
            if h.count() > 0 {
                let _ = writeln!(
                    out,
                    "  {:<12} n={:<6} p50 {:>10} p95 {:>10} p99 {:>10} max {:>10}",
                    name,
                    h.count(),
                    fmt_ns(h.p50_ns()),
                    fmt_ns(h.p95_ns()),
                    fmt_ns(h.p99_ns()),
                    fmt_ns(h.max_ns())
                );
            }
        }
        out
    }

    /// Serialize as a Chrome trace-event JSON array (`chrome://tracing`,
    /// Perfetto): complete events (`"ph":"X"`) with microsecond
    /// timestamps.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let parent = if s.is_root() { -1 } else { s.parent as i64 };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"uncat\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\"args\":{{\"span\":{},\"parent\":{}}}}}",
                s.phase.name(),
                s.start_ns as f64 / 1000.0,
                s.dur_ns as f64 / 1000.0,
                i,
                parent,
            );
        }
        out.push(']');
        out
    }
}

/// Human-readable nanosecond count (`999ns`, `12.3µs`, `4.56ms`, `1.23s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_clock_is_deterministic() {
        let c = FakeClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(5);
        assert_eq!(c.now_ns(), 5);
        let auto = FakeClock::auto(10);
        assert_eq!(auto.now_ns(), 0);
        assert_eq!(auto.now_ns(), 10);
        assert_eq!(auto.now_ns(), 20);
    }

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023), 10);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 64 - 1 + 1);
    }

    #[test]
    fn quantiles_bound_exact_values_within_bucket_width() {
        let mut h = LatencyHistogram::new();
        let mut vals: Vec<u64> = (1..=1000u64).map(|i| i * 7 + 3).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let exact = vals[((q * vals.len() as f64).ceil() as usize).max(1) - 1];
            let est = h.quantile_ns(q);
            assert!(est >= exact, "q={q}: estimate {est} < exact {exact}");
            assert!(
                est < exact.saturating_mul(2).max(2),
                "q={q}: estimate {est} ≥ 2×exact {exact}"
            );
        }
        assert_eq!(h.max_ns(), *vals.last().unwrap());
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn merge_equals_recording_all_samples_in_one_histogram() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * i % 10_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.buckets(), both.buckets());
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum_ns(), both.sum_ns());
        assert_eq!(a.max_ns(), both.max_ns());
        assert_eq!(a.p99_ns(), both.p99_ns());
    }

    #[test]
    fn span_tree_nests_and_self_times_add_up() {
        let clock = Arc::new(FakeClock::new());
        let mut t = Tracer::enabled(clock.clone());
        let root = t.begin(Phase::Query);
        clock.advance(10);
        let plan = t.begin(Phase::Plan);
        clock.advance(30);
        t.end(plan);
        let scan = t.begin(Phase::PostingScan);
        clock.advance(50);
        t.end(scan);
        clock.advance(10);
        t.end(root);
        let trace = t.take().unwrap();
        assert!(!t.is_enabled());
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.spans[0].phase, Phase::Query);
        assert!(trace.spans[0].is_root());
        assert_eq!(trace.spans[1].parent, 0);
        assert_eq!(trace.spans[2].parent, 0);
        assert_eq!(trace.spans[0].dur_ns, 100);
        assert_eq!(trace.spans[1].dur_ns, 30);
        assert_eq!(trace.spans[2].dur_ns, 50);
        assert_eq!(trace.self_ns(0), 20);
        // Children's totals plus the parent's self time equal the total.
        assert_eq!(trace.total_ns(), 100);
    }

    #[test]
    fn ending_an_outer_span_closes_inner_spans() {
        let clock = Arc::new(FakeClock::new());
        let mut t = Tracer::enabled(clock.clone());
        let root = t.begin(Phase::Query);
        let inner = t.begin(Phase::Verification);
        clock.advance(40);
        t.end(root); // inner never explicitly ended
        let trace = t.take().unwrap();
        assert_eq!(trace.spans[1].dur_ns, 40);
        assert_eq!(trace.spans[0].dur_ns, 40);
        let _ = inner;
    }

    #[test]
    fn disabled_tracer_records_nothing_and_allocates_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(std::mem::size_of::<Tracer>(), std::mem::size_of::<usize>());
        let id = t.begin(Phase::Query);
        assert_eq!(id, SpanId::NONE);
        t.record_io(100, true, false);
        t.record_wal(100, true);
        t.end(id);
        assert!(t.now_ns().is_none());
        assert!(t.take().is_none());
    }

    #[test]
    fn trace_merge_rebases_parents_and_sums_histograms() {
        let clock = Arc::new(FakeClock::auto(1));
        let mut t1 = Tracer::enabled(clock.clone());
        let r = t1.begin(Phase::Query);
        let c = t1.begin(Phase::Plan);
        t1.end(c);
        t1.end(r);
        t1.record_io(10, true, false);
        let mut trace = t1.take().unwrap();

        let mut t2 = Tracer::enabled(clock);
        let r2 = t2.begin(Phase::Query);
        t2.end(r2);
        t2.record_io(20, true, true);
        let other = t2.take().unwrap();

        trace.merge(&other);
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.spans[2].parent, u32::MAX);
        assert_eq!(trace.hist.buffer_read.count(), 2);
        assert_eq!(trace.hist.buffer_write.count(), 1);
        assert_eq!(trace.hist.io_total_ns(), 50);
    }

    #[test]
    fn render_and_chrome_export_cover_every_span() {
        let clock = Arc::new(FakeClock::auto(100));
        let mut t = Tracer::enabled(clock);
        let r = t.begin(Phase::Query);
        let v = t.begin(Phase::Verification);
        t.end(v);
        t.end(r);
        t.record_io(64, true, false);
        let trace = t.take().unwrap();
        let tree = trace.render_tree();
        assert!(tree.contains("query"));
        assert!(tree.contains("verification"));
        assert!(tree.contains("buffer_read"));
        let json = trace.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"verification\""));
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
