//! A paged B+tree with fixed-width keys and values.
//!
//! The inverted index stores posting lists "organized as dynamic structures
//! such as B-trees, allowing efficient searches, insertions, and deletions"
//! (paper §3.1). This module provides that structure over the buffer pool:
//!
//! * keys are `K`-byte strings compared lexicographically (use [`keys`] for
//!   order-preserving encodings);
//! * values are `V`-byte strings (possibly zero-width);
//! * leaves are chained for ordered range scans;
//! * deletion is by tombstone-free removal without rebalancing — pages may
//!   underfill after heavy deletion, which matches the simple dynamic-list
//!   behaviour the paper assumes and keeps scans correct.
//!
//! All page access goes through a [`BufferPool`], so tree operations are
//! charged I/O like any other structure — and every operation is fallible:
//! a page the pool cannot produce (I/O error, checksum mismatch) surfaces
//! as `Err(StorageError)` from the tree operation that needed it.

pub mod keys;
mod node;

use std::ops::ControlFlow;

use crate::buffer::BufferPool;
use crate::error::Result;
use crate::page::{PageBuf, PageId};

use node::{
    init_internal, init_leaf, int_child, int_insert_at, int_key, int_route, internal_cap, is_leaf,
    leaf_cap, leaf_insert_at, leaf_key, leaf_remove_at, leaf_search, leaf_val, next_leaf,
    set_count, set_int_child0, set_next_leaf,
};

/// A B+tree with `K`-byte keys and `V`-byte values.
pub struct BTree<const K: usize, const V: usize> {
    root: PageId,
    len: u64,
    depth: u32,
}

enum Ins<const K: usize> {
    Done,
    Replaced,
    Split { sep: [u8; K], right: PageId },
}

impl<const K: usize, const V: usize> BTree<K, V> {
    /// Max entries per leaf page.
    pub const LEAF_CAP: usize = leaf_cap(K, V);
    /// Max separators per internal page.
    pub const INT_CAP: usize = internal_cap(K);

    /// Create an empty tree (allocates the root leaf).
    pub fn create(pool: &mut BufferPool) -> Result<Self> {
        let root = pool.allocate()?;
        pool.write(root, |b| init_leaf(b))?;
        Ok(BTree {
            root,
            len: 0,
            depth: 1,
        })
    }

    /// Reattach a tree from persisted parts (see [`BTree::raw_parts`]).
    ///
    /// The caller asserts that `(root, len, depth)` describe a tree
    /// previously built on the same store; no validation is performed.
    pub fn from_raw_parts(root: PageId, len: u64, depth: u32) -> Self {
        BTree { root, len, depth }
    }

    /// The persistable identity of this tree: `(root, len, depth)`.
    pub fn raw_parts(&self) -> (PageId, u64, u32) {
        (self.root, self.len, self.depth)
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree in levels (1 = a single leaf).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Root page (for diagnostics).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Descend from the root to the leaf that would hold `key`.
    fn descend_to_leaf(&self, pool: &mut BufferPool, key: &[u8; K]) -> Result<PageId> {
        let mut pid = self.root;
        loop {
            let step = pool.read(pid, |b| {
                if is_leaf(b) {
                    None
                } else {
                    Some(int_route(b, K, key).1)
                }
            })?;
            match step {
                Some(child) => pid = child,
                None => return Ok(pid),
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, pool: &mut BufferPool, key: &[u8; K]) -> Result<Option<[u8; V]>> {
        let pid = self.descend_to_leaf(pool, key)?;
        pool.read(pid, |b| match leaf_search(b, K, V, key) {
            Ok(i) => {
                let mut out = [0u8; V];
                out.copy_from_slice(leaf_val(b, K, V, i));
                Some(out)
            }
            Err(_) => None,
        })
    }

    /// Upsert. Returns the previous value if the key was present.
    pub fn insert(
        &mut self,
        pool: &mut BufferPool,
        key: &[u8; K],
        val: &[u8; V],
    ) -> Result<Option<[u8; V]>> {
        // Fast path: find and replace without structural changes is folded
        // into the recursive path below (it reports Replaced).
        let prev = self.get(pool, key)?;
        match self.insert_rec(pool, self.root, key, val)? {
            Ins::Done => {
                self.len += 1;
                Ok(None)
            }
            Ins::Replaced => Ok(prev),
            Ins::Split { sep, right } => {
                let new_root = pool.allocate()?;
                let old_root = self.root;
                pool.write(new_root, |b| {
                    init_internal(b);
                    set_int_child0(b, old_root);
                    int_insert_at(b, K, 0, &sep, right);
                })?;
                self.root = new_root;
                self.depth += 1;
                self.len += 1;
                Ok(None)
            }
        }
    }

    fn insert_rec(
        &mut self,
        pool: &mut BufferPool,
        pid: PageId,
        key: &[u8; K],
        val: &[u8; V],
    ) -> Result<Ins<K>> {
        let leaf = pool.read(pid, |b| is_leaf(b))?;
        if leaf {
            return self.leaf_insert(pool, pid, key, val);
        }
        let (_, child) = pool.read(pid, |b| int_route(b, K, key))?;
        match self.insert_rec(pool, child, key, val)? {
            Ins::Done => Ok(Ins::Done),
            Ins::Replaced => Ok(Ins::Replaced),
            Ins::Split { sep, right } => self.int_insert(pool, pid, sep, right),
        }
    }

    fn leaf_insert(
        &mut self,
        pool: &mut BufferPool,
        pid: PageId,
        key: &[u8; K],
        val: &[u8; V],
    ) -> Result<Ins<K>> {
        enum Local {
            InPlace,
            Replaced,
            NeedSplit,
        }
        let outcome = pool.write(pid, |b| match leaf_search(b, K, V, key) {
            Ok(i) => {
                let off = node::leaf_entry_off(K, V, i) + K;
                b[off..off + V].copy_from_slice(val);
                Local::Replaced
            }
            Err(i) => {
                if node::count(b) < Self::LEAF_CAP {
                    leaf_insert_at(b, K, V, i, key, val);
                    Local::InPlace
                } else {
                    let _ = i;
                    Local::NeedSplit
                }
            }
        })?;
        match outcome {
            Local::InPlace => Ok(Ins::Done),
            Local::Replaced => Ok(Ins::Replaced),
            Local::NeedSplit => {
                // Split, then insert into the proper half.
                let mut left: PageBuf = pool.read(pid, |b| Box::new(*b))?;
                let right_pid = pool.allocate()?;
                let mut right: PageBuf = crate::page::zeroed_page();
                init_leaf(&mut right[..]);

                let n = node::count(&left[..]);
                // Append-friendly split: bulk loads insert in key order, and
                // an even split would leave every leaf half full. When the
                // new key goes past the last entry, keep the left leaf full
                // and start a fresh right leaf.
                let appending = key.as_slice() > leaf_key(&left[..], K, V, n - 1);
                let mid = if appending { n } else { n / 2 };
                if appending {
                    set_next_leaf(&mut right[..], next_leaf(&left[..]));
                    set_next_leaf(&mut left[..], right_pid);
                    leaf_insert_at(&mut right[..], K, V, 0, key, val);
                    let mut sep = [0u8; K];
                    sep.copy_from_slice(key);
                    pool.write(pid, |b| *b = *left)?;
                    pool.write(right_pid, |b| *b = *right)?;
                    return Ok(Ins::Split {
                        sep,
                        right: right_pid,
                    });
                }
                let w = K + V;
                let src = node::leaf_entry_off(K, V, mid);
                let cnt_right = n - mid;
                let dst = node::HDR;
                right[dst..dst + cnt_right * w].copy_from_slice(&left[src..src + cnt_right * w]);
                set_count(&mut right[..], cnt_right);
                set_count(&mut left[..], mid);
                set_next_leaf(&mut right[..], next_leaf(&left[..]));
                set_next_leaf(&mut left[..], right_pid);

                let mut sep = [0u8; K];
                sep.copy_from_slice(leaf_key(&right[..], K, V, 0));

                if key.as_slice() < sep.as_slice() {
                    let i = leaf_search(&left[..], K, V, key).unwrap_err();
                    leaf_insert_at(&mut left[..], K, V, i, key, val);
                } else {
                    let i = leaf_search(&right[..], K, V, key).unwrap_err();
                    leaf_insert_at(&mut right[..], K, V, i, key, val);
                }
                pool.write(pid, |b| *b = *left)?;
                pool.write(right_pid, |b| *b = *right)?;
                Ok(Ins::Split {
                    sep,
                    right: right_pid,
                })
            }
        }
    }

    fn int_insert(
        &mut self,
        pool: &mut BufferPool,
        pid: PageId,
        sep: [u8; K],
        right_child: PageId,
    ) -> Result<Ins<K>> {
        let full = pool.read(pid, |b| node::count(b) >= Self::INT_CAP)?;
        if !full {
            pool.write(pid, |b| {
                let n = node::count(b);
                let mut lo = 0;
                let mut hi = n;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if int_key(b, K, mid) < sep.as_slice() {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                int_insert_at(b, K, lo, &sep, right_child);
            })?;
            return Ok(Ins::Done);
        }
        // Split the internal node.
        let mut left: PageBuf = pool.read(pid, |b| Box::new(*b))?;
        let right_pid = pool.allocate()?;
        let mut right: PageBuf = crate::page::zeroed_page();
        init_internal(&mut right[..]);

        let n = node::count(&left[..]);
        let mid = n / 2;
        let mut promoted = [0u8; K];
        promoted.copy_from_slice(int_key(&left[..], K, mid));

        // Right node: child0 = child(mid); separators mid+1..n.
        set_int_child0(&mut right[..], int_child(&left[..], K, mid));
        let w = K + 8;
        let src = node::int_entry_off(K, mid + 1);
        let cnt_right = n - mid - 1;
        let dst = node::int_entry_off(K, 0);
        right[dst..dst + cnt_right * w].copy_from_slice(&left[src..src + cnt_right * w]);
        set_count(&mut right[..], cnt_right);
        set_count(&mut left[..], mid);

        // Insert the pending separator into the proper half.
        let target = if sep.as_slice() < promoted.as_slice() {
            &mut left
        } else {
            &mut right
        };
        {
            let b = &mut target[..];
            let n = node::count(b);
            let mut lo = 0;
            let mut hi = n;
            while lo < hi {
                let m = (lo + hi) / 2;
                if int_key(b, K, m) < sep.as_slice() {
                    lo = m + 1;
                } else {
                    hi = m;
                }
            }
            int_insert_at(b, K, lo, &sep, right_child);
        }
        pool.write(pid, |b| *b = *left)?;
        pool.write(right_pid, |b| *b = *right)?;
        Ok(Ins::Split {
            sep: promoted,
            right: right_pid,
        })
    }

    /// Remove a key. Returns its value if it was present.
    ///
    /// No rebalancing: leaves may underfill. Structure and scan order remain
    /// correct; space is reclaimed only by rebuilding.
    pub fn remove(&mut self, pool: &mut BufferPool, key: &[u8; K]) -> Result<Option<[u8; V]>> {
        let pid = self.descend_to_leaf(pool, key)?;
        let removed = pool.write(pid, |b| match leaf_search(b, K, V, key) {
            Ok(i) => {
                let mut out = [0u8; V];
                out.copy_from_slice(leaf_val(b, K, V, i));
                leaf_remove_at(b, K, V, i);
                Some(out)
            }
            Err(_) => None,
        })?;
        if removed.is_some() {
            self.len -= 1;
        }
        Ok(removed)
    }

    /// Ordered scan from `start` (inclusive). `f` returns
    /// [`ControlFlow::Break`] to stop early.
    pub fn scan_from(
        &self,
        pool: &mut BufferPool,
        start: &[u8; K],
        mut f: impl FnMut(&[u8; K], &[u8; V]) -> ControlFlow<()>,
    ) -> Result<()> {
        let mut pid = self.descend_to_leaf(pool, start)?;
        let mut first = true;
        while pid.is_valid() {
            // Copy out entries ≥ start, then release the page before calling f.
            let (entries, next) = pool.read(pid, |b| {
                let n = node::count(b);
                let from = if first {
                    match leaf_search(b, K, V, start) {
                        Ok(i) => i,
                        Err(i) => i,
                    }
                } else {
                    0
                };
                let mut out: Vec<([u8; K], [u8; V])> = Vec::with_capacity(n.saturating_sub(from));
                for i in from..n {
                    let mut kk = [0u8; K];
                    kk.copy_from_slice(leaf_key(b, K, V, i));
                    let mut vv = [0u8; V];
                    vv.copy_from_slice(leaf_val(b, K, V, i));
                    out.push((kk, vv));
                }
                (out, next_leaf(b))
            })?;
            first = false;
            for (k, v) in &entries {
                if let ControlFlow::Break(()) = f(k, v) {
                    return Ok(());
                }
            }
            pid = next;
        }
        Ok(())
    }

    /// Ordered scan of the whole tree.
    pub fn scan_all(
        &self,
        pool: &mut BufferPool,
        f: impl FnMut(&[u8; K], &[u8; V]) -> ControlFlow<()>,
    ) -> Result<()> {
        self.scan_from(pool, &[0u8; K], f)
    }

    /// Open a cursor positioned at the smallest key.
    pub fn cursor_first(&self, pool: &mut BufferPool) -> Result<Cursor<K, V>> {
        self.cursor_from(pool, &[0u8; K])
    }

    /// Open a cursor positioned at the smallest key ≥ `start`.
    pub fn cursor_from(&self, pool: &mut BufferPool, start: &[u8; K]) -> Result<Cursor<K, V>> {
        let pid = self.descend_to_leaf(pool, start)?;
        let idx = pool.read(pid, |b| match leaf_search(b, K, V, start) {
            Ok(i) => i,
            Err(i) => i,
        })?;
        let mut c = Cursor { pid, idx };
        c.skip_exhausted_leaves(pool)?;
        Ok(c)
    }
}

/// A forward cursor over a B+tree's leaf chain.
///
/// Cursors are *logically* positioned: each access re-reads the current leaf
/// through the pool (normally a buffer hit), so interleaving many cursors —
/// as the highest-prob-first search does — is charged realistic I/O. The
/// cursor assumes the tree is not mutated while it is open.
pub struct Cursor<const K: usize, const V: usize> {
    pid: PageId,
    idx: usize,
}

impl<const K: usize, const V: usize> Cursor<K, V> {
    /// The entry under the cursor, or `None` when exhausted.
    pub fn entry(&self, pool: &mut BufferPool) -> Result<Option<([u8; K], [u8; V])>> {
        if !self.pid.is_valid() {
            return Ok(None);
        }
        pool.read(self.pid, |b| {
            debug_assert!(
                self.idx < node::count(b),
                "cursor normalized past short leaves"
            );
            let mut kk = [0u8; K];
            kk.copy_from_slice(leaf_key(b, K, V, self.idx));
            let mut vv = [0u8; V];
            vv.copy_from_slice(leaf_val(b, K, V, self.idx));
            Some((kk, vv))
        })
    }

    /// Advance one entry.
    pub fn advance(&mut self, pool: &mut BufferPool) -> Result<()> {
        if !self.pid.is_valid() {
            return Ok(());
        }
        self.idx += 1;
        self.skip_exhausted_leaves(pool)
    }

    /// Whether the cursor has run off the end.
    pub fn is_exhausted(&self) -> bool {
        !self.pid.is_valid()
    }

    fn skip_exhausted_leaves(&mut self, pool: &mut BufferPool) -> Result<()> {
        while self.pid.is_valid() {
            let (n, next) = pool.read(self.pid, |b| (node::count(b), next_leaf(b)))?;
            if self.idx < n {
                return Ok(());
            }
            self.pid = next;
            self.idx = 0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::keys::{u32_be, u32_from_be, u64_be, u64_from_be};
    use super::*;
    use crate::disk::InMemoryDisk;

    fn pool() -> BufferPool {
        BufferPool::with_capacity(InMemoryDisk::shared(), 64)
    }

    type T = BTree<4, 8>;

    #[test]
    fn insert_get_small() {
        let mut p = pool();
        let mut t = T::create(&mut p).unwrap();
        for i in 0..100u32 {
            assert!(t
                .insert(&mut p, &u32_be(i * 7 % 100), &u64_be(i as u64))
                .unwrap()
                .is_none());
        }
        assert_eq!(t.len(), 100);
        for i in 0..100u32 {
            let v = t.get(&mut p, &u32_be(i * 7 % 100)).unwrap().unwrap();
            assert_eq!(u64_from_be(&v), i as u64);
        }
        assert!(t.get(&mut p, &u32_be(100)).unwrap().is_none());
    }

    #[test]
    fn upsert_replaces() {
        let mut p = pool();
        let mut t = T::create(&mut p).unwrap();
        assert!(t.insert(&mut p, &u32_be(5), &u64_be(1)).unwrap().is_none());
        let old = t.insert(&mut p, &u32_be(5), &u64_be(2)).unwrap().unwrap();
        assert_eq!(u64_from_be(&old), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(u64_from_be(&t.get(&mut p, &u32_be(5)).unwrap().unwrap()), 2);
    }

    #[test]
    fn many_inserts_split_leaves_and_internals() {
        let mut p = pool();
        let mut t = T::create(&mut p).unwrap();
        let n = 20_000u32;
        // Insert in a scrambled order to exercise both split paths.
        // gcd(7919, 20000) = 1, so i ↦ 7919·i mod n is a permutation.
        for i in 0..n {
            let k = (i * 7919) % n;
            t.insert(&mut p, &u32_be(k), &u64_be(k as u64 * 3)).unwrap();
        }
        assert_eq!(
            t.len() as u32,
            n,
            "duplicates collapse: permutation covers 0..n"
        );
        assert!(t.depth() >= 2, "20k entries must overflow a single leaf");
        for i in (0..n).step_by(997) {
            assert_eq!(
                u64_from_be(&t.get(&mut p, &u32_be(i)).unwrap().unwrap()),
                i as u64 * 3
            );
        }
    }

    #[test]
    fn scan_is_sorted_and_complete() {
        let mut p = pool();
        let mut t = T::create(&mut p).unwrap();
        let n = 5000u32;
        for i in 0..n {
            let k = i.wrapping_mul(48271) % n;
            t.insert(&mut p, &u32_be(k), &u64_be(0)).unwrap();
        }
        let mut seen = Vec::new();
        t.scan_all(&mut p, |k, _| {
            seen.push(u32_from_be(k));
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(seen.len(), n as usize);
        assert!(
            seen.windows(2).all(|w| w[0] < w[1]),
            "scan must be strictly sorted"
        );
    }

    #[test]
    fn scan_from_midpoint_and_early_stop() {
        let mut p = pool();
        let mut t = T::create(&mut p).unwrap();
        for i in 0..1000u32 {
            t.insert(&mut p, &u32_be(i), &u64_be(i as u64)).unwrap();
        }
        let mut got = Vec::new();
        t.scan_from(&mut p, &u32_be(990), |k, _| {
            got.push(u32_from_be(k));
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(got, (990..1000).collect::<Vec<_>>());

        let mut cnt = 0;
        t.scan_from(&mut p, &u32_be(10), |_, _| {
            cnt += 1;
            if cnt == 5 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .unwrap();
        assert_eq!(cnt, 5);
    }

    #[test]
    fn remove_then_get_misses() {
        let mut p = pool();
        let mut t = T::create(&mut p).unwrap();
        for i in 0..2000u32 {
            t.insert(&mut p, &u32_be(i), &u64_be(i as u64)).unwrap();
        }
        for i in (0..2000).step_by(2) {
            assert!(t.remove(&mut p, &u32_be(i)).unwrap().is_some());
        }
        assert_eq!(t.len(), 1000);
        assert!(t.get(&mut p, &u32_be(4)).unwrap().is_none());
        assert!(t.get(&mut p, &u32_be(5)).unwrap().is_some());
        assert!(
            t.remove(&mut p, &u32_be(4)).unwrap().is_none(),
            "double remove"
        );
        // Scan still sorted and complete.
        let mut seen = Vec::new();
        t.scan_all(&mut p, |k, _| {
            seen.push(u32_from_be(k));
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(seen, (0..2000).filter(|i| i % 2 == 1).collect::<Vec<_>>());
    }

    #[test]
    fn zero_width_values_work() {
        let mut p = pool();
        let mut t: BTree<8, 0> = BTree::create(&mut p).unwrap();
        for i in 0..1000u64 {
            t.insert(&mut p, &u64_be(i), &[]).unwrap();
        }
        assert_eq!(t.len(), 1000);
        assert!(t.get(&mut p, &u64_be(999)).unwrap().is_some());
        assert!(t.get(&mut p, &u64_be(1000)).unwrap().is_none());
    }

    #[test]
    fn persists_across_pools() {
        let store = InMemoryDisk::shared();
        let (t, root_len) = {
            let mut p = BufferPool::with_capacity(store.clone(), 64);
            let mut t = T::create(&mut p).unwrap();
            for i in 0..3000u32 {
                t.insert(&mut p, &u32_be(i), &u64_be(i as u64 + 1)).unwrap();
            }
            p.flush().unwrap();
            let l = t.len();
            (t, l)
        };
        let mut q = BufferPool::with_capacity(store, 64);
        assert_eq!(t.len(), root_len);
        assert_eq!(
            u64_from_be(&t.get(&mut q, &u32_be(1234)).unwrap().unwrap()),
            1235
        );
    }

    #[test]
    fn cursor_walks_sorted_and_interleaves() {
        let mut p = pool();
        let mut t = T::create(&mut p).unwrap();
        for i in 0..3000u32 {
            t.insert(&mut p, &u32_be(i * 2), &u64_be(i as u64)).unwrap();
        }
        // Walk from an interior key.
        let mut c = t.cursor_from(&mut p, &u32_be(101)).unwrap();
        let (k, _) = c.entry(&mut p).unwrap().unwrap();
        assert_eq!(u32_from_be(&k), 102, "cursor seeks the next key ≥ start");
        let mut last = 100;
        let mut n = 0;
        while let Some((k, _)) = c.entry(&mut p).unwrap() {
            let kk = u32_from_be(&k);
            assert!(kk > last);
            last = kk;
            n += 1;
            c.advance(&mut p).unwrap();
        }
        assert!(c.is_exhausted());
        assert_eq!(n, 3000 - 51);

        // Two interleaved cursors are independent.
        let mut a = t.cursor_first(&mut p).unwrap();
        let mut b = t.cursor_first(&mut p).unwrap();
        a.advance(&mut p).unwrap();
        assert_eq!(u32_from_be(&a.entry(&mut p).unwrap().unwrap().0), 2);
        assert_eq!(u32_from_be(&b.entry(&mut p).unwrap().unwrap().0), 0);
        b.advance(&mut p).unwrap();
        b.advance(&mut p).unwrap();
        assert_eq!(u32_from_be(&b.entry(&mut p).unwrap().unwrap().0), 4);
    }

    #[test]
    fn cursor_on_empty_tree_is_exhausted() {
        let mut p = pool();
        let t = T::create(&mut p).unwrap();
        let c = t.cursor_first(&mut p).unwrap();
        assert!(c.is_exhausted());
        assert!(c.entry(&mut p).unwrap().is_none());
    }

    #[test]
    fn append_load_packs_leaves_densely() {
        let store = InMemoryDisk::shared();
        let mut p = BufferPool::with_capacity(store.clone(), 200);
        let mut t = T::create(&mut p).unwrap();
        let n = 10 * T::LEAF_CAP as u32;
        for i in 0..n {
            t.insert(&mut p, &u32_be(i), &u64_be(0)).unwrap();
        }
        p.flush().unwrap();
        // With the append-friendly split, ~n/LEAF_CAP leaves (plus internal
        // pages), not the ~2× an even split would produce.
        let pages = store.num_pages();
        assert!(
            pages <= (n as u64 / T::LEAF_CAP as u64) + 4,
            "expected dense packing, got {pages} pages for {n} appended keys"
        );
    }

    #[test]
    fn sequential_inserts_reach_expected_depth() {
        let mut p = pool();
        let mut t = T::create(&mut p).unwrap();
        // Leaf cap for K=4,V=8 is (8192-12)/12 = 681.
        assert_eq!(T::LEAF_CAP, (8192 - 12) / 12);
        for i in 0..(T::LEAF_CAP as u32 + 1) {
            t.insert(&mut p, &u32_be(i), &u64_be(0)).unwrap();
        }
        assert_eq!(t.depth(), 2, "one overflow ⇒ root becomes internal");
    }

    #[test]
    fn injected_read_failure_surfaces_from_lookup() {
        use crate::fault::{Fault, FaultStore};
        use crate::StorageError;
        use std::sync::Arc;

        let faults = Arc::new(FaultStore::new(InMemoryDisk::shared(), 3));
        let mut p = BufferPool::with_capacity(faults.clone(), 4);
        let mut t = T::create(&mut p).unwrap();
        for i in 0..5000u32 {
            t.insert(&mut p, &u32_be(i), &u64_be(i as u64)).unwrap();
        }
        p.clear().unwrap(); // force physical reads on the next lookup
        faults.arm(Fault::FailRead {
            after: faults.reads_so_far() + 1,
        });
        let err = t.get(&mut p, &u32_be(4321)).unwrap_err();
        assert!(matches!(err, StorageError::Io { op: "read", .. }));
        // The pool survives: the same lookup succeeds once the fault is spent.
        assert_eq!(
            u64_from_be(&t.get(&mut p, &u32_be(4321)).unwrap().unwrap()),
            4321
        );
    }
}
