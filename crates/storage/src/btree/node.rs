//! On-page node layout for the B+tree.
//!
//! Common header (12 bytes):
//!
//! ```text
//! 0   u8   node type (0 = leaf, 1 = internal)
//! 1   u8   (pad)
//! 2   u16  entry count
//! 4   u64  next-leaf pointer (leaves only; PageId::INVALID otherwise)
//! ```
//!
//! Leaf body: `count × (K key bytes ‖ V value bytes)`, sorted by key.
//! Internal body: `u64 child0`, then `count × (K key bytes ‖ u64 child)`;
//! `child0` covers keys `< key[0]`, the child after `key[i]` covers keys
//! `≥ key[i]`.

use crate::page::{field, PageId, PAGE_SIZE};

pub(super) const HDR: usize = 12;
pub(super) const OFF_TYPE: usize = 0;
pub(super) const OFF_COUNT: usize = 2;
pub(super) const OFF_NEXT: usize = 4;

pub(super) const TYPE_LEAF: u8 = 0;
pub(super) const TYPE_INTERNAL: u8 = 1;

/// Max leaf entries for key width `k`, value width `v`.
pub(super) const fn leaf_cap(k: usize, v: usize) -> usize {
    (PAGE_SIZE - HDR) / (k + v)
}

/// Max internal separators for key width `k`.
pub(super) const fn internal_cap(k: usize) -> usize {
    (PAGE_SIZE - HDR - 8) / (k + 8)
}

#[inline]
pub(super) fn is_leaf(b: &[u8]) -> bool {
    b[OFF_TYPE] == TYPE_LEAF
}

#[inline]
pub(super) fn count(b: &[u8]) -> usize {
    field::get_u16(b, OFF_COUNT) as usize
}

#[inline]
pub(super) fn set_count(b: &mut [u8], n: usize) {
    field::put_u16(b, OFF_COUNT, n as u16);
}

#[inline]
pub(super) fn next_leaf(b: &[u8]) -> PageId {
    field::get_pid(b, OFF_NEXT)
}

#[inline]
pub(super) fn set_next_leaf(b: &mut [u8], pid: PageId) {
    field::put_pid(b, OFF_NEXT, pid);
}

pub(super) fn init_leaf(b: &mut [u8]) {
    b[OFF_TYPE] = TYPE_LEAF;
    set_count(b, 0);
    set_next_leaf(b, PageId::INVALID);
}

pub(super) fn init_internal(b: &mut [u8]) {
    b[OFF_TYPE] = TYPE_INTERNAL;
    set_count(b, 0);
    set_next_leaf(b, PageId::INVALID);
}

// --- leaf accessors (parameterized on widths) ---

#[inline]
pub(super) fn leaf_entry_off(k: usize, v: usize, i: usize) -> usize {
    HDR + i * (k + v)
}

#[inline]
pub(super) fn leaf_key(b: &[u8], k: usize, v: usize, i: usize) -> &[u8] {
    let off = leaf_entry_off(k, v, i);
    &b[off..off + k]
}

#[inline]
pub(super) fn leaf_val(b: &[u8], k: usize, v: usize, i: usize) -> &[u8] {
    let off = leaf_entry_off(k, v, i) + k;
    &b[off..off + v]
}

/// Binary search a leaf for `key`: `Ok(i)` exact, `Err(i)` insertion point.
pub(super) fn leaf_search(b: &[u8], k: usize, v: usize, key: &[u8]) -> Result<usize, usize> {
    let n = count(b);
    let mut lo = 0;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match leaf_key(b, k, v, mid).cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Shift entries right by one from `i` and write `(key, val)` at `i`.
pub(super) fn leaf_insert_at(b: &mut [u8], k: usize, v: usize, i: usize, key: &[u8], val: &[u8]) {
    let n = count(b);
    let w = k + v;
    let start = leaf_entry_off(k, v, i);
    let end = leaf_entry_off(k, v, n);
    b.copy_within(start..end, start + w);
    b[start..start + k].copy_from_slice(key);
    b[start + k..start + w].copy_from_slice(val);
    set_count(b, n + 1);
}

/// Remove entry `i`, shifting the tail left.
pub(super) fn leaf_remove_at(b: &mut [u8], k: usize, v: usize, i: usize) {
    let n = count(b);
    let start = leaf_entry_off(k, v, i);
    let end = leaf_entry_off(k, v, n);
    let w = k + v;
    b.copy_within(start + w..end, start);
    set_count(b, n - 1);
}

// --- internal accessors ---

#[inline]
pub(super) fn int_child0(b: &[u8]) -> PageId {
    field::get_pid(b, HDR)
}

#[inline]
pub(super) fn set_int_child0(b: &mut [u8], pid: PageId) {
    field::put_pid(b, HDR, pid);
}

#[inline]
pub(super) fn int_entry_off(k: usize, i: usize) -> usize {
    HDR + 8 + i * (k + 8)
}

#[inline]
pub(super) fn int_key(b: &[u8], k: usize, i: usize) -> &[u8] {
    let off = int_entry_off(k, i);
    &b[off..off + k]
}

#[inline]
pub(super) fn int_child(b: &[u8], k: usize, i: usize) -> PageId {
    field::get_pid(b, int_entry_off(k, i) + k)
}

/// The child an arbitrary `key` routes to, and its branch index
/// (0 = child0, i+1 = child after separator i).
pub(super) fn int_route(b: &[u8], k: usize, key: &[u8]) -> (usize, PageId) {
    let n = count(b);
    let mut lo = 0;
    let mut hi = n;
    // Find the number of separators ≤ key.
    while lo < hi {
        let mid = (lo + hi) / 2;
        if int_key(b, k, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo == 0 {
        (0, int_child0(b))
    } else {
        (lo, int_child(b, k, lo - 1))
    }
}

/// Insert separator `key` with right-child `child` at separator slot `i`.
pub(super) fn int_insert_at(b: &mut [u8], k: usize, i: usize, key: &[u8], child: PageId) {
    let n = count(b);
    let w = k + 8;
    let start = int_entry_off(k, i);
    let end = int_entry_off(k, n);
    b.copy_within(start..end, start + w);
    b[start..start + k].copy_from_slice(key);
    field::put_pid(b, start + k, child);
    set_count(b, n + 1);
}
