//! Order-preserving key encodings.
//!
//! B+tree keys compare as big-endian byte strings, so integer and float
//! components must be encoded order-preservingly. Probabilities sort
//! *descending* in posting lists ("these inner lists are sorted by
//! descending probabilities"), hence the complemented float encoding.

/// Big-endian `u32`: byte order ≡ numeric order.
#[inline]
pub fn u32_be(v: u32) -> [u8; 4] {
    v.to_be_bytes()
}

/// Decode [`u32_be`].
#[inline]
pub fn u32_from_be(b: &[u8]) -> u32 {
    u32::from_be_bytes(b[..4].try_into().expect("4 bytes"))
}

/// Big-endian `u64`.
#[inline]
pub fn u64_be(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Decode [`u64_be`].
#[inline]
pub fn u64_from_be(b: &[u8]) -> u64 {
    u64::from_be_bytes(b[..8].try_into().expect("8 bytes"))
}

/// Order-preserving encoding of a *non-negative* `f32`: for `x, y ≥ 0.0`,
/// `x < y ⇔ f32_asc(x) < f32_asc(y)` bytewise. (IEEE-754 bit patterns of
/// non-negative floats are already ordered as unsigned integers.)
#[inline]
pub fn f32_asc(v: f32) -> [u8; 4] {
    debug_assert!(v >= 0.0 && v.is_finite());
    v.to_bits().to_be_bytes()
}

/// Decode [`f32_asc`].
#[inline]
pub fn f32_from_asc(b: &[u8]) -> f32 {
    f32::from_bits(u32::from_be_bytes(b[..4].try_into().expect("4 bytes")))
}

/// Order-*reversing* encoding of a non-negative `f32`: higher probabilities
/// produce smaller byte strings, so an ascending B+tree scan yields
/// descending probabilities.
#[inline]
pub fn f32_desc(v: f32) -> [u8; 4] {
    debug_assert!(v >= 0.0 && v.is_finite());
    (!v.to_bits()).to_be_bytes()
}

/// Decode [`f32_desc`].
#[inline]
pub fn f32_from_desc(b: &[u8]) -> f32 {
    f32::from_bits(!u32::from_be_bytes(b[..4].try_into().expect("4 bytes")))
}

/// Concatenate two fixed-size key components.
#[inline]
pub fn concat<const A: usize, const B: usize, const N: usize>(a: [u8; A], b: [u8; B]) -> [u8; N] {
    debug_assert_eq!(A + B, N);
    let mut out = [0u8; N];
    out[..A].copy_from_slice(&a);
    out[A..].copy_from_slice(&b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_encodings_preserve_order() {
        let mut vals = [0u32, 1, 255, 256, 65535, 1 << 20, u32::MAX];
        let mut encs: Vec<[u8; 4]> = vals.iter().map(|&v| u32_be(v)).collect();
        vals.sort();
        encs.sort();
        for (v, e) in vals.iter().zip(&encs) {
            assert_eq!(u32_from_be(e), *v);
        }
    }

    #[test]
    fn f32_asc_preserves_order_on_probabilities() {
        let probs = [0.0f32, 1e-7, 0.001, 0.25, 0.5, 0.9999, 1.0];
        for w in probs.windows(2) {
            assert!(f32_asc(w[0]) < f32_asc(w[1]), "{} !< {}", w[0], w[1]);
        }
        for &p in &probs {
            assert_eq!(f32_from_asc(&f32_asc(p)), p);
        }
    }

    #[test]
    fn f32_desc_reverses_order() {
        let probs = [0.0f32, 0.1, 0.5, 0.99, 1.0];
        for w in probs.windows(2) {
            assert!(f32_desc(w[0]) > f32_desc(w[1]), "desc must flip order");
        }
        for &p in &probs {
            assert_eq!(f32_from_desc(&f32_desc(p)), p);
        }
    }

    #[test]
    fn concat_orders_lexicographically() {
        // (prob desc, tid asc): the posting-list key.
        let k1: [u8; 8] = concat(f32_desc(0.9), u32_be(5));
        let k2: [u8; 8] = concat(f32_desc(0.9), u32_be(6));
        let k3: [u8; 8] = concat(f32_desc(0.5), u32_be(0));
        assert!(k1 < k2, "same prob: lower tid first");
        assert!(k2 < k3, "higher prob sorts before lower");
    }

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, u64::MAX, 1 << 40] {
            assert_eq!(u64_from_be(&u64_be(v)), v);
        }
    }
}
