//! Index metadata snapshots: little-endian blobs and their crash-atomic
//! file protocol.
//!
//! Index structures keep small in-memory metadata (directory roots, page
//! lists, tuple maps). [`Writer`]/[`Reader`] serialize that metadata to a
//! byte blob so an index can be closed and reopened over a durable
//! [`crate::FileDisk`]. Page *contents* are already durable; only the
//! metadata needs a snapshot.
//!
//! [`commit`]/[`load`] put such a blob on disk atomically: the file holds
//! `{magic, format version, payload length, CRC32C, payload}`, written to
//! a temp file, fsynced, renamed over the target, with the directory
//! fsynced afterwards. A crash at any point leaves either the previous
//! snapshot or the new one — never a half-written file that loads.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::Path;

use crate::crc::crc32c;
use crate::page::PageId;

/// Error returned when a snapshot cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub &'static str);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// Serializer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh writer, starting with a format magic.
    pub fn new(magic: &[u8; 4]) -> Writer {
        Writer {
            buf: magic.to_vec(),
        }
    }

    /// Finish, returning the blob.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a [`PageId`].
    pub fn pid(&mut self, v: PageId) {
        self.u64(v.0);
    }

    /// Append a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        assert!(s.len() <= u16::MAX as usize, "snapshot string too long");
        self.u16(s.len() as u16);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Deserializer over a blob.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Open a reader, checking the magic.
    pub fn new(buf: &'a [u8], magic: &[u8; 4]) -> Result<Reader<'a>, SnapshotError> {
        if buf.len() < 4 || &buf[..4] != magic {
            return Err(SnapshotError("bad magic"));
        }
        Ok(Reader { buf, pos: 4 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    /// Read a [`PageId`].
    pub fn pid(&mut self) -> Result<PageId, SnapshotError> {
        Ok(PageId(self.u64()?))
    }

    /// Read a length-prefixed string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError("invalid utf-8"))
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes not yet consumed. Decoders use this to clamp
    /// `with_capacity` on untrusted length prefixes: a corrupt count can
    /// then never reserve more memory than the blob could possibly fill.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Serialize a domain as `(labeled?, size, labels…)`. The inverse of
/// [`read_domain_parts`]; shared by every index crate's persist module so
/// the wire format cannot drift between them.
pub fn write_domain_parts<'a>(
    w: &mut Writer,
    size: u32,
    labels: Option<impl IntoIterator<Item = &'a str>>,
) {
    match labels {
        Some(labels) => {
            w.u8(1);
            w.u32(size);
            for l in labels {
                w.str(l);
            }
        }
        None => {
            w.u8(0);
            w.u32(size);
        }
    }
}

/// Decode a domain written by [`write_domain_parts`]: the cardinality,
/// plus the labels when the domain was labeled.
pub fn read_domain_parts(r: &mut Reader<'_>) -> Result<(u32, Option<Vec<String>>), SnapshotError> {
    let labeled = r.u8()? == 1;
    let size = r.u32()?;
    if !labeled {
        return Ok((size, None));
    }
    // Every label costs ≥ 2 bytes (its length prefix); clamp the
    // reservation so a corrupt count cannot balloon memory.
    let mut labels = Vec::with_capacity((size as usize).min(r.remaining() / 2 + 1));
    for _ in 0..size {
        labels.push(r.str()?);
    }
    Ok((size, Some(labels)))
}

/// Snapshot file format magic (`commit`/`load`).
const FILE_MAGIC: &[u8; 4] = b"USNB";

/// Current snapshot file format version.
const FILE_VERSION: u32 = 1;

/// Bytes before the payload: magic, version, payload length, CRC32C.
const FILE_HEADER: usize = 4 + 4 + 8 + 4;

/// Why a snapshot file failed to commit or load.
#[derive(Debug)]
pub enum SnapshotFileError {
    /// An OS-level file operation failed.
    Io {
        /// Which step failed: `"create"`, `"write"`, `"sync"`, `"rename"`, …
        op: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's format version is not understood.
    BadVersion(u32),
    /// The file is shorter than its header claims.
    Truncated,
    /// The payload disagrees with its stored CRC32C.
    Checksum,
    /// The payload passed physical checks but its contents do not decode.
    Decode(SnapshotError),
}

impl std::fmt::Display for SnapshotFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotFileError::Io { op, source } => {
                write!(f, "snapshot file {op} failed: {source}")
            }
            SnapshotFileError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotFileError::BadVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotFileError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotFileError::Checksum => write!(f, "snapshot payload fails its checksum"),
            SnapshotFileError::Decode(e) => write!(f, "snapshot payload does not decode: {e}"),
        }
    }
}

impl std::error::Error for SnapshotFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotFileError::Io { source, .. } => Some(source),
            SnapshotFileError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for SnapshotFileError {
    fn from(e: SnapshotError) -> Self {
        SnapshotFileError::Decode(e)
    }
}

fn io_err(op: &'static str) -> impl Fn(std::io::Error) -> SnapshotFileError {
    move |source| SnapshotFileError::Io { op, source }
}

/// Atomically replace the snapshot at `path` with `payload`.
///
/// Protocol: write `{magic, version, length, CRC32C, payload}` to a temp
/// file in the same directory, `fsync` it, `rename` it over `path`, then
/// `fsync` the directory so the rename itself is durable. A crash before
/// the rename leaves the previous snapshot untouched; a crash after it
/// leaves the new one — [`load`] never sees a torn file that passes its
/// checks.
pub fn commit(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), SnapshotFileError> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);

    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(io_err("create"))?;
    let result = (|| {
        file.write_all(FILE_MAGIC).map_err(io_err("write"))?;
        file.write_all(&FILE_VERSION.to_le_bytes())
            .map_err(io_err("write"))?;
        file.write_all(&(payload.len() as u64).to_le_bytes())
            .map_err(io_err("write"))?;
        file.write_all(&crc32c(payload).to_le_bytes())
            .map_err(io_err("write"))?;
        file.write_all(payload).map_err(io_err("write"))?;
        file.sync_all().map_err(io_err("sync"))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(io_err("rename"))?;
        if let Some(dir) = dir {
            // Make the rename durable: fsync the containing directory.
            // Directories cannot be opened for writing; a read handle
            // suffices for fsync on unix. Skip silently where the OS
            // refuses (non-unix).
            if let Ok(d) = File::open(dir) {
                d.sync_all().map_err(io_err("sync-dir"))?;
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Load a snapshot payload committed by [`commit`], rejecting truncated,
/// corrupt, or wrong-version files with a typed error.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<u8>, SnapshotFileError> {
    let mut file = File::open(path.as_ref()).map_err(io_err("open"))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(io_err("read"))?;
    if bytes.len() < FILE_HEADER {
        return if bytes.len() >= 4 && &bytes[..4] != FILE_MAGIC {
            Err(SnapshotFileError::BadMagic)
        } else {
            Err(SnapshotFileError::Truncated)
        };
    }
    if &bytes[..4] != FILE_MAGIC {
        return Err(SnapshotFileError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if version != FILE_VERSION {
        return Err(SnapshotFileError::BadVersion(version));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4-byte slice"));
    let payload = &bytes[FILE_HEADER..];
    if (payload.len() as u64) < len {
        return Err(SnapshotFileError::Truncated);
    }
    if (payload.len() as u64) > len {
        // Trailing garbage after the declared payload is corruption too.
        return Err(SnapshotFileError::Checksum);
    }
    if crc32c(payload) != crc {
        return Err(SnapshotFileError::Checksum);
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new(b"TST1");
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX - 3);
        w.pid(PageId(42));
        w.str("hello snapshot");
        let blob = w.finish();

        let mut r = Reader::new(&blob, b"TST1").expect("magic");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.pid().unwrap(), PageId(42));
        assert_eq!(r.str().unwrap(), "hello snapshot");
        assert!(r.is_done());
    }

    #[test]
    fn wrong_magic_rejected() {
        let blob = Writer::new(b"AAAA").finish();
        assert!(Reader::new(&blob, b"BBBB").is_err());
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new(b"TST1");
        w.u64(1);
        let blob = w.finish();
        let mut r = Reader::new(&blob[..8], b"TST1").expect("magic ok");
        assert!(r.u64().is_err());
    }

    #[test]
    fn domain_parts_roundtrip_labeled_and_anonymous() {
        let mut w = Writer::new(b"TST1");
        write_domain_parts(&mut w, 2, Some(["red", "blue"]));
        write_domain_parts(&mut w, 9, None::<[&str; 0]>);
        let blob = w.finish();
        let mut r = Reader::new(&blob, b"TST1").unwrap();
        assert_eq!(
            read_domain_parts(&mut r).unwrap(),
            (2, Some(vec!["red".to_string(), "blue".to_string()]))
        );
        assert_eq!(read_domain_parts(&mut r).unwrap(), (9, None));
        assert!(r.is_done());
    }

    #[test]
    fn corrupt_label_count_cannot_balloon_memory() {
        let mut w = Writer::new(b"TST1");
        w.u8(1);
        w.u32(u32::MAX); // claims 4 billion labels
        let blob = w.finish();
        let mut r = Reader::new(&blob, b"TST1").unwrap();
        assert!(
            read_domain_parts(&mut r).is_err(),
            "must fail, not allocate"
        );
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("uncat-snapfile-{tag}-{}.meta", std::process::id()));
        p
    }

    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn commit_then_load_roundtrips() {
        let path = temp_path("roundtrip");
        let _guard = Cleanup(path.clone());
        let payload = b"metadata payload bytes".to_vec();
        commit(&path, &payload).expect("commit");
        assert_eq!(load(&path).expect("load"), payload);
        // Empty payloads work too.
        commit(&path, &[]).expect("commit empty");
        assert_eq!(load(&path).expect("load empty"), Vec::<u8>::new());
    }

    #[test]
    fn commit_replaces_atomically_and_leaves_no_temp_file() {
        let path = temp_path("replace");
        let _guard = Cleanup(path.clone());
        commit(&path, b"first").unwrap();
        commit(&path, b"second, longer than the first").unwrap();
        assert_eq!(load(&path).unwrap(), b"second, longer than the first");
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let n = e.file_name().to_string_lossy().to_string();
                n.starts_with(&stem) && n != stem
            })
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }

    #[test]
    fn load_rejects_missing_truncated_and_corrupt_files() {
        let path = temp_path("reject");
        let _guard = Cleanup(path.clone());
        assert!(matches!(
            load(&path),
            Err(SnapshotFileError::Io { op: "open", .. })
        ));

        commit(&path, b"good payload").unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncated mid-payload.
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        assert!(matches!(load(&path), Err(SnapshotFileError::Truncated)));

        // Truncated mid-header.
        std::fs::write(&path, &good[..7]).unwrap();
        assert!(matches!(load(&path), Err(SnapshotFileError::Truncated)));

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(load(&path), Err(SnapshotFileError::BadMagic)));

        // Future version.
        let mut bad = good.clone();
        bad[4] = 0xEE;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(load(&path), Err(SnapshotFileError::BadVersion(_))));

        // Flipped payload byte.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(load(&path), Err(SnapshotFileError::Checksum)));

        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(load(&path), Err(SnapshotFileError::Checksum)));

        // The original still loads.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(load(&path).unwrap(), b"good payload");
    }

    #[test]
    fn every_single_byte_mutation_of_a_committed_file_is_detected() {
        let path = temp_path("mutate");
        let _guard = Cleanup(path.clone());
        let payload: Vec<u8> = (0..200u8).collect();
        commit(&path, &payload).unwrap();
        let good = std::fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            match load(&path) {
                Err(_) => {}
                Ok(p) => {
                    // A mutation of the length field that still matches
                    // could theoretically collide, but CRC32C detects all
                    // single-byte errors — loading must fail.
                    panic!("byte {i} mutated yet load returned {} bytes", p.len());
                }
            }
        }
    }
}
