//! A minimal little-endian reader/writer for index metadata snapshots.
//!
//! Index structures keep small in-memory metadata (directory roots, page
//! lists, tuple maps). [`Writer`]/[`Reader`] serialize that metadata to a
//! byte blob so an index can be closed and reopened over a durable
//! [`crate::FileDisk`]. Page *contents* are already durable; only the
//! metadata needs a snapshot.

use crate::page::PageId;

/// Error returned when a snapshot cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub &'static str);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// Serializer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh writer, starting with a format magic.
    pub fn new(magic: &[u8; 4]) -> Writer {
        Writer { buf: magic.to_vec() }
    }

    /// Finish, returning the blob.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a [`PageId`].
    pub fn pid(&mut self, v: PageId) {
        self.u64(v.0);
    }

    /// Append a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        assert!(s.len() <= u16::MAX as usize, "snapshot string too long");
        self.u16(s.len() as u16);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Deserializer over a blob.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Open a reader, checking the magic.
    pub fn new(buf: &'a [u8], magic: &[u8; 4]) -> Result<Reader<'a>, SnapshotError> {
        if buf.len() < 4 || &buf[..4] != magic {
            return Err(SnapshotError("bad magic"));
        }
        Ok(Reader { buf, pos: 4 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    /// Read a [`PageId`].
    pub fn pid(&mut self) -> Result<PageId, SnapshotError> {
        Ok(PageId(self.u64()?))
    }

    /// Read a length-prefixed string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError("invalid utf-8"))
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new(b"TST1");
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX - 3);
        w.pid(PageId(42));
        w.str("hello snapshot");
        let blob = w.finish();

        let mut r = Reader::new(&blob, b"TST1").expect("magic");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.pid().unwrap(), PageId(42));
        assert_eq!(r.str().unwrap(), "hello snapshot");
        assert!(r.is_done());
    }

    #[test]
    fn wrong_magic_rejected() {
        let blob = Writer::new(b"AAAA").finish();
        assert!(Reader::new(&blob, b"BBBB").is_err());
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new(b"TST1");
        w.u64(1);
        let blob = w.finish();
        let mut r = Reader::new(&blob[..8], b"TST1").expect("magic ok");
        assert!(r.u64().is_err());
    }
}
