//! Deterministic fault injection for storage tests.
//!
//! [`FaultStore`] wraps any [`PageStore`] and injects failures at exact,
//! seedable points: the Nth physical read or write, torn writes that
//! persist only a prefix of the page, single-bit flips on read, and
//! allocation failure (ENOSPC). Because triggers count operations rather
//! than rolling dice per call, a failing test reproduces byte-for-byte —
//! this is the harness behind the crate's failure-path coverage.
//!
//! ```
//! use std::sync::Arc;
//! use uncat_storage::{FaultStore, Fault, InMemoryDisk, PageStore, StorageError};
//!
//! let faults = Arc::new(FaultStore::new(InMemoryDisk::shared(), 42));
//! faults.arm(Fault::FailRead { after: 2 });
//! let store: uncat_storage::SharedStore = faults.clone();
//! let pid = store.allocate().unwrap();
//! let mut buf = [0u8; uncat_storage::PAGE_SIZE];
//! assert!(store.read(pid, &mut buf).is_ok()); // read #1
//! assert!(matches!(store.read(pid, &mut buf), Err(StorageError::Io { .. }))); // read #2
//! assert!(store.read(pid, &mut buf).is_ok()); // faults fire once
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::disk::{PageStore, SharedStore};
use crate::error::{Result, StorageError};
use crate::page::{PageId, PAGE_SIZE};
use crate::wal::{LogDevice, SharedLog};

/// A failure to inject, with its trigger point. Each `after` counts
/// operations of the fault's kind on this store, starting at 1; a fault
/// fires exactly once, on operation number `after`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The `after`-th read fails with [`StorageError::Io`].
    FailRead {
        /// 1-based read index that fails.
        after: u64,
    },
    /// The `after`-th write fails with [`StorageError::Io`]; nothing is
    /// persisted.
    FailWrite {
        /// 1-based write index that fails.
        after: u64,
    },
    /// The `after`-th allocation fails with [`StorageError::NoSpace`].
    FailAllocate {
        /// 1-based allocation index that fails.
        after: u64,
    },
    /// The `after`-th write persists only the first `keep` bytes of the
    /// new image (the page keeps its old suffix) and reports
    /// [`StorageError::Io`] — a torn write.
    TornWrite {
        /// 1-based write index that tears.
        after: u64,
        /// Bytes of the new image that reach the store.
        keep: usize,
    },
    /// The `after`-th read succeeds but one bit of the returned buffer is
    /// flipped (position derived from the store's seed) — bit rot past
    /// any physical checksum.
    FlipBitOnRead {
        /// 1-based read index that is corrupted.
        after: u64,
    },
}

impl Fault {
    fn counter(&self) -> Kind {
        match self {
            Fault::FailRead { .. } | Fault::FlipBitOnRead { .. } => Kind::Read,
            Fault::FailWrite { .. } | Fault::TornWrite { .. } => Kind::Write,
            Fault::FailAllocate { .. } => Kind::Allocate,
        }
    }

    fn after(&self) -> u64 {
        match *self {
            Fault::FailRead { after }
            | Fault::FailWrite { after }
            | Fault::FailAllocate { after }
            | Fault::TornWrite { after, .. }
            | Fault::FlipBitOnRead { after } => after,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
    Allocate,
}

/// A [`PageStore`] wrapper injecting armed [`Fault`]s deterministically.
pub struct FaultStore {
    inner: SharedStore,
    seed: u64,
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
    armed: Mutex<Vec<Fault>>,
    fired: AtomicU64,
}

impl FaultStore {
    /// Wrap `inner`; `seed` fixes the bit positions chosen by
    /// [`Fault::FlipBitOnRead`].
    pub fn new(inner: SharedStore, seed: u64) -> FaultStore {
        FaultStore {
            inner,
            seed,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            armed: Mutex::new(Vec::new()),
            fired: AtomicU64::new(0),
        }
    }

    /// Arm a fault. Multiple faults may be armed; each fires once when
    /// its operation counter reaches its trigger.
    pub fn arm(&self, fault: Fault) {
        self.armed.lock().push(fault);
    }

    /// Remove every armed (not-yet-fired) fault.
    pub fn disarm_all(&self) {
        self.armed.lock().clear();
    }

    /// How many armed faults have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Physical reads seen so far; arm `FailRead { after: reads_so_far() + n }`
    /// to fail the nth upcoming read regardless of history.
    pub fn reads_so_far(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
    }

    /// Physical writes seen so far (see [`FaultStore::reads_so_far`]).
    pub fn writes_so_far(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Allocations seen so far (see [`FaultStore::reads_so_far`]).
    pub fn allocs_so_far(&self) -> u64 {
        self.allocs.load(Ordering::SeqCst)
    }

    /// Take the fault of `kind` triggered at operation `n`, if any.
    fn triggered(&self, kind: Kind, n: u64) -> Option<Fault> {
        let mut armed = self.armed.lock();
        let idx = armed
            .iter()
            .position(|f| f.counter() == kind && f.after() == n)?;
        self.fired.fetch_add(1, Ordering::Relaxed);
        Some(armed.swap_remove(idx))
    }

    /// Deterministic bit index in a page for read corruption number `n`.
    fn bit_position(&self, n: u64) -> usize {
        // xorshift* over (seed, n): stable across platforms.
        let mut x = self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % (PAGE_SIZE as u64 * 8)) as usize
    }
}

impl PageStore for FaultStore {
    fn allocate(&self) -> Result<PageId> {
        let n = self.allocs.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(Fault::FailAllocate { .. }) = self.triggered(Kind::Allocate, n) {
            return Err(StorageError::NoSpace);
        }
        self.inner.allocate()
    }

    fn read(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let n = self.reads.fetch_add(1, Ordering::SeqCst) + 1;
        match self.triggered(Kind::Read, n) {
            Some(Fault::FailRead { .. }) => Err(StorageError::Io {
                op: "read",
                pid: Some(pid),
                detail: format!("injected read failure #{n}"),
            }),
            Some(Fault::FlipBitOnRead { .. }) => {
                self.inner.read(pid, out)?;
                let bit = self.bit_position(n);
                out[bit / 8] ^= 1 << (bit % 8);
                Ok(())
            }
            _ => self.inner.read(pid, out),
        }
    }

    fn write(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        let n = self.writes.fetch_add(1, Ordering::SeqCst) + 1;
        match self.triggered(Kind::Write, n) {
            Some(Fault::FailWrite { .. }) => Err(StorageError::Io {
                op: "write",
                pid: Some(pid),
                detail: format!("injected write failure #{n}"),
            }),
            Some(Fault::TornWrite { keep, .. }) => {
                // Persist the merge of the new prefix with the old
                // suffix, then report failure — the state a torn write
                // leaves behind.
                let mut merged = [0u8; PAGE_SIZE];
                self.inner.read(pid, &mut merged)?;
                let keep = keep.min(PAGE_SIZE);
                merged[..keep].copy_from_slice(&data[..keep]);
                self.inner.write(pid, &merged)?;
                Err(StorageError::Io {
                    op: "write",
                    pid: Some(pid),
                    detail: format!("injected torn write #{n} (kept {keep} bytes)"),
                })
            }
            _ => self.inner.write(pid, data),
        }
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }
}

/// A failure to inject into a [`LogDevice`], with its trigger point. Like
/// [`Fault`], every `after` is 1-based over operations of that kind on
/// this device and fires exactly once — except that [`FaultLog`] also has
/// a *crash mode* (see [`FaultLog::crash_after_ops`]) under which every
/// operation past a chosen point fails, modelling a dead process rather
/// than a transient error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFault {
    /// The `after`-th append fails with [`StorageError::Io`]; nothing
    /// reaches the device.
    FailAppend {
        /// 1-based append index that fails.
        after: u64,
    },
    /// The `after`-th append persists only the first `keep` bytes — a
    /// short write at byte granularity — and reports
    /// [`StorageError::Io`]. The partial bytes stay on the device (a
    /// later writeback or explicit sync can make them durable), which is
    /// exactly how a torn record reaches a WAL tail.
    ShortAppend {
        /// 1-based append index that tears.
        after: u64,
        /// Bytes of the record that reach the device.
        keep: usize,
    },
    /// The `after`-th sync fails with [`StorageError::Io`]; the durable
    /// prefix is unchanged.
    FailSync {
        /// 1-based sync index that fails.
        after: u64,
    },
    /// The `after`-th truncate fails with [`StorageError::Io`]; the
    /// device keeps its length.
    FailTruncate {
        /// 1-based truncate index that fails.
        after: u64,
    },
}

impl LogFault {
    fn counter(&self) -> LogKind {
        match self {
            LogFault::FailAppend { .. } | LogFault::ShortAppend { .. } => LogKind::Append,
            LogFault::FailSync { .. } => LogKind::Sync,
            LogFault::FailTruncate { .. } => LogKind::Truncate,
        }
    }

    fn after(&self) -> u64 {
        match *self {
            LogFault::FailAppend { after }
            | LogFault::ShortAppend { after, .. }
            | LogFault::FailSync { after }
            | LogFault::FailTruncate { after } => after,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LogKind {
    Append,
    Sync,
    Truncate,
}

/// A [`LogDevice`] wrapper injecting [`LogFault`]s deterministically —
/// the byte-granularity counterpart of [`FaultStore`] for WAL paths.
pub struct FaultLog {
    inner: SharedLog,
    appends: AtomicU64,
    syncs: AtomicU64,
    truncates: AtomicU64,
    ops: AtomicU64,
    /// Total-operation count after which every operation fails
    /// (crash mode); 0 = off.
    crash_at: AtomicU64,
    armed: Mutex<Vec<LogFault>>,
    fired: AtomicU64,
}

impl FaultLog {
    /// Wrap `inner`.
    pub fn new(inner: SharedLog) -> FaultLog {
        FaultLog {
            inner,
            appends: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            truncates: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            crash_at: AtomicU64::new(0),
            armed: Mutex::new(Vec::new()),
            fired: AtomicU64::new(0),
        }
    }

    /// Arm a fault (fires once; see [`FaultStore::arm`]).
    pub fn arm(&self, fault: LogFault) {
        self.armed.lock().push(fault);
    }

    /// Remove every armed (not-yet-fired) fault.
    pub fn disarm_all(&self) {
        self.armed.lock().clear();
    }

    /// How many armed faults have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Enter crash mode after `n` more operations (appends, syncs, and
    /// truncates combined): operations up to and including the `n`-th
    /// from now succeed, everything after fails with
    /// [`StorageError::Io`] until [`FaultLog::revive`] — the process is
    /// dead, not unlucky. `n = 0` kills the device immediately.
    pub fn crash_after_ops(&self, n: u64) {
        let now = self.ops.load(Ordering::SeqCst);
        self.crash_at.store(now + n + 1, Ordering::SeqCst);
    }

    /// Leave crash mode (the harness "restarts the process").
    pub fn revive(&self) {
        self.crash_at.store(0, Ordering::SeqCst);
    }

    /// Appends seen so far (arm `after: appends_so_far() + n` to hit the
    /// nth upcoming append regardless of history).
    pub fn appends_so_far(&self) -> u64 {
        self.appends.load(Ordering::SeqCst)
    }

    /// Syncs seen so far (see [`FaultLog::appends_so_far`]).
    pub fn syncs_so_far(&self) -> u64 {
        self.syncs.load(Ordering::SeqCst)
    }

    /// Truncates seen so far (see [`FaultLog::appends_so_far`]).
    pub fn truncates_so_far(&self) -> u64 {
        self.truncates.load(Ordering::SeqCst)
    }

    /// Count a mutating operation and report whether crash mode fails it.
    fn crashed(&self) -> bool {
        let op = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
        let at = self.crash_at.load(Ordering::SeqCst);
        at != 0 && op >= at
    }

    fn dead(op: &'static str) -> StorageError {
        StorageError::Io {
            op,
            pid: None,
            detail: "injected crash: log device is dead".into(),
        }
    }

    /// Take the fault of `kind` triggered at operation `n`, if any.
    fn triggered(&self, kind: LogKind, n: u64) -> Option<LogFault> {
        let mut armed = self.armed.lock();
        let idx = armed
            .iter()
            .position(|f| f.counter() == kind && f.after() == n)?;
        self.fired.fetch_add(1, Ordering::Relaxed);
        Some(armed.swap_remove(idx))
    }
}

impl LogDevice for FaultLog {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        if self.crashed() {
            return Err(FaultLog::dead("append"));
        }
        let n = self.appends.fetch_add(1, Ordering::SeqCst) + 1;
        match self.triggered(LogKind::Append, n) {
            Some(LogFault::FailAppend { .. }) => Err(StorageError::Io {
                op: "append",
                pid: None,
                detail: format!("injected append failure #{n}"),
            }),
            Some(LogFault::ShortAppend { keep, .. }) => {
                let keep = keep.min(bytes.len());
                self.inner.append(&bytes[..keep])?;
                Err(StorageError::Io {
                    op: "append",
                    pid: None,
                    detail: format!("injected short append #{n} (kept {keep} bytes)"),
                })
            }
            _ => self.inner.append(bytes),
        }
    }

    fn sync(&self) -> Result<()> {
        if self.crashed() {
            return Err(FaultLog::dead("sync"));
        }
        let n = self.syncs.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(LogFault::FailSync { .. }) = self.triggered(LogKind::Sync, n) {
            return Err(StorageError::Io {
                op: "sync",
                pid: None,
                detail: format!("injected sync failure #{n}"),
            });
        }
        self.inner.sync()
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        self.inner.read_all()
    }

    fn truncate(&self, len: u64) -> Result<()> {
        if self.crashed() {
            return Err(FaultLog::dead("truncate"));
        }
        let n = self.truncates.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(LogFault::FailTruncate { .. }) = self.triggered(LogKind::Truncate, n) {
            return Err(StorageError::Io {
                op: "truncate",
                pid: None,
                detail: format!("injected truncate failure #{n}"),
            });
        }
        self.inner.truncate(len)
    }

    fn len(&self) -> Result<u64> {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::page::zeroed_page;
    use std::sync::Arc;

    fn harness() -> (Arc<FaultStore>, SharedStore) {
        let fs = Arc::new(FaultStore::new(InMemoryDisk::shared(), 7));
        let store: SharedStore = fs.clone();
        (fs, store)
    }

    #[test]
    fn nth_read_fails_once() {
        let (fs, store) = harness();
        let pid = store.allocate().unwrap();
        fs.arm(Fault::FailRead { after: 2 });
        let mut buf = zeroed_page();
        assert!(store.read(pid, &mut buf).is_ok());
        assert!(matches!(
            store.read(pid, &mut buf),
            Err(StorageError::Io { op: "read", .. })
        ));
        assert!(
            store.read(pid, &mut buf).is_ok(),
            "fault fires exactly once"
        );
        assert_eq!(fs.fired(), 1);
    }

    #[test]
    fn nth_write_fails_and_persists_nothing() {
        let (fs, store) = harness();
        let pid = store.allocate().unwrap();
        fs.arm(Fault::FailWrite { after: 1 });
        let mut data = zeroed_page();
        data[0] = 9;
        assert!(store.write(pid, &data).is_err());
        let mut buf = zeroed_page();
        store.read(pid, &mut buf).unwrap();
        assert_eq!(buf[0], 0, "failed write must not persist");
    }

    #[test]
    fn allocation_failure_is_nospace() {
        let (fs, store) = harness();
        fs.arm(Fault::FailAllocate { after: 2 });
        assert!(store.allocate().is_ok());
        assert_eq!(store.allocate(), Err(StorageError::NoSpace));
        assert!(store.allocate().is_ok());
    }

    #[test]
    fn torn_write_persists_prefix_only() {
        let (fs, store) = harness();
        let pid = store.allocate().unwrap();
        let mut old = zeroed_page();
        old.fill(0xAA);
        store.write(pid, &old).unwrap();
        fs.arm(Fault::TornWrite {
            after: 2,
            keep: 100,
        });
        let mut new = zeroed_page();
        new.fill(0xBB);
        assert!(store.write(pid, &new).is_err());
        let mut buf = zeroed_page();
        store.read(pid, &mut buf).unwrap();
        assert_eq!(buf[0], 0xBB);
        assert_eq!(buf[99], 0xBB);
        assert_eq!(buf[100], 0xAA, "suffix keeps pre-tear contents");
    }

    #[test]
    fn bit_flip_is_deterministic_per_seed() {
        let observe = |seed| {
            let fs = Arc::new(FaultStore::new(InMemoryDisk::shared(), seed));
            let store: SharedStore = fs.clone();
            let pid = store.allocate().unwrap();
            fs.arm(Fault::FlipBitOnRead { after: 1 });
            let mut buf = zeroed_page();
            store.read(pid, &mut buf).unwrap();
            buf.iter().position(|&b| b != 0)
        };
        let a = observe(1).expect("one byte corrupted");
        let b = observe(1).expect("one byte corrupted");
        assert_eq!(a, b, "same seed, same flipped bit");
    }

    use crate::wal::MemLog;

    fn log_harness() -> (Arc<FaultLog>, Arc<MemLog>) {
        let mem = MemLog::shared();
        let log: SharedLog = mem.clone();
        (Arc::new(FaultLog::new(log)), mem)
    }

    #[test]
    fn short_append_persists_exact_prefix() {
        let (fl, mem) = log_harness();
        fl.arm(LogFault::ShortAppend { after: 2, keep: 3 });
        fl.append(b"whole").unwrap();
        assert!(matches!(
            fl.append(b"cut here"),
            Err(StorageError::Io { op: "append", .. })
        ));
        fl.append(b"!").unwrap();
        assert_eq!(mem.read_all().unwrap(), b"wholecut!");
        assert_eq!(fl.fired(), 1);
    }

    #[test]
    fn nth_sync_fails_without_advancing_durability() {
        let (fl, mem) = log_harness();
        fl.arm(LogFault::FailSync { after: 1 });
        fl.append(b"abc").unwrap();
        assert!(fl.sync().is_err());
        assert_eq!(mem.synced_len(), 0, "failed sync must not seal bytes");
        fl.sync().unwrap();
        assert_eq!(mem.synced_len(), 3);
    }

    #[test]
    fn nth_truncate_fails_and_keeps_length() {
        let (fl, mem) = log_harness();
        fl.append(b"abcdef").unwrap();
        fl.arm(LogFault::FailTruncate { after: 1 });
        assert!(fl.truncate(0).is_err());
        assert_eq!(mem.len().unwrap(), 6);
        fl.truncate(0).unwrap();
        assert_eq!(mem.len().unwrap(), 0);
    }

    #[test]
    fn crash_mode_kills_every_operation_after_the_point() {
        let (fl, mem) = log_harness();
        fl.crash_after_ops(2);
        fl.append(b"one").unwrap(); // op 1
        fl.sync().unwrap(); // op 2
        assert!(fl.append(b"dead").is_err(), "op 3 is past the crash");
        assert!(fl.sync().is_err(), "a dead process stays dead");
        assert!(fl.truncate(0).is_err());
        assert_eq!(mem.read_all().unwrap(), b"one");
        fl.revive();
        fl.append(b"+back").unwrap();
        assert_eq!(mem.read_all().unwrap(), b"one+back");
    }

    #[test]
    fn crash_counts_are_deterministic_across_runs() {
        let survivors = |kill_at: u64| {
            let (fl, mem) = log_harness();
            fl.crash_after_ops(kill_at);
            let mut acked = 0;
            for i in 0..10u8 {
                if fl.append(&[i]).is_ok() && fl.sync().is_ok() {
                    acked += 1;
                } else {
                    break;
                }
            }
            (acked, mem.synced_len())
        };
        assert_eq!(survivors(5), survivors(5), "same kill point, same state");
        assert_eq!(survivors(5).0, 2, "2 append+sync pairs fit in 5 ops");
    }
}
