//! Paged storage substrate for the uncertain-data indexes.
//!
//! The ICDE'07 evaluation measures *disk I/Os through a buffer manager*:
//! 8 KB pages, a 100-frame buffer pool per query, clock replacement. This
//! crate reproduces that measurement substrate:
//!
//! * [`page`] — the 8 KB page unit and little-endian field accessors.
//! * [`disk`] — [`disk::PageStore`], the simulated disk: an in-memory page
//!   array with physical read/write counters.
//! * [`buffer`] — [`buffer::BufferPool`], a buffer manager with clock
//!   (second-chance) replacement. All index structures read pages
//!   exclusively through a pool, so buffer misses *are* the paper's I/O
//!   metric.
//! * [`shared`] — [`shared::SharedBufferPool`], a lock-striped sharded
//!   pool shared by concurrent queries, with RAII pinning and per-handle
//!   I/O attribution; [`buffer::BufferPool::from_handle`] lets any search
//!   path run against it unchanged.
//! * [`heap`] — a slotted-page heap file; the tuple store that random-access
//!   candidate verification reads from.
//! * [`btree`] — a paged B+tree with fixed-width keys/values; backs the
//!   inverted index's posting lists and directory.
//! * [`metrics`] — [`metrics::QueryMetrics`], the query-level execution
//!   counters every search path in the workspace populates (documented
//!   counter by counter in `docs/METRICS.md`).
//! * [`trace`] — [`trace::Tracer`], the opt-in latency layer: per-query
//!   span trees and mergeable log-bucketed latency histograms riding on
//!   the same pool the counters do (DESIGN.md §6g).
//! * [`wal`] — [`wal::Wal`], an append-only write-ahead log with
//!   CRC32C-framed records, group commit, and a reader that truncates a
//!   torn tail at the first bad record; the durability substrate for
//!   online index mutation (DESIGN.md §6f).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod crc;
pub mod disk;
pub mod error;
pub mod fault;
pub mod file_disk;
pub mod heap;
pub mod metrics;
pub mod page;
pub mod shared;
pub mod snapshot;
pub mod stats;
pub mod trace;
pub mod wal;

pub use buffer::{BufferPool, Replacement};
pub use disk::{InMemoryDisk, PageStore, SharedStore};
pub use error::{Result, StorageError};
pub use fault::{Fault, FaultLog, FaultStore, LogFault};
pub use file_disk::FileDisk;
pub use heap::{HeapFile, RecordId};
pub use metrics::QueryMetrics;
pub use page::{PageId, PAGE_SIZE};
pub use shared::{PinGuard, PoolHandle, SharedBufferPool, DEFAULT_SHARDS};
pub use snapshot::SnapshotFileError;
pub use stats::IoStats;
pub use trace::{
    Clock, FakeClock, LatencyHistogram, MonotonicClock, Phase, QueryTrace, Span, SpanId,
    TraceHistograms, Tracer,
};
pub use wal::{
    FileLog, LogDevice, LogScan, MemLog, SharedLog, TailStatus, Wal, WalConfig, WalStats,
};
