//! Shared, lock-striped buffer pool for concurrent query batches.
//!
//! The paper's experimental model gives every query a private 100-frame
//! pool ([`crate::BufferPool`]), which makes batches embarrassingly
//! parallel but wastes all cross-query locality: a hot postings page or a
//! PDR-tree root is re-read once per query. [`SharedBufferPool`] is the
//! production-shaped alternative — one pool shared by every query in a
//! batch, so hot pages are fetched once per *batch*.
//!
//! # Architecture
//!
//! * **Lock striping.** The pool is split into `N` shards; a page id maps
//!   to exactly one shard, and each shard owns its own clock ring, page
//!   table, and [`IoStats`] behind a `Mutex`. Two queries touching pages
//!   in different shards never contend, and an eviction in one shard
//!   proceeds while readers hold frames in every other shard.
//! * **RAII pinning.** [`PinGuard`] pins a frame for as long as it lives:
//!   the shard's eviction scan skips pinned frames (the guard holds a
//!   strong reference to the frame's data; a frame is evictable only when
//!   the shard holds the sole reference). Page bytes sit behind a
//!   per-frame `RwLock`, so many pinned readers proceed in parallel and
//!   never hold the shard lock while reading.
//! * **Attribution.** Every access is counted twice: into the owning
//!   shard's aggregate [`IoStats`] (the pool-level view,
//!   [`SharedBufferPool::stats`] / [`SharedBufferPool::shard_stats`]) and
//!   into the caller-supplied per-handle [`IoStats`] (the per-query view
//!   that [`PoolHandle`] merges into `QueryMetrics.io`).
//! * **Failure isolation.** The PR-1 fault-tolerance contract extends to
//!   the shared pool: a failed physical read or an unwritable eviction
//!   victim fails only the query that triggered it — the shard's page
//!   table is never left inconsistent, a dirty victim that cannot be
//!   persisted stays resident and dirty, and the pool remains usable for
//!   every other query. A shard whose frames are all pinned surfaces
//!   [`StorageError::PoolExhausted`] to the requester instead of blocking.
//!
//! [`PoolHandle`] (one per query/worker) adapts the shared pool to the
//! single-owner [`crate::BufferPool`] interface via
//! [`crate::BufferPool::from_handle`], so every `UncertainIndex` search
//! path runs unchanged against either pool flavor.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::buffer::Replacement;
use crate::disk::SharedStore;
use crate::error::{Result, StorageError};
use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};
use crate::stats::IoStats;

/// Default shard count: enough striping for small-machine thread counts
/// without fragmenting the frame budget.
pub const DEFAULT_SHARDS: usize = 8;

/// The guarded page image: bytes plus the dirty flag. Keeping `dirty`
/// inside the lock means writers mark-and-mutate atomically with respect
/// to write-back, so a flush can never clear the flag under a concurrent
/// mutation and lose it.
struct PageData {
    buf: PageBuf,
    dirty: bool,
}

/// Shared frame payload; pins hold an `Arc` to it.
struct FrameData {
    page: RwLock<PageData>,
}

struct SharedFrame {
    pid: PageId,
    data: Arc<FrameData>,
    referenced: bool,
    last_used: u64,
}

impl SharedFrame {
    /// Evictable means nobody outside the shard holds the frame: the
    /// shard's own `Arc` is the only strong reference. Pins are only
    /// created under the shard lock, so while the shard is locked the
    /// count can drop (a guard dropped elsewhere) but never rise — a
    /// frame observed evictable stays evictable.
    fn pinned(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }
}

/// One stripe: its own frame ring, page table, clock hand, and counters.
struct ShardCore {
    frames: Vec<SharedFrame>,
    map: HashMap<PageId, usize>,
    hand: usize,
    capacity: usize,
    tick: u64,
    stats: IoStats,
}

/// A thread-safe buffer pool shared by concurrent queries, striped into
/// independently locked shards (see the module docs).
pub struct SharedBufferPool {
    store: SharedStore,
    policy: Replacement,
    shards: Vec<Mutex<ShardCore>>,
}

impl SharedBufferPool {
    /// Pool with `total_frames` frames striped over `shards` shards and
    /// clock replacement. `total_frames` must be at least `shards` so
    /// every shard owns a frame.
    pub fn new(store: SharedStore, total_frames: usize, shards: usize) -> Arc<SharedBufferPool> {
        SharedBufferPool::with_policy(store, total_frames, shards, Replacement::Clock)
    }

    /// Pool with an explicit replacement policy.
    pub fn with_policy(
        store: SharedStore,
        total_frames: usize,
        shards: usize,
        policy: Replacement,
    ) -> Arc<SharedBufferPool> {
        assert!(shards >= 1, "shared pool needs at least one shard");
        assert!(
            total_frames >= shards,
            "shared pool needs at least one frame per shard ({total_frames} frames, {shards} shards)"
        );
        let cores = (0..shards)
            .map(|i| {
                let capacity = total_frames / shards + usize::from(i < total_frames % shards);
                Mutex::new(ShardCore {
                    frames: Vec::with_capacity(capacity),
                    map: HashMap::with_capacity(capacity),
                    hand: 0,
                    capacity,
                    tick: 0,
                    stats: IoStats::default(),
                })
            })
            .collect();
        Arc::new(SharedBufferPool {
            store,
            policy,
            shards: cores,
        })
    }

    /// A per-query handle over this pool (fresh zeroed per-handle stats).
    pub fn handle(self: &Arc<Self>) -> PoolHandle {
        PoolHandle {
            pool: Arc::clone(self),
            stats: IoStats::default(),
        }
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> Replacement {
        self.policy
    }

    /// The shared store this pool sits on.
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// Number of shards (lock stripes).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total frame capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity).sum()
    }

    /// Number of resident pages across all shards.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }

    /// Whether `pid` is currently cached (no I/O side effects).
    pub fn is_resident(&self, pid: PageId) -> bool {
        self.shards[self.shard_of(pid)]
            .lock()
            .map
            .contains_key(&pid)
    }

    /// Fraction of `pages` currently cached, probing every `stride`-th
    /// page (stride 0 and 1 both probe every page). The cost-based
    /// planner samples this to discount predicted physical reads for
    /// data that is already hot; it is a point-in-time estimate with no
    /// I/O side effects. An empty page set reports 0.0.
    pub fn residency_fraction(&self, pages: &[PageId], stride: usize) -> f64 {
        let stride = stride.max(1);
        let mut probed = 0u64;
        let mut hot = 0u64;
        for &pid in pages.iter().step_by(stride) {
            probed += 1;
            if self.is_resident(pid) {
                hot += 1;
            }
        }
        if probed == 0 {
            0.0
        } else {
            hot as f64 / probed as f64
        }
    }

    /// Aggregate I/O counters: the field-wise sum of every shard's stats.
    /// Because every access is recorded in exactly one shard, this equals
    /// the sum of all per-handle stats (plus flush write-back traffic,
    /// which is charged to the pool, not to a handle).
    pub fn stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats;
            total.hits += s.hits;
            total.physical_reads += s.physical_reads;
            total.physical_writes += s.physical_writes;
            total.logical_reads += s.logical_reads;
        }
        total
    }

    /// Per-shard I/O counters, in shard order — the load-balance view
    /// (`hit_ratio` per stripe, skew across stripes).
    pub fn shard_stats(&self) -> Vec<IoStats> {
        self.shards.iter().map(|s| s.lock().stats).collect()
    }

    /// Zero every shard's counters (cache contents are retained).
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.lock().stats = IoStats::default();
        }
    }

    fn shard_of(&self, pid: PageId) -> usize {
        // Page ids are allocated contiguously, so plain modulo stripes
        // consecutive pages round-robin across shards — the best case for
        // sequential scans.
        (pid.0 % self.shards.len() as u64) as usize
    }

    /// Allocate a fresh page on the store and cache its (zeroed, dirty)
    /// image, exactly like [`crate::BufferPool::allocate`].
    pub fn allocate(&self, stats: &mut IoStats) -> Result<PageId> {
        let pid = self.store.allocate()?;
        let mut core = self.shards[self.shard_of(pid)].lock();
        let slot = self.victim_slot(&mut core, stats)?;
        Self::install(&mut core, slot, pid, zeroed_page(), true);
        Ok(pid)
    }

    /// Pin page `pid` into the pool and return an RAII guard. The frame
    /// cannot be evicted while the guard lives; drop it promptly — a
    /// shard whose frames are all pinned refuses further faults with
    /// [`StorageError::PoolExhausted`].
    pub fn pin(&self, pid: PageId, stats: &mut IoStats) -> Result<PinGuard> {
        let mut core = self.shards[self.shard_of(pid)].lock();
        core.stats.logical_reads += 1;
        stats.logical_reads += 1;
        if let Some(&slot) = core.map.get(&pid) {
            core.stats.hits += 1;
            stats.hits += 1;
            core.tick += 1;
            let tick = core.tick;
            let frame = &mut core.frames[slot];
            frame.referenced = true;
            frame.last_used = tick;
            return Ok(PinGuard {
                pid,
                data: Arc::clone(&frame.data),
            });
        }
        // Miss: one physical read, charged to this handle. The read
        // happens under the shard lock so a page is faulted exactly once
        // even when several queries miss on it simultaneously; other
        // shards are unaffected.
        core.stats.physical_reads += 1;
        stats.physical_reads += 1;
        let mut buf = zeroed_page();
        self.store.read(pid, &mut buf)?;
        let slot = self.victim_slot(&mut core, stats)?;
        let data = Self::install(&mut core, slot, pid, buf, false);
        Ok(PinGuard { pid, data })
    }

    /// Read page `pid`, exposing its bytes to `f` (pin, shared-lock,
    /// read, unpin).
    pub fn read<R>(
        &self,
        pid: PageId,
        stats: &mut IoStats,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let pin = self.pin(pid, stats)?;
        Ok(pin.with_page(f))
    }

    /// Mutate page `pid` in place; the frame is marked dirty and written
    /// back on eviction or [`flush`](SharedBufferPool::flush).
    pub fn write<R>(
        &self,
        pid: PageId,
        stats: &mut IoStats,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let pin = self.pin(pid, stats)?;
        Ok(pin.with_page_mut(f))
    }

    /// Write every dirty frame back to the store. On error the failing
    /// frame (and any not yet visited) stays dirty. Write-back traffic is
    /// charged to the owning shard's stats.
    pub fn flush(&self) -> Result<()> {
        for shard in &self.shards {
            let mut core = shard.lock();
            for i in 0..core.frames.len() {
                let (pid, data) = {
                    let f = &core.frames[i];
                    (f.pid, Arc::clone(&f.data))
                };
                // Exclusive page lock: no concurrent mutator can set the
                // dirty flag between our write-back and our clearing it.
                let mut page = data.page.write();
                if page.dirty {
                    self.store.write(pid, &page.buf)?;
                    page.dirty = false;
                    core.stats.physical_writes += 1;
                }
            }
        }
        Ok(())
    }

    /// Drop every unpinned frame (flushing dirty ones first): a cold
    /// cache. Pinned frames survive — their guards stay valid.
    pub fn clear(&self) -> Result<()> {
        self.flush()?;
        for shard in &self.shards {
            let mut core = shard.lock();
            let old = std::mem::take(&mut core.frames);
            core.frames = old.into_iter().filter(|f| f.pinned()).collect();
            core.map = core
                .frames
                .iter()
                .enumerate()
                .map(|(i, f)| (f.pid, i))
                .collect();
            core.hand = 0;
        }
        Ok(())
    }

    /// Pick a frame slot in `core`, evicting per the configured policy if
    /// the shard is full. Pinned frames are never victims; a dirty victim
    /// that cannot be written back stays resident and dirty, and the
    /// error propagates to the one requesting query.
    fn victim_slot(&self, core: &mut ShardCore, stats: &mut IoStats) -> Result<usize> {
        if core.frames.len() < core.capacity {
            core.frames.push(SharedFrame {
                pid: PageId::INVALID,
                data: Arc::new(FrameData {
                    page: RwLock::new(PageData {
                        buf: zeroed_page(),
                        dirty: false,
                    }),
                }),
                referenced: false,
                last_used: 0,
            });
            return Ok(core.frames.len() - 1);
        }
        if core.frames.iter().all(|f| f.pinned()) {
            return Err(StorageError::PoolExhausted);
        }
        let slot = match self.policy {
            // Second-chance clock over unpinned frames. Pins cannot be
            // created while we hold the shard lock, so at least one
            // unpinned frame stays unpinned and the sweep terminates
            // within two revolutions.
            Replacement::Clock => loop {
                let slot = core.hand;
                core.hand = (core.hand + 1) % core.frames.len();
                let frame = &mut core.frames[slot];
                if frame.pinned() {
                    continue;
                }
                if frame.referenced {
                    frame.referenced = false; // second chance
                } else {
                    break slot;
                }
            },
            Replacement::Lru => core
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.pinned())
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .ok_or(StorageError::PoolExhausted)?,
        };
        let frame = &core.frames[slot];
        {
            // The victim is unpinned, so this lock is uncontended.
            let mut page = frame.data.page.write();
            if page.dirty {
                self.store.write(frame.pid, &page.buf)?;
                page.dirty = false;
                core.stats.physical_writes += 1;
                stats.physical_writes += 1;
            }
        }
        let pid = frame.pid;
        core.map.remove(&pid);
        Ok(slot)
    }

    /// Install `buf` as page `pid` in `slot`, replacing the frame's data
    /// `Arc` wholesale so any straggling reference to the previous
    /// occupant keeps seeing the *old* page, never the new one.
    fn install(
        core: &mut ShardCore,
        slot: usize,
        pid: PageId,
        buf: PageBuf,
        dirty: bool,
    ) -> Arc<FrameData> {
        core.tick += 1;
        let tick = core.tick;
        let data = Arc::new(FrameData {
            page: RwLock::new(PageData { buf, dirty }),
        });
        core.frames[slot] = SharedFrame {
            pid,
            data: Arc::clone(&data),
            referenced: true,
            last_used: tick,
        };
        core.map.insert(pid, slot);
        data
    }
}

/// RAII pin on one frame of a [`SharedBufferPool`].
///
/// While the guard lives, the frame is immune to eviction (in its own
/// shard; other shards were never affected). Page access goes through the
/// frame's own reader–writer lock, so pinned readers in the same shard
/// proceed in parallel and no page access holds a shard lock.
pub struct PinGuard {
    pid: PageId,
    data: Arc<FrameData>,
}

impl PinGuard {
    /// The pinned page's id.
    pub fn pid(&self) -> PageId {
        self.pid
    }

    /// Read the pinned page (shared page lock for the duration of `f`).
    pub fn with_page<R>(&self, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> R {
        let page = self.data.page.read();
        f(&page.buf)
    }

    /// Mutate the pinned page (exclusive page lock); the frame is marked
    /// dirty atomically with the mutation.
    pub fn with_page_mut<R>(&self, f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R) -> R {
        let mut page = self.data.page.write();
        page.dirty = true;
        f(&mut page.buf)
    }
}

/// A per-query handle over a [`SharedBufferPool`].
///
/// The handle owns the query's private [`IoStats`] — hits and misses are
/// attributed to whichever handle performed the access, so per-query
/// `QueryMetrics.io` stays exact while the underlying frames are shared.
/// Wrap it in a [`crate::BufferPool`] via [`crate::BufferPool::from_handle`]
/// to run any existing search path against the shared pool unchanged.
pub struct PoolHandle {
    pool: Arc<SharedBufferPool>,
    stats: IoStats,
}

impl PoolHandle {
    /// The shared pool behind this handle.
    pub fn pool(&self) -> &Arc<SharedBufferPool> {
        &self.pool
    }

    /// Allocate a fresh page on the store and cache its (zeroed) image.
    pub fn allocate(&mut self) -> Result<PageId> {
        self.pool.allocate(&mut self.stats)
    }

    /// Read page `pid`, exposing its bytes to `f`.
    pub fn read<R>(&mut self, pid: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> Result<R> {
        self.pool.read(pid, &mut self.stats, f)
    }

    /// Mutate page `pid` in place (marked dirty, written back on eviction
    /// or flush).
    pub fn write<R>(
        &mut self,
        pid: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        self.pool.write(pid, &mut self.stats, f)
    }

    /// Pin `pid` for direct multi-access (see [`SharedBufferPool::pin`]).
    pub fn pin(&mut self, pid: PageId) -> Result<PinGuard> {
        self.pool.pin(pid, &mut self.stats)
    }

    /// I/O performed *through this handle* so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Zero this handle's counters (the pool's aggregate is unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::InMemoryDisk;
    use crate::fault::{Fault, FaultStore};

    fn pool(frames: usize, shards: usize) -> Arc<SharedBufferPool> {
        SharedBufferPool::new(InMemoryDisk::shared(), frames, shards)
    }

    #[test]
    fn capacity_is_striped_across_shards() {
        let p = pool(10, 4);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.capacity(), 10);
        let p = pool(4, 4);
        assert_eq!(p.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one frame per shard")]
    fn underprovisioned_pool_rejected() {
        let _ = pool(3, 4);
    }

    #[test]
    fn hits_are_shared_across_handles() {
        let p = pool(8, 2);
        let mut a = p.handle();
        let pid = a.allocate().unwrap();
        p.flush().unwrap();
        a.read(pid, |_| ()).unwrap();
        // A second handle reads the same page: pure hit, no physical I/O.
        let mut b = p.handle();
        b.read(pid, |_| ()).unwrap();
        assert_eq!(b.stats().physical_reads, 0);
        assert_eq!(b.stats().hits, 1);
        // Aggregate pool stats equal the sum of the handle stats.
        let total = p.stats();
        assert_eq!(
            total.logical_reads,
            a.stats().logical_reads + b.stats().logical_reads
        );
        assert_eq!(total.hits, a.stats().hits + b.stats().hits);
    }

    #[test]
    fn pinned_frames_survive_eviction_pressure() {
        // One shard, two frames: pin one, then flood the shard.
        let p = pool(2, 1);
        let mut h = p.handle();
        let keep = h.allocate().unwrap();
        h.write(keep, |b| b[0] = 7).unwrap();
        let pin = h.pin(keep).unwrap();
        let others: Vec<PageId> = (0..4).map(|_| h.allocate().unwrap()).collect();
        for &pid in &others {
            h.read(pid, |_| ()).unwrap();
        }
        assert!(p.is_resident(keep), "pinned frame must not be evicted");
        assert_eq!(pin.with_page(|b| b[0]), 7);
        drop(pin);
        // Unpinned now: further pressure may evict it.
        for &pid in &others {
            h.read(pid, |_| ()).unwrap();
        }
        assert_eq!(p.resident(), 2);
    }

    #[test]
    fn fully_pinned_shard_reports_exhaustion_not_deadlock() {
        let p = pool(1, 1);
        let mut h = p.handle();
        let a = h.allocate().unwrap();
        p.flush().unwrap();
        let _pin = h.pin(a).unwrap();
        let b = p.store().allocate().unwrap();
        assert_eq!(
            h.read(b, |_| ()).unwrap_err(),
            StorageError::PoolExhausted,
            "a fully pinned shard must refuse, not block"
        );
        drop(_pin);
        assert!(h.read(b, |_| ()).is_ok(), "pool recovers once unpinned");
    }

    #[test]
    fn dirty_pages_flush_and_are_visible_elsewhere() {
        let store = InMemoryDisk::shared();
        let p = SharedBufferPool::new(store.clone(), 4, 2);
        let mut h = p.handle();
        let pid = h.allocate().unwrap();
        h.write(pid, |b| b[9] = 42).unwrap();
        p.flush().unwrap();
        let mut private = BufferPool::with_capacity(store, 2);
        assert_eq!(private.read(pid, |b| b[9]).unwrap(), 42);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let store = InMemoryDisk::shared();
        let p = SharedBufferPool::new(store.clone(), 1, 1);
        let mut h = p.handle();
        let a = h.allocate().unwrap();
        h.write(a, |b| b[0] = 5).unwrap();
        let _b = h.allocate().unwrap(); // evicts dirty `a`
        let mut q = BufferPool::with_capacity(store, 1);
        assert_eq!(q.read(a, |b| b[0]).unwrap(), 5);
    }

    #[test]
    fn failed_read_fails_one_query_and_pool_stays_usable() {
        let faults = Arc::new(FaultStore::new(InMemoryDisk::shared(), 3));
        let p = SharedBufferPool::new(faults.clone(), 4, 2);
        let mut h = p.handle();
        let pid = h.allocate().unwrap();
        p.clear().unwrap();
        faults.arm(Fault::FailRead {
            after: faults.reads_so_far() + 1,
        });
        assert!(matches!(h.read(pid, |_| ()), Err(StorageError::Io { .. })));
        // The failed page was not installed; a retry succeeds.
        assert!(!p.is_resident(pid));
        assert_eq!(h.read(pid, |b| b[0]).unwrap(), 0);
    }

    #[test]
    fn failed_dirty_eviction_keeps_the_frame_dirty() {
        let faults = Arc::new(FaultStore::new(InMemoryDisk::shared(), 3));
        let p = SharedBufferPool::new(faults.clone(), 1, 1);
        let mut h = p.handle();
        let a = h.allocate().unwrap();
        h.write(a, |b| b[0] = 5).unwrap();
        faults.arm(Fault::FailWrite {
            after: faults.writes_so_far() + 1,
        });
        assert!(h.allocate().is_err());
        assert_eq!(h.read(a, |b| b[0]).unwrap(), 5, "image survives in pool");
        p.flush().unwrap();
    }

    #[test]
    fn concurrent_readers_and_allocators_agree_with_store() {
        let store = InMemoryDisk::shared();
        let p = SharedBufferPool::new(store.clone(), 16, 4);
        // Seed 32 pages with known bytes.
        let pids: Vec<PageId> = {
            let mut h = p.handle();
            (0..32u8)
                .map(|i| {
                    let pid = h.allocate().unwrap();
                    h.write(pid, |b| b[0] = i).unwrap();
                    pid
                })
                .collect()
        };
        p.flush().unwrap();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let p = &p;
                let pids = &pids;
                scope.spawn(move || {
                    let mut h = p.handle();
                    for round in 0..50 {
                        let i = (t * 7 + round * 13) % pids.len();
                        let v = h.read(pids[i], |b| b[0]).unwrap();
                        assert_eq!(v as usize, i);
                    }
                });
            }
        });
        // Aggregate arithmetic still holds under concurrency.
        let s = p.stats();
        assert_eq!(s.logical_reads, s.hits + s.physical_reads);
    }

    #[test]
    fn shard_stats_sum_to_aggregate() {
        let p = pool(8, 4);
        let mut h = p.handle();
        let pids: Vec<PageId> = (0..8).map(|_| h.allocate().unwrap()).collect();
        p.flush().unwrap();
        for &pid in &pids {
            h.read(pid, |_| ()).unwrap();
            h.read(pid, |_| ()).unwrap();
        }
        let per_shard = p.shard_stats();
        assert_eq!(per_shard.len(), 4);
        let total = p.stats();
        assert_eq!(
            per_shard.iter().map(|s| s.logical_reads).sum::<u64>(),
            total.logical_reads
        );
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), total.hits);
    }
}
