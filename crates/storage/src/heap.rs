//! Slotted-page heap file: the tuple store.
//!
//! Each tuple's UDA encoding is stored as one variable-length record;
//! random-access candidate verification ("check whether the tuple
//! qualifies") costs exactly one page read per record, which is the I/O
//! behaviour the paper's search strategies trade off against.
//!
//! Page layout:
//!
//! ```text
//! 0   u16 slot_count
//! 2   u16 free_end          offset where the record area starts (grows down)
//! 4   slot[i]: u16 offset, u16 len     (len == 0 ⇒ deleted)
//! ... free space ...
//! ... records packed at the tail ...
//! ```
//!
//! Every page access goes through a fallible [`BufferPool`]; slot
//! directories that point outside the page (possible only with a corrupt
//! page that passed physical checks) surface as
//! [`StorageError::Corrupt`].

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{field, PageId, PAGE_SIZE};

const HDR_SLOTS: usize = 0;
const HDR_FREE_END: usize = 2;
const HDR_LEN: usize = 4;
const SLOT_LEN: usize = 4;

/// Address of a record: page plus slot index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId {
    /// The page holding the record.
    pub page: PageId,
    /// Slot index within the page.
    pub slot: u16,
}

/// A heap file of variable-length records.
///
/// The file's page list lives in memory (it is index metadata, not data);
/// record bytes live on pages and are accessed through a [`BufferPool`].
pub struct HeapFile {
    pages: Vec<PageId>,
    records: u64,
}

/// Largest record the heap can store on one page.
pub const MAX_RECORD: usize = PAGE_SIZE - HDR_LEN - SLOT_LEN;

/// Validate a slot's record bounds against the page, rejecting corrupt
/// directories instead of panicking on a slice.
fn record_bounds(off: usize, len: usize) -> Result<std::ops::Range<usize>> {
    if off >= PAGE_SIZE || len > PAGE_SIZE - off {
        return Err(StorageError::Corrupt("heap slot points outside its page"));
    }
    Ok(off..off + len)
}

impl HeapFile {
    /// New empty heap file.
    pub fn new() -> HeapFile {
        HeapFile {
            pages: Vec::new(),
            records: 0,
        }
    }

    /// Reattach a heap file from persisted parts (see
    /// [`HeapFile::raw_parts`]). The caller asserts the pages belong to a
    /// heap previously built on the same store.
    pub fn from_raw_parts(pages: Vec<PageId>, records: u64) -> HeapFile {
        HeapFile { pages, records }
    }

    /// The persistable identity of this heap: its page list and live
    /// record count.
    pub fn raw_parts(&self) -> (&[PageId], u64) {
        (&self.pages, self.records)
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the heap holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Number of pages the heap occupies.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// The heap's pages in allocation order (for full scans).
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Insert a record, returning its address.
    ///
    /// Rejects `data` above [`MAX_RECORD`] with
    /// [`StorageError::RecordTooLarge`] and zero-length `data` with
    /// [`StorageError::EmptyRecord`] (zero length marks a deleted slot on
    /// the page, so empty records would be unretrievable). With online
    /// mutation these sizes arrive from callers at runtime, so they are
    /// typed errors rather than panics; nothing is modified when they
    /// fire.
    pub fn insert(&mut self, pool: &mut BufferPool, data: &[u8]) -> Result<RecordId> {
        if data.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                len: data.len(),
                max: MAX_RECORD,
            });
        }
        if data.is_empty() {
            return Err(StorageError::EmptyRecord);
        }
        if let Some(&last) = self.pages.last() {
            if let Some(rid) = Self::try_insert_on(pool, last, data)? {
                self.records += 1;
                return Ok(rid);
            }
        }
        let pid = pool.allocate()?;
        pool.write(pid, |b| {
            field::put_u16(b, HDR_SLOTS, 0);
            field::put_u16(b, HDR_FREE_END, PAGE_SIZE as u16);
        })?;
        self.pages.push(pid);
        let rid = Self::try_insert_on(pool, pid, data)?
            .ok_or(StorageError::Corrupt("fresh heap page rejected a record"))?;
        self.records += 1;
        Ok(rid)
    }

    fn try_insert_on(pool: &mut BufferPool, pid: PageId, data: &[u8]) -> Result<Option<RecordId>> {
        pool.write(pid, |b| {
            let slots = field::get_u16(b, HDR_SLOTS) as usize;
            let free_end = field::get_u16(b, HDR_FREE_END) as usize;
            let slot_area_end = HDR_LEN + (slots + 1) * SLOT_LEN;
            if free_end < slot_area_end || free_end - slot_area_end < data.len() {
                return None;
            }
            let off = free_end - data.len();
            b[off..off + data.len()].copy_from_slice(data);
            let slot_off = HDR_LEN + slots * SLOT_LEN;
            field::put_u16(b, slot_off, off as u16);
            field::put_u16(b, slot_off + 2, data.len() as u16);
            field::put_u16(b, HDR_SLOTS, (slots + 1) as u16);
            field::put_u16(b, HDR_FREE_END, off as u16);
            Some(RecordId {
                page: pid,
                slot: slots as u16,
            })
        })
    }

    /// Read a record's bytes. Returns `Ok(None)` for a deleted slot.
    pub fn get(&self, pool: &mut BufferPool, rid: RecordId) -> Result<Option<Vec<u8>>> {
        pool.read(rid.page, |b| {
            let slots = field::get_u16(b, HDR_SLOTS);
            if rid.slot >= slots {
                return Ok(None);
            }
            let slot_off = HDR_LEN + rid.slot as usize * SLOT_LEN;
            let off = field::get_u16(b, slot_off) as usize;
            let len = field::get_u16(b, slot_off + 2) as usize;
            if len == 0 {
                return Ok(None);
            }
            Ok(Some(b[record_bounds(off, len)?].to_vec()))
        })?
    }

    /// Delete a record. Space is not reclaimed (no compaction); the slot is
    /// tombstoned. Returns whether a live record was deleted.
    pub fn delete(&mut self, pool: &mut BufferPool, rid: RecordId) -> Result<bool> {
        let deleted = pool.write(rid.page, |b| {
            let slots = field::get_u16(b, HDR_SLOTS);
            if rid.slot >= slots {
                return false;
            }
            let slot_off = HDR_LEN + rid.slot as usize * SLOT_LEN;
            if field::get_u16(b, slot_off + 2) == 0 {
                return false;
            }
            field::put_u16(b, slot_off + 2, 0);
            true
        })?;
        if deleted {
            self.records -= 1;
        }
        Ok(deleted)
    }

    /// Visit every live record in page order: `f(rid, bytes)`.
    pub fn scan(&self, pool: &mut BufferPool, mut f: impl FnMut(RecordId, &[u8])) -> Result<()> {
        for &pid in &self.pages {
            pool.read(pid, |b| {
                let slots = field::get_u16(b, HDR_SLOTS);
                for slot in 0..slots {
                    let slot_off = HDR_LEN + slot as usize * SLOT_LEN;
                    let off = field::get_u16(b, slot_off) as usize;
                    let len = field::get_u16(b, slot_off + 2) as usize;
                    if len > 0 {
                        f(RecordId { page: pid, slot }, &b[record_bounds(off, len)?]);
                    }
                }
                Ok(())
            })??;
        }
        Ok(())
    }
}

impl Default for HeapFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;

    fn setup() -> (HeapFile, BufferPool) {
        (
            HeapFile::new(),
            BufferPool::with_capacity(InMemoryDisk::shared(), 16),
        )
    }

    #[test]
    fn insert_get_roundtrip() {
        let (mut h, mut p) = setup();
        let a = h.insert(&mut p, b"hello").unwrap();
        let b = h.insert(&mut p, b"world!!").unwrap();
        assert_eq!(h.get(&mut p, a).unwrap().unwrap(), b"hello");
        assert_eq!(h.get(&mut p, b).unwrap().unwrap(), b"world!!");
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn records_pack_many_per_page() {
        let (mut h, mut p) = setup();
        for i in 0..100u32 {
            h.insert(&mut p, &i.to_le_bytes()).unwrap();
        }
        assert_eq!(h.num_pages(), 1, "100 tiny records fit one 8K page");
    }

    #[test]
    fn page_overflow_allocates_new_page() {
        let (mut h, mut p) = setup();
        let big = vec![0xAB; 4000];
        let r1 = h.insert(&mut p, &big).unwrap();
        let r2 = h.insert(&mut p, &big).unwrap();
        let r3 = h.insert(&mut p, &big).unwrap();
        assert_eq!(h.num_pages(), 2);
        assert_ne!(r1.page, r3.page);
        assert_eq!(h.get(&mut p, r2).unwrap().unwrap().len(), 4000);
    }

    #[test]
    fn delete_tombstones() {
        let (mut h, mut p) = setup();
        let a = h.insert(&mut p, b"gone").unwrap();
        let b = h.insert(&mut p, b"stays").unwrap();
        assert!(h.delete(&mut p, a).unwrap());
        assert!(!h.delete(&mut p, a).unwrap(), "double delete is a no-op");
        assert_eq!(h.get(&mut p, a).unwrap(), None);
        assert_eq!(h.get(&mut p, b).unwrap().unwrap(), b"stays");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn scan_visits_live_records_in_order() {
        let (mut h, mut p) = setup();
        let ids: Vec<RecordId> = (0..5u8).map(|i| h.insert(&mut p, &[i]).unwrap()).collect();
        h.delete(&mut p, ids[2]).unwrap();
        let mut seen = Vec::new();
        h.scan(&mut p, |_, bytes| seen.push(bytes[0])).unwrap();
        assert_eq!(seen, vec![0, 1, 3, 4]);
    }

    #[test]
    fn get_of_bogus_slot_is_none() {
        let (mut h, mut p) = setup();
        let a = h.insert(&mut p, b"x").unwrap();
        assert!(h
            .get(
                &mut p,
                RecordId {
                    page: a.page,
                    slot: 99
                }
            )
            .unwrap()
            .is_none());
    }

    #[test]
    fn corrupt_slot_directory_is_a_typed_error() {
        let (mut h, mut p) = setup();
        let a = h.insert(&mut p, b"victim").unwrap();
        // Point the slot's offset beyond the page.
        p.write(a.page, |b| {
            field::put_u16(b, HDR_LEN, (PAGE_SIZE - 1) as u16);
            field::put_u16(b, HDR_LEN + 2, 32);
        })
        .unwrap();
        assert_eq!(
            h.get(&mut p, a),
            Err(StorageError::Corrupt("heap slot points outside its page"))
        );
        assert!(h.scan(&mut p, |_, _| {}).is_err());
    }

    #[test]
    fn max_record_fits() {
        let (mut h, mut p) = setup();
        let r = h.insert(&mut p, &vec![7u8; MAX_RECORD]).unwrap();
        assert_eq!(h.get(&mut p, r).unwrap().unwrap().len(), MAX_RECORD);
    }

    #[test]
    fn oversize_record_is_a_typed_error() {
        let (mut h, mut p) = setup();
        assert_eq!(
            h.insert(&mut p, &vec![0u8; MAX_RECORD + 1]),
            Err(StorageError::RecordTooLarge {
                len: MAX_RECORD + 1,
                max: MAX_RECORD
            })
        );
        assert_eq!(h.len(), 0, "rejected insert modifies nothing");
        assert_eq!(h.num_pages(), 0);
    }

    #[test]
    fn empty_record_is_a_typed_error() {
        let (mut h, mut p) = setup();
        assert_eq!(h.insert(&mut p, b""), Err(StorageError::EmptyRecord));
        assert_eq!(h.len(), 0, "rejected insert modifies nothing");
    }
}
