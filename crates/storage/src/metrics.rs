//! Query-level execution counters.
//!
//! [`QueryMetrics`] is the observability contract shared by every search
//! path in the workspace: the inverted-index strategies, the PDR-tree
//! traversals, the scan baseline, and the join operators all populate the
//! same struct, so two executions are directly comparable no matter which
//! algorithm answered them. The counters mirror the quantities the paper's
//! evaluation is framed in — disk I/O, candidates examined, posting-list
//! depth reached before early termination — and are documented field by
//! field (with the lemma and figure each one corresponds to) in
//! `docs/METRICS.md`.
//!
//! Counting is pure in-memory arithmetic on `u64`s; populating metrics
//! adds no I/O and no allocation to a query, which is why every execution
//! collects them unconditionally.

use std::fmt;

use crate::stats::IoStats;

/// Counters collected while executing one query (or, after
/// [`QueryMetrics::merge`], a batch of queries).
///
/// # Candidate bookkeeping invariant
///
/// Every candidate a strategy generates is accounted for exactly once:
///
/// ```text
/// candidates_generated =
///     candidates_pruned + candidates_verified + candidates_settled
/// ```
///
/// [`candidate_invariant_holds`](QueryMetrics::candidate_invariant_holds)
/// checks it; the unit tests of every search path assert it.
///
/// # Which fields a path populates
///
/// | path                         | fields                                        |
/// |------------------------------|-----------------------------------------------|
/// | inverted, list scans         | `lists_*`, `postings_scanned`, `candidates_*` |
/// | inverted, frontier searches  | + `frontier_pops`, `lemma1_stops`             |
/// | PDR-tree traversals          | `nodes_*`, `leaf_entries_examined`            |
/// | scan baseline / fallbacks    | `heap_tuples_scanned`                         |
/// | everything                   | `io`                                          |
///
/// Fields a path does not touch stay zero, so merged batches remain
/// interpretable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryMetrics {
    /// Posting lists the strategy opened (started reading).
    pub lists_opened: u64,
    /// Posting lists skipped entirely — row pruning's `q.p < τ` test.
    pub lists_pruned: u64,
    /// Posting entries read from lists, sequentially. The paper's
    /// "entries examined" axis; column pruning's saving shows up here.
    /// Block-format lists count only entries *materialized* from decoded
    /// blocks, so the block-max savings show up here too.
    pub postings_scanned: u64,
    /// Posting blocks decoded into entries (block-format lists only; raw
    /// B-tree lists leave this zero). Each decode materializes the whole
    /// block, so `blocks_decoded × block size` bounds the decode work.
    pub blocks_decoded: u64,
    /// Posting blocks skipped without decoding because the quantized
    /// block maximum could not meet the live bound (τ, θ, or the Lemma 1
    /// frontier sum) — WAND-style block-max pruning. For every opened
    /// block list, `blocks_decoded + blocks_skipped` equals the list's
    /// block count.
    pub blocks_skipped: u64,
    /// Most-promising-head-first cursor advances (highest-prob-first,
    /// NRA, and top-k drains).
    pub frontier_pops: u64,
    /// Times Lemma 1 (or its dynamic-threshold top-k variant) terminated
    /// a drain before the lists were exhausted. When this is non-zero,
    /// `frontier_pops` is the early-termination depth the paper plots.
    pub lemma1_stops: u64,
    /// Distinct tuples that entered the candidate pipeline.
    pub candidates_generated: u64,
    /// Candidates discarded by an upper bound — no random access spent.
    pub candidates_pruned: u64,
    /// Candidates resolved by a random access to the tuple store.
    pub candidates_verified: u64,
    /// Candidates decided exactly from accumulated list contributions,
    /// with no random access (brute aggregation; NRA's converged bounds —
    /// the "deferred random accesses" the strategy exists to avoid).
    pub candidates_settled: u64,
    /// PDR-tree nodes read during traversal (internal + leaf).
    pub nodes_visited: u64,
    /// PDR-tree children not descended into because the boundary bound
    /// (Lemma 2 for PETQ, the divergence lower bound for DSTQ) ruled the
    /// subtree out.
    pub nodes_pruned: u64,
    /// Leaf entries whose exact score was computed during a PDR
    /// traversal.
    pub leaf_entries_examined: u64,
    /// Tuples read by a full heap scan (scan baseline, or an index's
    /// scan fallback).
    pub heap_tuples_scanned: u64,
    /// Write-ahead-log records appended by the durable index serving this
    /// session (insert/update/delete plus epoch markers).
    pub wal_appends: u64,
    /// Device fsyncs the write-ahead log issued (group commit batches
    /// plus record-free syncs such as log resets).
    pub wal_fsyncs: u64,
    /// WAL records re-applied during the recovery that opened this
    /// durable index (0 after a clean shutdown or checkpoint).
    pub replayed_records: u64,
    /// Times the adaptive executor abandoned a planned strategy
    /// mid-query because live counters overran the cost prediction
    /// beyond the overrun factor (`Strategy::Auto` only; fixed
    /// strategies leave this zero).
    pub plan_fallbacks: u64,
    /// Times this query (or a query in this batch) was held in the
    /// admission queue because its tenant was at its frame quota, then
    /// admitted once capacity freed up (multi-tenant service only;
    /// standalone executions leave this zero).
    pub admission_waits: u64,
    /// Queries turned away outright by admission control — the tenant
    /// was at quota *and* its wait queue was full. A rejected query has
    /// no outcome of its own, so this counter only appears in tenant- or
    /// service-level aggregates.
    pub admission_rejects: u64,
    /// Buffer-pool I/O charged to this query.
    pub io: IoStats,
}

impl QueryMetrics {
    /// A zeroed scratch value for callers that do not keep metrics.
    pub fn new() -> QueryMetrics {
        QueryMetrics::default()
    }

    /// Candidates that had their exact score computed, by any means
    /// (`candidates_verified + candidates_settled`).
    pub fn candidates_examined(&self) -> u64 {
        self.candidates_verified + self.candidates_settled
    }

    /// Whether the candidate bookkeeping invariant holds (see the type
    /// docs). Trivially true for paths that generate no candidates.
    pub fn candidate_invariant_holds(&self) -> bool {
        self.candidates_generated
            == self.candidates_pruned + self.candidates_verified + self.candidates_settled
    }

    /// Accumulate another query's counters into `self` (field-wise sum).
    /// This is the batch-aggregation operation: summing per-query metrics
    /// is exact because every counter is additive.
    pub fn merge(&mut self, other: &QueryMetrics) {
        self.lists_opened += other.lists_opened;
        self.lists_pruned += other.lists_pruned;
        self.postings_scanned += other.postings_scanned;
        self.blocks_decoded += other.blocks_decoded;
        self.blocks_skipped += other.blocks_skipped;
        self.frontier_pops += other.frontier_pops;
        self.lemma1_stops += other.lemma1_stops;
        self.candidates_generated += other.candidates_generated;
        self.candidates_pruned += other.candidates_pruned;
        self.candidates_verified += other.candidates_verified;
        self.candidates_settled += other.candidates_settled;
        self.nodes_visited += other.nodes_visited;
        self.nodes_pruned += other.nodes_pruned;
        self.leaf_entries_examined += other.leaf_entries_examined;
        self.heap_tuples_scanned += other.heap_tuples_scanned;
        self.wal_appends += other.wal_appends;
        self.wal_fsyncs += other.wal_fsyncs;
        self.replayed_records += other.replayed_records;
        self.plan_fallbacks += other.plan_fallbacks;
        self.admission_waits += other.admission_waits;
        self.admission_rejects += other.admission_rejects;
        self.io.hits += other.io.hits;
        self.io.physical_reads += other.io.physical_reads;
        self.io.physical_writes += other.io.physical_writes;
        self.io.logical_reads += other.io.logical_reads;
    }

    /// Field-wise sum of an iterator of metrics.
    pub fn sum<'a>(metrics: impl IntoIterator<Item = &'a QueryMetrics>) -> QueryMetrics {
        let mut total = QueryMetrics::default();
        for m in metrics {
            total.merge(m);
        }
        total
    }

    /// The `(name, value)` pairs of every counter, in display order —
    /// the single source of truth for the CLI explain output and for
    /// documentation checks.
    pub fn fields(&self) -> [(&'static str, u64); 25] {
        [
            ("lists_opened", self.lists_opened),
            ("lists_pruned", self.lists_pruned),
            ("postings_scanned", self.postings_scanned),
            ("blocks_decoded", self.blocks_decoded),
            ("blocks_skipped", self.blocks_skipped),
            ("frontier_pops", self.frontier_pops),
            ("lemma1_stops", self.lemma1_stops),
            ("candidates_generated", self.candidates_generated),
            ("candidates_pruned", self.candidates_pruned),
            ("candidates_verified", self.candidates_verified),
            ("candidates_settled", self.candidates_settled),
            ("nodes_visited", self.nodes_visited),
            ("nodes_pruned", self.nodes_pruned),
            ("leaf_entries_examined", self.leaf_entries_examined),
            ("heap_tuples_scanned", self.heap_tuples_scanned),
            ("wal_appends", self.wal_appends),
            ("wal_fsyncs", self.wal_fsyncs),
            ("replayed_records", self.replayed_records),
            ("plan_fallbacks", self.plan_fallbacks),
            ("admission_waits", self.admission_waits),
            ("admission_rejects", self.admission_rejects),
            ("io.hits", self.io.hits),
            ("io.physical_reads", self.io.physical_reads),
            ("io.physical_writes", self.io.physical_writes),
            ("io.logical_reads", self.io.logical_reads),
        ]
    }
}

impl fmt::Display for QueryMetrics {
    /// One `name  value` line per counter, zero-valued counters included,
    /// so output is diffable across runs and strategies.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.fields() {
            writeln!(f, "  {name:<22} {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_fieldwise_sum() {
        let mut a = QueryMetrics {
            postings_scanned: 5,
            blocks_decoded: 2,
            frontier_pops: 2,
            candidates_generated: 3,
            candidates_verified: 3,
            ..QueryMetrics::default()
        };
        a.io.physical_reads = 7;
        let mut b = QueryMetrics {
            postings_scanned: 10,
            blocks_decoded: 1,
            blocks_skipped: 6,
            lemma1_stops: 1,
            candidates_generated: 4,
            candidates_pruned: 4,
            ..QueryMetrics::default()
        };
        b.io.physical_reads = 1;
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.postings_scanned, 15);
        assert_eq!(m.blocks_decoded, 3);
        assert_eq!(m.blocks_skipped, 6);
        assert_eq!(m.frontier_pops, 2);
        assert_eq!(m.lemma1_stops, 1);
        assert_eq!(m.candidates_generated, 7);
        assert_eq!(m.io.physical_reads, 8);
        assert!(m.candidate_invariant_holds());
        assert_eq!(QueryMetrics::sum([&a, &b]), m);
    }

    #[test]
    fn invariant_detects_unaccounted_candidates() {
        let mut m = QueryMetrics::default();
        assert!(m.candidate_invariant_holds());
        m.candidates_generated = 2;
        m.candidates_verified = 1;
        assert!(!m.candidate_invariant_holds());
        m.candidates_settled = 1;
        assert!(m.candidate_invariant_holds());
        assert_eq!(m.candidates_examined(), 2);
    }

    #[test]
    fn display_lists_every_field() {
        let m = QueryMetrics::default();
        let text = format!("{m}");
        for (name, _) in m.fields() {
            assert!(text.contains(name), "display output missing {name}");
        }
    }
}
