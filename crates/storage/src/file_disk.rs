//! A file-backed page store with per-page checksums.
//!
//! [`crate::InMemoryDisk`] reproduces the paper's I/O *counts*; `FileDisk`
//! additionally persists pages to a real file, so indexes survive process
//! restarts and wall-clock benches exercise genuine I/O. The two stores
//! are interchangeable behind [`PageStore`].
//!
//! ## On-disk layout
//!
//! Each page occupies a [`RECORD_SIZE`]-byte record: the 8 KB page image
//! followed by an 8-byte trailer — the little-endian CRC32C of the image
//! plus 4 reserved (zero) bytes. The trailer is written together with the
//! page and verified on **every** physical read, so bit rot and torn
//! writes surface as [`StorageError::Checksum`] on the query that touches
//! the page instead of being decoded as valid index structure.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::crc::crc32c;
use crate::disk::PageStore;
use crate::error::{Result, StorageError};
use crate::page::{PageId, PAGE_SIZE};

/// Bytes after the page image: 4-byte CRC32C + 4 reserved.
pub const PAGE_TRAILER: usize = 8;

/// Bytes one page occupies on disk.
pub const RECORD_SIZE: usize = PAGE_SIZE + PAGE_TRAILER;

/// A page store persisted in a single file (page `i` at offset
/// `i · RECORD_SIZE`), with a verified CRC32C trailer per page.
pub struct FileDisk {
    file: Mutex<File>,
    path: PathBuf,
    pages: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl FileDisk {
    /// Create (truncate) a new page file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<FileDisk> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(FileDisk {
            file: Mutex::new(file),
            path,
            pages: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// Open an existing page file (page count derived from its length).
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<FileDisk> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        if len % RECORD_SIZE as u64 != 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "file length {len} is not a whole number of {RECORD_SIZE}-byte page records"
                ),
            ));
        }
        Ok(FileDisk {
            file: Mutex::new(file),
            path,
            pages: AtomicU64::new(len / RECORD_SIZE as u64),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flush OS buffers to stable storage.
    pub fn sync(&self) -> std::io::Result<()> {
        self.file.lock().sync_data()
    }

    fn check_bounds(&self, pid: PageId) -> Result<()> {
        let pages = self.pages.load(Ordering::SeqCst);
        if pid.0 >= pages {
            return Err(StorageError::OutOfBounds { pid, pages });
        }
        Ok(())
    }

    fn seek_to(&self, file: &mut File, pid: PageId, op: &'static str) -> Result<()> {
        file.seek(SeekFrom::Start(pid.0 * RECORD_SIZE as u64))
            .map(|_| ())
            .map_err(|e| StorageError::io(op, pid, e))
    }

    /// Fault injection for tests: XOR one stored byte of page `pid` at
    /// `offset` *without* updating the CRC trailer, simulating bit rot.
    /// The next physical read of the page fails with
    /// [`StorageError::Checksum`].
    pub fn corrupt_byte(&self, pid: PageId, offset: usize) -> Result<()> {
        self.check_bounds(pid)?;
        assert!(
            offset < PAGE_SIZE,
            "corruption offset must land in the page image"
        );
        let mut file = self.file.lock();
        let at = pid.0 * RECORD_SIZE as u64 + offset as u64;
        let mut byte = [0u8; 1];
        file.seek(SeekFrom::Start(at))
            .map_err(|e| StorageError::io("seek", pid, e))?;
        file.read_exact(&mut byte)
            .map_err(|e| StorageError::io("read", pid, e))?;
        byte[0] ^= 0x01;
        file.seek(SeekFrom::Start(at))
            .map_err(|e| StorageError::io("seek", pid, e))?;
        file.write_all(&byte)
            .map_err(|e| StorageError::io("write", pid, e))?;
        Ok(())
    }

    /// Fault injection for tests: rewrite page `pid` keeping only the
    /// first `keep` bytes of `data` (the rest of the record, trailer
    /// included, keeps its previous contents) — a torn write. Unless the
    /// tear is invisible (old and new bytes agree past `keep`), the next
    /// read fails with [`StorageError::Checksum`].
    pub fn torn_write(&self, pid: PageId, data: &[u8; PAGE_SIZE], keep: usize) -> Result<()> {
        self.check_bounds(pid)?;
        let keep = keep.min(PAGE_SIZE);
        let mut file = self.file.lock();
        self.seek_to(&mut file, pid, "seek")?;
        file.write_all(&data[..keep])
            .map_err(|e| StorageError::io("write", pid, e))?;
        Ok(())
    }
}

impl PageStore for FileDisk {
    fn allocate(&self) -> Result<PageId> {
        // Hold the file lock across the counter bump so a failed extend
        // can roll the counter back without racing another allocator.
        let mut file = self.file.lock();
        let pid = PageId(self.pages.load(Ordering::SeqCst));
        let mut record = [0u8; RECORD_SIZE];
        let crc = crc32c(&record[..PAGE_SIZE]).to_le_bytes();
        record[PAGE_SIZE..PAGE_SIZE + 4].copy_from_slice(&crc);
        self.seek_to(&mut file, pid, "seek")?;
        file.write_all(&record).map_err(|e| match e.kind() {
            std::io::ErrorKind::StorageFull | std::io::ErrorKind::QuotaExceeded => {
                StorageError::NoSpace
            }
            _ => StorageError::io("extend", pid, e),
        })?;
        self.pages.store(pid.0 + 1, Ordering::SeqCst);
        Ok(pid)
    }

    fn read(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.check_bounds(pid)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mut trailer = [0u8; PAGE_TRAILER];
        {
            let mut file = self.file.lock();
            self.seek_to(&mut file, pid, "seek")?;
            file.read_exact(out).map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => StorageError::ShortRead { pid },
                _ => StorageError::io("read", pid, e),
            })?;
            file.read_exact(&mut trailer).map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => StorageError::ShortRead { pid },
                _ => StorageError::io("read", pid, e),
            })?;
        }
        let stored = u32::from_le_bytes(trailer[..4].try_into().expect("4-byte slice"));
        if stored != crc32c(out) {
            return Err(StorageError::Checksum { pid });
        }
        Ok(())
    }

    fn write(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        self.check_bounds(pid)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut record = [0u8; RECORD_SIZE];
        record[..PAGE_SIZE].copy_from_slice(data);
        record[PAGE_SIZE..PAGE_SIZE + 4].copy_from_slice(&crc32c(data).to_le_bytes());
        let mut file = self.file.lock();
        self.seek_to(&mut file, pid, "seek")?;
        file.write_all(&record)
            .map_err(|e| StorageError::io("write", pid, e))
    }

    fn num_pages(&self) -> u64 {
        self.pages.load(Ordering::SeqCst)
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::zeroed_page;
    use std::sync::Arc;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("uncat-filedisk-{tag}-{}.pages", std::process::id()));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn write_then_reopen_preserves_pages() {
        let path = temp_path("reopen");
        let _guard = Cleanup(path.clone());
        {
            let d = FileDisk::create(&path).expect("create");
            let a = d.allocate().unwrap();
            let b = d.allocate().unwrap();
            let mut buf = zeroed_page();
            buf[0] = 11;
            d.write(a, &buf).unwrap();
            buf[0] = 22;
            d.write(b, &buf).unwrap();
            d.sync().expect("sync");
        }
        let d = FileDisk::open(&path).expect("open");
        assert_eq!(d.num_pages(), 2);
        let mut out = zeroed_page();
        d.read(PageId(0), &mut out).unwrap();
        assert_eq!(out[0], 11);
        d.read(PageId(1), &mut out).unwrap();
        assert_eq!(out[0], 22);
        assert_eq!(d.reads(), 2);
    }

    #[test]
    fn works_behind_a_buffer_pool() {
        let path = temp_path("pool");
        let _guard = Cleanup(path.clone());
        let store: crate::disk::SharedStore = Arc::new(FileDisk::create(&path).expect("create"));
        let mut pool = crate::BufferPool::with_capacity(store.clone(), 4);
        let pid = pool.allocate().unwrap();
        pool.write(pid, |b| b[100] = 42).unwrap();
        pool.flush().unwrap();
        pool.clear().unwrap();
        assert_eq!(pool.read(pid, |b| b[100]).unwrap(), 42);
        assert!(store.reads() >= 1);
    }

    #[test]
    fn open_rejects_torn_files() {
        let path = temp_path("torn");
        let _guard = Cleanup(path.clone());
        std::fs::write(&path, vec![0u8; RECORD_SIZE + 17]).expect("write odd-size file");
        assert!(FileDisk::open(&path).is_err());
    }

    #[test]
    fn out_of_bounds_access_is_typed() {
        let path = temp_path("oob");
        let _guard = Cleanup(path.clone());
        let d = FileDisk::create(&path).expect("create");
        let mut out = zeroed_page();
        assert_eq!(
            d.read(PageId(3), &mut out),
            Err(StorageError::OutOfBounds {
                pid: PageId(3),
                pages: 0
            })
        );
    }

    #[test]
    fn bit_rot_is_detected_on_read() {
        let path = temp_path("rot");
        let _guard = Cleanup(path.clone());
        let d = FileDisk::create(&path).expect("create");
        let pid = d.allocate().unwrap();
        let mut buf = zeroed_page();
        buf[1000] = 77;
        d.write(pid, &buf).unwrap();
        let mut out = zeroed_page();
        d.read(pid, &mut out).unwrap();

        d.corrupt_byte(pid, 1000).unwrap();
        assert_eq!(d.read(pid, &mut out), Err(StorageError::Checksum { pid }));

        // A full rewrite heals the page.
        d.write(pid, &buf).unwrap();
        assert_eq!(d.read(pid, &mut out), Ok(()));
        assert_eq!(out[1000], 77);
    }

    #[test]
    fn torn_write_is_detected_on_read() {
        let path = temp_path("tear");
        let _guard = Cleanup(path.clone());
        let d = FileDisk::create(&path).expect("create");
        let pid = d.allocate().unwrap();
        let mut old = zeroed_page();
        old.fill(0xAA);
        d.write(pid, &old).unwrap();
        let mut new = zeroed_page();
        new.fill(0xBB);
        d.torn_write(pid, &new, PAGE_SIZE / 2).unwrap();
        let mut out = zeroed_page();
        assert_eq!(d.read(pid, &mut out), Err(StorageError::Checksum { pid }));
    }

    #[test]
    fn short_file_reads_as_short_read() {
        let path = temp_path("short");
        let _guard = Cleanup(path.clone());
        let d = FileDisk::create(&path).expect("create");
        let pid = d.allocate().unwrap();
        // Truncate mid-page behind the store's back; the store still
        // believes the page exists.
        d.file.lock().set_len(100).expect("truncate");
        let mut out = zeroed_page();
        assert_eq!(d.read(pid, &mut out), Err(StorageError::ShortRead { pid }));
    }
}
