//! A file-backed page store.
//!
//! [`crate::InMemoryDisk`] reproduces the paper's I/O *counts*; `FileDisk`
//! additionally persists pages to a real file, so indexes survive process
//! restarts and wall-clock benches exercise genuine I/O. The two stores
//! are interchangeable behind [`PageStore`].

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::disk::PageStore;
use crate::page::{PageId, PAGE_SIZE};

/// A page store persisted in a single file (page `i` at offset
/// `i · PAGE_SIZE`).
pub struct FileDisk {
    file: Mutex<File>,
    path: PathBuf,
    pages: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl FileDisk {
    /// Create (truncate) a new page file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<FileDisk> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(FileDisk {
            file: Mutex::new(file),
            path,
            pages: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// Open an existing page file (page count derived from its length).
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<FileDisk> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("file length {len} is not a whole number of {PAGE_SIZE}-byte pages"),
            ));
        }
        Ok(FileDisk {
            file: Mutex::new(file),
            path,
            pages: AtomicU64::new(len / PAGE_SIZE as u64),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flush OS buffers to stable storage.
    pub fn sync(&self) -> std::io::Result<()> {
        self.file.lock().sync_data()
    }
}

impl PageStore for FileDisk {
    fn allocate(&self) -> PageId {
        let pid = self.pages.fetch_add(1, Ordering::SeqCst);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(pid * PAGE_SIZE as u64)).expect("seek within file");
        file.write_all(&[0u8; PAGE_SIZE]).expect("extend page file");
        PageId(pid)
    }

    fn read(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) {
        assert!(pid.0 < self.pages.load(Ordering::SeqCst), "read of unallocated page {pid}");
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(pid.0 * PAGE_SIZE as u64)).expect("seek within file");
        file.read_exact(out).expect("read full page");
    }

    fn write(&self, pid: PageId, data: &[u8; PAGE_SIZE]) {
        assert!(pid.0 < self.pages.load(Ordering::SeqCst), "write of unallocated page {pid}");
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(pid.0 * PAGE_SIZE as u64)).expect("seek within file");
        file.write_all(data).expect("write full page");
    }

    fn num_pages(&self) -> u64 {
        self.pages.load(Ordering::SeqCst)
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::zeroed_page;
    use std::sync::Arc;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("uncat-filedisk-{tag}-{}.pages", std::process::id()));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn write_then_reopen_preserves_pages() {
        let path = temp_path("reopen");
        let _guard = Cleanup(path.clone());
        {
            let d = FileDisk::create(&path).expect("create");
            let a = d.allocate();
            let b = d.allocate();
            let mut buf = zeroed_page();
            buf[0] = 11;
            d.write(a, &buf);
            buf[0] = 22;
            d.write(b, &buf);
            d.sync().expect("sync");
        }
        let d = FileDisk::open(&path).expect("open");
        assert_eq!(d.num_pages(), 2);
        let mut out = zeroed_page();
        d.read(PageId(0), &mut out);
        assert_eq!(out[0], 11);
        d.read(PageId(1), &mut out);
        assert_eq!(out[0], 22);
        assert_eq!(d.reads(), 2);
    }

    #[test]
    fn works_behind_a_buffer_pool() {
        let path = temp_path("pool");
        let _guard = Cleanup(path.clone());
        let store: crate::disk::SharedStore = Arc::new(FileDisk::create(&path).expect("create"));
        let mut pool = crate::BufferPool::with_capacity(store.clone(), 4);
        let pid = pool.allocate();
        pool.write(pid, |b| b[100] = 42);
        pool.flush();
        pool.clear();
        assert_eq!(pool.read(pid, |b| b[100]), 42);
        assert!(store.reads() >= 1);
    }

    #[test]
    fn open_rejects_torn_files() {
        let path = temp_path("torn");
        let _guard = Cleanup(path.clone());
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).expect("write odd-size file");
        assert!(FileDisk::open(&path).is_err());
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn out_of_bounds_read_panics() {
        let path = temp_path("oob");
        let _guard = Cleanup(path.clone());
        let d = FileDisk::create(&path).expect("create");
        let mut out = zeroed_page();
        d.read(PageId(3), &mut out);
    }
}
