//! The page unit and raw field accessors.

use std::fmt;

/// Page size in bytes. The paper's experiments all use 8 KB pages.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel used in page headers for "no page" (e.g. end of a chain).
    pub const INVALID: PageId = PageId(u64::MAX);

    /// Whether this id is the invalid sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != PageId::INVALID
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A page's in-memory image.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

/// Allocate a zeroed page image.
pub fn zeroed_page() -> PageBuf {
    vec![0u8; PAGE_SIZE]
        .into_boxed_slice()
        .try_into()
        .expect("exact size")
}

/// Little-endian field readers/writers for page layouts. All panics here
/// indicate layout bugs, not data-dependent conditions.
pub mod field {
    use super::PageId;

    /// Read a `u16` at `off`.
    #[inline]
    pub fn get_u16(buf: &[u8], off: usize) -> u16 {
        u16::from_le_bytes(buf[off..off + 2].try_into().expect("in bounds"))
    }

    /// Write a `u16` at `off`.
    #[inline]
    pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
        buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a `u32` at `off`.
    #[inline]
    pub fn get_u32(buf: &[u8], off: usize) -> u32 {
        u32::from_le_bytes(buf[off..off + 4].try_into().expect("in bounds"))
    }

    /// Write a `u32` at `off`.
    #[inline]
    pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
        buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a `u64` at `off`.
    #[inline]
    pub fn get_u64(buf: &[u8], off: usize) -> u64 {
        u64::from_le_bytes(buf[off..off + 8].try_into().expect("in bounds"))
    }

    /// Write a `u64` at `off`.
    #[inline]
    pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
        buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read an `f32` at `off`.
    #[inline]
    pub fn get_f32(buf: &[u8], off: usize) -> f32 {
        f32::from_le_bytes(buf[off..off + 4].try_into().expect("in bounds"))
    }

    /// Write an `f32` at `off`.
    #[inline]
    pub fn put_f32(buf: &mut [u8], off: usize, v: f32) {
        buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a [`PageId`] at `off`.
    #[inline]
    pub fn get_pid(buf: &[u8], off: usize) -> PageId {
        PageId(get_u64(buf, off))
    }

    /// Write a [`PageId`] at `off`.
    #[inline]
    pub fn put_pid(buf: &mut [u8], off: usize, v: PageId) {
        put_u64(buf, off, v.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_roundtrips() {
        let mut p = zeroed_page();
        field::put_u16(&mut p[..], 0, 0xBEEF);
        field::put_u32(&mut p[..], 2, 0xDEAD_BEEF);
        field::put_u64(&mut p[..], 6, u64::MAX - 1);
        field::put_f32(&mut p[..], 14, 0.625);
        field::put_pid(&mut p[..], 18, PageId(42));
        assert_eq!(field::get_u16(&p[..], 0), 0xBEEF);
        assert_eq!(field::get_u32(&p[..], 2), 0xDEAD_BEEF);
        assert_eq!(field::get_u64(&p[..], 6), u64::MAX - 1);
        assert_eq!(field::get_f32(&p[..], 14), 0.625);
        assert_eq!(field::get_pid(&p[..], 18), PageId(42));
    }

    #[test]
    fn invalid_pid_sentinel() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
    }

    #[test]
    fn zeroed_page_is_page_size() {
        assert_eq!(zeroed_page().len(), PAGE_SIZE);
    }
}
