//! Buffer pool with clock (second-chance) replacement.
//!
//! The experimental setup of the paper: "all experiments are conducted with
//! a buffer manager that allocates 100 blocks to each query. A clock
//! replacement algorithm is used to manage the buffer pool." Index code
//! accesses pages only through [`BufferPool::read`] / [`BufferPool::write`],
//! so [`IoStats::physical_reads`] is exactly the paper's y-axis.
//!
//! Every page access is fallible: a failed physical read, a checksum
//! mismatch, or an unwritable eviction victim propagates as a
//! [`StorageError`] to the calling query rather than aborting the
//! process.
//!
//! [`BufferPool`] is a facade over two backings: the paper's private
//! per-query pool (the default, every constructor here), or a per-query
//! [`PoolHandle`] onto a [`crate::SharedBufferPool`] (via
//! [`BufferPool::from_handle`]). Index and query code is written against
//! this one type and cannot tell the difference — `stats()` always
//! reports the I/O performed *by this query*, whichever backing served
//! it.

use std::collections::HashMap;

use crate::disk::SharedStore;
use crate::error::{Result, StorageError};
use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};
use crate::shared::PoolHandle;
use crate::stats::IoStats;
use crate::trace::{Phase, QueryTrace, SpanId, Tracer};

/// Default pool capacity in frames — the paper's per-query allocation.
pub const DEFAULT_FRAMES: usize = 100;

/// Page replacement policy. The paper uses clock; LRU is provided for the
/// replacement ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Second-chance clock (the paper's policy).
    #[default]
    Clock,
    /// Least-recently-used (exact, by access tick).
    Lru,
}

struct Frame {
    pid: PageId,
    buf: PageBuf,
    referenced: bool,
    dirty: bool,
    last_used: u64,
}

/// A buffer manager over a shared page store.
///
/// Single-owner (methods take `&mut self`): each query drives exactly one
/// pool, like the paper's per-query buffers. The frames behind it are
/// either private to this pool or one stripe-set of a
/// [`crate::SharedBufferPool`] shared with concurrent queries — see
/// [`BufferPool::from_handle`].
pub struct BufferPool {
    inner: Inner,
    /// Latency recorder for the query driving this pool. Disabled by
    /// default: one `None` check per access, nothing else (DESIGN.md §6g).
    tracer: Tracer,
}

enum Inner {
    Private(Private),
    Shared(PoolHandle),
}

impl Inner {
    fn stats(&self) -> IoStats {
        match self {
            Inner::Private(p) => p.stats,
            Inner::Shared(h) => h.stats(),
        }
    }
}

/// The paper's private per-query pool: one owner, no locks.
struct Private {
    store: SharedStore,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    hand: usize,
    capacity: usize,
    policy: Replacement,
    no_steal: bool,
    tick: u64,
    stats: IoStats,
}

impl BufferPool {
    /// Private pool with the paper's default 100 frames.
    pub fn new(store: SharedStore) -> BufferPool {
        BufferPool::with_capacity(store, DEFAULT_FRAMES)
    }

    /// Private pool with a custom frame count (≥ 1).
    pub fn with_capacity(store: SharedStore, capacity: usize) -> BufferPool {
        BufferPool::with_policy(store, capacity, Replacement::Clock)
    }

    /// Private pool with a custom frame count and replacement policy.
    pub fn with_policy(store: SharedStore, capacity: usize, policy: Replacement) -> BufferPool {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            inner: Inner::Private(Private {
                store,
                frames: Vec::with_capacity(capacity),
                map: HashMap::with_capacity(capacity),
                hand: 0,
                capacity,
                policy,
                no_steal: false,
                tick: 0,
                stats: IoStats::default(),
            }),
            tracer: Tracer::disabled(),
        }
    }

    /// Private pool under the *no-steal* discipline: dirty frames are
    /// never written back to the store — not by eviction (dirty frames
    /// are ineligible victims), not on drop. Durable pages therefore
    /// always hold the state of the last explicit installation (the
    /// checkpoint discipline of `uncat_query`'s durable index); a pool
    /// whose frames are all dirty reports [`StorageError::PoolExhausted`]
    /// rather than stealing one. [`flush`](BufferPool::flush) remains
    /// available as the *explicit* install path.
    pub fn new_no_steal(store: SharedStore, capacity: usize) -> BufferPool {
        let mut pool = BufferPool::with_policy(store, capacity, Replacement::Clock);
        match &mut pool.inner {
            Inner::Private(p) => p.no_steal = true,
            Inner::Shared(_) => unreachable!("with_policy builds a private pool"),
        }
        pool
    }

    /// Whether this pool runs the no-steal discipline.
    pub fn is_no_steal(&self) -> bool {
        match &self.inner {
            Inner::Private(p) => p.no_steal,
            Inner::Shared(_) => false,
        }
    }

    /// Number of dirty (not-yet-written-back) resident frames. Only
    /// meaningful on a private pool; a shared backing reports 0 because
    /// its dirty frames belong to every query at once.
    pub fn dirty_count(&self) -> usize {
        match &self.inner {
            Inner::Private(p) => p.frames.iter().filter(|f| f.dirty).count(),
            Inner::Shared(_) => 0,
        }
    }

    /// Clone the after-images of every dirty frame (page id ascending, so
    /// output is deterministic). This is the checkpoint's redo source:
    /// the pages whose durable copies are stale.
    ///
    /// # Panics
    /// On a shared backing — checkpoint bookkeeping requires a private
    /// (typically no-steal) pool.
    pub fn dirty_pages(&self) -> Vec<(PageId, PageBuf)> {
        match &self.inner {
            Inner::Private(p) => {
                let mut pages: Vec<(PageId, PageBuf)> = p
                    .frames
                    .iter()
                    .filter(|f| f.dirty)
                    .map(|f| (f.pid, f.buf.clone()))
                    .collect();
                pages.sort_by_key(|(pid, _)| *pid);
                pages
            }
            Inner::Shared(_) => {
                panic!("dirty-page bookkeeping requires a private pool")
            }
        }
    }

    /// Mark every frame clean *without* writing anything back: the caller
    /// has installed the dirty images through another channel (a
    /// committed checkpoint).
    ///
    /// # Panics
    /// On a shared backing (see [`BufferPool::dirty_pages`]).
    pub fn mark_all_clean(&mut self) {
        match &mut self.inner {
            Inner::Private(p) => {
                for frame in &mut p.frames {
                    frame.dirty = false;
                }
            }
            Inner::Shared(_) => {
                panic!("dirty-page bookkeeping requires a private pool")
            }
        }
    }

    /// Pool backed by a per-query handle onto a
    /// [`crate::SharedBufferPool`]. All reads and writes go through the
    /// shared frames; [`stats`](BufferPool::stats) reports only the I/O
    /// performed through this handle, so per-query metrics stay exact.
    pub fn from_handle(handle: PoolHandle) -> BufferPool {
        BufferPool {
            inner: Inner::Shared(handle),
            tracer: Tracer::disabled(),
        }
    }

    /// Whether this pool is a handle onto a shared pool.
    pub fn is_shared(&self) -> bool {
        matches!(self.inner, Inner::Shared(_))
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> Replacement {
        match &self.inner {
            Inner::Private(p) => p.policy,
            Inner::Shared(h) => h.pool().policy(),
        }
    }

    /// The shared store this pool sits on.
    pub fn store(&self) -> &SharedStore {
        match &self.inner {
            Inner::Private(p) => &p.store,
            Inner::Shared(h) => h.pool().store(),
        }
    }

    /// Allocate a fresh page on the store and cache its (zeroed) image.
    pub fn allocate(&mut self) -> Result<PageId> {
        self.timed(|inner| match inner {
            Inner::Private(p) => p.allocate(),
            Inner::Shared(h) => h.allocate(),
        })
    }

    /// Read page `pid`, exposing its bytes to `f`.
    pub fn read<R>(&mut self, pid: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> Result<R> {
        self.timed(|inner| match inner {
            Inner::Private(p) => p.read(pid, f),
            Inner::Shared(h) => h.read(pid, f),
        })
    }

    /// Mutate page `pid` in place; the frame is marked dirty and written
    /// back on eviction or [`flush`](BufferPool::flush).
    pub fn write<R>(
        &mut self,
        pid: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        self.timed(|inner| match inner {
            Inner::Private(p) => p.write(pid, f),
            Inner::Shared(h) => h.write(pid, f),
        })
    }

    /// Write every dirty frame back to the store. On error the failing
    /// frame (and any not yet visited) stays dirty. On a shared backing
    /// this flushes the whole shared pool.
    pub fn flush(&mut self) -> Result<()> {
        self.timed(|inner| match inner {
            Inner::Private(p) => p.flush(),
            Inner::Shared(h) => h.pool().flush(),
        })
    }

    /// Run a pool operation, attributing its duration to the I/O latency
    /// histograms when tracing is enabled and the operation performed
    /// physical I/O. The disabled path is a single branch: no clock read,
    /// no stats snapshot, no allocation.
    fn timed<R>(&mut self, op: impl FnOnce(&mut Inner) -> Result<R>) -> Result<R> {
        if !self.tracer.is_enabled() {
            return op(&mut self.inner);
        }
        let before = self.inner.stats();
        let t0 = self.tracer.now_ns().unwrap_or(0);
        let out = op(&mut self.inner);
        let dur = self.tracer.now_ns().unwrap_or(t0).saturating_sub(t0);
        let after = self.inner.stats();
        let read = after.physical_reads > before.physical_reads;
        let write = after.physical_writes > before.physical_writes;
        if read || write {
            self.tracer.record_io(dur, read, write);
        }
        out
    }

    /// Install a tracer (enabled or disabled) on this pool. The search
    /// paths all receive `&mut BufferPool`, so hosting the tracer here
    /// lets them record spans without any signature changes.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Whether a tracer is currently recording on this pool.
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// The pool's tracer (for direct histogram recording, e.g. WAL
    /// timing at the durable-index call sites).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Open a span of `phase` on this pool's tracer.
    /// [`SpanId::NONE`] when tracing is off.
    pub fn trace_begin(&mut self, phase: Phase) -> SpanId {
        self.tracer.begin(phase)
    }

    /// Close a span opened with [`trace_begin`](BufferPool::trace_begin).
    pub fn trace_end(&mut self, id: SpanId) {
        self.tracer.end(id)
    }

    /// Finish recording and return the trace, leaving tracing disabled.
    pub fn take_trace(&mut self) -> Option<QueryTrace> {
        self.tracer.take()
    }

    /// Drop all cached frames (flushing dirty ones): a cold cache. On a
    /// shared backing this clears the whole shared pool (pinned frames
    /// held by other queries survive).
    pub fn clear(&mut self) -> Result<()> {
        match &mut self.inner {
            Inner::Private(p) => p.clear(),
            Inner::Shared(h) => h.pool().clear(),
        }
    }

    /// I/O performed by this query so far (through this pool or handle).
    pub fn stats(&self) -> IoStats {
        match &self.inner {
            Inner::Private(p) => p.stats,
            Inner::Shared(h) => h.stats(),
        }
    }

    /// Zero the I/O counters (cache contents are retained).
    pub fn reset_stats(&mut self) {
        match &mut self.inner {
            Inner::Private(p) => p.stats = IoStats::default(),
            Inner::Shared(h) => h.reset_stats(),
        }
    }

    /// Frame capacity (of the whole shared pool, for a shared backing).
    pub fn capacity(&self) -> usize {
        match &self.inner {
            Inner::Private(p) => p.capacity,
            Inner::Shared(h) => h.pool().capacity(),
        }
    }

    /// Number of resident pages (pool-wide, for a shared backing).
    pub fn resident(&self) -> usize {
        match &self.inner {
            Inner::Private(p) => p.frames.len(),
            Inner::Shared(h) => h.pool().resident(),
        }
    }

    /// Whether `pid` is currently cached (no I/O side effects).
    pub fn is_resident(&self, pid: PageId) -> bool {
        match &self.inner {
            Inner::Private(p) => p.map.contains_key(&pid),
            Inner::Shared(h) => h.pool().is_resident(pid),
        }
    }
}

impl Private {
    fn allocate(&mut self) -> Result<PageId> {
        let pid = self.store.allocate()?;
        // The zeroed image is already known; fault it in without a read.
        let slot = self.victim_slot()?;
        self.install(slot, pid, zeroed_page());
        self.frames[slot].dirty = true;
        Ok(pid)
    }

    fn read<R>(&mut self, pid: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> Result<R> {
        let slot = self.fault_in(pid)?;
        self.touch(slot);
        Ok(f(&self.frames[slot].buf))
    }

    fn write<R>(&mut self, pid: PageId, f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R) -> Result<R> {
        let slot = self.fault_in(pid)?;
        self.touch(slot);
        let frame = &mut self.frames[slot];
        frame.dirty = true;
        Ok(f(&mut frame.buf))
    }

    fn touch(&mut self, slot: usize) {
        self.tick += 1;
        let frame = &mut self.frames[slot];
        frame.referenced = true;
        frame.last_used = self.tick;
    }

    fn flush(&mut self) -> Result<()> {
        for frame in &mut self.frames {
            if frame.dirty {
                self.store.write(frame.pid, &frame.buf)?;
                self.stats.physical_writes += 1;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    fn clear(&mut self) -> Result<()> {
        self.flush()?;
        self.frames.clear();
        self.map.clear();
        self.hand = 0;
        Ok(())
    }

    fn fault_in(&mut self, pid: PageId) -> Result<usize> {
        self.stats.logical_reads += 1;
        if let Some(&slot) = self.map.get(&pid) {
            self.stats.hits += 1;
            return Ok(slot);
        }
        self.stats.physical_reads += 1;
        let mut buf = zeroed_page();
        self.store.read(pid, &mut buf)?;
        let slot = self.victim_slot()?;
        self.install(slot, pid, buf);
        Ok(slot)
    }

    /// Pick a frame slot, evicting per the configured policy if full.
    fn victim_slot(&mut self) -> Result<usize> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                pid: PageId::INVALID,
                buf: zeroed_page(),
                referenced: false,
                dirty: false,
                last_used: 0,
            });
            return Ok(self.frames.len() - 1);
        }
        let no_steal = self.no_steal;
        let slot = match self.policy {
            Replacement::Clock => {
                // Two sweeps clear every reference bit, so a third pass is
                // guaranteed a victim — unless no-steal pins every dirty
                // frame, in which case an all-dirty pool is exhausted.
                let mut chosen = None;
                for _ in 0..3 * self.frames.len() {
                    let slot = self.hand;
                    self.hand = (self.hand + 1) % self.frames.len();
                    let frame = &mut self.frames[slot];
                    if no_steal && frame.dirty {
                        continue;
                    }
                    if frame.referenced {
                        frame.referenced = false; // second chance
                    } else {
                        chosen = Some(slot);
                        break;
                    }
                }
                chosen.ok_or(StorageError::PoolExhausted)?
            }
            Replacement::Lru => self
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| !(no_steal && f.dirty))
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .ok_or(StorageError::PoolExhausted)?,
        };
        let frame = &mut self.frames[slot];
        if frame.dirty {
            // A victim we cannot persist stays resident and dirty; the
            // caller's operation fails without losing the page image.
            self.store.write(frame.pid, &frame.buf)?;
            self.stats.physical_writes += 1;
            frame.dirty = false;
        }
        self.map.remove(&frame.pid);
        Ok(slot)
    }

    fn install(&mut self, slot: usize, pid: PageId, buf: PageBuf) {
        self.tick += 1;
        let tick = self.tick;
        let frame = &mut self.frames[slot];
        frame.pid = pid;
        frame.buf = buf;
        frame.referenced = true;
        frame.dirty = false;
        frame.last_used = tick;
        self.map.insert(pid, slot);
    }
}

impl Drop for Private {
    fn drop(&mut self) {
        // Best-effort writeback; errors here have no caller to report to
        // and must not turn into a panic during unwinding. A shared
        // backing is deliberately NOT flushed on handle drop — its dirty
        // frames belong to the pool, which outlives any one query. A
        // no-steal pool must not flush either: its dirty frames are
        // exactly the pages the durability protocol keeps off the store
        // until a checkpoint, and the WAL already covers them.
        if !self.no_steal {
            let _ = self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::fault::{Fault, FaultStore};
    use std::sync::Arc;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::with_capacity(InMemoryDisk::shared(), frames)
    }

    #[test]
    fn repeated_reads_hit_the_cache() {
        let mut p = pool(4);
        let pid = p.allocate().unwrap();
        p.flush().unwrap();
        p.reset_stats();
        for _ in 0..5 {
            p.read(pid, |_| ()).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.physical_reads, 0, "page was resident after allocate");
        assert_eq!(s.hits, 5);
        assert_eq!(s.logical_reads, 5);
    }

    #[test]
    fn writes_are_flushed_and_visible_to_other_pools() {
        let store = InMemoryDisk::shared();
        let pid;
        {
            let mut w = BufferPool::with_capacity(store.clone(), 2);
            pid = w.allocate().unwrap();
            w.write(pid, |b| b[17] = 99).unwrap();
            w.flush().unwrap();
        }
        let mut r = BufferPool::with_capacity(store, 2);
        let v = r.read(pid, |b| b[17]).unwrap();
        assert_eq!(v, 99);
        assert_eq!(r.stats().physical_reads, 1);
    }

    #[test]
    fn eviction_happens_beyond_capacity() {
        let mut p = pool(2);
        let pids: Vec<PageId> = (0..3).map(|_| p.allocate().unwrap()).collect();
        p.flush().unwrap();
        // Touch all three; only two fit.
        for &pid in &pids {
            p.read(pid, |_| ()).unwrap();
        }
        assert_eq!(p.resident(), 2);
        assert!(!p.is_resident(pids[0]) || !p.is_resident(pids[1]) || !p.is_resident(pids[2]));
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_pages() {
        let mut p = pool(2);
        let a = p.allocate().unwrap();
        let _b = p.allocate().unwrap(); // fills both frames; both referenced
        p.flush().unwrap();
        p.read(a, |_| ()).unwrap(); // keep A hot
        let c = p.allocate().unwrap(); // must evict someone
        p.flush().unwrap();
        // A was re-referenced after B, so the clock should clear reference
        // bits in order and evict one of the stale pages — after the dust
        // settles A or B is out but C is in.
        assert!(p.is_resident(c));
        assert_eq!(p.resident(), 2);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let store = InMemoryDisk::shared();
        let mut p = BufferPool::with_capacity(store.clone(), 1);
        let a = p.allocate().unwrap();
        p.write(a, |b| b[0] = 7).unwrap();
        let _b = p.allocate().unwrap(); // evicts dirty `a`
        let mut q = BufferPool::with_capacity(store, 1);
        assert_eq!(q.read(a, |b| b[0]).unwrap(), 7);
    }

    #[test]
    fn cold_read_counts_one_physical_io_per_page() {
        let store = InMemoryDisk::shared();
        let pids: Vec<PageId> = {
            let mut w = BufferPool::with_capacity(store.clone(), 8);
            let v: Vec<PageId> = (0..8).map(|_| w.allocate().unwrap()).collect();
            w.flush().unwrap();
            v
        };
        let mut p = BufferPool::with_capacity(store, 100);
        for &pid in &pids {
            p.read(pid, |_| ()).unwrap();
            p.read(pid, |_| ()).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.physical_reads, 8);
        assert_eq!(s.hits, 8);
    }

    #[test]
    fn clear_resets_cache_but_preserves_data() {
        let mut p = pool(4);
        let a = p.allocate().unwrap();
        p.write(a, |b| b[3] = 5).unwrap();
        p.clear().unwrap();
        assert_eq!(p.resident(), 0);
        assert_eq!(p.read(a, |b| b[3]).unwrap(), 5);
        assert!(p.is_resident(a));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let _ = pool(0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let store = InMemoryDisk::shared();
        let mut p = BufferPool::with_policy(store, 2, Replacement::Lru);
        assert_eq!(p.policy(), Replacement::Lru);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.flush().unwrap();
        p.read(a, |_| ()).unwrap(); // A is now the most recent
        let c = p.allocate().unwrap(); // must evict B (LRU)
        p.flush().unwrap();
        assert!(p.is_resident(a), "recently used page must survive");
        assert!(!p.is_resident(b), "LRU page must be evicted");
        assert!(p.is_resident(c));
    }

    #[test]
    fn lru_sequential_flood_behaves_like_fifo() {
        let store = InMemoryDisk::shared();
        let pids: Vec<PageId> = {
            let mut w = BufferPool::with_capacity(store.clone(), 8);
            let v: Vec<PageId> = (0..6).map(|_| w.allocate().unwrap()).collect();
            w.flush().unwrap();
            v
        };
        let mut p = BufferPool::with_policy(store, 3, Replacement::Lru);
        for &pid in &pids {
            p.read(pid, |_| ()).unwrap();
        }
        // Only the last 3 touched remain.
        assert!(!p.is_resident(pids[0]));
        assert!(!p.is_resident(pids[2]));
        assert!(p.is_resident(pids[3]));
        assert!(p.is_resident(pids[5]));
    }

    #[test]
    fn both_policies_deliver_identical_data() {
        let store = InMemoryDisk::shared();
        let pids: Vec<PageId> = {
            let mut w = BufferPool::with_capacity(store.clone(), 16);
            let v: Vec<PageId> = (0..10u8)
                .map(|i| {
                    let pid = w.allocate().unwrap();
                    w.write(pid, |b| b[0] = i).unwrap();
                    pid
                })
                .collect();
            w.flush().unwrap();
            v
        };
        for policy in [Replacement::Clock, Replacement::Lru] {
            let mut p = BufferPool::with_policy(store.clone(), 3, policy);
            for (i, &pid) in pids.iter().enumerate() {
                assert_eq!(p.read(pid, |b| b[0]).unwrap() as usize, i, "{policy:?}");
            }
        }
    }

    /// Deterministic access trace separating Clock from exact LRU.
    ///
    /// Capacity 3, pages A B C resident with A re-touched last, then a
    /// fourth page D faults in. Exact LRU evicts B (oldest last_used:
    /// B < C < A). The clock hand sits at slot 0 with every reference
    /// bit set, so it sweeps A, B, C clearing bits and returns to slot 0:
    /// A — the re-touched page Clock cannot protect, because one full
    /// sweep erases all recency it knows about.
    #[test]
    fn clock_and_lru_diverge_on_a_re_touched_page() {
        for (policy, evicted, survivor) in [
            (Replacement::Clock, 0usize, 1usize), // evicts A, keeps B
            (Replacement::Lru, 1, 0),             // evicts B, keeps A
        ] {
            let store = InMemoryDisk::shared();
            let pids: Vec<PageId> = {
                let mut w = BufferPool::with_capacity(store.clone(), 8);
                let v: Vec<PageId> = (0..4).map(|_| w.allocate().unwrap()).collect();
                w.flush().unwrap();
                v
            };
            let mut p = BufferPool::with_policy(store, 3, policy);
            p.read(pids[0], |_| ()).unwrap(); // A → slot 0
            p.read(pids[1], |_| ()).unwrap(); // B → slot 1
            p.read(pids[2], |_| ()).unwrap(); // C → slot 2
            p.read(pids[0], |_| ()).unwrap(); // re-touch A
            p.read(pids[3], |_| ()).unwrap(); // D faults in, someone goes
            assert!(
                !p.is_resident(pids[evicted]),
                "{policy:?} must evict page {evicted}"
            );
            assert!(
                p.is_resident(pids[survivor]),
                "{policy:?} must keep page {survivor}"
            );
            assert!(p.is_resident(pids[3]));
            // The residency difference is visible in the I/O counters of
            // the next access: the survivor hits, the victim re-faults.
            p.reset_stats();
            p.read(pids[survivor], |_| ()).unwrap();
            assert_eq!(p.stats().hits, 1, "{policy:?} survivor must hit");
            p.read(pids[evicted], |_| ()).unwrap();
            assert_eq!(
                p.stats().physical_reads,
                1,
                "{policy:?} victim must re-fault"
            );
        }
    }

    #[test]
    fn injected_read_failure_propagates_without_poisoning_the_pool() {
        let faults = Arc::new(FaultStore::new(InMemoryDisk::shared(), 3));
        faults.arm(Fault::FailRead { after: 1 });
        let mut p = BufferPool::with_capacity(faults.clone(), 4);
        let pid = p.allocate().unwrap();
        p.clear().unwrap();
        assert!(matches!(p.read(pid, |_| ()), Err(StorageError::Io { .. })));
        // The fault fired once; the pool stays usable.
        assert_eq!(p.read(pid, |b| b[0]).unwrap(), 0);
    }

    #[test]
    fn failed_dirty_eviction_keeps_the_frame_dirty() {
        let faults = Arc::new(FaultStore::new(InMemoryDisk::shared(), 3));
        let mut p = BufferPool::with_capacity(faults.clone(), 1);
        let a = p.allocate().unwrap();
        p.write(a, |b| b[0] = 5).unwrap();
        faults.arm(Fault::FailWrite { after: 1 });
        // Allocating a second page must evict dirty `a`; the injected
        // write failure surfaces and `a`'s image survives in the pool.
        assert!(p.allocate().is_err());
        assert_eq!(p.read(a, |b| b[0]).unwrap(), 5);
        p.flush().unwrap();
    }

    #[test]
    fn allocation_failure_surfaces_as_nospace() {
        let faults = Arc::new(FaultStore::new(InMemoryDisk::shared(), 3));
        faults.arm(Fault::FailAllocate { after: 1 });
        let mut p = BufferPool::with_capacity(faults, 2);
        assert_eq!(p.allocate(), Err(StorageError::NoSpace));
        assert!(p.allocate().is_ok());
    }

    #[test]
    fn no_steal_never_writes_dirty_pages_to_the_store() {
        let store = InMemoryDisk::shared();
        // Pre-allocate pages through a normal pool so the store has them.
        let pids: Vec<PageId> = {
            let mut w = BufferPool::with_capacity(store.clone(), 8);
            let v: Vec<PageId> = (0..4).map(|_| w.allocate().unwrap()).collect();
            w.flush().unwrap();
            v
        };
        {
            let mut p = BufferPool::new_no_steal(store.clone(), 2);
            assert!(p.is_no_steal());
            p.write(pids[0], |b| b[0] = 1).unwrap();
            // One clean slot left: reading the others cycles through it
            // without ever touching the dirty frame.
            for &pid in &pids[1..] {
                p.read(pid, |_| ()).unwrap();
            }
            assert_eq!(p.dirty_count(), 1);
            assert_eq!(p.stats().physical_writes, 0, "no-steal: no writeback");
            // Dropping the pool must not flush either.
        }
        let mut check = BufferPool::with_capacity(store, 2);
        assert_eq!(
            check.read(pids[0], |b| b[0]).unwrap(),
            0,
            "durable page keeps its pre-mutation image"
        );
    }

    #[test]
    fn no_steal_all_dirty_pool_is_exhausted_not_stolen() {
        let store = InMemoryDisk::shared();
        let mut p = BufferPool::new_no_steal(store, 2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        assert_eq!(p.dirty_count(), 2, "fresh pages are dirty");
        assert_eq!(p.allocate(), Err(StorageError::PoolExhausted));
        // The two dirty pages are intact and the store untouched.
        p.read(a, |_| ()).unwrap();
        p.read(b, |_| ()).unwrap();
        assert_eq!(p.stats().physical_writes, 0);
    }

    #[test]
    fn dirty_pages_and_mark_all_clean_drive_the_checkpoint_protocol() {
        let store = InMemoryDisk::shared();
        let mut p = BufferPool::new_no_steal(store.clone(), 4);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.write(b, |buf| buf[9] = 42).unwrap();
        let dirty = p.dirty_pages();
        assert_eq!(
            dirty.iter().map(|(pid, _)| *pid).collect::<Vec<_>>(),
            {
                let mut v = vec![a, b];
                v.sort();
                v
            },
            "deterministic ascending order"
        );
        // Install through the side channel (what a checkpoint does) …
        for (pid, buf) in &dirty {
            store.write(*pid, buf).unwrap();
        }
        p.mark_all_clean();
        assert_eq!(p.dirty_count(), 0);
        // … and the durable copies now match the cached images.
        let mut check = BufferPool::with_capacity(store, 4);
        assert_eq!(check.read(b, |buf| buf[9]).unwrap(), 42);
    }

    #[test]
    fn shared_backed_pool_is_interchangeable_with_private() {
        use crate::shared::SharedBufferPool;
        let store = InMemoryDisk::shared();
        let shared = SharedBufferPool::new(store.clone(), 8, 2);
        let mut p = BufferPool::from_handle(shared.handle());
        assert!(p.is_shared());
        let pid = p.allocate().unwrap();
        p.write(pid, |b| b[5] = 11).unwrap();
        p.flush().unwrap();
        assert_eq!(p.read(pid, |b| b[5]).unwrap(), 11);
        let s = p.stats();
        assert_eq!(s.logical_reads, 2); // the write and the read
        assert_eq!(s.physical_reads, 0); // resident since allocate
                                         // A private pool on the same store sees the flushed bytes.
        let mut q = BufferPool::with_capacity(store, 2);
        assert_eq!(q.read(pid, |b| b[5]).unwrap(), 11);
        assert!(!q.is_shared());
    }
}
