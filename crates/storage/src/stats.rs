//! I/O accounting. Buffer misses are the paper's headline metric.

/// Counters collected by a [`crate::BufferPool`] (and, independently, by the
/// underlying [`crate::disk::PageStore`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests satisfied from the pool (no disk access).
    pub hits: u64,
    /// Page requests that had to read from the store — the paper's "disk
    /// I/O" figure.
    pub physical_reads: u64,
    /// Dirty pages written back to the store (on eviction or flush).
    pub physical_writes: u64,
    /// Total page requests (`hits + physical_reads`).
    pub logical_reads: u64,
}

impl IoStats {
    /// Total physical I/O operations: reads *and* writes both count, one
    /// each. (The paper's figures plot reads only — use
    /// [`IoStats::physical_reads`] for those; `total_io` is the right
    /// quantity when write-back traffic matters, e.g. build workloads.)
    pub fn total_io(&self) -> u64 {
        self.physical_reads + self.physical_writes
    }

    /// Hit ratio in `[0, 1]`; zero when nothing was requested.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.hits as f64 / self.logical_reads as f64
        }
    }

    /// Difference `self - earlier`, for interval measurements.
    ///
    /// # Ordering expectations
    ///
    /// `earlier` must be a snapshot of the *same* counter stream (the same
    /// pool or store) taken no later than `self`; counters are monotone
    /// within a stream, so each field of the result is then the exact
    /// number of events in the interval. Snapshots from a different stream,
    /// or taken after `self` (e.g. across a
    /// [`crate::BufferPool::reset_stats`]), violate that precondition; the
    /// subtraction saturates at zero per field rather than wrapping, so a
    /// misuse shows up as an implausible zero, never as a number near
    /// `u64::MAX`.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            hits: self.hits.saturating_sub(earlier.hits),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_bounds() {
        let s = IoStats {
            hits: 3,
            physical_reads: 1,
            physical_writes: 0,
            logical_reads: 4,
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(IoStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn since_subtracts() {
        let a = IoStats {
            hits: 10,
            physical_reads: 5,
            physical_writes: 2,
            logical_reads: 15,
        };
        let b = IoStats {
            hits: 4,
            physical_reads: 2,
            physical_writes: 1,
            logical_reads: 6,
        };
        let d = a.since(&b);
        assert_eq!(
            d,
            IoStats {
                hits: 6,
                physical_reads: 3,
                physical_writes: 1,
                logical_reads: 9
            }
        );
        assert_eq!(d.total_io(), 4);
    }
}
