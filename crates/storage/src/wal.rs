//! Write-ahead log: append-only record framing with group commit.
//!
//! A [`Wal`] turns a byte-oriented [`LogDevice`] into a record log with
//! the same integrity discipline as the snapshot file protocol: every
//! record is framed as `magic ‖ u32 len ‖ CRC32C(payload) ‖ payload`
//! (little-endian, CRC from [`crate::crc`]), so a torn or corrupt tail is
//! detected — never interpreted. Appends are buffered by the OS until an
//! fsync; [`Wal`] batches that fsync over a configurable *group-commit
//! window* of records, trading a bounded loss window for fewer syncs.
//!
//! [`Wal::scan`] reads a log back and stops cleanly at the first record
//! that is torn (the device ends inside it), truncated (header cut
//! short), or corrupt (bad magic or checksum). Everything before that
//! point is returned; the tail's diagnosis is a typed [`TailStatus`], and
//! [`Wal::open`] repairs the device by truncating at the last valid
//! record so new appends extend a clean log.
//!
//! Two devices are provided: [`FileLog`] over a real file (fsync via
//! `sync_data`), and [`MemLog`], whose *durable* contents are exactly the
//! synced prefix — [`MemLog::crash_keep`] models a crash that preserves
//! the synced prefix plus any prefix of the unsynced tail (real disks may
//! persist buffered bytes the application never synced). Deterministic
//! fault injection over any device lives in [`crate::fault::FaultLog`].

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::crc::crc32c;
use crate::error::{Result, StorageError};

/// Per-record frame magic (little-endian `"WRC1"` on disk).
pub const RECORD_MAGIC: u32 = u32::from_le_bytes(*b"WRC1");

/// Frame header bytes before the payload: magic, length, CRC32C.
pub const FRAME_HEADER: usize = 4 + 4 + 4;

/// A byte-oriented append-only log device. Methods take `&self` (interior
/// mutability) so devices can be shared between a [`Wal`], fault
/// injectors, and recovery code, mirroring [`crate::disk::PageStore`].
pub trait LogDevice: Send + Sync {
    /// Append bytes at the end of the log. Buffered: not durable until
    /// [`sync`](LogDevice::sync) returns.
    fn append(&self, bytes: &[u8]) -> Result<()>;
    /// Make every appended byte durable (fsync).
    fn sync(&self) -> Result<()>;
    /// Read the whole log as currently visible (including appended but
    /// not yet synced bytes).
    fn read_all(&self) -> Result<Vec<u8>>;
    /// Cut the log to `len` bytes (tail repair / log truncation). The
    /// truncation itself is made durable before returning.
    fn truncate(&self, len: u64) -> Result<()>;
    /// Current log length in bytes.
    fn len(&self) -> Result<u64>;
    /// Whether the log holds no bytes.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// A shareable log device.
pub type SharedLog = Arc<dyn LogDevice>;

// --- In-memory device with fsync semantics ---

struct MemLogState {
    bytes: Vec<u8>,
    synced: usize,
}

/// In-memory [`LogDevice`] that models fsync: the durable contents are
/// the synced prefix. [`MemLog::crash_keep`] discards whatever a crash
/// would lose, making crash-recovery tests deterministic without files.
pub struct MemLog {
    inner: Mutex<MemLogState>,
}

impl MemLog {
    /// A fresh, empty log.
    pub fn new() -> MemLog {
        MemLog {
            inner: Mutex::new(MemLogState {
                bytes: Vec::new(),
                synced: 0,
            }),
        }
    }

    /// A fresh log behind an `Arc`, ready to share with a [`Wal`] and a
    /// test harness simultaneously.
    pub fn shared() -> Arc<MemLog> {
        Arc::new(MemLog::new())
    }

    /// Bytes guaranteed durable (covered by a completed sync).
    pub fn synced_len(&self) -> u64 {
        self.inner.lock().synced as u64
    }

    /// Simulate a crash: keep the synced prefix plus at most `extra`
    /// bytes of the unsynced tail (a real disk may have written back any
    /// prefix of the buffered bytes before power was lost). `extra = 0`
    /// is the conservative crash: only what was fsynced survives.
    pub fn crash_keep(&self, extra: usize) {
        let mut s = self.inner.lock();
        let keep = (s.synced + extra).min(s.bytes.len());
        s.bytes.truncate(keep);
        s.synced = s.synced.min(keep);
    }

    /// Simulate the conservative crash: only synced bytes survive.
    pub fn crash(&self) {
        self.crash_keep(0);
    }
}

impl Default for MemLog {
    fn default() -> Self {
        MemLog::new()
    }
}

impl LogDevice for MemLog {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.inner.lock().bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        let mut s = self.inner.lock();
        s.synced = s.bytes.len();
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(self.inner.lock().bytes.clone())
    }

    fn truncate(&self, len: u64) -> Result<()> {
        let mut s = self.inner.lock();
        let len = (len as usize).min(s.bytes.len());
        s.bytes.truncate(len);
        s.synced = len;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.inner.lock().bytes.len() as u64)
    }
}

// --- File-backed device ---

/// [`LogDevice`] over a real file. Appends seek to the end; `sync` is
/// `fdatasync`-class (`File::sync_data`).
pub struct FileLog {
    file: Mutex<File>,
}

impl FileLog {
    /// Open `path` for appending, creating it if absent.
    pub fn open_or_create(path: impl AsRef<Path>) -> Result<FileLog> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path.as_ref())
            .map_err(|e| StorageError::io("open", None, e))?;
        Ok(FileLog {
            file: Mutex::new(file),
        })
    }
}

impl LogDevice for FileLog {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::End(0))
            .map_err(|e| StorageError::io("seek", None, e))?;
        f.write_all(bytes)
            .map_err(|e| StorageError::io("append", None, e))
    }

    fn sync(&self) -> Result<()> {
        self.file
            .lock()
            .sync_data()
            .map_err(|e| StorageError::io("sync", None, e))
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(0))
            .map_err(|e| StorageError::io("seek", None, e))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)
            .map_err(|e| StorageError::io("read", None, e))?;
        Ok(bytes)
    }

    fn truncate(&self, len: u64) -> Result<()> {
        let f = self.file.lock();
        f.set_len(len)
            .map_err(|e| StorageError::io("truncate", None, e))?;
        f.sync_data().map_err(|e| StorageError::io("sync", None, e))
    }

    fn len(&self) -> Result<u64> {
        let f = self.file.lock();
        Ok(f.metadata()
            .map_err(|e| StorageError::io("stat", None, e))?
            .len())
    }
}

// --- The record log ---

/// Write-side configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Records per fsync batch. `1` syncs every append (no loss window);
    /// larger windows batch appends into one fsync, so a crash can lose
    /// up to `group_commit - 1` acknowledged-but-unsynced records (the
    /// standard group-commit trade). The window is counted, not timed, so
    /// tests are deterministic.
    pub group_commit: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { group_commit: 1 }
    }
}

/// Write-side counters (documented in `docs/METRICS.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended to the log.
    pub records_appended: u64,
    /// Group-commit batches synced (each batch covered ≥ 1 record).
    pub group_commit_batches: u64,
    /// Device fsyncs issued (batches plus record-free syncs such as the
    /// sync sealing a log reset).
    pub fsyncs: u64,
}

/// Why the readable part of a log ends where it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// The log ends exactly at a record boundary.
    Clean,
    /// The log ends inside or after a bad record; everything from
    /// `valid_len` on must be discarded.
    Torn {
        /// Bytes of the log that hold whole, valid records.
        valid_len: u64,
        /// Bytes past `valid_len` (the unusable tail).
        dropped_bytes: u64,
        /// What was wrong with the first bad record.
        reason: &'static str,
    },
}

/// The result of scanning a log: every valid record in append order plus
/// the tail diagnosis.
#[derive(Debug)]
pub struct LogScan {
    /// Payloads of the whole, valid records.
    pub records: Vec<Vec<u8>>,
    /// How the log ends.
    pub tail: TailStatus,
}

/// An append-only record log with group commit over a [`LogDevice`].
pub struct Wal {
    dev: SharedLog,
    config: WalConfig,
    pending: usize,
    synced_records: u64,
    appended_records: u64,
    stats: WalStats,
}

impl Wal {
    /// A writer over `dev` without reading it first. Use when the device
    /// is known clean (fresh log or just repaired); otherwise use
    /// [`Wal::open`].
    pub fn new(dev: SharedLog, config: WalConfig) -> Wal {
        assert!(config.group_commit >= 1, "group-commit window must be ≥ 1");
        Wal {
            dev,
            config,
            pending: 0,
            synced_records: 0,
            appended_records: 0,
            stats: WalStats::default(),
        }
    }

    /// Open an existing log: scan it, repair a torn tail by truncating the
    /// device at the last valid record, and return a writer positioned
    /// after it together with the scan.
    pub fn open(dev: SharedLog, config: WalConfig) -> Result<(Wal, LogScan)> {
        let scan = Wal::scan(dev.as_ref())?;
        if let TailStatus::Torn { valid_len, .. } = scan.tail {
            dev.truncate(valid_len)?;
        }
        let mut wal = Wal::new(dev, config);
        wal.synced_records = scan.records.len() as u64;
        wal.appended_records = wal.synced_records;
        Ok((wal, scan))
    }

    /// Read every whole, valid record, stopping cleanly at the first
    /// torn, truncated, or corrupt one. Pure read: the device is not
    /// repaired (see [`Wal::open`]).
    pub fn scan(dev: &dyn LogDevice) -> Result<LogScan> {
        let bytes = dev.read_all()?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        let tail = loop {
            let rem = bytes.len() - pos;
            if rem == 0 {
                break TailStatus::Clean;
            }
            let torn = |reason| TailStatus::Torn {
                valid_len: pos as u64,
                dropped_bytes: rem as u64,
                reason,
            };
            if rem < FRAME_HEADER {
                break torn("log ends inside a record header");
            }
            let magic = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
            if magic != RECORD_MAGIC {
                break torn("bad record magic");
            }
            let len =
                u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4 bytes"));
            if len > rem - FRAME_HEADER {
                break torn("log ends inside a record payload");
            }
            let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
            if crc32c(payload) != crc {
                break torn("record checksum mismatch");
            }
            records.push(payload.to_vec());
            pos += FRAME_HEADER + len;
        };
        Ok(LogScan { records, tail })
    }

    /// Append one record. Durable once the group-commit window fills (or
    /// [`Wal::flush`] is called); an `Err` leaves the device in an
    /// unknown position — callers must treat the log as needing repair.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        assert!(
            payload.len() <= u32::MAX as usize,
            "WAL record exceeds the u32 length field"
        );
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32c(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.dev.append(&frame)?;
        self.pending += 1;
        self.appended_records += 1;
        self.stats.records_appended += 1;
        if self.pending >= self.config.group_commit {
            self.flush()?;
        }
        Ok(())
    }

    /// Sync the device, sealing any pending records into durability. A
    /// no-op when nothing is pending.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending == 0 {
            return Ok(());
        }
        self.dev.sync()?;
        self.stats.fsyncs += 1;
        self.stats.group_commit_batches += 1;
        self.synced_records += self.pending as u64;
        self.pending = 0;
        Ok(())
    }

    /// Truncate the log to zero bytes (after a successful checkpoint) and
    /// seal the truncation. Pending (never-synced) records are discarded
    /// with it.
    pub fn reset(&mut self) -> Result<()> {
        self.dev.truncate(0)?;
        self.stats.fsyncs += 1;
        self.pending = 0;
        self.synced_records = 0;
        self.appended_records = 0;
        Ok(())
    }

    /// Records appended this session (durable or not).
    pub fn appended_records(&self) -> u64 {
        self.appended_records
    }

    /// Records covered by a completed sync (the durable prefix).
    pub fn synced_records(&self) -> u64 {
        self.synced_records
    }

    /// Records appended but not yet covered by a sync.
    pub fn pending_records(&self) -> usize {
        self.pending
    }

    /// Cumulative write-side counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The device this log writes to.
    pub fn device(&self) -> &SharedLog {
        &self.dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal(window: usize) -> (Wal, Arc<MemLog>) {
        let dev = MemLog::shared();
        let log: SharedLog = dev.clone();
        (
            Wal::new(
                log,
                WalConfig {
                    group_commit: window,
                },
            ),
            dev,
        )
    }

    #[test]
    fn append_scan_roundtrip() {
        let (mut w, dev) = wal(1);
        for i in 0..10u32 {
            w.append(&i.to_le_bytes()).unwrap();
        }
        let scan = Wal::scan(dev.as_ref()).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.records.len(), 10);
        for (i, r) in scan.records.iter().enumerate() {
            assert_eq!(r.as_slice(), (i as u32).to_le_bytes());
        }
        assert_eq!(w.stats().records_appended, 10);
        assert_eq!(w.stats().fsyncs, 10, "window 1 syncs every record");
    }

    #[test]
    fn empty_records_roundtrip() {
        let (mut w, dev) = wal(1);
        w.append(&[]).unwrap();
        w.append(b"x").unwrap();
        let scan = Wal::scan(dev.as_ref()).unwrap();
        assert_eq!(scan.records, vec![Vec::<u8>::new(), b"x".to_vec()]);
    }

    #[test]
    fn group_commit_batches_syncs() {
        let (mut w, dev) = wal(4);
        for i in 0..10u32 {
            w.append(&i.to_le_bytes()).unwrap();
        }
        // Two full windows synced; 2 records pending.
        assert_eq!(w.stats().fsyncs, 2);
        assert_eq!(w.stats().group_commit_batches, 2);
        assert_eq!(w.synced_records(), 8);
        assert_eq!(w.pending_records(), 2);
        // A crash now loses exactly the pending tail.
        dev.crash();
        let scan = Wal::scan(dev.as_ref()).unwrap();
        assert_eq!(scan.records.len(), 8);
        assert_eq!(scan.tail, TailStatus::Clean);
    }

    #[test]
    fn explicit_flush_seals_the_window() {
        let (mut w, dev) = wal(64);
        w.append(b"a").unwrap();
        w.append(b"b").unwrap();
        assert_eq!(w.synced_records(), 0);
        w.flush().unwrap();
        assert_eq!(w.synced_records(), 2);
        assert_eq!(w.stats().fsyncs, 1);
        w.flush().unwrap();
        assert_eq!(w.stats().fsyncs, 1, "flush with nothing pending is free");
        dev.crash();
        assert_eq!(Wal::scan(dev.as_ref()).unwrap().records.len(), 2);
    }

    #[test]
    fn torn_tail_is_diagnosed_and_repaired_at_every_cut() {
        // Build a 3-record log, then cut it at every byte boundary inside
        // the last record: scan must return the first two records and a
        // torn tail — never a panic, never a third record.
        let (mut w, dev) = wal(1);
        for payload in [b"first!".as_slice(), b"second".as_slice(), b"third?"] {
            w.append(payload).unwrap();
        }
        let full = dev.read_all().unwrap();
        let rec_len = FRAME_HEADER + 6;
        let two = full.len() - rec_len;
        for cut in two + 1..full.len() {
            let dev = MemLog::shared();
            dev.append(&full[..cut]).unwrap();
            dev.sync().unwrap();
            let scan = Wal::scan(dev.as_ref()).unwrap();
            assert_eq!(scan.records.len(), 2, "cut at {cut}");
            match scan.tail {
                TailStatus::Torn {
                    valid_len,
                    dropped_bytes,
                    ..
                } => {
                    assert_eq!(valid_len as usize, two);
                    assert_eq!(dropped_bytes as usize, cut - two);
                }
                TailStatus::Clean => panic!("cut at {cut} must be torn"),
            }
            // open() repairs: the device is cut back and appendable.
            let log: SharedLog = dev.clone();
            let (mut w2, scan) = Wal::open(log, WalConfig::default()).unwrap();
            assert_eq!(scan.records.len(), 2);
            assert_eq!(dev.len().unwrap() as usize, two);
            w2.append(b"fourth").unwrap();
            let rescan = Wal::scan(dev.as_ref()).unwrap();
            assert_eq!(rescan.tail, TailStatus::Clean);
            assert_eq!(rescan.records.len(), 3);
            assert_eq!(rescan.records[2], b"fourth");
        }
    }

    #[test]
    fn corrupt_record_stops_the_scan_before_later_valid_records() {
        let (mut w, dev) = wal(1);
        w.append(b"keep").unwrap();
        w.append(b"flip").unwrap();
        w.append(b"lost").unwrap();
        let mut bytes = dev.read_all().unwrap();
        // Flip one payload byte of the middle record.
        let mid = FRAME_HEADER + 4 + FRAME_HEADER;
        bytes[mid] ^= 0x40;
        let dev = MemLog::shared();
        dev.append(&bytes).unwrap();
        let scan = Wal::scan(dev.as_ref()).unwrap();
        assert_eq!(scan.records, vec![b"keep".to_vec()]);
        assert!(
            matches!(
                scan.tail,
                TailStatus::Torn {
                    reason: "record checksum mismatch",
                    ..
                }
            ),
            "{:?}",
            scan.tail
        );
    }

    #[test]
    fn garbage_magic_is_torn_not_panic() {
        let dev = MemLog::shared();
        dev.append(b"this is not a log record at all........")
            .unwrap();
        let scan = Wal::scan(dev.as_ref()).unwrap();
        assert!(scan.records.is_empty());
        assert!(matches!(
            scan.tail,
            TailStatus::Torn {
                valid_len: 0,
                reason: "bad record magic",
                ..
            }
        ));
    }

    #[test]
    fn oversized_length_field_is_torn_not_alloc() {
        let dev = MemLog::shared();
        let mut frame = Vec::new();
        frame.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        frame.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        frame.extend_from_slice(&0u32.to_le_bytes());
        dev.append(&frame).unwrap();
        let scan = Wal::scan(dev.as_ref()).unwrap();
        assert!(scan.records.is_empty());
        assert!(matches!(
            scan.tail,
            TailStatus::Torn {
                reason: "log ends inside a record payload",
                ..
            }
        ));
    }

    #[test]
    fn reset_truncates_and_restarts_counters() {
        let (mut w, dev) = wal(1);
        w.append(b"old").unwrap();
        w.reset().unwrap();
        assert_eq!(dev.len().unwrap(), 0);
        assert_eq!(w.synced_records(), 0);
        w.append(b"new").unwrap();
        let scan = Wal::scan(dev.as_ref()).unwrap();
        assert_eq!(scan.records, vec![b"new".to_vec()]);
        assert_eq!(w.stats().records_appended, 2, "stats are cumulative");
    }

    #[test]
    fn crash_keep_preserves_partial_unsynced_tail() {
        let (mut w, dev) = wal(64); // nothing synced
        w.append(b"aaaa").unwrap();
        w.append(b"bbbb").unwrap();
        let rec = (FRAME_HEADER + 4) as u64;
        // The disk wrote back the first record and half the second.
        dev.crash_keep(rec as usize + 7);
        assert_eq!(dev.len().unwrap(), rec + 7);
        let scan = Wal::scan(dev.as_ref()).unwrap();
        assert_eq!(scan.records, vec![b"aaaa".to_vec()]);
        assert!(matches!(scan.tail, TailStatus::Torn { .. }));
    }

    #[test]
    fn file_log_roundtrips_and_repairs() {
        let path = std::env::temp_dir().join(format!("uncat-wal-{}.log", std::process::id()));
        struct Cleanup(std::path::PathBuf);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
        let _guard = Cleanup(path.clone());
        let _ = std::fs::remove_file(&path);
        {
            let dev: SharedLog = Arc::new(FileLog::open_or_create(&path).unwrap());
            let (mut w, scan) = Wal::open(dev, WalConfig::default()).unwrap();
            assert!(scan.records.is_empty());
            w.append(b"persisted").unwrap();
            w.flush().unwrap();
        }
        // Tear the file mid-record, then reopen: repair cuts it back.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let dev: SharedLog = Arc::new(FileLog::open_or_create(&path).unwrap());
        let (mut w, scan) = Wal::open(dev.clone(), WalConfig::default()).unwrap();
        assert!(scan.records.is_empty());
        assert!(matches!(scan.tail, TailStatus::Torn { .. }));
        assert_eq!(dev.len().unwrap(), 0);
        w.append(b"again").unwrap();
        w.flush().unwrap();
        let scan = Wal::scan(dev.as_ref()).unwrap();
        assert_eq!(scan.records, vec![b"again".to_vec()]);
    }
}
