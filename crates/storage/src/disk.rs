//! The simulated disk: a page store with physical I/O counters.
//!
//! The paper evaluates on I/O counts, not wall-clock time, so an in-memory
//! array of pages behind the same buffer-manager interface reproduces the
//! metric exactly (see DESIGN.md §3). A store is shared by construction-time
//! and per-query buffer pools via [`SharedStore`].
//!
//! Every operation is fallible: implementations surface bad pages and
//! failed I/O as [`StorageError`] values so one bad page degrades one
//! query instead of aborting the process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{Result, StorageError};
use crate::page::{zeroed_page, PageBuf, PageId, PAGE_SIZE};

/// Abstract page store. Implementations must be internally synchronized;
/// all methods take `&self`.
pub trait PageStore: Send + Sync {
    /// Allocate a fresh zeroed page and return its id.
    fn allocate(&self) -> Result<PageId>;
    /// Copy page `pid` into `out`. Accessing a page that was never
    /// allocated yields [`StorageError::OutOfBounds`].
    fn read(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()>;
    /// Overwrite page `pid` with `data`.
    fn write(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()>;
    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
    /// Physical reads served so far.
    fn reads(&self) -> u64;
    /// Physical writes served so far.
    fn writes(&self) -> u64;
}

/// Shared handle to a page store.
pub type SharedStore = Arc<dyn PageStore>;

/// In-memory simulated disk.
pub struct InMemoryDisk {
    pages: RwLock<Vec<PageBuf>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl InMemoryDisk {
    /// Empty disk.
    pub fn new() -> InMemoryDisk {
        InMemoryDisk {
            pages: RwLock::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Empty disk wrapped for sharing.
    pub fn shared() -> SharedStore {
        Arc::new(InMemoryDisk::new())
    }

    /// Total bytes held by allocated pages.
    pub fn size_bytes(&self) -> u64 {
        self.num_pages() * PAGE_SIZE as u64
    }
}

impl Default for InMemoryDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore for InMemoryDisk {
    fn allocate(&self) -> Result<PageId> {
        let mut pages = self.pages.write();
        pages.push(zeroed_page());
        Ok(PageId(pages.len() as u64 - 1))
    }

    fn read(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let pages = self.pages.read();
        let page = pages.get(pid.0 as usize).ok_or(StorageError::OutOfBounds {
            pid,
            pages: pages.len() as u64,
        })?;
        out.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut pages = self.pages.write();
        let pages_len = pages.len() as u64;
        let page = pages
            .get_mut(pid.0 as usize)
            .ok_or(StorageError::OutOfBounds {
                pid,
                pages: pages_len,
            })?;
        page.copy_from_slice(data);
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.pages.read().len() as u64
    }

    fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let d = InMemoryDisk::new();
        let a = d.allocate().unwrap();
        let b = d.allocate().unwrap();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        assert_eq!(d.num_pages(), 2);

        let mut buf = zeroed_page();
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        d.write(b, &buf).unwrap();

        let mut out = zeroed_page();
        d.read(b, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);

        // Page `a` is still zeroed.
        d.read(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn counters_track_operations() {
        let d = InMemoryDisk::new();
        let p = d.allocate().unwrap();
        let mut buf = zeroed_page();
        d.read(p, &mut buf).unwrap();
        d.read(p, &mut buf).unwrap();
        d.write(p, &buf).unwrap();
        assert_eq!(d.reads(), 2);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.size_bytes(), PAGE_SIZE as u64);
    }

    #[test]
    fn unallocated_access_is_a_typed_error() {
        let d = InMemoryDisk::new();
        let mut buf = zeroed_page();
        assert_eq!(
            d.read(PageId(7), &mut buf),
            Err(StorageError::OutOfBounds {
                pid: PageId(7),
                pages: 0
            })
        );
        assert_eq!(
            d.write(PageId(7), &buf),
            Err(StorageError::OutOfBounds {
                pid: PageId(7),
                pages: 0
            })
        );
    }
}
