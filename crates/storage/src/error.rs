//! Typed storage errors.
//!
//! Every physical I/O operation in this crate is fallible: a failed read,
//! a checksum mismatch, or an exhausted pool surfaces as a
//! [`StorageError`] that callers propagate instead of a process abort.
//! Queries run one-at-a-time over a per-query [`crate::BufferPool`], so a
//! bad page degrades exactly the query that touched it.

use crate::page::PageId;

/// Result alias for fallible storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Why a storage operation failed.
///
/// What each variant means for callers:
///
/// * [`Io`](StorageError::Io) — the operating system rejected a physical
///   read/write/extend. Retrying may help for transient conditions; the
///   page contents on disk are unknown.
/// * [`ShortRead`](StorageError::ShortRead) — the backing file ended
///   mid-page: the file was truncated outside our control.
/// * [`Checksum`](StorageError::Checksum) — the page was read in full but
///   its CRC32C trailer disagrees with its contents: bit rot or a torn
///   write. The page must not be interpreted.
/// * [`OutOfBounds`](StorageError::OutOfBounds) — a structure referenced
///   a page that was never allocated: a corrupt directory/snapshot, not a
///   transient condition.
/// * [`PoolExhausted`](StorageError::PoolExhausted) — the buffer pool
///   could not find an evictable frame.
/// * [`NoSpace`](StorageError::NoSpace) — page allocation failed
///   (ENOSPC-class conditions).
/// * [`Corrupt`](StorageError::Corrupt) — page bytes passed physical
///   checks but do not decode as the expected structure.
/// * [`Duplicate`](StorageError::Duplicate) — an insert named a key that
///   already exists; nothing was modified.
/// * [`RecordTooLarge`](StorageError::RecordTooLarge) — the record cannot
///   fit the page-size budget of its container; nothing was modified.
/// * [`EmptyRecord`](StorageError::EmptyRecord) — zero-length records are
///   not storable (length 0 marks a tombstone); nothing was modified.
/// * [`Poisoned`](StorageError::Poisoned) — a durable index hit a failure
///   after logging a mutation, so its in-memory state may disagree with
///   the log; reopen (recover) to restore consistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The OS-level operation `op` failed with `detail`.
    Io {
        /// Which operation failed: `"seek"`, `"read"`, `"write"`, …
        op: &'static str,
        /// The page involved, when known.
        pid: Option<PageId>,
        /// OS error text.
        detail: String,
    },
    /// The file ended before a full page could be read.
    ShortRead {
        /// The page whose read came up short.
        pid: PageId,
    },
    /// Page contents disagree with their stored CRC32C.
    Checksum {
        /// The corrupt page.
        pid: PageId,
    },
    /// Access to a page beyond the allocated range.
    OutOfBounds {
        /// The requested page.
        pid: PageId,
        /// Number of pages actually allocated.
        pages: u64,
    },
    /// The buffer pool has no evictable frame.
    PoolExhausted,
    /// Page allocation failed for lack of space.
    NoSpace,
    /// Page bytes decode to an invalid structure.
    Corrupt(&'static str),
    /// An insert named a key (tuple id) that already exists.
    Duplicate {
        /// The duplicated key.
        key: u64,
    },
    /// A record exceeds its container's budget.
    RecordTooLarge {
        /// Size of the offending record in bytes.
        len: usize,
        /// Largest storable size in bytes.
        max: usize,
    },
    /// A zero-length record was offered for storage.
    EmptyRecord,
    /// The in-memory state of a durable index was poisoned by an earlier
    /// post-log failure; reopen to recover.
    Poisoned,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io {
                op,
                pid: Some(pid),
                detail,
            } => {
                write!(f, "i/o failure during {op} of page {pid}: {detail}")
            }
            StorageError::Io {
                op,
                pid: None,
                detail,
            } => {
                write!(f, "i/o failure during {op}: {detail}")
            }
            StorageError::ShortRead { pid } => {
                write!(f, "short read: file ends inside page {pid}")
            }
            StorageError::Checksum { pid } => {
                write!(f, "checksum mismatch on page {pid}")
            }
            StorageError::OutOfBounds { pid, pages } => {
                write!(
                    f,
                    "access to unallocated page {pid} (only {pages} allocated)"
                )
            }
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted"),
            StorageError::NoSpace => write!(f, "out of space allocating a page"),
            StorageError::Corrupt(what) => write!(f, "corrupt page structure: {what}"),
            StorageError::Duplicate { key } => {
                write!(f, "duplicate tuple id {key}")
            }
            StorageError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds the {max}-byte budget")
            }
            StorageError::EmptyRecord => {
                write!(
                    f,
                    "empty records are not storable (length 0 marks a tombstone)"
                )
            }
            StorageError::Poisoned => {
                write!(
                    f,
                    "durable index state poisoned by an earlier failure; reopen to recover"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    /// Wrap an OS error for operation `op` on page `pid`.
    pub fn io(op: &'static str, pid: impl Into<Option<PageId>>, err: std::io::Error) -> Self {
        StorageError::Io {
            op,
            pid: pid.into(),
            detail: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_page() {
        let e = StorageError::Checksum { pid: PageId(9) };
        assert!(e.to_string().contains("page p9"), "{e}");
        let e = StorageError::io("read", PageId(3), std::io::Error::other("boom"));
        assert!(
            e.to_string().contains("read") && e.to_string().contains("boom"),
            "{e}"
        );
    }

    #[test]
    fn mutation_variants_name_their_cause() {
        let e = StorageError::Duplicate { key: 17 };
        assert!(e.to_string().contains("17"), "{e}");
        let e = StorageError::RecordTooLarge {
            len: 9000,
            max: 8000,
        };
        assert!(
            e.to_string().contains("9000") && e.to_string().contains("8000"),
            "{e}"
        );
        assert!(StorageError::EmptyRecord.to_string().contains("tombstone"));
        assert!(StorageError::Poisoned.to_string().contains("reopen"));
    }
}
