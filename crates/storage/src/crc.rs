//! CRC32C (Castagnoli) — the page-trailer checksum.
//!
//! Implemented in-tree (table-driven, one table, byte-at-a-time) because
//! the workspace vendors no checksum crate. CRC32C detects all single-bit
//! and single-byte errors and all burst errors up to 32 bits, which
//! covers the torn-write and bit-rot cases [`crate::FileDisk`] guards
//! against.

/// Reflected CRC32C polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_vectors() {
        // RFC 3720 / Castagnoli reference vectors.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn detects_any_single_byte_change() {
        let base: Vec<u8> = (0..255u8).collect();
        let reference = crc32c(&base);
        for i in 0..base.len() {
            let mut corrupt = base.clone();
            corrupt[i] ^= 0x40;
            assert_ne!(crc32c(&corrupt), reference, "flip at {i} went undetected");
        }
    }
}
