//! Posting-list key encoding and cursor adapter.
//!
//! A posting entry `(tid, p)` is stored as the 8-byte B+tree key
//! `f32_desc(p) ‖ u32_be(tid)` with a zero-width value: an ascending tree
//! scan yields entries by descending probability, ties by ascending tuple
//! id — exactly the order the search strategies consume.

use uncat_core::{Prob, TupleId};
use uncat_storage::btree::keys::{concat, f32_desc, f32_from_desc, u32_be, u32_from_be};
use uncat_storage::btree::{BTree, Cursor};
use uncat_storage::{BufferPool, Result};

/// Width of a posting key in bytes.
pub const KEY_LEN: usize = 8;

/// The B+tree type backing one posting list.
pub type PostingTree = BTree<KEY_LEN, 0>;

/// Encode a posting key.
pub fn posting_key(prob: Prob, tid: TupleId) -> [u8; KEY_LEN] {
    debug_assert!(
        tid <= u32::MAX as u64,
        "posting lists address tuples with 32-bit ids"
    );
    concat(f32_desc(prob), u32_be(tid as u32))
}

/// Decode a posting key into `(prob, tid)`.
pub fn decode_posting(key: &[u8; KEY_LEN]) -> (Prob, TupleId) {
    (f32_from_desc(&key[..4]), u32_from_be(&key[4..]) as TupleId)
}

/// A cursor over one posting list, streaming `(tid, prob)` by descending
/// probability.
pub struct PostingCursor {
    inner: Cursor<KEY_LEN, 0>,
}

impl PostingCursor {
    /// Cursor over a whole posting list from its highest probability.
    pub fn open(tree: &PostingTree, pool: &mut BufferPool) -> Result<PostingCursor> {
        Ok(PostingCursor {
            inner: tree.cursor_first(pool)?,
        })
    }

    /// Entry under the cursor: `(tid, prob)`.
    pub fn head(&self, pool: &mut BufferPool) -> Result<Option<(TupleId, Prob)>> {
        Ok(self.inner.entry(pool)?.map(|(k, _)| {
            let (p, tid) = decode_posting(&k);
            (tid, p)
        }))
    }

    /// Advance one entry.
    pub fn advance(&mut self, pool: &mut BufferPool) -> Result<()> {
        self.inner.advance(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_storage::{BufferPool, InMemoryDisk};

    #[test]
    fn key_roundtrip() {
        for (p, tid) in [(1.0f32, 0u64), (0.5, 42), (1e-4, 4_000_000_000)] {
            let k = posting_key(p, tid);
            assert_eq!(decode_posting(&k), (p, tid));
        }
    }

    #[test]
    fn keys_sort_by_descending_probability() {
        let hi = posting_key(0.9, 100);
        let lo = posting_key(0.1, 1);
        assert!(hi < lo, "higher probability must sort first");
        let a = posting_key(0.5, 1);
        let b = posting_key(0.5, 2);
        assert!(a < b, "ties break by ascending tid");
    }

    #[test]
    fn cursor_streams_descending() {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 32);
        let mut tree = PostingTree::create(&mut pool).unwrap();
        let probs = [0.3f32, 0.9, 0.1, 0.5, 0.7];
        for (tid, &p) in probs.iter().enumerate() {
            tree.insert(&mut pool, &posting_key(p, tid as u64), &[])
                .unwrap();
        }
        let mut c = PostingCursor::open(&tree, &mut pool).unwrap();
        let mut seen = Vec::new();
        while let Some((tid, p)) = c.head(&mut pool).unwrap() {
            seen.push((tid, p));
            c.advance(&mut pool).unwrap();
        }
        assert_eq!(
            seen,
            vec![(1, 0.9), (4, 0.7), (3, 0.5), (0, 0.3), (2, 0.1)],
            "cursor must stream by descending probability"
        );
    }
}
