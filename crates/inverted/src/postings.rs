//! Posting-list key encoding, the two physical list formats, and the
//! cursor adapters the search strategies consume.
//!
//! A posting entry `(tid, p)` is keyed by the 8 bytes
//! `f32_desc(p) ‖ u32_be(tid)`: ascending key order is descending
//! probability, ties by ascending tuple id — exactly the order the
//! search strategies consume (the *stream order*). Two physical layouts
//! produce that stream:
//!
//! * [`PostingList::Tree`] — raw pairs as zero-value B+tree keys
//!   (`UIV1`, the original format),
//! * [`PostingList::Blocks`] — compressed blocks with a quantized-up
//!   per-block maximum enabling block-max pruning (`UIV2`, the default;
//!   see [`crate::block`]).
//!
//! [`ListCursor`] unifies the two for frontier searches. Its head is
//! either *exact* (the entry is materialized) or a *bound* (only the
//! block's quantized maximum is known — an upper bound on the head's
//! probability, obtained without decoding). Counting convention:
//! `postings_scanned` ticks once per entry *materialized*, so block
//! lists whose blocks are never decoded contribute zero, and
//! `blocks_decoded`/`blocks_skipped` partition every opened block list.

use std::ops::ControlFlow;

use uncat_core::{Prob, TupleId};
use uncat_storage::btree::keys::{concat, f32_desc, f32_from_desc, u32_be, u32_from_be};
use uncat_storage::btree::{BTree, Cursor};
use uncat_storage::{BufferPool, HeapFile, QueryMetrics, Result};

use crate::block::{BlockCursor, BlockList};

/// Width of a posting key in bytes.
pub const KEY_LEN: usize = 8;

/// The B+tree type backing one posting list.
pub type PostingTree = BTree<KEY_LEN, 0>;

/// Encode a posting key.
pub fn posting_key(prob: Prob, tid: TupleId) -> [u8; KEY_LEN] {
    debug_assert!(
        tid <= u32::MAX as u64,
        "posting lists address tuples with 32-bit ids"
    );
    concat(f32_desc(prob), u32_be(tid as u32))
}

/// Decode a posting key into `(prob, tid)`.
pub fn decode_posting(key: &[u8; KEY_LEN]) -> (Prob, TupleId) {
    (f32_from_desc(&key[..4]), u32_from_be(&key[4..]) as TupleId)
}

/// A cursor over one posting list, streaming `(tid, prob)` by descending
/// probability.
pub struct PostingCursor {
    inner: Cursor<KEY_LEN, 0>,
}

impl PostingCursor {
    /// Cursor over a whole posting list from its highest probability.
    pub fn open(tree: &PostingTree, pool: &mut BufferPool) -> Result<PostingCursor> {
        Ok(PostingCursor {
            inner: tree.cursor_first(pool)?,
        })
    }

    /// Entry under the cursor: `(tid, prob)`.
    pub fn head(&self, pool: &mut BufferPool) -> Result<Option<(TupleId, Prob)>> {
        Ok(self.inner.entry(pool)?.map(|(k, _)| {
            let (p, tid) = decode_posting(&k);
            (tid, p)
        }))
    }

    /// Advance one entry.
    pub fn advance(&mut self, pool: &mut BufferPool) -> Result<()> {
        self.inner.advance(pool)
    }
}

/// One category's posting list in either physical format.
pub enum PostingList {
    /// Raw `(tid, p)` pairs as B+tree keys (snapshot format `UIV1`).
    Tree(PostingTree),
    /// Compressed, skippable blocks (snapshot format `UIV2`).
    Blocks(BlockList),
}

impl PostingList {
    /// Total posting entries.
    pub fn len(&self) -> u64 {
        match self {
            PostingList::Tree(t) => t.len(),
            PostingList::Blocks(b) => b.len(),
        }
    }

    /// Visit every entry in stream order. Ticks `postings_scanned` per
    /// entry; block lists also tick `blocks_decoded` per block — a full
    /// scan decodes everything, so both formats count identically on the
    /// entries axis.
    pub fn scan_all(
        &self,
        block_heap: &HeapFile,
        pool: &mut BufferPool,
        metrics: &mut QueryMetrics,
        mut f: impl FnMut(TupleId, Prob),
    ) -> Result<()> {
        match self {
            PostingList::Tree(tree) => tree.scan_all(pool, |key, _| {
                let (p, tid) = decode_posting(key);
                metrics.postings_scanned += 1;
                f(tid, p);
                ControlFlow::Continue(())
            }),
            PostingList::Blocks(list) => {
                let mut cur = BlockCursor::open(list, block_heap);
                while let Some(((tid, p), decoded_new)) = cur.head(pool)? {
                    if decoded_new {
                        metrics.blocks_decoded += 1;
                    }
                    metrics.postings_scanned += 1;
                    f(tid, p);
                    cur.advance();
                }
                debug_assert_eq!(cur.undecoded_blocks(), 0);
                Ok(())
            }
        }
    }

    /// Visit entries in stream order while `p ≥ cut`, stopping at the
    /// first entry below — column pruning's access pattern. For the raw
    /// tree the terminating entry ticks `postings_scanned`: the scan has
    /// no information besides the entries themselves, so it must decode
    /// one below-cut key to know to stop. Block lists don't charge it —
    /// the boundary is located inside the already-decoded buffer — and
    /// stop at block granularity too: a block whose quantized-up maximum
    /// is below `cut` is skipped without decoding, as is everything
    /// after the stop point (`blocks_skipped`).
    pub fn scan_prefix(
        &self,
        block_heap: &HeapFile,
        pool: &mut BufferPool,
        cut: f64,
        metrics: &mut QueryMetrics,
        mut f: impl FnMut(TupleId, Prob),
    ) -> Result<()> {
        match self {
            PostingList::Tree(tree) => tree.scan_all(pool, |key, _| {
                let (p, tid) = decode_posting(key);
                metrics.postings_scanned += 1;
                if (p as f64) < cut {
                    return ControlFlow::Break(());
                }
                f(tid, p);
                ControlFlow::Continue(())
            }),
            PostingList::Blocks(list) => {
                let mut cur = BlockCursor::open(list, block_heap);
                'blocks: while !cur.exhausted() {
                    if cur.bound().is_some_and(|b| b < cut) {
                        // The quantized maximum dominates every entry in
                        // the block (and in all later blocks): skip
                        // without decoding.
                        break;
                    }
                    while let Some(((tid, p), decoded_new)) = cur.head(pool)? {
                        if decoded_new {
                            metrics.blocks_decoded += 1;
                        }
                        if (p as f64) < cut {
                            break 'blocks;
                        }
                        metrics.postings_scanned += 1;
                        f(tid, p);
                        cur.advance();
                        if !cur.head_is_exact() {
                            continue 'blocks;
                        }
                    }
                }
                metrics.blocks_skipped += cur.undecoded_blocks();
                Ok(())
            }
        }
    }
}

/// What a [`ListCursor`] knows about the entry under it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CursorHead {
    /// The entry is materialized.
    Exact {
        /// Tuple id under the cursor.
        tid: TupleId,
        /// Exact probability under the cursor.
        p: Prob,
    },
    /// Only an upper bound on the head probability is known (the current
    /// block's quantized-up maximum); the block is not decoded.
    Bound {
        /// Upper bound on the probability under the cursor.
        p: f64,
    },
}

/// A cursor over either list format, streaming heads for the frontier
/// searches. Tree cursors always expose exact heads; block cursors
/// expose bounds until a decode is forced.
pub enum ListCursor<'a> {
    /// Cursor over a raw B+tree list.
    Tree(PostingCursor),
    /// Lazily decoding cursor over a block list.
    Blocks(BlockCursor<'a>),
}

impl<'a> ListCursor<'a> {
    /// Open a cursor and return the first head. Tree heads are exact and
    /// tick `postings_scanned`; block heads start as bounds, for free.
    pub fn open(
        list: &'a PostingList,
        block_heap: &'a HeapFile,
        pool: &mut BufferPool,
        metrics: &mut QueryMetrics,
    ) -> Result<(ListCursor<'a>, Option<CursorHead>)> {
        match list {
            PostingList::Tree(tree) => {
                let cur = PostingCursor::open(tree, pool)?;
                let head = cur.head(pool)?.map(|(tid, p)| {
                    metrics.postings_scanned += 1;
                    CursorHead::Exact { tid, p }
                });
                Ok((ListCursor::Tree(cur), head))
            }
            PostingList::Blocks(blocks) => {
                let cur = BlockCursor::open(blocks, block_heap);
                let head = cur.bound().map(|p| CursorHead::Bound { p });
                Ok((ListCursor::Blocks(cur), head))
            }
        }
    }

    /// Materialize the entry under the cursor, decoding its block if
    /// needed (ticking `blocks_decoded`, and `postings_scanned` for the
    /// newly materialized entry). `None` iff the cursor is exhausted.
    pub fn force(
        &mut self,
        pool: &mut BufferPool,
        metrics: &mut QueryMetrics,
    ) -> Result<Option<(TupleId, Prob)>> {
        match self {
            ListCursor::Tree(cur) => cur.head(pool),
            ListCursor::Blocks(cur) => {
                let Some(((tid, p), decoded_new)) = cur.head(pool)? else {
                    return Ok(None);
                };
                if decoded_new {
                    metrics.blocks_decoded += 1;
                    metrics.postings_scanned += 1;
                }
                Ok(Some((tid, p)))
            }
        }
    }

    /// Step one entry and return the new head. An exact new head ticks
    /// `postings_scanned`; a block-boundary crossing yields a bound head
    /// without I/O.
    pub fn advance(
        &mut self,
        pool: &mut BufferPool,
        metrics: &mut QueryMetrics,
    ) -> Result<Option<CursorHead>> {
        match self {
            ListCursor::Tree(cur) => {
                cur.advance(pool)?;
                Ok(cur.head(pool)?.map(|(tid, p)| {
                    metrics.postings_scanned += 1;
                    CursorHead::Exact { tid, p }
                }))
            }
            ListCursor::Blocks(cur) => {
                cur.advance();
                if cur.head_is_exact() {
                    let ((tid, p), _) = cur.head(pool)?.expect("exact head present");
                    metrics.postings_scanned += 1;
                    Ok(Some(CursorHead::Exact { tid, p }))
                } else {
                    Ok(cur.bound().map(|p| CursorHead::Bound { p }))
                }
            }
        }
    }

    /// Charge this cursor's never-decoded blocks as skipped. Call once
    /// when the search stops consuming the cursor, so that
    /// `blocks_decoded + blocks_skipped` covers every opened list.
    pub fn account_skips(&self, metrics: &mut QueryMetrics) {
        if let ListCursor::Blocks(cur) = self {
            metrics.blocks_skipped += cur.undecoded_blocks();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_storage::{BufferPool, InMemoryDisk};

    #[test]
    fn key_roundtrip() {
        for (p, tid) in [(1.0f32, 0u64), (0.5, 42), (1e-4, 4_000_000_000)] {
            let k = posting_key(p, tid);
            assert_eq!(decode_posting(&k), (p, tid));
        }
    }

    #[test]
    fn keys_sort_by_descending_probability() {
        let hi = posting_key(0.9, 100);
        let lo = posting_key(0.1, 1);
        assert!(hi < lo, "higher probability must sort first");
        let a = posting_key(0.5, 1);
        let b = posting_key(0.5, 2);
        assert!(a < b, "ties break by ascending tid");
    }

    #[test]
    fn cursor_streams_descending() {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 32);
        let mut tree = PostingTree::create(&mut pool).unwrap();
        let probs = [0.3f32, 0.9, 0.1, 0.5, 0.7];
        for (tid, &p) in probs.iter().enumerate() {
            tree.insert(&mut pool, &posting_key(p, tid as u64), &[])
                .unwrap();
        }
        let mut c = PostingCursor::open(&tree, &mut pool).unwrap();
        let mut seen = Vec::new();
        while let Some((tid, p)) = c.head(&mut pool).unwrap() {
            seen.push((tid, p));
            c.advance(&mut pool).unwrap();
        }
        assert_eq!(
            seen,
            vec![(1, 0.9), (4, 0.7), (3, 0.5), (0, 0.3), (2, 0.1)],
            "cursor must stream by descending probability"
        );
    }
}
