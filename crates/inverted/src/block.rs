//! Compressed block posting format (ROADMAP open item 1).
//!
//! A posting list is split into blocks of ~[`BLOCK_TARGET`] entries, each
//! stored as one heap record. Inside a block, tuple ids are delta-varint
//! encoded (sorted ascending) and probabilities are kept as raw `f32`
//! bits — lossless, so every strategy produces scores identical to the
//! raw B-tree format. Per block, the in-memory directory keeps:
//!
//! * the exact 8-byte posting key of the block's first entry (the
//!   *separator*, used to place mutations),
//! * the entry count,
//! * `max_q`: the block's maximum probability quantized **up** to a
//!   multiple of `1/65535`. Rounding up keeps pruning conservative —
//!   [`dequantize`]`(max_q)` dominates every probability in the block, so
//!   a block whose dequantized maximum is below the live bound (τ, θ, or
//!   a Lemma 1 frontier sum) can be skipped without decoding,
//! * the heap [`RecordId`] holding the payload (the skip pointer: the
//!   directory walks block to block without touching payload pages).
//!
//! Payload wire format (`docs/FORMAT.md` has the byte-level spec):
//!
//! ```text
//! u16 count (LE)
//! count × varint tid        first tid absolute, then deltas (ascending)
//! count × f32 prob (LE)     raw bits, ascending-tid order
//! ```
//!
//! The *stream* order of a block — the order cursors deliver entries — is
//! descending probability with ties by ascending tid, exactly the raw
//! posting-key order; [`decode_block`] re-sorts into it.

use uncat_core::{Prob, TupleId};
use uncat_storage::{BufferPool, HeapFile, RecordId, Result, StorageError};

use crate::postings::{posting_key, KEY_LEN};

/// Entries per block when building or splitting.
pub const BLOCK_TARGET: usize = 128;

/// An inserted-into block splits once it exceeds this (2 × target).
pub const BLOCK_SPLIT: usize = 2 * BLOCK_TARGET;

/// Quantization denominator for block maxima.
pub const PROB_SCALE: u32 = 65_535;

/// Quantize a probability **up**: the smallest `q` with
/// `q / 65535 ≥ p`. Over-estimation keeps block-max pruning sound.
pub fn quantize_up(p: f32) -> u16 {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let mut q = ((p as f64) * PROB_SCALE as f64).ceil() as u32;
    q = q.min(PROB_SCALE);
    // Guard the float path: bump until the dequantized value dominates.
    while ((q as f64) / PROB_SCALE as f64) < p as f64 && q < PROB_SCALE {
        q += 1;
    }
    q as u16
}

/// The probability bound a quantized maximum stands for.
pub fn dequantize(q: u16) -> f64 {
    q as f64 / PROB_SCALE as f64
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], at: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*at)
            .ok_or(StorageError::Corrupt("posting block varint truncated"))?;
        *at += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err(StorageError::Corrupt("posting block varint overflows"));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encode a block payload. `entries` must be in stream order (descending
/// probability, ties by ascending tid); tids must be distinct.
pub fn encode_block(entries: &[(TupleId, Prob)]) -> Vec<u8> {
    debug_assert!(entries.len() <= u16::MAX as usize);
    let mut by_tid: Vec<(TupleId, Prob)> = entries.to_vec();
    by_tid.sort_unstable_by_key(|&(tid, _)| tid);
    let mut out = Vec::with_capacity(2 + by_tid.len() * 6);
    out.extend_from_slice(&(by_tid.len() as u16).to_le_bytes());
    let mut prev = 0u64;
    for (i, &(tid, _)) in by_tid.iter().enumerate() {
        push_varint(&mut out, if i == 0 { tid } else { tid - prev });
        prev = tid;
    }
    for &(_, p) in &by_tid {
        out.extend_from_slice(&p.to_bits().to_le_bytes());
    }
    out
}

/// Decode a block payload back into stream order (descending probability,
/// ties by ascending tid). A payload that does not parse — possible only
/// through corruption that passed the physical checks — is a typed error.
pub fn decode_block(bytes: &[u8]) -> Result<Vec<(TupleId, Prob)>> {
    let count_bytes: [u8; 2] =
        bytes
            .get(..2)
            .and_then(|b| b.try_into().ok())
            .ok_or(StorageError::Corrupt(
                "posting block shorter than its header",
            ))?;
    let count = u16::from_le_bytes(count_bytes) as usize;
    let mut at = 2usize;
    let mut tids = Vec::with_capacity(count.min(bytes.len()));
    let mut prev = 0u64;
    for i in 0..count {
        let v = read_varint(bytes, &mut at)?;
        let tid = if i == 0 {
            v
        } else {
            prev.checked_add(v)
                .ok_or(StorageError::Corrupt("posting block tid overflows"))?
        };
        if i > 0 && tid <= prev {
            return Err(StorageError::Corrupt("posting block tids not ascending"));
        }
        tids.push(tid);
        prev = tid;
    }
    if bytes.len() != at + 4 * count {
        return Err(StorageError::Corrupt(
            "posting block probability area missized",
        ));
    }
    let mut entries = Vec::with_capacity(count);
    for (i, tid) in tids.into_iter().enumerate() {
        let bits = u32::from_le_bytes(
            bytes[at + 4 * i..at + 4 * i + 4]
                .try_into()
                .expect("4 bytes"),
        );
        let p = f32::from_bits(bits);
        if !(p > 0.0 && p <= 1.0) {
            return Err(StorageError::Corrupt(
                "posting block probability out of range",
            ));
        }
        entries.push((tid, p));
    }
    // Stream order = posting-key order: descending p, ties ascending tid.
    entries.sort_unstable_by_key(|&(tid, p)| posting_key(p, tid));
    Ok(entries)
}

/// Directory entry for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Exact posting key of the block's first stream entry. Directory
    /// order is ascending `sep` — i.e. descending probability.
    pub sep: [u8; KEY_LEN],
    /// Entries in the block.
    pub count: u16,
    /// Block maximum probability, quantized up ([`quantize_up`]).
    pub max_q: u16,
    /// Heap record holding the encoded payload (the skip pointer).
    pub rid: RecordId,
}

/// One category's posting list in block format: the block directory plus
/// the total entry count. Payloads live in the index's block heap.
#[derive(Debug, Default, Clone)]
pub struct BlockList {
    blocks: Vec<BlockMeta>,
    entries: u64,
}

impl BlockList {
    /// An empty list.
    pub fn new() -> BlockList {
        BlockList::default()
    }

    /// Reattach from persisted parts (see `persist`).
    pub fn from_raw_parts(blocks: Vec<BlockMeta>, entries: u64) -> BlockList {
        BlockList { blocks, entries }
    }

    /// Total posting entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// The block directory, in stream order.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Build a list from entries already in stream order, packing
    /// [`BLOCK_TARGET`] entries per block. Payload records are inserted
    /// in stream order, so consecutive blocks pack pages densely.
    pub fn build(
        heap: &mut HeapFile,
        pool: &mut BufferPool,
        entries: &[(TupleId, Prob)],
    ) -> Result<BlockList> {
        let mut list = BlockList::new();
        for chunk in entries.chunks(BLOCK_TARGET) {
            let rid = heap.insert(pool, &encode_block(chunk))?;
            list.blocks.push(meta_for(chunk, rid));
            list.entries += chunk.len() as u64;
        }
        Ok(list)
    }

    /// Index of the block whose key range covers `key` (for mutation
    /// placement). Empty lists have no covering block.
    fn covering_block(&self, key: &[u8; KEY_LEN]) -> Option<usize> {
        if self.blocks.is_empty() {
            return None;
        }
        // Last block with sep ≤ key; keys before the first separator
        // belong in block 0 (its separator moves down).
        Some(
            self.blocks
                .partition_point(|b| b.sep <= *key)
                .saturating_sub(1),
        )
    }

    /// Insert one entry, splitting the receiving block at
    /// [`BLOCK_SPLIT`]. The payload record is rewritten (delete +
    /// insert); the directory keeps exact separators so stream order is
    /// preserved across arbitrary mutations.
    pub fn insert(
        &mut self,
        heap: &mut HeapFile,
        pool: &mut BufferPool,
        tid: TupleId,
        p: Prob,
    ) -> Result<()> {
        let key = posting_key(p, tid);
        let Some(i) = self.covering_block(&key) else {
            let rid = heap.insert(pool, &encode_block(&[(tid, p)]))?;
            self.blocks.push(meta_for(&[(tid, p)], rid));
            self.entries = 1;
            return Ok(());
        };
        let mut entries = self.read_block(heap, pool, i)?;
        let at = entries.partition_point(|&(t, q)| posting_key(q, t) < key);
        entries.insert(at, (tid, p));
        heap.delete(pool, self.blocks[i].rid)?;
        if entries.len() > BLOCK_SPLIT {
            let right = entries.split_off(entries.len() / 2);
            let left_rid = heap.insert(pool, &encode_block(&entries))?;
            let right_rid = heap.insert(pool, &encode_block(&right))?;
            self.blocks[i] = meta_for(&entries, left_rid);
            self.blocks.insert(i + 1, meta_for(&right, right_rid));
        } else {
            let rid = heap.insert(pool, &encode_block(&entries))?;
            self.blocks[i] = meta_for(&entries, rid);
        }
        self.entries += 1;
        Ok(())
    }

    /// Remove one entry (exact `(tid, p)` match). Returns whether it was
    /// present; an emptied block is dropped from the directory.
    pub fn remove(
        &mut self,
        heap: &mut HeapFile,
        pool: &mut BufferPool,
        tid: TupleId,
        p: Prob,
    ) -> Result<bool> {
        let key = posting_key(p, tid);
        let Some(i) = self.covering_block(&key) else {
            return Ok(false);
        };
        let mut entries = self.read_block(heap, pool, i)?;
        let Some(at) = entries.iter().position(|&(t, q)| t == tid && q == p) else {
            return Ok(false);
        };
        entries.remove(at);
        heap.delete(pool, self.blocks[i].rid)?;
        if entries.is_empty() {
            self.blocks.remove(i);
        } else {
            let rid = heap.insert(pool, &encode_block(&entries))?;
            self.blocks[i] = meta_for(&entries, rid);
        }
        self.entries -= 1;
        Ok(true)
    }

    fn read_block(
        &self,
        heap: &HeapFile,
        pool: &mut BufferPool,
        i: usize,
    ) -> Result<Vec<(TupleId, Prob)>> {
        let bytes = heap
            .get(pool, self.blocks[i].rid)?
            .ok_or(StorageError::Corrupt(
                "block directory points at a deleted record",
            ))?;
        decode_block(&bytes)
    }
}

fn meta_for(entries: &[(TupleId, Prob)], rid: RecordId) -> BlockMeta {
    let (tid0, p0) = entries[0];
    BlockMeta {
        sep: posting_key(p0, tid0),
        count: entries.len() as u16,
        max_q: quantize_up(p0),
        rid,
    }
}

/// A seeking cursor over a [`BlockList`]: blocks decode lazily, so a list
/// whose bound never justifies a decode costs no payload reads at all.
pub struct BlockCursor<'a> {
    list: &'a BlockList,
    heap: &'a HeapFile,
    /// Current block index.
    block: usize,
    /// Decoded entries of the current block (stream order), empty while
    /// the block is undecoded.
    buf: Vec<(TupleId, Prob)>,
    pos: usize,
    decoded: bool,
    /// Blocks this cursor has decoded (for skip accounting).
    decoded_blocks: u64,
}

impl<'a> BlockCursor<'a> {
    /// Cursor at the head of the list, with nothing decoded yet.
    pub fn open(list: &'a BlockList, heap: &'a HeapFile) -> BlockCursor<'a> {
        BlockCursor {
            list,
            heap,
            block: 0,
            buf: Vec::new(),
            pos: 0,
            decoded: false,
            decoded_blocks: 0,
        }
    }

    /// Whether the cursor is past the last entry.
    pub fn exhausted(&self) -> bool {
        self.block >= self.list.blocks.len()
    }

    /// An upper bound on the probability under the cursor, available
    /// without decoding: the exact head probability when the current
    /// block is decoded, its quantized-up maximum otherwise.
    pub fn bound(&self) -> Option<f64> {
        if self.exhausted() {
            return None;
        }
        if self.decoded {
            Some(self.buf[self.pos].1 as f64)
        } else {
            Some(dequantize(self.list.blocks[self.block].max_q))
        }
    }

    /// Whether the entry under the cursor is already decoded (its exact
    /// `(tid, p)` is known without I/O).
    pub fn head_is_exact(&self) -> bool {
        self.decoded && !self.exhausted()
    }

    /// The exact entry under the cursor, decoding the current block if
    /// needed. `decoded_new` reports whether this call decoded a block
    /// (the caller ticks `blocks_decoded`).
    pub fn head(&mut self, pool: &mut BufferPool) -> Result<Option<((TupleId, Prob), bool)>> {
        if self.exhausted() {
            return Ok(None);
        }
        let mut decoded_new = false;
        if !self.decoded {
            let bytes = self
                .heap
                .get(pool, self.list.blocks[self.block].rid)?
                .ok_or(StorageError::Corrupt(
                    "block directory points at a deleted record",
                ))?;
            self.buf = decode_block(&bytes)?;
            if self.buf.len() != self.list.blocks[self.block].count as usize {
                return Err(StorageError::Corrupt(
                    "block count disagrees with its directory",
                ));
            }
            self.pos = 0;
            self.decoded = true;
            self.decoded_blocks += 1;
            decoded_new = true;
        }
        Ok(Some((self.buf[self.pos], decoded_new)))
    }

    /// Step one entry. Crossing a block boundary leaves the next block
    /// undecoded — its [`bound`](BlockCursor::bound) is served from the
    /// directory until [`head`](BlockCursor::head) is forced.
    pub fn advance(&mut self) {
        if self.exhausted() {
            return;
        }
        debug_assert!(self.decoded, "advance past an undecoded head");
        self.pos += 1;
        if self.pos >= self.buf.len() {
            self.block += 1;
            self.pos = 0;
            self.decoded = false;
            self.buf.clear();
        }
    }

    /// Blocks this cursor never decoded — charged as `blocks_skipped`
    /// when the search stops (so `blocks_decoded + blocks_skipped` equals
    /// the block count of every opened list).
    pub fn undecoded_blocks(&self) -> u64 {
        self.list.blocks.len() as u64 - self.decoded_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use uncat_storage::InMemoryDisk;

    fn stream_sorted(entries: &mut [(TupleId, Prob)]) {
        entries.sort_unstable_by_key(|&(tid, p)| posting_key(p, tid));
    }

    #[test]
    fn quantization_rounds_up_and_dominates() {
        for p in [1e-7f32, 1e-4, 0.1, 0.25, 0.5, 0.999, 1.0, 1.0 / 3.0, 0.7] {
            let q = quantize_up(p);
            assert!(dequantize(q) >= p as f64, "p={p} q={q}");
            if q > 1 {
                assert!(dequantize(q - 1) < p as f64, "q not minimal for p={p}: {q}");
            }
        }
        assert_eq!(quantize_up(1.0), PROB_SCALE as u16);
    }

    #[test]
    fn codec_roundtrips_edge_blocks() {
        // Empty, single entry, maximal tid delta, boundary probabilities.
        let cases: Vec<Vec<(TupleId, Prob)>> = vec![
            vec![],
            vec![(0, 1.0)],
            vec![(u32::MAX as u64, f32::MIN_POSITIVE)],
            vec![(0, 0.5), (u32::MAX as u64, 0.5)],
            vec![(7, 1.0), (3, 0.25), (9, 0.25), (1, 1.0 / 65535.0)],
        ];
        for mut entries in cases {
            stream_sorted(&mut entries);
            let bytes = encode_block(&entries);
            assert_eq!(decode_block(&bytes).unwrap(), entries);
        }
    }

    #[test]
    fn corrupt_payloads_are_typed_errors() {
        assert!(decode_block(&[]).is_err());
        assert!(decode_block(&[5, 0]).is_err(), "count with no entries");
        let good = encode_block(&[(1, 0.5), (2, 0.25)]);
        assert!(decode_block(&good[..good.len() - 1]).is_err(), "truncated");
        let mut long = good.clone();
        long.push(0);
        assert!(decode_block(&long).is_err(), "trailing bytes");
        // A zero probability cannot appear in a posting list.
        let mut zero_p = encode_block(&[(1, 0.5)]);
        let n = zero_p.len();
        zero_p[n - 4..].copy_from_slice(&0f32.to_bits().to_le_bytes());
        assert!(decode_block(&zero_p).is_err());
    }

    #[test]
    fn build_packs_blocks_and_mutations_keep_order() {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 64);
        let mut heap = HeapFile::new();
        let mut entries: Vec<(TupleId, Prob)> = (0..300u64)
            .map(|t| (t, 1.0 - (t as f32 + 1.0) / 512.0))
            .collect();
        stream_sorted(&mut entries);
        let mut list = BlockList::build(&mut heap, &mut pool, &entries).unwrap();
        assert_eq!(list.len(), 300);
        assert_eq!(list.blocks().len(), 3);
        for b in list.blocks() {
            assert!(b.count as usize <= BLOCK_TARGET);
        }

        // Insert at the front (new maximum), middle, and back.
        list.insert(&mut heap, &mut pool, 1000, 1.0).unwrap();
        list.insert(&mut heap, &mut pool, 1001, 0.6).unwrap();
        list.insert(&mut heap, &mut pool, 1002, 1e-6).unwrap();
        assert!(list.remove(&mut heap, &mut pool, 1001, 0.6).unwrap());
        assert!(!list.remove(&mut heap, &mut pool, 1001, 0.6).unwrap());

        // Full stream through a cursor is sorted and complete.
        let mut cur = BlockCursor::open(&list, &heap);
        let mut seen = Vec::new();
        while let Some(((tid, p), _)) = cur.head(&mut pool).unwrap() {
            seen.push((tid, p));
            cur.advance();
        }
        assert_eq!(seen.len(), 302);
        assert_eq!(seen[0], (1000, 1.0));
        assert_eq!(seen.last().copied().unwrap(), (1002, 1e-6));
        for w in seen.windows(2) {
            assert!(
                posting_key(w[0].1, w[0].0) < posting_key(w[1].1, w[1].0),
                "stream order violated: {w:?}"
            );
        }
        assert_eq!(cur.undecoded_blocks(), 0);
    }

    #[test]
    fn splitting_keeps_separators_exact() {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 64);
        let mut heap = HeapFile::new();
        let mut list = BlockList::new();
        for t in 0..(BLOCK_SPLIT as u64 + 50) {
            let p = 0.9 - (t as f32) * 1e-3;
            list.insert(&mut heap, &mut pool, t, p).unwrap();
        }
        assert!(list.blocks().len() >= 2, "split must have happened");
        let mut cur = BlockCursor::open(&list, &heap);
        let mut n = 0u64;
        let mut block_starts: Vec<(TupleId, Prob)> = Vec::new();
        let mut at_start = true;
        while let Some(((tid, p), decoded_new)) = cur.head(&mut pool).unwrap() {
            if decoded_new || at_start {
                block_starts.push((tid, p));
                at_start = false;
            }
            n += 1;
            cur.advance();
        }
        assert_eq!(n, list.len());
        for (meta, &(tid, p)) in list.blocks().iter().zip(&block_starts) {
            assert_eq!(meta.sep, posting_key(p, tid), "separator must be exact");
            assert!(dequantize(meta.max_q) >= p as f64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Round trip over arbitrary blocks, including quantization
        // boundaries and maximal tids.
        #[test]
        fn codec_roundtrip(raw in proptest::collection::vec(
            (0u64..=u32::MAX as u64, 1u32..=PROB_SCALE), 0..200)
        ) {
            let mut entries: Vec<(TupleId, Prob)> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for (tid, q) in raw {
                if seen.insert(tid) {
                    entries.push((tid, q as f32 / PROB_SCALE as f32));
                }
            }
            stream_sorted(&mut entries);
            let bytes = encode_block(&entries);
            let back = decode_block(&bytes).unwrap();
            prop_assert_eq!(back, entries);
        }

        // Every decoded probability is dominated by the block's
        // quantized-up maximum — the invariant block-max pruning needs.
        #[test]
        fn decoded_p_never_exceeds_block_max(raw in proptest::collection::vec(
            (0u64..=u32::MAX as u64, 1u32..=u32::MAX), 1..150)
        ) {
            let mut entries: Vec<(TupleId, Prob)> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for (tid, bits) in raw {
                // Spread probabilities across (0, 1] including values that
                // straddle quantization boundaries.
                let p = (bits as f64 / u32::MAX as f64) as f32;
                let p = p.clamp(f32::MIN_POSITIVE, 1.0);
                if seen.insert(tid) {
                    entries.push((tid, p));
                }
            }
            stream_sorted(&mut entries);
            let max_q = quantize_up(entries[0].1);
            for &(_, p) in decode_block(&encode_block(&entries)).unwrap().iter() {
                prop_assert!(p as f64 <= dequantize(max_q));
            }
        }
    }
}
