//! Probabilistic inverted index (paper §3.1).
//!
//! The structure keeps, for every category `d ∈ D`, a posting list
//! `d.list = {(tid, p) | Pr(tid = d) = p > 0}` sorted by **descending**
//! probability. Two physical formats exist ([`PostingFormat`]): raw
//! pairs in a paged B+tree, or — the default — compressed blocks
//! (delta-varint tids + lossless probabilities) whose quantized-up
//! per-block maxima let every strategy skip whole blocks that cannot
//! meet the live bound (WAND-style block-max pruning). A heap-file
//! tuple store supports the random accesses that candidate verification
//! performs.
//!
//! Four search strategies answer PETQ (plus a no-random-access variant):
//!
//! * [`Strategy::Brute`] — `inv-index-search`: read every query list fully
//!   and aggregate; exact, no random access, but reads entire lists.
//! * [`Strategy::HighestProbFirst`] — frontier of cursors, always advancing
//!   the list with the most promising head; stops by Lemma 1 when
//!   `Σ_j q.p_j · p'_j < τ`; encountered candidates are verified by random
//!   access.
//! * [`Strategy::RowPruning`] — only read lists whose query probability
//!   reaches τ (a qualifying tuple must share one such item).
//! * [`Strategy::ColumnPruning`] — read each query list only down to
//!   probability τ (a qualifying tuple must have one such entry).
//! * [`Strategy::Nra`] — rank-join with per-candidate upper/lower bounds
//!   ("lack"), deferring random access to a small undecided remainder.
//!
//! [`Strategy::Auto`] sits above the five: a cost-based planner predicts
//! each strategy's counters from cached [`CostStats`] (zero-I/O
//! statistics over the block directories), executes the cheapest, and
//! abandons frontier plans mid-query when live counters overrun the
//! prediction — falling back, exactly, to column pruning.
//!
//! Every query method has a `*_metered` variant that tallies execution
//! counters (lists/postings scanned, Lemma 1 stops, the candidate
//! pipeline) into a [`uncat_storage::QueryMetrics`] — see
//! `docs/METRICS.md` for the counting conventions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod cost;
mod dstq;
mod index;
mod persist;
mod postings;
mod search;
mod topk;

pub use block::{
    decode_block, dequantize, encode_block, quantize_up, BLOCK_SPLIT, BLOCK_TARGET, PROB_SCALE,
};
pub use cost::{
    CatCostStats, CostPrediction, CostStats, COST_BUCKETS, ENTRIES_PER_PAGE, FALLBACK_BUDGET_FLOOR,
    OVERRUN_FACTOR,
};
pub use index::{IndexStats, InvertedIndex, PostingFormat};
pub use search::Strategy;
