//! No-random-access rank-join search (paper §3.1, after Lemma 1).
//!
//! "For each tuple so far encountered … we maintain its *lack* parameter —
//! the amount of probability value required for the tuple, and which lists
//! it could come from. As soon as the probability values of required lists
//! drop below a boundary such that a tuple can never qualify, we discard
//! the tuple. … Finally, once the size of this candidate set falls below
//! some number we perform random accesses for these tuples."
//!
//! Implementation: drain list heads most-promising-first (as in
//! highest-prob-first) while maintaining, per candidate, a lower bound
//! (sum of contributions seen) and a bitmask of the lists it was seen in;
//! the upper bound adds each unseen list's current head contribution.
//! Candidates whose upper bound falls below τ are discarded without any
//! random access — that is the I/O the strategy saves over
//! highest-prob-first. The remainder is resolved by batched (page-sorted)
//! random access; candidates whose bounds have already converged are
//! accepted with their exact accumulated score.

use std::collections::{HashMap, HashSet};

use uncat_core::equality::THRESHOLD_EPS;
use uncat_core::query::{EqQuery, Match};
use uncat_storage::{BufferPool, Phase, QueryMetrics, Result};

use crate::index::InvertedIndex;

use super::{verify_candidates, Frontier};

/// Random-access fallback size: with at most this many undecided
/// candidates (and no new ones possible), stop draining and verify them.
pub(crate) const RA_FALLBACK: usize = 32;

/// How a budgeted NRA run ended (see [`search_budgeted`]).
pub(crate) enum NraOutcome {
    /// The drain finished within budget; these are the exact matches.
    Done(Vec<Match>),
    /// The postings budget ran out mid-drain. Carries every tuple id
    /// encountered so far — a partial candidate set the adaptive
    /// executor folds into its fallback scan. No candidate-pipeline
    /// counters were ticked for them.
    OverBudget(HashSet<u64>),
}

/// How many pops between candidate sweeps.
const SWEEP_EVERY: usize = 128;

struct Cand {
    lb: f64,
    seen: u128,
}

/// Metrics profile: like highest-prob-first on the frontier side
/// (`frontier_pops`, `lemma1_stops`), but the candidate accounting is the
/// strategy's whole point — `candidates_pruned` are discarded by upper
/// bound, `candidates_settled` are decided from converged bounds, and only
/// `candidates_verified` cost a random access. The deferred random
/// accesses the paper describes are `pruned + settled`.
pub(super) fn search(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    metrics: &mut QueryMetrics,
) -> Result<Vec<Match>> {
    match run(idx, pool, query, None, metrics)? {
        NraOutcome::Done(out) => Ok(out),
        NraOutcome::OverBudget(_) => unreachable!("no budget, no overrun"),
    }
}

/// NRA under a postings-scanned budget: the adaptive executor's entry
/// point. The drain aborts once it has scanned more than `budget`
/// postings beyond the counter's value at entry.
pub(crate) fn search_budgeted(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    budget: u64,
    metrics: &mut QueryMetrics,
) -> Result<NraOutcome> {
    run(idx, pool, query, Some(budget), metrics)
}

fn run(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    budget: Option<u64>,
    metrics: &mut QueryMetrics,
) -> Result<NraOutcome> {
    let scanned_at_entry = metrics.postings_scanned;
    let plan = pool.trace_begin(Phase::Plan);
    let mut frontier = Frontier::open(idx, pool, &query.q, metrics)?;
    pool.trace_end(plan);
    if frontier.len() > 128 {
        // Mask width exceeded (never the case for realistic queries);
        // highest-prob-first is the general fallback. Nothing was
        // decoded, so the whole frontier is charged as skipped.
        frontier.account_skips(metrics);
        let (seen, over) =
            super::highest_prob::collect_candidates(idx, pool, query, budget, metrics)?;
        if over {
            return Ok(NraOutcome::OverBudget(seen));
        }
        metrics.candidates_generated += seen.len() as u64;
        return Ok(NraOutcome::Done(verify_candidates(
            idx, pool, query, seen, metrics,
        )?));
    }

    let tau = query.tau;
    let mut cand: HashMap<u64, Cand> = HashMap::new();
    let mut pops = 0usize;
    let mut next_sweep = SWEEP_EVERY;
    let mut undecided_small = false;

    let drain = pool.trace_begin(Phase::NraDrain);
    loop {
        // Stop once no unseen tuple can qualify and the undecided set is
        // small enough for the random-access fallback. Checked before
        // `best()` — which force-decodes bound heads — so a stop leaves
        // the pending blocks undecoded (skipped).
        if frontier.sum() < tau - THRESHOLD_EPS && undecided_small {
            if !frontier.all_exhausted() {
                metrics.lemma1_stops += 1;
            }
            break;
        }
        if budget.is_some_and(|b| metrics.postings_scanned - scanned_at_entry > b) {
            // The plan is losing: hand the partial candidate set back to
            // the adaptive executor without spending any random access.
            pool.trace_end(drain);
            frontier.account_skips(metrics);
            return Ok(NraOutcome::OverBudget(cand.keys().copied().collect()));
        }
        let Some((j, tid, c)) = frontier.best(pool, metrics)? else {
            break;
        };
        let e = cand.entry(tid).or_insert(Cand { lb: 0.0, seen: 0 });
        e.lb += c;
        e.seen |= 1u128 << j;
        frontier.advance(pool, j, metrics)?;

        pops += 1;
        // Sweeping costs a pass over the candidate map; scale the interval
        // with its size.
        if pops >= next_sweep {
            next_sweep = pops + SWEEP_EVERY.max(cand.len() / 4);
            let heads = frontier.residual();
            let undecided = cand
                .values()
                .filter(|c| {
                    let ub: f64 = c.lb
                        + heads
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| c.seen & (1u128 << j) == 0)
                            .map(|(_, &h)| h)
                            .sum::<f64>();
                    // Neither surely-in nor surely-out.
                    c.lb < tau - THRESHOLD_EPS && ub >= tau - THRESHOLD_EPS
                })
                .count();
            undecided_small = undecided <= RA_FALLBACK;
        }
    }

    // Final heads after the drain (zero for exhausted lists). Bound
    // heads report their block's quantized-up maximum: upper bounds
    // built from them are conservative, and `remaining == 0.0` still
    // certifies convergence (a live bound head is strictly positive).
    pool.trace_end(drain);
    let heads = frontier.residual();
    let all_exhausted = frontier.all_exhausted();
    frontier.account_skips(metrics);

    metrics.candidates_generated += cand.len() as u64;
    let mut accepted: Vec<Match> = Vec::new();
    let mut needs_ra: Vec<u64> = Vec::new();
    for (tid, c) in &cand {
        let remaining: f64 = heads
            .iter()
            .enumerate()
            .filter(|&(j, _)| c.seen & (1u128 << j) == 0)
            .map(|(_, &h)| h)
            .sum();
        let ub = c.lb + remaining;
        if ub < tau - THRESHOLD_EPS {
            metrics.candidates_pruned += 1;
            continue; // discarded with zero random accesses
        }
        if all_exhausted || remaining == 0.0 {
            // Bounds converged: lb is the exact probability.
            metrics.candidates_settled += 1;
            if c.lb >= tau - THRESHOLD_EPS {
                accepted.push(Match::new(*tid, c.lb));
            }
        } else {
            needs_ra.push(*tid);
        }
    }
    accepted.extend(verify_candidates(idx, pool, query, needs_ra, metrics)?);
    Ok(NraOutcome::Done(accepted))
}
