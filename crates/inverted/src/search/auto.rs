//! The adaptive executor behind [`Strategy::Auto`](super::Strategy).
//!
//! Planning: predict every fixed strategy's counters from the cached
//! [`crate::CostStats`] and execute the cheapest by scalar cost. The
//! deterministic strategies (brute, row pruning, column pruning) cannot
//! overrun a conservative prediction, so they run unmodified. The
//! frontier strategies (highest-prob-first, NRA) *can* — their drain
//! depth depends on the live Lemma 1 sum, and statistics go stale
//! between checkpoints — so they run under a postings budget of
//! `OVERRUN_FACTOR × predicted + FALLBACK_BUDGET_FLOOR`.
//!
//! When a drain overruns its budget, the plan is abandoned mid-query:
//! the executor falls back to a column-pruning scan over the same
//! (already warmed) buffer pool, *reusing the partial frontier state* —
//! every tuple id the drain encountered joins the fallback's candidate
//! set, so the drained work is not thrown away. Verification computes
//! exact scores and filters by τ, and the fallback candidate set is a
//! superset of column pruning's, so the fallback is exact. One
//! `plan_fallbacks` tick records the misprediction.
//!
//! Work bound (asserted in `tests/planner.rs`): the adaptive run never
//! scans more postings, nor reads more pages, than running the losing
//! strategy to completion plus running the fallback strategy cold — the
//! abandoned drain is a prefix of the full drain, the fallback scan is
//! exactly column pruning's, and the shared pool only deduplicates
//! reads.

use std::collections::HashSet;

use uncat_core::equality::THRESHOLD_EPS;
use uncat_core::query::{EqQuery, Match};
use uncat_storage::{BufferPool, Phase, QueryMetrics, Result};

use crate::cost::{FALLBACK_BUDGET_FLOOR, OVERRUN_FACTOR};
use crate::index::InvertedIndex;

use super::{
    brute, col_prune, highest_prob, nra, query_lists, row_prune, verify_candidates, Strategy,
};

/// Postings the adaptive executor lets a frontier drain scan before
/// declaring the plan lost.
fn budget_for(predicted_postings: u64) -> u64 {
    OVERRUN_FACTOR
        .saturating_mul(predicted_postings)
        .saturating_add(FALLBACK_BUDGET_FLOOR)
}

pub(super) fn search(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    metrics: &mut QueryMetrics,
) -> Result<Vec<Match>> {
    let (pick, pred) = idx.plan_petq(query);
    match pick {
        Strategy::Brute => brute::search(idx, pool, query, metrics),
        Strategy::RowPruning => row_prune::search(idx, pool, query, metrics),
        Strategy::ColumnPruning => col_prune::search(idx, pool, query, metrics),
        Strategy::HighestProbFirst => {
            let budget = budget_for(pred.postings_scanned);
            let (candidates, over) =
                highest_prob::collect_candidates(idx, pool, query, Some(budget), metrics)?;
            if over {
                return fallback(idx, pool, query, candidates, metrics);
            }
            metrics.candidates_generated += candidates.len() as u64;
            verify_candidates(idx, pool, query, candidates, metrics)
        }
        Strategy::Nra => {
            let budget = budget_for(pred.postings_scanned);
            match nra::search_budgeted(idx, pool, query, budget, metrics)? {
                nra::NraOutcome::Done(out) => Ok(out),
                nra::NraOutcome::OverBudget(partial) => {
                    fallback(idx, pool, query, partial, metrics)
                }
            }
        }
        Strategy::Auto => unreachable!("the planner only picks fixed strategies"),
    }
}

/// Abandon the losing plan: column-pruning scan on the same pool, with
/// the drain's partial candidates folded in, then one exact batched
/// verification over the union.
fn fallback(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    mut candidates: HashSet<u64>,
    metrics: &mut QueryMetrics,
) -> Result<Vec<Match>> {
    metrics.plan_fallbacks += 1;
    let span = pool.trace_begin(Phase::PostingScan);
    for (_cat, _qp, list) in query_lists(idx, &query.q) {
        metrics.lists_opened += 1;
        list.scan_prefix(
            idx.block_heap(),
            pool,
            query.tau - THRESHOLD_EPS,
            metrics,
            |tid, _p| {
                candidates.insert(tid);
            },
        )?;
    }
    pool.trace_end(span);
    metrics.candidates_generated += candidates.len() as u64;
    verify_candidates(idx, pool, query, candidates, metrics)
}
