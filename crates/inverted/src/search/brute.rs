//! `inv-index-search`: the brute-force strategy.
//!
//! Read the complete posting list of every category in the query and
//! aggregate contributions per tuple. Because every non-zero term of
//! `Pr(q = t) = Σ_j q.p_j · t.p_j` lives in some query list, the aggregate
//! *is* the exact probability — no random access is needed. The cost is
//! reading entire lists regardless of τ, which is why the paper calls it
//! out as only competitive "when these lists are not too big and the query
//! involves fewer d_ij".

use std::collections::HashMap;

use uncat_core::equality::meets_threshold;
use uncat_core::query::{EqQuery, Match};
use uncat_storage::{BufferPool, Phase, QueryMetrics, Result};

use crate::index::InvertedIndex;

use super::query_lists;

/// Metrics profile: every query list is opened and scanned to the end
/// (`postings_scanned` is the total posting count of the query lists — the
/// ceiling the pruning strategies are measured against; block lists decode
/// every block, so both formats scan the same entries). Each aggregated
/// tuple is decided exactly from its accumulated contributions, so all
/// candidates are `candidates_settled`; no random access ever happens.
pub(super) fn search(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    metrics: &mut QueryMetrics,
) -> Result<Vec<Match>> {
    let mut acc: HashMap<u64, f64> = HashMap::new();
    let span = pool.trace_begin(Phase::PostingScan);
    for (_cat, qp, list) in query_lists(idx, &query.q) {
        metrics.lists_opened += 1;
        list.scan_all(idx.block_heap(), pool, metrics, |tid, p| {
            *acc.entry(tid).or_insert(0.0) += qp * p as f64;
        })?;
    }
    pool.trace_end(span);
    metrics.candidates_generated += acc.len() as u64;
    metrics.candidates_settled += acc.len() as u64;
    Ok(acc
        .into_iter()
        .filter(|&(_, pr)| meets_threshold(pr, query.tau))
        .map(|(tid, pr)| Match::new(tid, pr))
        .collect())
}
