//! `inv-index-search`: the brute-force strategy.
//!
//! Read the complete posting list of every category in the query and
//! aggregate contributions per tuple. Because every non-zero term of
//! `Pr(q = t) = Σ_j q.p_j · t.p_j` lives in some query list, the aggregate
//! *is* the exact probability — no random access is needed. The cost is
//! reading entire lists regardless of τ, which is why the paper calls it
//! out as only competitive "when these lists are not too big and the query
//! involves fewer d_ij".

use std::collections::HashMap;
use std::ops::ControlFlow;

use uncat_core::equality::meets_threshold;
use uncat_core::query::{EqQuery, Match};
use uncat_storage::{BufferPool, Result};

use crate::index::InvertedIndex;
use crate::postings::decode_posting;

use super::query_lists;

pub(super) fn search(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
) -> Result<Vec<Match>> {
    let mut acc: HashMap<u64, f64> = HashMap::new();
    for (_cat, qp, tree) in query_lists(idx, &query.q) {
        tree.scan_all(pool, |key, _| {
            let (p, tid) = decode_posting(key);
            *acc.entry(tid).or_insert(0.0) += qp * p as f64;
            ControlFlow::Continue(())
        })?;
    }
    Ok(acc
        .into_iter()
        .filter(|&(_, pr)| meets_threshold(pr, query.tau))
        .map(|(tid, pr)| Match::new(tid, pr))
        .collect())
}
