//! Highest-prob-first search (paper §3.1, Figure 2).
//!
//! Keep a cursor in every query list. Repeatedly advance the cursor whose
//! head maximizes `q.p_j · p'_j` (the most promising next tuple). Stop as
//! soon as `Σ_j q.p_j · p'_j < τ`: by Lemma 1 no tuple first encountered
//! later can qualify. Every tuple id encountered before the stop is a
//! candidate and is verified by one random access.

use std::collections::HashSet;

use uncat_core::query::{EqQuery, Match};
use uncat_storage::{BufferPool, Phase, QueryMetrics, Result};

use crate::index::InvertedIndex;

use super::{verify_candidates, Frontier};

/// Metrics profile: `frontier_pops` is the drain depth (the paper's
/// "posting-list depth reached"); a `lemma1_stops` tick records that the
/// drain ended by Lemma 1 rather than by exhausting the lists. Every
/// encountered tuple is a candidate and every candidate is verified by
/// random access.
pub(super) fn search(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    metrics: &mut QueryMetrics,
) -> Result<Vec<Match>> {
    let (candidates, over) = collect_candidates(idx, pool, query, None, metrics)?;
    debug_assert!(!over, "no budget, no overrun");
    metrics.candidates_generated += candidates.len() as u64;
    verify_candidates(idx, pool, query, candidates, metrics)
}

/// Drain list heads in most-promising-first order until Lemma 1 stops
/// the search — or, when a postings budget is given, until the drain has
/// scanned more than `budget` postings past the counter's entry value
/// (the adaptive executor's abandon signal). Returns every tuple id
/// encountered plus whether the budget was exceeded.
pub(crate) fn collect_candidates(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    budget: Option<u64>,
    metrics: &mut QueryMetrics,
) -> Result<(HashSet<u64>, bool)> {
    let scanned_at_entry = metrics.postings_scanned;
    let plan = pool.trace_begin(Phase::Plan);
    let mut frontier = Frontier::open(idx, pool, &query.q, metrics)?;
    pool.trace_end(plan);
    let drain = pool.trace_begin(Phase::FrontierMaintenance);
    let mut seen: HashSet<u64> = HashSet::new();
    let mut over_budget = false;
    loop {
        // Lemma 1: any tuple not yet seen is bounded by the frontier sum
        // (an over-estimate while bound heads are live, so the stop is
        // conservative). The epsilon keeps pruning consistent with
        // `meets_threshold`.
        if frontier.sum() < query.tau - uncat_core::equality::THRESHOLD_EPS {
            if !frontier.all_exhausted() {
                metrics.lemma1_stops += 1;
            }
            break;
        }
        if budget.is_some_and(|b| metrics.postings_scanned - scanned_at_entry > b) {
            over_budget = true;
            break;
        }
        let Some((j, tid, _c)) = frontier.best(pool, metrics)? else {
            break;
        };
        seen.insert(tid);
        frontier.advance(pool, j, metrics)?;
    }
    frontier.account_skips(metrics);
    pool.trace_end(drain);
    Ok((seen, over_budget))
}
