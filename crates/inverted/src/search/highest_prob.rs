//! Highest-prob-first search (paper §3.1, Figure 2).
//!
//! Keep a cursor in every query list. Repeatedly advance the cursor whose
//! head maximizes `q.p_j · p'_j` (the most promising next tuple). Stop as
//! soon as `Σ_j q.p_j · p'_j < τ`: by Lemma 1 no tuple first encountered
//! later can qualify. Every tuple id encountered before the stop is a
//! candidate and is verified by one random access.

use std::collections::HashSet;

use uncat_core::query::{EqQuery, Match};
use uncat_storage::{BufferPool, Phase, QueryMetrics, Result};

use crate::index::InvertedIndex;

use super::{verify_candidates, Frontier};

/// Metrics profile: `frontier_pops` is the drain depth (the paper's
/// "posting-list depth reached"); a `lemma1_stops` tick records that the
/// drain ended by Lemma 1 rather than by exhausting the lists. Every
/// encountered tuple is a candidate and every candidate is verified by
/// random access.
pub(super) fn search(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    metrics: &mut QueryMetrics,
) -> Result<Vec<Match>> {
    let candidates = collect_candidates(idx, pool, query, metrics)?;
    metrics.candidates_generated += candidates.len() as u64;
    verify_candidates(idx, pool, query, candidates, metrics)
}

/// Crate-visible entry point (used as the NRA wide-query fallback).
pub(crate) fn search_public(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    metrics: &mut QueryMetrics,
) -> Result<Vec<Match>> {
    search(idx, pool, query, metrics)
}

/// Drain list heads in most-promising-first order until Lemma 1 stops the
/// search; return every tuple id encountered.
pub(crate) fn collect_candidates(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    metrics: &mut QueryMetrics,
) -> Result<HashSet<u64>> {
    let plan = pool.trace_begin(Phase::Plan);
    let mut frontier = Frontier::open(idx, pool, &query.q, metrics)?;
    pool.trace_end(plan);
    let drain = pool.trace_begin(Phase::FrontierMaintenance);
    let mut seen: HashSet<u64> = HashSet::new();
    loop {
        // Lemma 1: any tuple not yet seen is bounded by the frontier sum
        // (an over-estimate while bound heads are live, so the stop is
        // conservative). The epsilon keeps pruning consistent with
        // `meets_threshold`.
        if frontier.sum() < query.tau - uncat_core::equality::THRESHOLD_EPS {
            if !frontier.all_exhausted() {
                metrics.lemma1_stops += 1;
            }
            break;
        }
        let Some((j, tid, _c)) = frontier.best(pool, metrics)? else {
            break;
        };
        seen.insert(tid);
        frontier.advance(pool, j, metrics)?;
    }
    frontier.account_skips(metrics);
    pool.trace_end(drain);
    Ok(seen)
}
