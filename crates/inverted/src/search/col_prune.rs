//! Column pruning (paper §3.1).
//!
//! Every query list is read, but only its *prefix* with probability ≥ τ
//! (lists are sorted by descending probability, so the scan stops at the
//! first entry below τ). Correctness: `Pr(q = t) ≤ max_{i ∈ supp(q)} t.p_i`
//! because `Σ_i q.p_i ≤ 1`; a qualifying tuple therefore has an entry with
//! `t.p ≥ τ` in some query list, inside the scanned prefix. Candidates are
//! verified by random access.

use std::collections::HashSet;

use uncat_core::equality::THRESHOLD_EPS;
use uncat_core::query::{EqQuery, Match};
use uncat_storage::{BufferPool, Phase, QueryMetrics, Result};

use crate::index::InvertedIndex;

use super::{query_lists, verify_candidates};

/// Metrics profile: every query list is opened but scanned only to its
/// τ-prefix, so `postings_scanned` ≤ brute force's on the same query (the
/// first below-τ entry that terminates each scan is counted — it was
/// read). Block lists stop at block granularity on top: blocks whose
/// quantized-up maximum is below τ are `blocks_skipped` without being
/// decoded, so a list whose very first block maximum misses τ costs zero
/// postings. Every candidate is verified by random access.
pub(super) fn search(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    metrics: &mut QueryMetrics,
) -> Result<Vec<Match>> {
    let mut candidates: HashSet<u64> = HashSet::new();
    let span = pool.trace_begin(Phase::PostingScan);
    for (_cat, _qp, list) in query_lists(idx, &query.q) {
        metrics.lists_opened += 1;
        list.scan_prefix(
            idx.block_heap(),
            pool,
            query.tau - THRESHOLD_EPS,
            metrics,
            |tid, _p| {
                candidates.insert(tid);
            },
        )?;
    }
    pool.trace_end(span);
    metrics.candidates_generated += candidates.len() as u64;
    verify_candidates(idx, pool, query, candidates, metrics)
}
