//! PETQ search strategies over the inverted index.

mod auto;
mod brute;
mod col_prune;
mod highest_prob;
mod nra;
mod row_prune;

pub(crate) use nra::RA_FALLBACK as NRA_RA_FALLBACK;

use uncat_core::equality::{eq_prob, meets_threshold};
use uncat_core::query::{sort_matches_desc, EqQuery, Match};
use uncat_storage::{BufferPool, Phase, QueryMetrics, Result, StorageError};

use crate::index::InvertedIndex;

/// Which search algorithm evaluates a PETQ (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// `inv-index-search`: read every query list fully and aggregate.
    Brute,
    /// Advance the most promising list head; stop by Lemma 1.
    HighestProbFirst,
    /// Read (fully) only the lists with `q.p ≥ τ`.
    RowPruning,
    /// Read each query list only down to probability `τ`.
    #[default]
    ColumnPruning,
    /// Rank-join with upper/lower bounds and deferred random access.
    Nra,
    /// Cost-based planning: pick the cheapest fixed strategy from the
    /// cached [`crate::CostStats`] and execute it under an adaptive
    /// budget that falls back to column pruning when live counters
    /// overrun the prediction (see [`crate::CostPrediction`]).
    Auto,
}

impl Strategy {
    /// All *fixed* strategies, for the ablation sweep.
    /// [`Strategy::Auto`] is deliberately excluded: it is a chooser over
    /// these five, not a sixth algorithm, and including it would make
    /// every ablation figure compare a strategy against itself.
    pub const ALL: [Strategy; 5] = [
        Strategy::Brute,
        Strategy::HighestProbFirst,
        Strategy::RowPruning,
        Strategy::ColumnPruning,
        Strategy::Nra,
    ];

    /// Short display name used in figure output.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Brute => "inv-index-search",
            Strategy::HighestProbFirst => "highest-prob-first",
            Strategy::RowPruning => "row-pruning",
            Strategy::ColumnPruning => "column-pruning",
            Strategy::Nra => "nra",
            Strategy::Auto => "auto",
        }
    }
}

impl InvertedIndex {
    /// Evaluate a PETQ with the chosen strategy, returning qualifying
    /// tuples with their exact equality probabilities, in canonical
    /// (descending-probability) order.
    ///
    /// A page the store cannot produce fails *this query* with
    /// `Err(StorageError)`; the index and pool remain usable.
    pub fn petq(
        &self,
        pool: &mut BufferPool,
        query: &EqQuery,
        strategy: Strategy,
    ) -> Result<Vec<Match>> {
        self.petq_metered(pool, query, strategy, &mut QueryMetrics::new())
    }

    /// [`InvertedIndex::petq`] with execution counters: every list, posting,
    /// frontier and candidate event is tallied into `metrics` (counters are
    /// added to, never reset, so one `QueryMetrics` can span several calls).
    /// I/O is *not* recorded here — the pool owns the I/O counters; callers
    /// that want the full picture copy `pool.stats()` deltas into
    /// `metrics.io` (see `uncat_query::Executor`).
    pub fn petq_metered(
        &self,
        pool: &mut BufferPool,
        query: &EqQuery,
        strategy: Strategy,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        let mut out = match strategy {
            Strategy::Brute => brute::search(self, pool, query, metrics)?,
            Strategy::HighestProbFirst => highest_prob::search(self, pool, query, metrics)?,
            Strategy::RowPruning => row_prune::search(self, pool, query, metrics)?,
            Strategy::ColumnPruning => col_prune::search(self, pool, query, metrics)?,
            Strategy::Nra => nra::search(self, pool, query, metrics)?,
            Strategy::Auto => auto::search(self, pool, query, metrics)?,
        };
        sort_matches_desc(&mut out);
        Ok(out)
    }

    /// PEQ: every tuple with non-zero equality probability (Definition 3),
    /// in canonical order. Evaluated by full aggregation over the query's
    /// posting lists.
    pub fn peq(&self, pool: &mut BufferPool, q: &uncat_core::Uda) -> Result<Vec<Match>> {
        let query = EqQuery::new(q.clone(), 0.0);
        let mut out = brute::search(self, pool, &query, &mut QueryMetrics::new())?;
        out.retain(|m| m.score > 0.0);
        sort_matches_desc(&mut out);
        Ok(out)
    }
}

/// Random-access verification: fetch each candidate's distribution and keep
/// those meeting the threshold, with exact scores. Each candidate counts as
/// one `candidates_verified`.
///
/// Accesses are *sorted by heap page* first, so candidates sharing a page
/// cost one read — the standard batched-random-access discipline.
pub(crate) fn verify_candidates(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    candidates: impl IntoIterator<Item = u64>,
    metrics: &mut QueryMetrics,
) -> Result<Vec<Match>> {
    // On an error return the span stays open; ending the enclosing span
    // (or taking the trace) closes it, so the tree stays well-formed.
    let span = pool.trace_begin(Phase::Verification);
    let mut out = Vec::new();
    for tid in sorted_by_page(idx, candidates)? {
        let t = idx.get_tuple(pool, tid)?.ok_or(StorageError::Corrupt(
            "posting refers to an unindexed tuple",
        ))?;
        metrics.candidates_verified += 1;
        let pr = eq_prob(&query.q, &t);
        if meets_threshold(pr, query.tau) {
            out.push(Match::new(tid, pr));
        }
    }
    pool.trace_end(span);
    Ok(out)
}

/// Order tuple ids by their heap location so random accesses batch per
/// page.
pub(crate) fn sorted_by_page(
    idx: &InvertedIndex,
    candidates: impl IntoIterator<Item = u64>,
) -> Result<Vec<u64>> {
    let mut v: Vec<u64> = candidates.into_iter().collect();
    for &tid in &v {
        if idx.record_location(tid).is_none() {
            return Err(StorageError::Corrupt(
                "posting refers to an unindexed tuple",
            ));
        }
    }
    v.sort_by_key(|&tid| {
        let rid = idx.record_location(tid).expect("checked above");
        (rid.page, rid.slot)
    });
    Ok(v)
}

/// The query's support restricted to lists that exist in the index:
/// `(cat, q_prob, list)` triples.
pub(crate) fn query_lists<'a>(
    idx: &'a InvertedIndex,
    q: &uncat_core::Uda,
) -> Vec<(uncat_core::CatId, f64, &'a crate::postings::PostingList)> {
    q.iter()
        .filter_map(|(cat, p)| idx.posting_list(cat).map(|l| (cat, p as f64, l)))
        .collect()
}

/// A cached frontier head: the contribution `c_j = q.p_j · p'_j` of list
/// `j`'s head, either exact or an upper bound (the head sits in an
/// undecoded block, whose quantized-up maximum bounds `p'_j`).
#[derive(Clone, Copy)]
pub(crate) enum Head {
    /// The head entry is materialized.
    Exact { tid: u64, c: f64 },
    /// Only an upper bound on the head's contribution is known.
    Bound { c: f64 },
}

impl Head {
    fn c(&self) -> f64 {
        match *self {
            Head::Exact { c, .. } | Head::Bound { c } => c,
        }
    }

    fn from_cursor(qp: f64, h: crate::postings::CursorHead) -> Head {
        match h {
            crate::postings::CursorHead::Exact { tid, p } => Head::Exact {
                tid,
                c: qp * p as f64,
            },
            crate::postings::CursorHead::Bound { p } => Head::Bound { c: qp * p },
        }
    }
}

/// A frontier over the query's posting-list cursors with *cached* heads:
/// per pop, only the advanced cursor touches the buffer pool; inspecting
/// the frontier is pure in-memory work. Contributions are pre-scaled by
/// the query probability (`c_j = q.p_j · p'_j`).
///
/// Block-format lists participate through [`Head::Bound`]: an undecoded
/// block contributes its quantized-up maximum, so [`Frontier::sum`] only
/// ever *over*-estimates the true head sum — every Lemma 1 / θ stop made
/// against it is conservative, while blocks whose bound never tops the
/// heap are skipped without decoding (WAND-style block-max pruning).
/// [`Frontier::best`] force-decodes a bound only when it is the maximum.
///
/// `best()` is served by a lazily-invalidated max-heap and `sum()` is
/// maintained incrementally (with periodic recomputation to cancel float
/// drift), so a full drain of `E` postings over `l` lists costs
/// `O(E log l)` instead of `O(E · l)` — material at the paper's scale
/// (CRM2: 5 M postings over 50 lists per query).
pub(crate) struct Frontier<'a> {
    cursors: Vec<(f64, crate::postings::ListCursor<'a>)>,
    /// Cached head under each cursor.
    heads: Vec<Option<Head>>,
    /// Max-heap of `(contribution bits, list)`; entries may be stale and
    /// are skipped when they disagree with `heads`.
    order: std::collections::BinaryHeap<(u64, usize)>,
    /// Incremental Σ of live head contributions (bounds included).
    sum: f64,
    /// Advances since the last exact recomputation of `sum`.
    since_resum: u32,
}

/// Recompute the incremental sum after this many advances (bounds float
/// drift without measurable cost).
const RESUM_EVERY: u32 = 1 << 16;

impl<'a> Frontier<'a> {
    /// Open a cursor per query list and cache the initial heads. Counts
    /// one `lists_opened` per cursor and one `postings_scanned` per
    /// non-empty *exact* initial head (block lists start as free bounds).
    pub(crate) fn open(
        idx: &'a InvertedIndex,
        pool: &mut BufferPool,
        q: &uncat_core::Uda,
        metrics: &mut QueryMetrics,
    ) -> Result<Frontier<'a>> {
        let mut cursors: Vec<(f64, crate::postings::ListCursor<'a>)> = Vec::new();
        let mut heads: Vec<Option<Head>> = Vec::new();
        for (_cat, qp, list) in query_lists(idx, q) {
            let (cur, head) =
                crate::postings::ListCursor::open(list, idx.block_heap(), pool, metrics)?;
            cursors.push((qp, cur));
            heads.push(head.map(|h| Head::from_cursor(qp, h)));
        }
        metrics.lists_opened += cursors.len() as u64;
        let order = heads
            .iter()
            .enumerate()
            .filter_map(|(j, h)| h.map(|h| (h.c().to_bits(), j)))
            .collect();
        let sum = heads.iter().flatten().map(Head::c).sum();
        Ok(Frontier {
            cursors,
            heads,
            order,
            sum,
            since_resum: 0,
        })
    }

    /// Number of lists.
    pub(crate) fn len(&self) -> usize {
        self.cursors.len()
    }

    /// `Σ_j q.p_j · p'_j` over the live heads, bound heads included —
    /// an upper bound on Lemma 1's sum, so `sum() < τ` soundly implies
    /// the true sum is below τ.
    pub(crate) fn sum(&self) -> f64 {
        self.sum
    }

    /// The most promising head: `(list, tid, contribution)`. When a
    /// *bound* head tops the heap its block is force-decoded (ticking
    /// `blocks_decoded`/`postings_scanned`), the head turns exact — its
    /// contribution can only shrink, preserving the heap property — and
    /// the scan resumes; blocks whose bound never reaches the top are
    /// never decoded.
    pub(crate) fn best(
        &mut self,
        pool: &mut BufferPool,
        metrics: &mut QueryMetrics,
    ) -> Result<Option<(usize, u64, f64)>> {
        loop {
            let Some(&(bits, j)) = self.order.peek() else {
                return Ok(None);
            };
            match self.heads[j] {
                Some(Head::Exact { tid, c }) if c.to_bits() == bits => {
                    return Ok(Some((j, tid, c)));
                }
                Some(Head::Bound { c }) if c.to_bits() == bits => {
                    self.order.pop();
                    let (qp, cur) = &mut self.cursors[j];
                    let (tid, p) = cur
                        .force(pool, metrics)?
                        .expect("a bound head implies a live entry");
                    let exact = *qp * p as f64;
                    self.sum += exact - c;
                    self.heads[j] = Some(Head::Exact { tid, c: exact });
                    self.order.push((exact.to_bits(), j));
                }
                _ => {
                    self.order.pop(); // stale entry
                }
            }
        }
    }

    /// Pop list `j`'s head and refresh its cache. Counts one
    /// `frontier_pops`, plus one `postings_scanned` when the next entry
    /// is materialized (a block-boundary crossing caches a free bound
    /// instead).
    pub(crate) fn advance(
        &mut self,
        pool: &mut BufferPool,
        j: usize,
        metrics: &mut QueryMetrics,
    ) -> Result<()> {
        let (qp, cur) = &mut self.cursors[j];
        metrics.frontier_pops += 1;
        if let Some(h) = self.heads[j] {
            self.sum -= h.c();
        }
        let qp = *qp;
        let next = cur
            .advance(pool, metrics)?
            .map(|h| Head::from_cursor(qp, h));
        if let Some(h) = next {
            self.sum += h.c();
            self.order.push((h.c().to_bits(), j));
        }
        self.heads[j] = next;

        self.since_resum += 1;
        if self.since_resum >= RESUM_EVERY {
            self.since_resum = 0;
            self.sum = self.heads.iter().flatten().map(Head::c).sum();
        }
        Ok(())
    }

    /// Residual head contribution per list (0 where exhausted). Bound
    /// heads report their upper bound, so per-candidate upper bounds
    /// built from these stay conservative; a candidate whose bound rests
    /// on an undecoded block is never *settled* by it (see NRA), only
    /// pruned or sent to verification.
    pub(crate) fn residual(&self) -> Vec<f64> {
        self.heads
            .iter()
            .map(|h| h.map_or(0.0, |h| h.c()))
            .collect()
    }

    /// Whether every list is drained.
    pub(crate) fn all_exhausted(&self) -> bool {
        self.heads.iter().all(Option::is_none)
    }

    /// Charge every cursor's never-decoded blocks as `blocks_skipped`.
    /// Call exactly once, when the search stops consuming the frontier.
    pub(crate) fn account_skips(&self, metrics: &mut QueryMetrics) {
        for (_, cur) in &self.cursors {
            cur.account_skips(metrics);
        }
    }
}
