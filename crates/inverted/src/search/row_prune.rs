//! Row pruning (paper §3.1).
//!
//! Only posting lists whose *query* probability reaches τ are read (fully).
//! Correctness: `Pr(q = t) ≤ max_{i ∈ supp(q) ∩ supp(t)} q.p_i` because
//! `Σ_i t.p_i ≤ 1`; so a tuple qualifying with `Pr ≥ τ` must share at least
//! one item whose query probability is ≥ τ, and therefore appears in one of
//! the retained lists. Candidates are verified by random access.

use std::collections::HashSet;

use uncat_core::equality::THRESHOLD_EPS;
use uncat_core::query::{EqQuery, Match};
use uncat_storage::{BufferPool, Phase, QueryMetrics, Result};

use crate::index::InvertedIndex;

use super::{query_lists, verify_candidates};

/// Metrics profile: each list below the query-probability threshold is a
/// `lists_pruned` (its postings are never read — the strategy's entire
/// saving); retained lists are scanned fully. Every candidate is verified
/// by random access.
pub(super) fn search(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
    metrics: &mut QueryMetrics,
) -> Result<Vec<Match>> {
    let mut candidates: HashSet<u64> = HashSet::new();
    let span = pool.trace_begin(Phase::PostingScan);
    for (_cat, qp, list) in query_lists(idx, &query.q) {
        if qp < query.tau - THRESHOLD_EPS {
            metrics.lists_pruned += 1;
            continue; // row pruned
        }
        metrics.lists_opened += 1;
        list.scan_all(idx.block_heap(), pool, metrics, |tid, _p| {
            candidates.insert(tid);
        })?;
    }
    pool.trace_end(span);
    metrics.candidates_generated += candidates.len() as u64;
    verify_candidates(idx, pool, query, candidates, metrics)
}
