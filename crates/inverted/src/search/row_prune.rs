//! Row pruning (paper §3.1).
//!
//! Only posting lists whose *query* probability reaches τ are read (fully).
//! Correctness: `Pr(q = t) ≤ max_{i ∈ supp(q) ∩ supp(t)} q.p_i` because
//! `Σ_i t.p_i ≤ 1`; so a tuple qualifying with `Pr ≥ τ` must share at least
//! one item whose query probability is ≥ τ, and therefore appears in one of
//! the retained lists. Candidates are verified by random access.

use std::collections::HashSet;
use std::ops::ControlFlow;

use uncat_core::equality::THRESHOLD_EPS;
use uncat_core::query::{EqQuery, Match};
use uncat_storage::{BufferPool, Result};

use crate::index::InvertedIndex;
use crate::postings::decode_posting;

use super::{query_lists, verify_candidates};

pub(super) fn search(
    idx: &InvertedIndex,
    pool: &mut BufferPool,
    query: &EqQuery,
) -> Result<Vec<Match>> {
    let mut candidates: HashSet<u64> = HashSet::new();
    for (_cat, qp, tree) in query_lists(idx, &query.q) {
        if qp < query.tau - THRESHOLD_EPS {
            continue; // row pruned
        }
        tree.scan_all(pool, |key, _| {
            let (_p, tid) = decode_posting(key);
            candidates.insert(tid);
            ControlFlow::Continue(())
        })?;
    }
    verify_candidates(idx, pool, query, candidates)
}
