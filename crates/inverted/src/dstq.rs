//! Distributional similarity queries (DSTQ) over the inverted index.
//!
//! The paper notes that "it is straightforward to adapt our framework of
//! indexing to distributional similarity queries"; this module is that
//! adaptation. For metric divergences (L1/L2) with a tight-enough radius,
//! candidate tuples must overlap the query's support:
//!
//! * **L1**: disjoint supports give `L1(q,t) = mass(q) + mass(t) ≥ mass(q)`,
//!   so if `τ_d < mass(q)` every qualifying tuple shares a category.
//! * **L2**: disjoint supports give `L2(q,t) ≥ ‖q‖₂`, so if `τ_d < ‖q‖₂`
//!   every qualifying tuple shares a category.
//!
//! In those cases the query lists are scanned for candidates, which are
//! verified by random access. Otherwise (wide radius, or the non-metric
//! KL divergence) the evaluation falls back to a full tuple-store scan —
//! pruning with KL would be unsound, which is exactly why the paper uses
//! KL only for clustering.

use std::collections::HashSet;

use uncat_core::query::{sort_matches_asc, DsTopKQuery, DstQuery, Match};
use uncat_core::topk::BottomKHeap;
use uncat_core::Divergence;
use uncat_storage::{BufferPool, Phase, QueryMetrics, Result, StorageError};

use crate::index::InvertedIndex;
use crate::search::query_lists;

impl InvertedIndex {
    /// Evaluate a DSTQ: all tuples with `F(q, t) ≤ τ_d`, in ascending
    /// divergence order.
    pub fn dstq(&self, pool: &mut BufferPool, query: &DstQuery) -> Result<Vec<Match>> {
        self.dstq_metered(pool, query, &mut QueryMetrics::new())
    }

    /// [`InvertedIndex::dstq`] with execution counters. The candidate path
    /// tallies list scans and random-access verifications; the scan
    /// fallback tallies `heap_tuples_scanned` — so the counters show
    /// *which* of the two plans answered the query.
    pub fn dstq_metered(
        &self,
        pool: &mut BufferPool,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        let overlap_bound = match query.divergence {
            Divergence::L1 => query.q.mass(),
            Divergence::L2 => query
                .q
                .iter()
                .map(|(_, p)| (p as f64) * (p as f64))
                .sum::<f64>()
                .sqrt(),
            Divergence::Kl => 0.0, // never candidate-prunable
        };
        if query.divergence.is_metric() && query.tau_d < overlap_bound {
            self.dstq_candidates(pool, query, metrics)
        } else {
            self.dstq_scan(pool, query, metrics)
        }
    }

    /// Candidate generation from the query's posting lists + verification.
    fn dstq_candidates(
        &self,
        pool: &mut BufferPool,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        let mut candidates: HashSet<u64> = HashSet::new();
        let scan = pool.trace_begin(Phase::PostingScan);
        for (_cat, _qp, list) in query_lists(self, &query.q) {
            metrics.lists_opened += 1;
            list.scan_all(self.block_heap(), pool, metrics, |tid, _p| {
                candidates.insert(tid);
            })?;
        }
        pool.trace_end(scan);
        metrics.candidates_generated += candidates.len() as u64;
        let mut out = Vec::new();
        let verify = pool.trace_begin(Phase::Verification);
        for tid in candidates {
            let t = self.get_tuple(pool, tid)?.ok_or(StorageError::Corrupt(
                "posting refers to an unindexed tuple",
            ))?;
            metrics.candidates_verified += 1;
            let d = query.divergence.eval(query.q.entries(), t.entries());
            if d <= query.tau_d {
                out.push(Match::new(tid, d));
            }
        }
        pool.trace_end(verify);
        sort_matches_asc(&mut out);
        Ok(out)
    }

    /// DSQ-top-k: the `k` distributionally closest tuples, ascending by
    /// divergence.
    ///
    /// First tries the query's posting lists: if the k-th best candidate
    /// distance is already below the divergence any *non-overlapping*
    /// tuple could reach (`mass(q)` for L1, `‖q‖₂` for L2), the candidate
    /// answer is complete. Otherwise — wide radius or KL — a full
    /// tuple-store scan resolves the query exactly.
    pub fn ds_top_k(&self, pool: &mut BufferPool, query: &DsTopKQuery) -> Result<Vec<Match>> {
        self.ds_top_k_metered(pool, query, &mut QueryMetrics::new())
    }

    /// [`InvertedIndex::ds_top_k`] with execution counters (same
    /// conventions as [`InvertedIndex::dstq_metered`]; when the candidate
    /// answer is incomplete, both the candidate counters *and* the
    /// fallback's `heap_tuples_scanned` are populated — the query really
    /// did both).
    pub fn ds_top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &DsTopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        if query.k == 0 {
            return Ok(Vec::new());
        }
        let disjoint_floor = match query.divergence {
            Divergence::L1 => query.q.mass(),
            Divergence::L2 => query
                .q
                .iter()
                .map(|(_, p)| (p as f64) * (p as f64))
                .sum::<f64>()
                .sqrt(),
            Divergence::Kl => f64::NEG_INFINITY, // candidates never suffice
        };
        if query.divergence.is_metric() {
            let mut candidates: HashSet<u64> = HashSet::new();
            let scan = pool.trace_begin(Phase::PostingScan);
            for (_cat, _qp, list) in query_lists(self, &query.q) {
                metrics.lists_opened += 1;
                list.scan_all(self.block_heap(), pool, metrics, |tid, _p| {
                    candidates.insert(tid);
                })?;
            }
            pool.trace_end(scan);
            metrics.candidates_generated += candidates.len() as u64;
            let mut heap = BottomKHeap::new(query.k);
            let verify = pool.trace_begin(Phase::Verification);
            for tid in candidates {
                let t = self.get_tuple(pool, tid)?.ok_or(StorageError::Corrupt(
                    "posting refers to an unindexed tuple",
                ))?;
                metrics.candidates_verified += 1;
                heap.offer(tid, query.divergence.eval(query.q.entries(), t.entries()));
            }
            pool.trace_end(verify);
            if heap.is_full() && heap.bound() < disjoint_floor {
                return Ok(heap.into_sorted());
            }
        }
        // Fallback: exact scan.
        let mut heap = BottomKHeap::new(query.k);
        let scan = pool.trace_begin(Phase::HeapScan);
        self.scan_tuples(pool, |tid, t| {
            metrics.heap_tuples_scanned += 1;
            heap.offer(tid, query.divergence.eval(query.q.entries(), t.entries()));
        })?;
        pool.trace_end(scan);
        Ok(heap.into_sorted())
    }

    /// Full tuple-store scan fallback (always sound).
    fn dstq_scan(
        &self,
        pool: &mut BufferPool,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        let mut out = Vec::new();
        let scan = pool.trace_begin(Phase::HeapScan);
        self.scan_tuples(pool, |tid, t| {
            metrics.heap_tuples_scanned += 1;
            let d = query.divergence.eval(query.q.entries(), t.entries());
            if d <= query.tau_d {
                out.push(Match::new(tid, d));
            }
        })?;
        pool.trace_end(scan);
        sort_matches_asc(&mut out);
        Ok(out)
    }
}
