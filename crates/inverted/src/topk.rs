//! PEQ-top-k over the inverted index.
//!
//! "Top-k queries are executed essentially using threshold queries … by
//! dynamically adjusting the threshold τ to the k-th highest probability in
//! the current result set" (paper §2). The driver combines
//! highest-prob-first ordering with rank-join bounds: list heads are
//! drained most-promising-first while per-candidate lower bounds
//! accumulate; the live threshold θ is the k-th best lower bound, and
//! Lemma 1 stops the drain once `Σ_j q.p_j · p'_j < θ`. Only candidates
//! whose upper bound still reaches θ are verified by batched random
//! access.

use std::collections::{HashMap, HashSet};

use uncat_core::equality::{eq_prob, THRESHOLD_EPS};
use uncat_core::query::{Match, TopKQuery};
use uncat_core::topk::TopKHeap;
use uncat_storage::{BufferPool, Phase, QueryMetrics, Result, StorageError};

use crate::index::InvertedIndex;
use crate::search::Frontier;

/// Pops between θ refreshes.
const THETA_EVERY: usize = 64;

struct Cand {
    lb: f64,
    seen: u128,
}

impl InvertedIndex {
    /// The `k` tuples with the highest equality probability to `query.q`
    /// (only tuples with non-zero probability are returned), in canonical
    /// descending order.
    pub fn top_k(&self, pool: &mut BufferPool, query: &TopKQuery) -> Result<Vec<Match>> {
        self.top_k_metered(pool, query, &mut QueryMetrics::new())
    }

    /// [`InvertedIndex::top_k`] with execution counters (see
    /// [`InvertedIndex::petq_metered`] for the counting conventions). The
    /// dynamic-threshold stop is tallied as a `lemma1_stops`: it is Lemma 1
    /// with θ in place of τ.
    pub fn top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        self.top_k_floored_metered(pool, query, 0.0, metrics)
    }

    /// [`InvertedIndex::top_k_metered`] under an external score *floor*:
    /// the `k` best matches scoring at least `floor`. Callers that already
    /// hold `k` results at `floor` or better (the PEJ-top-k join) seed the
    /// dynamic threshold θ with it, so the drain stops once
    /// `Σ_j q.p_j · p'_j < max(θ, floor)` — never later than a plain top-k
    /// probe, and *before* `k` candidates exist when the frontier cannot
    /// reach the floor at all. Non-positive and non-finite floors degrade
    /// to a plain top-k.
    pub fn top_k_floored_metered(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        floor: f64,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        if query.k == 0 {
            return Ok(Vec::new());
        }
        let floor = if floor.is_finite() && floor > 0.0 {
            floor
        } else {
            0.0
        };
        let plan = pool.trace_begin(Phase::Plan);
        let mut frontier = Frontier::open(self, pool, &query.q, metrics)?;
        pool.trace_end(plan);
        if frontier.len() > 128 {
            // Nothing decoded yet: the whole frontier counts as skipped
            // before the fallback opens its own.
            frontier.account_skips(metrics);
            return self.top_k_random_access(pool, query, floor, metrics);
        }

        let mut cand: HashMap<u64, Cand> = HashMap::new();
        let mut theta = floor; // max(floor, k-th best lower bound so far)
        let mut pops = 0usize;
        let mut next_refresh = THETA_EVERY;

        let drain = pool.trace_begin(Phase::FrontierMaintenance);
        loop {
            // Lemma 1 with the dynamic threshold: an unseen tuple is
            // bounded by the frontier sum (an over-estimate while bound
            // heads are live, so the stop is conservative); once that
            // cannot reach the k-th best lower bound, the candidate set
            // is complete — and blocks whose maximum cannot beat θ/floor
            // are leapt over without decoding (the check runs *before*
            // `best()`, which is what force-decodes). A positive floor
            // makes the stop valid even before k candidates exist:
            // nothing the frontier can still produce reaches the floor.
            if (cand.len() >= query.k || floor > 0.0) && frontier.sum() < theta - THRESHOLD_EPS {
                if !frontier.all_exhausted() {
                    metrics.lemma1_stops += 1;
                }
                break;
            }
            let Some((j, tid, c)) = frontier.best(pool, metrics)? else {
                break;
            };
            let e = cand.entry(tid).or_insert(Cand { lb: 0.0, seen: 0 });
            e.lb += c;
            e.seen |= 1u128 << j;
            frontier.advance(pool, j, metrics)?;

            pops += 1;
            // Refreshing θ costs a pass over the candidate map, so the
            // interval scales with its size (dense data accumulates
            // hundreds of thousands of candidates).
            if pops >= next_refresh {
                next_refresh = pops + THETA_EVERY.max(cand.len() / 4);
                if cand.len() >= query.k {
                    theta = kth_largest(cand.values().map(|c| c.lb), query.k).max(floor);
                }
            }
        }

        // Final bounds with the residual frontier (zero where exhausted;
        // bound heads report their block maximum, keeping upper bounds
        // conservative).
        pool.trace_end(drain);
        let heads = frontier.residual();
        let all_exhausted = frontier.all_exhausted();
        frontier.account_skips(metrics);
        theta = if cand.len() >= query.k {
            kth_largest(cand.values().map(|c| c.lb), query.k).max(floor)
        } else {
            floor
        };

        // Split finalists into settled (lb already exact) and unsettled.
        metrics.candidates_generated += cand.len() as u64;
        let mut settled: Vec<(u64, f64)> = Vec::new();
        let mut unsettled: Vec<u64> = Vec::new();
        for (tid, c) in &cand {
            let remaining: f64 = heads
                .iter()
                .enumerate()
                .filter(|&(j, _)| c.seen & (1u128 << j) == 0)
                .map(|(_, &h)| h)
                .sum();
            let ub = c.lb + remaining;
            if ub < theta - THRESHOLD_EPS {
                metrics.candidates_pruned += 1;
                continue; // cannot make the top k
            }
            if all_exhausted || remaining == 0.0 {
                settled.push((*tid, c.lb));
            } else {
                unsettled.push(*tid);
            }
        }
        metrics.candidates_settled += settled.len() as u64;

        let mut heap = TopKHeap::new(query.k, floor);
        // Unsettled finalists need one random access each; sorting by heap
        // page batches candidates sharing a page into one read.
        let verify = pool.trace_begin(Phase::Verification);
        for tid in crate::search::sorted_by_page(self, unsettled)? {
            let t = self.get_tuple(pool, tid)?.ok_or(StorageError::Corrupt(
                "posting refers to an unindexed tuple",
            ))?;
            metrics.candidates_verified += 1;
            let pr = eq_prob(&query.q, &t);
            if pr > 0.0 {
                heap.offer(tid, pr);
            }
        }
        pool.trace_end(verify);
        for (tid, pr) in settled {
            if pr > 0.0 {
                heap.offer(tid, pr);
            }
        }
        Ok(heap.into_sorted())
    }

    /// Fallback for queries wider than the bound mask: verify every
    /// encountered candidate by random access. The heap's threshold is
    /// `floor` until it fills, so a positive floor prunes from the first
    /// pop.
    fn top_k_random_access(
        &self,
        pool: &mut BufferPool,
        query: &TopKQuery,
        floor: f64,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        let plan = pool.trace_begin(Phase::Plan);
        let mut frontier = Frontier::open(self, pool, &query.q, metrics)?;
        pool.trace_end(plan);
        let drain = pool.trace_begin(Phase::FrontierMaintenance);
        let mut heap = TopKHeap::new(query.k, floor);
        let mut verified: HashSet<u64> = HashSet::new();
        loop {
            if (heap.is_full() || floor > 0.0) && frontier.sum() < heap.threshold() - THRESHOLD_EPS
            {
                if !frontier.all_exhausted() {
                    metrics.lemma1_stops += 1;
                }
                break;
            }
            let Some((j, tid, _c)) = frontier.best(pool, metrics)? else {
                break;
            };
            if verified.insert(tid) {
                let t = self.get_tuple(pool, tid)?.ok_or(StorageError::Corrupt(
                    "posting refers to an unindexed tuple",
                ))?;
                metrics.candidates_generated += 1;
                metrics.candidates_verified += 1;
                let pr = eq_prob(&query.q, &t);
                if pr > 0.0 {
                    heap.offer(tid, pr);
                }
            }
            frontier.advance(pool, j, metrics)?;
        }
        frontier.account_skips(metrics);
        pool.trace_end(drain);
        Ok(heap.into_sorted())
    }
}

/// The k-th largest value of an iterator (0 when fewer than k values).
/// Ordering is total even for NaN inputs (`f64::total_cmp`): a corrupt
/// page that yields a NaN bound must degrade that one query, not panic
/// the process.
fn kth_largest(values: impl Iterator<Item = f64>, k: usize) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.len() < k {
        return 0.0;
    }
    let idx = k - 1;
    v.select_nth_unstable_by(idx, |a, b| b.total_cmp(a));
    v[idx]
}

#[cfg(test)]
mod tests {
    use super::kth_largest;

    #[test]
    fn kth_largest_tolerates_nan_without_panicking() {
        // total_cmp ranks a positive NaN above every finite value; the
        // important property is that a corrupt bound cannot panic the
        // selection, and finite inputs are unaffected.
        let vals = [0.3, f64::NAN, 0.9, 0.1];
        assert!(kth_largest(vals.iter().copied(), 1).is_nan());
        assert_eq!(kth_largest(vals.iter().copied(), 2), 0.9);
        assert_eq!(kth_largest(vals.iter().copied(), 4), 0.1);
        assert_eq!(kth_largest([0.5].iter().copied(), 2), 0.0);
    }
}
