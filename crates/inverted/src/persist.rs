//! Metadata snapshots: close an inverted index and reopen it later over
//! the same (durable) page store.
//!
//! Page contents — posting nodes, block payloads, and heap pages — live
//! in the store and are durable by themselves (e.g. behind a
//! [`uncat_storage::FileDisk`]). What must be remembered across a restart
//! is the in-memory metadata: the posting directory, the heap page
//! lists, and the tuple-id → record map. [`InvertedIndex::snapshot`]
//! serializes exactly that; the blob is small (tens of bytes per
//! category plus ~18 bytes per tuple plus 22 bytes per posting block).
//! [`InvertedIndex::save`] wraps it in the crash-atomic snapshot file
//! protocol (`uncat_storage::snapshot::commit`): a torn or corrupted save
//! is detected on [`InvertedIndex::load`] and the previous file survives
//! untouched.
//!
//! Two snapshot versions exist (byte-level spec in `docs/FORMAT.md`):
//!
//! * `UIV1` — raw B-tree posting lists, written by pre-block builds and
//!   still written for [`PostingFormat::Raw`] indexes. Loading one
//!   yields a raw-format index, so old snapshots keep working untouched.
//! * `UIV2` — block posting lists: adds the block heap's page list and,
//!   per category, the block directory (separator key, count, quantized
//!   maximum, payload record).
//!
//! [`InvertedIndex::open`] dispatches on the magic, so callers never
//! care which version a blob is.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;

use uncat_core::{CatId, Domain};
use uncat_storage::snapshot::{
    self, read_domain_parts, write_domain_parts, Reader, SnapshotError, Writer,
};
use uncat_storage::{HeapFile, PageId, RecordId, SnapshotFileError};

use crate::block::{BlockList, BlockMeta};
use crate::index::{InvertedIndex, PostingFormat};
use crate::postings::{PostingList, PostingTree, KEY_LEN};

const MAGIC_V1: &[u8; 4] = b"UIV1";
const MAGIC_V2: &[u8; 4] = b"UIV2";

/// Bytes per serialized rid-map entry (tid + page + slot); used to clamp
/// pre-allocation against the bytes actually present.
const RID_ENTRY_LEN: usize = 8 + 8 + 2;

/// Bytes per serialized block directory entry
/// (sep + count + max_q + page + slot).
const BLOCK_META_LEN: usize = 8 + 2 + 2 + 8 + 2;

/// Serialize a domain (labels or anonymous cardinality).
pub(crate) fn write_domain(w: &mut Writer, d: &Domain) {
    let labels = d.is_labeled().then(|| d.labels());
    write_domain_parts(w, d.size(), labels);
}

pub(crate) fn read_domain(r: &mut Reader<'_>) -> Result<Domain, SnapshotError> {
    let (size, labels) = read_domain_parts(r)?;
    Ok(match labels {
        Some(l) => Domain::from_labels(l),
        None => Domain::anonymous(size),
    })
}

impl InvertedIndex {
    /// Serialize the index's metadata — `UIV1` for raw-format indexes
    /// (bit-compatible with pre-block snapshots), `UIV2` for block
    /// format. Pair with a flushed store: call `pool.flush()` first so
    /// every page this metadata references is durable.
    ///
    /// `UIV2` blobs carry the planner's cost-statistics section after
    /// the posting directory; readers treat it as optional, so
    /// pre-stats `UIV2` snapshots keep loading (stats are then rebuilt
    /// lazily — see `docs/FORMAT.md` §10).
    pub fn snapshot(&self) -> Vec<u8> {
        self.snapshot_inner(true)
    }

    /// [`InvertedIndex::snapshot`] without the cost-statistics section —
    /// the pre-stats `UIV2` byte layout. Exists so compatibility tests
    /// can exercise the lazy-rebuild path against snapshots produced by
    /// older builds; not for production use.
    #[doc(hidden)]
    pub fn snapshot_without_stats(&self) -> Vec<u8> {
        self.snapshot_inner(false)
    }

    fn snapshot_inner(&self, with_stats: bool) -> Vec<u8> {
        let mut w = Writer::new(match self.format() {
            PostingFormat::Raw => MAGIC_V1,
            PostingFormat::Blocks => MAGIC_V2,
        });
        write_domain(&mut w, self.domain());

        let (heap_pages, records) = self.heap_parts();
        w.u32(heap_pages.len() as u32);
        for &p in heap_pages {
            w.pid(p);
        }
        w.u64(records);

        // The live map is hashed; serialize in tid order so identical
        // indexes produce identical bytes (save → load → save is the
        // identity, which persistence tests pin).
        let rids = self.rid_map();
        let mut ordered: Vec<(&u64, &RecordId)> = rids.iter().collect();
        ordered.sort_unstable_by_key(|(tid, _)| **tid);
        w.u64(ordered.len() as u64);
        for (&tid, rid) in ordered {
            w.u64(tid);
            w.pid(rid.page);
            w.u16(rid.slot);
        }

        if self.format() == PostingFormat::Blocks {
            let (block_pages, block_records) = self.block_heap_parts();
            w.u32(block_pages.len() as u32);
            for &p in block_pages {
                w.pid(p);
            }
            w.u64(block_records);
        }

        let postings = self.posting_map();
        w.u32(postings.len() as u32);
        for (cat, list) in postings {
            w.u32(cat.0);
            match list {
                PostingList::Tree(tree) => {
                    let (root, len, depth) = tree.raw_parts();
                    w.pid(root);
                    w.u64(len);
                    w.u32(depth);
                }
                PostingList::Blocks(blocks) => {
                    w.u64(blocks.len());
                    w.u32(blocks.blocks().len() as u32);
                    for b in blocks.blocks() {
                        w.u64(u64::from_be_bytes(b.sep));
                        w.u16(b.count);
                        w.u16(b.max_q);
                        w.pid(b.rid.page);
                        w.u16(b.rid.slot);
                    }
                }
            }
        }
        if with_stats && self.format() == PostingFormat::Blocks {
            crate::cost::write_cost_stats(&mut w, self.cost_stats());
        }
        w.finish()
    }

    /// Reattach an index from a snapshot over the same store. Both
    /// snapshot versions load (`UIV1` yields a raw-format index).
    pub fn open(blob: &[u8]) -> Result<InvertedIndex, SnapshotError> {
        if blob.starts_with(MAGIC_V2) {
            InvertedIndex::open_v2(blob)
        } else {
            InvertedIndex::open_v1(blob)
        }
    }

    fn open_v1(blob: &[u8]) -> Result<InvertedIndex, SnapshotError> {
        let mut r = Reader::new(blob, MAGIC_V1)?;
        let domain = read_domain(&mut r)?;
        let (heap, rids) = read_store_parts(&mut r)?;

        let n_lists = r.u32()? as usize;
        let mut postings: BTreeMap<CatId, PostingList> = BTreeMap::new();
        for _ in 0..n_lists {
            let cat = CatId(r.u32()?);
            let root: PageId = r.pid()?;
            let len = r.u64()?;
            let depth = r.u32()?;
            postings.insert(
                cat,
                PostingList::Tree(PostingTree::from_raw_parts(root, len, depth)),
            );
        }
        if !r.is_done() {
            return Err(SnapshotError("trailing bytes"));
        }
        Ok(InvertedIndex::from_parts(
            domain,
            PostingFormat::Raw,
            postings,
            heap,
            HeapFile::new(),
            rids,
        ))
    }

    fn open_v2(blob: &[u8]) -> Result<InvertedIndex, SnapshotError> {
        let mut r = Reader::new(blob, MAGIC_V2)?;
        let domain = read_domain(&mut r)?;
        let (heap, rids) = read_store_parts(&mut r)?;

        let n_block_pages = r.u32()? as usize;
        let mut block_pages = Vec::with_capacity(n_block_pages.min(r.remaining() / 8 + 1));
        for _ in 0..n_block_pages {
            block_pages.push(r.pid()?);
        }
        let block_records = r.u64()?;
        let block_heap = HeapFile::from_raw_parts(block_pages, block_records);

        let n_lists = r.u32()? as usize;
        let mut postings: BTreeMap<CatId, PostingList> = BTreeMap::new();
        for _ in 0..n_lists {
            let cat = CatId(r.u32()?);
            let entries = r.u64()?;
            let n_blocks = r.u32()? as usize;
            let mut blocks: Vec<BlockMeta> =
                Vec::with_capacity(n_blocks.min(r.remaining() / BLOCK_META_LEN + 1));
            let mut counted = 0u64;
            for _ in 0..n_blocks {
                let sep: [u8; KEY_LEN] = r.u64()?.to_be_bytes();
                let count = r.u16()?;
                let max_q = r.u16()?;
                let page = r.pid()?;
                let slot = r.u16()?;
                counted += count as u64;
                blocks.push(BlockMeta {
                    sep,
                    count,
                    max_q,
                    rid: RecordId { page, slot },
                });
            }
            if counted != entries {
                return Err(SnapshotError("block directory counts disagree"));
            }
            postings.insert(
                cat,
                PostingList::Blocks(BlockList::from_raw_parts(blocks, entries)),
            );
        }
        // Optional cost-statistics section: snapshots written before the
        // planner existed end here, and load with statistics rebuilt
        // lazily on first use. When the section is present it must be
        // the last thing in the blob.
        let stats = if r.is_done() {
            None
        } else {
            let stats = crate::cost::read_cost_stats(&mut r)?;
            if !r.is_done() {
                return Err(SnapshotError("trailing bytes"));
            }
            Some(stats)
        };
        let idx = InvertedIndex::from_parts(
            domain,
            PostingFormat::Blocks,
            postings,
            heap,
            block_heap,
            rids,
        );
        if let Some(stats) = stats {
            idx.preset_cost_stats(stats);
        }
        Ok(idx)
    }

    /// Commit the metadata snapshot to `path` atomically (temp file,
    /// fsync, rename): a crash mid-save leaves the previous snapshot
    /// loadable. Flush the page store first.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotFileError> {
        snapshot::commit(path, &self.snapshot())
    }

    /// Load an index saved by [`InvertedIndex::save`]. Truncated, corrupt,
    /// or wrong-version files are rejected with a typed error.
    pub fn load(path: &Path) -> Result<InvertedIndex, SnapshotFileError> {
        let payload = snapshot::load(path)?;
        Ok(InvertedIndex::open(&payload)?)
    }
}

/// The tuple-store sections shared by both snapshot versions: heap page
/// list + record count, then the rid map.
fn read_store_parts(
    r: &mut Reader<'_>,
) -> Result<(HeapFile, HashMap<u64, RecordId>), SnapshotError> {
    let n_pages = r.u32()? as usize;
    // Untrusted count: clamp pre-allocation to what the blob can hold.
    let mut pages = Vec::with_capacity(n_pages.min(r.remaining() / 8 + 1));
    for _ in 0..n_pages {
        pages.push(r.pid()?);
    }
    let records = r.u64()?;
    let heap = HeapFile::from_raw_parts(pages, records);

    let n_rids = r.u64()? as usize;
    let mut rids: HashMap<u64, RecordId> =
        HashMap::with_capacity(n_rids.min(r.remaining() / RID_ENTRY_LEN + 1));
    for _ in 0..n_rids {
        let tid = r.u64()?;
        let page = r.pid()?;
        let slot = r.u16()?;
        rids.insert(tid, RecordId { page, slot });
    }
    Ok((heap, rids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_core::query::EqQuery;
    use uncat_core::Uda;
    use uncat_storage::{BufferPool, FileDisk, InMemoryDisk};

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries() {
        let store = InMemoryDisk::shared();
        let data: Vec<(u64, Uda)> = (0..300u64)
            .map(|i| {
                let c = (i % 7) as u32;
                (i, uda(&[(c, 0.6), ((c + 1) % 7, 0.4)]))
            })
            .collect();
        let blob = {
            let mut pool = BufferPool::with_capacity(store.clone(), 100);
            let idx = InvertedIndex::build(
                Domain::anonymous(7),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .unwrap();
            pool.flush().unwrap();
            idx.snapshot()
        };
        assert!(blob.starts_with(MAGIC_V2), "default build snapshots as v2");

        let reopened = InvertedIndex::open(&blob).expect("snapshot decodes");
        assert_eq!(reopened.len(), 300);
        assert_eq!(reopened.format(), PostingFormat::Blocks);
        let mut pool = BufferPool::with_capacity(store, 100);
        let q = EqQuery::new(uda(&[(0, 1.0)]), 0.3);
        let out = reopened.petq(&mut pool, &q, crate::Strategy::Nra).unwrap();
        assert!(!out.is_empty());
        for m in &out {
            let t = reopened
                .get_tuple(&mut pool, m.tid)
                .unwrap()
                .expect("tuple readable");
            assert!((uncat_core::equality::eq_prob(&q.q, &t) - m.score).abs() < 1e-9);
        }
        assert!(reopened.check_invariants(&mut pool).unwrap() == 300);
    }

    #[test]
    fn raw_format_snapshots_as_v1_and_loads_back_raw() {
        let store = InMemoryDisk::shared();
        let data: Vec<(u64, Uda)> = (0..200u64)
            .map(|i| (i, uda(&[((i % 5) as u32, 1.0)])))
            .collect();
        let blob = {
            let mut pool = BufferPool::with_capacity(store.clone(), 100);
            let idx = InvertedIndex::build_with_format(
                Domain::anonymous(5),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
                PostingFormat::Raw,
            )
            .unwrap();
            pool.flush().unwrap();
            idx.snapshot()
        };
        // Raw indexes write the v1 format — byte-compatible with
        // pre-block snapshots, so legacy files keep loading.
        assert!(blob.starts_with(MAGIC_V1));
        let reopened = InvertedIndex::open(&blob).expect("v1 decodes");
        assert_eq!(reopened.format(), PostingFormat::Raw);
        let mut pool = BufferPool::with_capacity(store, 100);
        let out = reopened
            .petq(
                &mut pool,
                &EqQuery::new(uda(&[(2, 1.0)]), 0.9),
                crate::Strategy::ColumnPruning,
            )
            .unwrap();
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn snapshot_roundtrip_with_labeled_domain() {
        let store = InMemoryDisk::shared();
        let domain = Domain::from_labels(["Brake", "Tires"]);
        let blob = {
            let mut pool = BufferPool::with_capacity(store.clone(), 16);
            let mut idx = InvertedIndex::new(domain);
            idx.insert(&mut pool, 1, &uda(&[(0, 1.0)])).unwrap();
            pool.flush().unwrap();
            idx.snapshot()
        };
        let reopened = InvertedIndex::open(&blob).expect("snapshot decodes");
        assert_eq!(reopened.domain().label_of(CatId(1)), Some("Tires"));
        assert_eq!(reopened.len(), 1);
    }

    #[test]
    fn save_load_roundtrip_over_a_real_file() {
        let dir = std::env::temp_dir();
        let pages = dir.join(format!("uncat-inv-persist-{}.pages", std::process::id()));
        let snap = dir.join(format!("uncat-inv-persist-{}.snap", std::process::id()));
        struct Cleanup(Vec<std::path::PathBuf>);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                for p in &self.0 {
                    let _ = std::fs::remove_file(p);
                }
            }
        }
        let _guard = Cleanup(vec![pages.clone(), snap.clone()]);

        let data: Vec<(u64, Uda)> = (0..100u64)
            .map(|i| (i, uda(&[((i % 5) as u32, 1.0)])))
            .collect();
        {
            let store: uncat_storage::SharedStore =
                std::sync::Arc::new(FileDisk::create(&pages).expect("create"));
            let mut pool = BufferPool::with_capacity(store, 64);
            let idx = InvertedIndex::build(
                Domain::anonymous(5),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .unwrap();
            pool.flush().unwrap();
            idx.save(&snap).expect("atomic snapshot commit");
        }
        // Process "restart": reopen the page file and the snapshot file.
        let store: uncat_storage::SharedStore =
            std::sync::Arc::new(FileDisk::open(&pages).expect("open"));
        let idx = InvertedIndex::load(&snap).expect("snapshot loads");
        let mut pool = BufferPool::with_capacity(store, 64);
        let out = idx
            .petq(
                &mut pool,
                &EqQuery::new(uda(&[(2, 1.0)]), 0.9),
                crate::Strategy::ColumnPruning,
            )
            .unwrap();
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn garbage_blob_rejected() {
        assert!(InvertedIndex::open(b"nope").is_err());
        assert!(
            InvertedIndex::open(b"UIV1").is_err(),
            "truncated after magic"
        );
        assert!(
            InvertedIndex::open(b"UIV2").is_err(),
            "truncated after magic"
        );
    }

    #[test]
    fn ballooned_counts_cannot_exhaust_memory() {
        // A snapshot claiming u32::MAX heap pages must fail cleanly (the
        // clamp keeps pre-allocation at the blob's actual size).
        for magic in [MAGIC_V1, MAGIC_V2] {
            let mut w = Writer::new(magic);
            write_domain(&mut w, &Domain::anonymous(3));
            w.u32(u32::MAX); // heap page count
            let blob = w.finish();
            assert!(InvertedIndex::open(&blob).is_err());
        }
    }

    #[test]
    fn v2_rejects_directory_count_mismatch() {
        // A v2 list whose block counts do not sum to its entry count is
        // corrupt metadata, not a usable index.
        let mut w = Writer::new(MAGIC_V2);
        write_domain(&mut w, &Domain::anonymous(2));
        w.u32(0); // heap pages
        w.u64(0); // heap records
        w.u64(0); // rids
        w.u32(0); // block-heap pages
        w.u64(0); // block-heap records
        w.u32(1); // one list
        w.u32(0); // cat
        w.u64(5); // claims 5 entries...
        w.u32(1); // ...in one block...
        w.u64(0); // sep
        w.u16(2); // ...of 2 (mismatch)
        w.u16(100);
        w.pid(PageId(0));
        w.u16(0);
        let blob = w.finish();
        assert!(InvertedIndex::open(&blob).is_err());
    }
}
