//! Metadata snapshots: close an inverted index and reopen it later over
//! the same (durable) page store.
//!
//! Page contents — posting nodes and heap pages — live in the store and
//! are durable by themselves (e.g. behind a
//! [`uncat_storage::FileDisk`]). What must be remembered across a restart
//! is the in-memory metadata: the posting directory (category → B+tree
//! root), the heap's page list, and the tuple-id → record map.
//! [`InvertedIndex::snapshot`] serializes exactly that; the blob is small
//! (tens of bytes per category plus ~18 bytes per tuple) and the caller
//! stores it wherever convenient — typically a sidecar file next to the
//! page file.

use std::collections::{BTreeMap, HashMap};

use uncat_core::{CatId, Domain};
use uncat_storage::snapshot::{Reader, SnapshotError, Writer};
use uncat_storage::{HeapFile, PageId, RecordId};

use crate::index::InvertedIndex;
use crate::postings::PostingTree;

const MAGIC: &[u8; 4] = b"UIV1";

/// Serialize a domain (labels or anonymous cardinality).
pub(crate) fn write_domain(w: &mut Writer, d: &Domain) {
    if d.is_labeled() {
        w.u8(1);
        w.u32(d.size());
        for l in d.labels() {
            w.str(l);
        }
    } else {
        w.u8(0);
        w.u32(d.size());
    }
}

pub(crate) fn read_domain(r: &mut Reader<'_>) -> Result<Domain, SnapshotError> {
    let labeled = r.u8()? == 1;
    let size = r.u32()?;
    if labeled {
        let mut labels = Vec::with_capacity(size as usize);
        for _ in 0..size {
            labels.push(r.str()?);
        }
        Ok(Domain::from_labels(labels))
    } else {
        Ok(Domain::anonymous(size))
    }
}

impl InvertedIndex {
    /// Serialize the index's metadata. Pair with a flushed store: call
    /// `pool.flush()` first so every page this metadata references is
    /// durable.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new(MAGIC);
        write_domain(&mut w, self.domain());

        let (heap_pages, records) = self.heap_parts();
        w.u32(heap_pages.len() as u32);
        for &p in heap_pages {
            w.pid(p);
        }
        w.u64(records);

        let rids = self.rid_map();
        w.u64(rids.len() as u64);
        for (&tid, rid) in rids {
            w.u64(tid);
            w.pid(rid.page);
            w.u16(rid.slot);
        }

        let postings = self.posting_map();
        w.u32(postings.len() as u32);
        for (cat, tree) in postings {
            w.u32(cat.0);
            let (root, len, depth) = tree.raw_parts();
            w.pid(root);
            w.u64(len);
            w.u32(depth);
        }
        w.finish()
    }

    /// Reattach an index from a snapshot over the same store.
    pub fn open(blob: &[u8]) -> Result<InvertedIndex, SnapshotError> {
        let mut r = Reader::new(blob, MAGIC)?;
        let domain = read_domain(&mut r)?;

        let n_pages = r.u32()? as usize;
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            pages.push(r.pid()?);
        }
        let records = r.u64()?;
        let heap = HeapFile::from_raw_parts(pages, records);

        let n_rids = r.u64()? as usize;
        let mut rids: HashMap<u64, RecordId> = HashMap::with_capacity(n_rids);
        for _ in 0..n_rids {
            let tid = r.u64()?;
            let page = r.pid()?;
            let slot = r.u16()?;
            rids.insert(tid, RecordId { page, slot });
        }

        let n_lists = r.u32()? as usize;
        let mut postings: BTreeMap<CatId, PostingTree> = BTreeMap::new();
        for _ in 0..n_lists {
            let cat = CatId(r.u32()?);
            let root: PageId = r.pid()?;
            let len = r.u64()?;
            let depth = r.u32()?;
            postings.insert(cat, PostingTree::from_raw_parts(root, len, depth));
        }
        if !r.is_done() {
            return Err(SnapshotError("trailing bytes"));
        }
        Ok(InvertedIndex::from_parts(domain, postings, heap, rids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_core::query::EqQuery;
    use uncat_core::Uda;
    use uncat_storage::{BufferPool, FileDisk, InMemoryDisk};

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries() {
        let store = InMemoryDisk::shared();
        let data: Vec<(u64, Uda)> = (0..300u64)
            .map(|i| {
                let c = (i % 7) as u32;
                (i, uda(&[(c, 0.6), ((c + 1) % 7, 0.4)]))
            })
            .collect();
        let blob = {
            let mut pool = BufferPool::with_capacity(store.clone(), 100);
            let idx = InvertedIndex::build(
                Domain::anonymous(7),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            );
            pool.flush();
            idx.snapshot()
        };

        let reopened = InvertedIndex::open(&blob).expect("snapshot decodes");
        assert_eq!(reopened.len(), 300);
        let mut pool = BufferPool::with_capacity(store, 100);
        let q = EqQuery::new(uda(&[(0, 1.0)]), 0.3);
        let out = reopened.petq(&mut pool, &q, crate::Strategy::Nra);
        assert!(!out.is_empty());
        for m in &out {
            let t = reopened.get_tuple(&mut pool, m.tid).expect("tuple readable");
            assert!((uncat_core::equality::eq_prob(&q.q, &t) - m.score).abs() < 1e-9);
        }
    }

    #[test]
    fn snapshot_roundtrip_with_labeled_domain() {
        let store = InMemoryDisk::shared();
        let domain = Domain::from_labels(["Brake", "Tires"]);
        let blob = {
            let mut pool = BufferPool::with_capacity(store.clone(), 16);
            let mut idx = InvertedIndex::new(domain);
            idx.insert(&mut pool, 1, &uda(&[(0, 1.0)]));
            pool.flush();
            idx.snapshot()
        };
        let reopened = InvertedIndex::open(&blob).expect("snapshot decodes");
        assert_eq!(reopened.domain().label_of(CatId(1)), Some("Tires"));
        assert_eq!(reopened.len(), 1);
    }

    #[test]
    fn snapshot_survives_a_real_file() {
        let mut path = std::env::temp_dir();
        path.push(format!("uncat-inv-persist-{}.pages", std::process::id()));
        struct Cleanup(std::path::PathBuf);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
        let _guard = Cleanup(path.clone());

        let data: Vec<(u64, Uda)> =
            (0..100u64).map(|i| (i, uda(&[((i % 5) as u32, 1.0)]))).collect();
        let blob = {
            let store: uncat_storage::SharedStore =
                std::sync::Arc::new(FileDisk::create(&path).expect("create"));
            let mut pool = BufferPool::with_capacity(store, 64);
            let idx = InvertedIndex::build(
                Domain::anonymous(5),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            );
            pool.flush();
            idx.snapshot()
        };
        // Process "restart": reopen the file and the snapshot.
        let store: uncat_storage::SharedStore =
            std::sync::Arc::new(FileDisk::open(&path).expect("open"));
        let idx = InvertedIndex::open(&blob).expect("snapshot decodes");
        let mut pool = BufferPool::with_capacity(store, 64);
        let out = idx.petq(
            &mut pool,
            &EqQuery::new(uda(&[(2, 1.0)]), 0.9),
            crate::Strategy::ColumnPruning,
        );
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn garbage_blob_rejected() {
        assert!(InvertedIndex::open(b"nope").is_err());
        assert!(InvertedIndex::open(b"UIV1").is_err(), "truncated after magic");
    }
}
