//! Metadata snapshots: close an inverted index and reopen it later over
//! the same (durable) page store.
//!
//! Page contents — posting nodes and heap pages — live in the store and
//! are durable by themselves (e.g. behind a
//! [`uncat_storage::FileDisk`]). What must be remembered across a restart
//! is the in-memory metadata: the posting directory (category → B+tree
//! root), the heap's page list, and the tuple-id → record map.
//! [`InvertedIndex::snapshot`] serializes exactly that; the blob is small
//! (tens of bytes per category plus ~18 bytes per tuple).
//! [`InvertedIndex::save`] wraps it in the crash-atomic snapshot file
//! protocol (`uncat_storage::snapshot::commit`): a torn or corrupted save
//! is detected on [`InvertedIndex::load`] and the previous file survives
//! untouched.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;

use uncat_core::{CatId, Domain};
use uncat_storage::snapshot::{
    self, read_domain_parts, write_domain_parts, Reader, SnapshotError, Writer,
};
use uncat_storage::{HeapFile, PageId, RecordId, SnapshotFileError};

use crate::index::InvertedIndex;
use crate::postings::PostingTree;

const MAGIC: &[u8; 4] = b"UIV1";

/// Bytes per serialized rid-map entry (tid + page + slot); used to clamp
/// pre-allocation against the bytes actually present.
const RID_ENTRY_LEN: usize = 8 + 8 + 2;

/// Serialize a domain (labels or anonymous cardinality).
pub(crate) fn write_domain(w: &mut Writer, d: &Domain) {
    let labels = d.is_labeled().then(|| d.labels());
    write_domain_parts(w, d.size(), labels);
}

pub(crate) fn read_domain(r: &mut Reader<'_>) -> Result<Domain, SnapshotError> {
    let (size, labels) = read_domain_parts(r)?;
    Ok(match labels {
        Some(l) => Domain::from_labels(l),
        None => Domain::anonymous(size),
    })
}

impl InvertedIndex {
    /// Serialize the index's metadata. Pair with a flushed store: call
    /// `pool.flush()` first so every page this metadata references is
    /// durable.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new(MAGIC);
        write_domain(&mut w, self.domain());

        let (heap_pages, records) = self.heap_parts();
        w.u32(heap_pages.len() as u32);
        for &p in heap_pages {
            w.pid(p);
        }
        w.u64(records);

        let rids = self.rid_map();
        w.u64(rids.len() as u64);
        for (&tid, rid) in rids {
            w.u64(tid);
            w.pid(rid.page);
            w.u16(rid.slot);
        }

        let postings = self.posting_map();
        w.u32(postings.len() as u32);
        for (cat, tree) in postings {
            w.u32(cat.0);
            let (root, len, depth) = tree.raw_parts();
            w.pid(root);
            w.u64(len);
            w.u32(depth);
        }
        w.finish()
    }

    /// Reattach an index from a snapshot over the same store.
    pub fn open(blob: &[u8]) -> Result<InvertedIndex, SnapshotError> {
        let mut r = Reader::new(blob, MAGIC)?;
        let domain = read_domain(&mut r)?;

        let n_pages = r.u32()? as usize;
        // Untrusted count: clamp pre-allocation to what the blob can hold.
        let mut pages = Vec::with_capacity(n_pages.min(r.remaining() / 8 + 1));
        for _ in 0..n_pages {
            pages.push(r.pid()?);
        }
        let records = r.u64()?;
        let heap = HeapFile::from_raw_parts(pages, records);

        let n_rids = r.u64()? as usize;
        let mut rids: HashMap<u64, RecordId> =
            HashMap::with_capacity(n_rids.min(r.remaining() / RID_ENTRY_LEN + 1));
        for _ in 0..n_rids {
            let tid = r.u64()?;
            let page = r.pid()?;
            let slot = r.u16()?;
            rids.insert(tid, RecordId { page, slot });
        }

        let n_lists = r.u32()? as usize;
        let mut postings: BTreeMap<CatId, PostingTree> = BTreeMap::new();
        for _ in 0..n_lists {
            let cat = CatId(r.u32()?);
            let root: PageId = r.pid()?;
            let len = r.u64()?;
            let depth = r.u32()?;
            postings.insert(cat, PostingTree::from_raw_parts(root, len, depth));
        }
        if !r.is_done() {
            return Err(SnapshotError("trailing bytes"));
        }
        Ok(InvertedIndex::from_parts(domain, postings, heap, rids))
    }

    /// Commit the metadata snapshot to `path` atomically (temp file,
    /// fsync, rename): a crash mid-save leaves the previous snapshot
    /// loadable. Flush the page store first.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotFileError> {
        snapshot::commit(path, &self.snapshot())
    }

    /// Load an index saved by [`InvertedIndex::save`]. Truncated, corrupt,
    /// or wrong-version files are rejected with a typed error.
    pub fn load(path: &Path) -> Result<InvertedIndex, SnapshotFileError> {
        let payload = snapshot::load(path)?;
        Ok(InvertedIndex::open(&payload)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_core::query::EqQuery;
    use uncat_core::Uda;
    use uncat_storage::{BufferPool, FileDisk, InMemoryDisk};

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries() {
        let store = InMemoryDisk::shared();
        let data: Vec<(u64, Uda)> = (0..300u64)
            .map(|i| {
                let c = (i % 7) as u32;
                (i, uda(&[(c, 0.6), ((c + 1) % 7, 0.4)]))
            })
            .collect();
        let blob = {
            let mut pool = BufferPool::with_capacity(store.clone(), 100);
            let idx = InvertedIndex::build(
                Domain::anonymous(7),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .unwrap();
            pool.flush().unwrap();
            idx.snapshot()
        };

        let reopened = InvertedIndex::open(&blob).expect("snapshot decodes");
        assert_eq!(reopened.len(), 300);
        let mut pool = BufferPool::with_capacity(store, 100);
        let q = EqQuery::new(uda(&[(0, 1.0)]), 0.3);
        let out = reopened.petq(&mut pool, &q, crate::Strategy::Nra).unwrap();
        assert!(!out.is_empty());
        for m in &out {
            let t = reopened
                .get_tuple(&mut pool, m.tid)
                .unwrap()
                .expect("tuple readable");
            assert!((uncat_core::equality::eq_prob(&q.q, &t) - m.score).abs() < 1e-9);
        }
    }

    #[test]
    fn snapshot_roundtrip_with_labeled_domain() {
        let store = InMemoryDisk::shared();
        let domain = Domain::from_labels(["Brake", "Tires"]);
        let blob = {
            let mut pool = BufferPool::with_capacity(store.clone(), 16);
            let mut idx = InvertedIndex::new(domain);
            idx.insert(&mut pool, 1, &uda(&[(0, 1.0)])).unwrap();
            pool.flush().unwrap();
            idx.snapshot()
        };
        let reopened = InvertedIndex::open(&blob).expect("snapshot decodes");
        assert_eq!(reopened.domain().label_of(CatId(1)), Some("Tires"));
        assert_eq!(reopened.len(), 1);
    }

    #[test]
    fn save_load_roundtrip_over_a_real_file() {
        let dir = std::env::temp_dir();
        let pages = dir.join(format!("uncat-inv-persist-{}.pages", std::process::id()));
        let snap = dir.join(format!("uncat-inv-persist-{}.snap", std::process::id()));
        struct Cleanup(Vec<std::path::PathBuf>);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                for p in &self.0 {
                    let _ = std::fs::remove_file(p);
                }
            }
        }
        let _guard = Cleanup(vec![pages.clone(), snap.clone()]);

        let data: Vec<(u64, Uda)> = (0..100u64)
            .map(|i| (i, uda(&[((i % 5) as u32, 1.0)])))
            .collect();
        {
            let store: uncat_storage::SharedStore =
                std::sync::Arc::new(FileDisk::create(&pages).expect("create"));
            let mut pool = BufferPool::with_capacity(store, 64);
            let idx = InvertedIndex::build(
                Domain::anonymous(5),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .unwrap();
            pool.flush().unwrap();
            idx.save(&snap).expect("atomic snapshot commit");
        }
        // Process "restart": reopen the page file and the snapshot file.
        let store: uncat_storage::SharedStore =
            std::sync::Arc::new(FileDisk::open(&pages).expect("open"));
        let idx = InvertedIndex::load(&snap).expect("snapshot loads");
        let mut pool = BufferPool::with_capacity(store, 64);
        let out = idx
            .petq(
                &mut pool,
                &EqQuery::new(uda(&[(2, 1.0)]), 0.9),
                crate::Strategy::ColumnPruning,
            )
            .unwrap();
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn garbage_blob_rejected() {
        assert!(InvertedIndex::open(b"nope").is_err());
        assert!(
            InvertedIndex::open(b"UIV1").is_err(),
            "truncated after magic"
        );
    }

    #[test]
    fn ballooned_counts_cannot_exhaust_memory() {
        // A snapshot claiming u32::MAX heap pages must fail cleanly (the
        // clamp keeps pre-allocation at the blob's actual size).
        let mut w = Writer::new(MAGIC);
        write_domain(&mut w, &Domain::anonymous(3));
        w.u32(u32::MAX); // heap page count
        let blob = w.finish();
        assert!(InvertedIndex::open(&blob).is_err());
    }
}
