//! Cost statistics and the per-strategy cost estimator behind
//! [`Strategy::Auto`].
//!
//! [`CostStats`] is the planner's view of the index: per-category
//! posting-list lengths plus a small histogram of the block directory's
//! quantized-up maxima (`docs/METRICS.md`, "Cost estimation"). Everything
//! is extracted from in-memory metadata — the posting directory and the
//! heap page lists — so collecting stats performs **zero I/O**. Stats are
//! collected at build/load time and refreshed at checkpoints; in between
//! they may go stale under mutations, which affects only cost
//! *predictions* (the adaptive executor catches bad plans at run time),
//! never results.
//!
//! The estimator maps the documented per-counter cost model onto those
//! statistics: for each fixed strategy it predicts `postings_scanned`,
//! `blocks_decoded`, `candidates_verified` and physical reads — the same
//! vocabulary [`QueryMetrics`] measures, so predictions and actuals are
//! directly comparable (see [`CostPrediction::as_metrics`]).

use std::collections::{BTreeMap, BinaryHeap};

use uncat_core::equality::THRESHOLD_EPS;
use uncat_core::query::EqQuery;
use uncat_core::{CatId, Uda};
use uncat_storage::snapshot::{Reader, SnapshotError, Writer};
use uncat_storage::QueryMetrics;

use crate::block::PROB_SCALE;
use crate::index::InvertedIndex;
use crate::postings::PostingList;
use crate::search::Strategy;

/// Number of probability buckets in the per-category block-max
/// histograms. Bucket `b` covers maxima in `(b/16, (b+1)/16]`.
pub const COST_BUCKETS: usize = 16;

/// Postings a sequentially scanned raw (B+tree) page holds, per the
/// cost model in `docs/METRICS.md`: `reads ≈ ⌈postings / 1000⌉`.
pub const ENTRIES_PER_PAGE: u64 = 1000;

/// How far live counters may overrun the prediction before the adaptive
/// executor abandons the plan: the budget is
/// `OVERRUN_FACTOR × predicted postings + FALLBACK_BUDGET_FLOOR`.
pub const OVERRUN_FACTOR: u64 = 3;

/// Additive slack in the adaptive budget, so near-zero predictions
/// (tiny or empty stats) don't trigger fallbacks on healthy plans.
pub const FALLBACK_BUDGET_FLOOR: u64 = 512;

/// Cost statistics for one category's posting list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatCostStats {
    /// Posting entries in the list.
    pub len: u64,
    /// Blocks in the list's directory (0 for raw B+tree lists).
    pub blocks: u32,
    /// Largest quantized-up block maximum (`PROB_SCALE` for raw lists,
    /// whose per-entry probabilities are not summarized).
    pub max_q: u16,
    /// Blocks per block-max bucket, in stream order high→low.
    pub block_hist: [u32; COST_BUCKETS],
    /// Posting entries per block-max bucket. Raw lists, which have no
    /// directory to summarize, get a uniform synthetic histogram — the
    /// assumed-uniform prior the estimator falls back to.
    pub entry_hist: [u64; COST_BUCKETS],
}

impl CatCostStats {
    fn empty() -> CatCostStats {
        CatCostStats {
            len: 0,
            blocks: 0,
            max_q: 0,
            block_hist: [0; COST_BUCKETS],
            entry_hist: [0; COST_BUCKETS],
        }
    }
}

/// Index-wide cost statistics consumed by the planner.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CostStats {
    /// Indexed tuples.
    pub tuples: u64,
    /// Pages of the tuple store (verification's random-access target).
    pub heap_pages: u64,
    /// Pages of the block heap (sequential posting payloads).
    pub block_pages: u64,
    /// Per-category list statistics.
    pub cats: BTreeMap<CatId, CatCostStats>,
}

/// Which histogram bucket a quantized maximum falls in.
fn bucket_of(q: u16) -> usize {
    (q as usize * COST_BUCKETS) / (PROB_SCALE as usize + 1)
}

/// Upper probability edge of bucket `b`.
fn bucket_upper(b: usize) -> f64 {
    (b + 1) as f64 / COST_BUCKETS as f64
}

/// Extract cost statistics from the in-memory metadata (no I/O).
pub(crate) fn collect(idx: &InvertedIndex) -> CostStats {
    let (heap_pages, _) = idx.heap_parts();
    let (block_pages, _) = idx.block_heap_parts();
    let mut stats = CostStats {
        tuples: idx.len() as u64,
        heap_pages: heap_pages.len() as u64,
        block_pages: block_pages.len() as u64,
        cats: BTreeMap::new(),
    };
    for (&cat, list) in idx.posting_map() {
        let mut c = CatCostStats::empty();
        c.len = list.len();
        match list {
            PostingList::Blocks(blocks) => {
                c.blocks = blocks.blocks().len() as u32;
                for meta in blocks.blocks() {
                    let b = bucket_of(meta.max_q);
                    c.max_q = c.max_q.max(meta.max_q);
                    c.block_hist[b] += 1;
                    c.entry_hist[b] += meta.count as u64;
                }
            }
            PostingList::Tree(_) => {
                // No directory to summarize: assume probabilities are
                // uniform over (0, 1]. Deterministic remainder spreading
                // keeps collection a pure function of the directory.
                c.max_q = PROB_SCALE as u16;
                let base = c.len / COST_BUCKETS as u64;
                let rem = (c.len % COST_BUCKETS as u64) as usize;
                for (i, e) in c.entry_hist.iter_mut().enumerate() {
                    *e = base + u64::from(i >= COST_BUCKETS - rem && rem > 0);
                }
            }
        }
        stats.cats.insert(cat, c);
    }
    stats
}

/// Predicted execution counters for one strategy on one query, in the
/// same vocabulary [`QueryMetrics`] measures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostPrediction {
    /// Predicted `postings_scanned`.
    pub postings_scanned: u64,
    /// Predicted `blocks_decoded`.
    pub blocks_decoded: u64,
    /// Predicted `candidates_verified` (random accesses).
    pub candidates_verified: u64,
    /// Predicted cold physical reads (`io.physical_reads`).
    pub physical_reads: u64,
}

impl CostPrediction {
    /// Express the prediction as a [`QueryMetrics`]: each predictor
    /// populates exactly the counter it predicts, and nothing else.
    /// This pins the estimator's vocabulary to the metrics contract —
    /// predictions are comparable to actuals field by field, with no
    /// hidden state (asserted in `tests/metrics.rs`).
    pub fn as_metrics(&self) -> QueryMetrics {
        let mut m = QueryMetrics::new();
        m.postings_scanned = self.postings_scanned;
        m.blocks_decoded = self.blocks_decoded;
        m.candidates_verified = self.candidates_verified;
        m.io.physical_reads = self.physical_reads;
        m
    }

    /// Scalar plan cost: postings scanned plus physical reads weighted
    /// by the sequential entries-per-page equivalence of the cost model
    /// (one read ≈ [`ENTRIES_PER_PAGE`] sequentially scanned postings).
    pub fn cost(&self) -> u64 {
        self.postings_scanned
            .saturating_add(ENTRIES_PER_PAGE.saturating_mul(self.physical_reads))
    }
}

/// Accumulates sequential-scan work and converts it to page reads.
#[derive(Default)]
struct ScanWork {
    blocks: u64,
    raw_entries: u64,
}

impl ScanWork {
    fn reads(&self, stats: &CostStats) -> u64 {
        let total_blocks: u64 = stats.cats.values().map(|c| c.blocks as u64).sum();
        let bpp = total_blocks
            .checked_div(stats.block_pages)
            .unwrap_or(1)
            .max(1);
        self.blocks.div_ceil(bpp) + self.raw_entries.div_ceil(ENTRIES_PER_PAGE)
    }
}

impl CostStats {
    /// The query's support restricted to categories with statistics.
    fn query_lists<'a>(&'a self, q: &Uda) -> Vec<(f64, &'a CatCostStats)> {
        q.iter()
            .filter_map(|(cat, p)| self.cats.get(&cat).map(|c| (p as f64, c)))
            .collect()
    }

    /// Random accesses batched per heap page can never read more pages
    /// than the heap has, nor more than one per candidate.
    fn verify_reads(&self, candidates: u64) -> u64 {
        candidates.min(self.heap_pages)
    }

    /// Predict counters for every fixed strategy on a PETQ, in
    /// [`Strategy::ALL`] order.
    pub fn predict_petq(&self, query: &EqQuery) -> [(Strategy, CostPrediction); 5] {
        Strategy::ALL.map(|s| (s, self.predict_strategy(s, query)))
    }

    /// Pick the cheapest fixed strategy for a PETQ by predicted scalar
    /// cost. Ties resolve toward the frontier strategies (NRA first),
    /// which degrade gracefully under the adaptive budget.
    pub fn plan_petq(&self, query: &EqQuery) -> (Strategy, CostPrediction) {
        let order = [
            Strategy::Nra,
            Strategy::ColumnPruning,
            Strategy::HighestProbFirst,
            Strategy::RowPruning,
            Strategy::Brute,
        ];
        let mut best = (order[0], self.predict_strategy(order[0], query));
        for s in &order[1..] {
            let p = self.predict_strategy(*s, query);
            if p.cost() < best.1.cost() {
                best = (*s, p);
            }
        }
        best
    }

    /// Predict counters for one fixed strategy on a PETQ. Asking for
    /// [`Strategy::Auto`] returns its own pick's prediction.
    pub fn predict_strategy(&self, strategy: Strategy, query: &EqQuery) -> CostPrediction {
        match strategy {
            Strategy::Brute => self.predict_full_scan(query, None),
            Strategy::RowPruning => self.predict_full_scan(query, Some(query.tau - THRESHOLD_EPS)),
            Strategy::ColumnPruning => self.predict_col(query),
            Strategy::HighestProbFirst => self.predict_drain(query, false),
            Strategy::Nra => self.predict_drain(query, true),
            Strategy::Auto => self.plan_petq(query).1,
        }
    }

    /// Brute force (qp_cut = None) and row pruning (qp_cut = Some):
    /// retained lists are scanned end to end; row pruning additionally
    /// verifies each retained entry's tuple.
    fn predict_full_scan(&self, query: &EqQuery, qp_cut: Option<f64>) -> CostPrediction {
        let mut p = CostPrediction::default();
        let mut scan = ScanWork::default();
        for (qp, c) in self.query_lists(&query.q) {
            if qp_cut.is_some_and(|cut| qp < cut) {
                continue; // row pruned
            }
            p.postings_scanned += c.len;
            if c.blocks > 0 {
                p.blocks_decoded += c.blocks as u64;
                scan.blocks += c.blocks as u64;
            } else {
                scan.raw_entries += c.len;
            }
            if qp_cut.is_some() {
                p.candidates_verified += c.len;
            }
        }
        p.physical_reads = scan.reads(self) + self.verify_reads(p.candidates_verified);
        p
    }

    /// Column pruning: each list is scanned down to τ. Buckets whose
    /// upper edge clears the cut are counted whole (conservative: the
    /// boundary bucket may hold entries below τ the scan never visits).
    fn predict_col(&self, query: &EqQuery) -> CostPrediction {
        let cut = query.tau - THRESHOLD_EPS;
        let b0 = if cut <= 0.0 {
            0
        } else {
            ((cut * COST_BUCKETS as f64) as usize).min(COST_BUCKETS - 1)
        };
        let mut p = CostPrediction::default();
        let mut scan = ScanWork::default();
        for (_qp, c) in self.query_lists(&query.q) {
            let entries: u64 = c.entry_hist[b0..].iter().sum();
            if c.blocks > 0 {
                let blocks: u64 = c.block_hist[b0..].iter().map(|&b| b as u64).sum();
                p.blocks_decoded += blocks;
                scan.blocks += blocks;
            } else {
                scan.raw_entries += entries;
            }
            p.postings_scanned += entries;
            p.candidates_verified += entries;
        }
        p.physical_reads = scan.reads(self) + self.verify_reads(p.candidates_verified);
        p
    }

    /// Frontier drains (highest-prob-first and NRA): simulate the
    /// most-promising-first drain at bucket granularity. Each list
    /// contributes chunks `(bound = qp · bucket upper edge, entries,
    /// blocks)` in stream (descending-bucket) order; the simulation pops
    /// the maximum-bound chunk until the Lemma 1 stop
    /// `Σ bounds < τ − ε`. Bucket upper edges dominate the real head
    /// contributions, so the simulated drain never stops before the
    /// real one — predictions over-, not under-estimate.
    fn predict_drain(&self, query: &EqQuery, nra: bool) -> CostPrediction {
        let lists = self.query_lists(&query.q);
        // chunks[j]: descending-bound chunk list for list j.
        let chunks: Vec<Vec<(f64, u64, u64)>> = lists
            .iter()
            .map(|(qp, c)| {
                let mut v = Vec::new();
                for b in (0..COST_BUCKETS).rev() {
                    if c.entry_hist[b] > 0 {
                        v.push((
                            qp * bucket_upper(b),
                            c.entry_hist[b],
                            c.block_hist[b] as u64,
                        ));
                    }
                }
                v
            })
            .collect();
        let mut cursor = vec![0usize; chunks.len()];
        let mut heap: BinaryHeap<(u64, usize)> = chunks
            .iter()
            .enumerate()
            .filter_map(|(j, v)| v.first().map(|&(bound, ..)| (bound.to_bits(), j)))
            .collect();
        let mut sum: f64 = chunks.iter().filter_map(|v| v.first()).map(|c| c.0).sum();

        let mut p = CostPrediction::default();
        let mut scan = ScanWork::default();
        let stop = query.tau - THRESHOLD_EPS;
        while sum >= stop {
            let Some((_, j)) = heap.pop() else {
                break;
            };
            let (bound, entries, blocks) = chunks[j][cursor[j]];
            p.postings_scanned += entries;
            let (_qp, c) = &lists[j];
            if c.blocks > 0 {
                p.blocks_decoded += blocks;
                scan.blocks += blocks;
            } else {
                scan.raw_entries += entries;
            }
            cursor[j] += 1;
            sum -= bound;
            if let Some(&(next, ..)) = chunks[j].get(cursor[j]) {
                sum += next;
                heap.push((next.to_bits(), j));
            }
        }

        // Every drained entry is a potential candidate. NRA settles or
        // prunes all but a bounded remainder from converged bounds;
        // highest-prob-first random-accesses every candidate. A
        // single-list NRA query is special: each candidate's only
        // contribution is the posting that introduced it, so its bounds
        // converge on contact and *nothing* is ever random-accessed.
        let candidates = p.postings_scanned;
        p.candidates_verified = if nra && lists.len() == 1 {
            0
        } else if nra && lists.len() <= 128 {
            candidates.min(crate::search::NRA_RA_FALLBACK as u64)
        } else {
            candidates
        };
        p.physical_reads = scan.reads(self) + self.verify_reads(p.candidates_verified);
        p
    }
}

/// Serialize the stats section appended to `UIV2` snapshots
/// (`docs/FORMAT.md` §10). Fixed-width little-endian throughout, so a
/// decoded section re-encodes byte-identically.
pub(crate) fn write_cost_stats(w: &mut Writer, s: &CostStats) {
    w.u64(s.tuples);
    w.u64(s.heap_pages);
    w.u64(s.block_pages);
    w.u32(s.cats.len() as u32);
    for (cat, c) in &s.cats {
        w.u32(cat.0);
        w.u64(c.len);
        w.u32(c.blocks);
        w.u16(c.max_q);
        for &b in &c.block_hist {
            w.u32(b);
        }
        for &e in &c.entry_hist {
            w.u64(e);
        }
    }
}

/// Bytes per serialized per-category stats entry; clamps pre-allocation
/// against ballooned counts.
const CAT_STATS_LEN: usize = 4 + 8 + 4 + 2 + COST_BUCKETS * 4 + COST_BUCKETS * 8;

pub(crate) fn read_cost_stats(r: &mut Reader<'_>) -> Result<CostStats, SnapshotError> {
    let tuples = r.u64()?;
    let heap_pages = r.u64()?;
    let block_pages = r.u64()?;
    let n_cats = r.u32()? as usize;
    if n_cats > r.remaining() / CAT_STATS_LEN + 1 {
        return Err(SnapshotError("stats section count exceeds payload"));
    }
    let mut cats = BTreeMap::new();
    for _ in 0..n_cats {
        let cat = CatId(r.u32()?);
        let mut c = CatCostStats::empty();
        c.len = r.u64()?;
        c.blocks = r.u32()?;
        c.max_q = r.u16()?;
        for b in &mut c.block_hist {
            *b = r.u32()?;
        }
        for e in &mut c.entry_hist {
            *e = r.u64()?;
        }
        cats.insert(cat, c);
    }
    Ok(CostStats {
        tuples,
        heap_pages,
        block_pages,
        cats,
    })
}

impl InvertedIndex {
    /// Predict counters for every fixed PETQ strategy from the cached
    /// cost statistics, in [`Strategy::ALL`] order.
    pub fn predict_petq(&self, query: &EqQuery) -> [(Strategy, CostPrediction); 5] {
        self.cost_stats().predict_petq(query)
    }

    /// The planner's pick for this PETQ: the cheapest fixed strategy by
    /// predicted scalar cost, with its prediction.
    pub fn plan_petq(&self, query: &EqQuery) -> (Strategy, CostPrediction) {
        self.cost_stats().plan_petq(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_core::Domain;
    use uncat_storage::{BufferPool, InMemoryDisk};

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    fn build(n: u64) -> (InvertedIndex, BufferPool) {
        let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 400);
        let data: Vec<(u64, Uda)> = (0..n)
            .map(|i| {
                let c = (i % 4) as u32;
                let p = 0.2 + 0.6 * ((i % 10) as f32 / 10.0);
                (i, uda(&[(c, p), ((c + 1) % 4, 1.0 - p)]))
            })
            .collect();
        let idx = InvertedIndex::build(
            Domain::anonymous(4),
            &mut pool,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .unwrap();
        (idx, pool)
    }

    #[test]
    fn stats_collection_is_io_free_and_consistent() {
        let (idx, mut pool) = build(1000);
        pool.clear().unwrap();
        pool.reset_stats();
        let s = idx.cost_stats();
        assert_eq!(pool.stats().physical_reads, 0, "collection reads no pages");
        assert_eq!(s.tuples, 1000);
        assert_eq!(s.cats.len(), 4);
        for c in s.cats.values() {
            assert_eq!(c.entry_hist.iter().sum::<u64>(), c.len);
            assert_eq!(
                c.block_hist.iter().map(|&b| b as u64).sum::<u64>(),
                c.blocks as u64
            );
        }
        let structural = idx.stats();
        assert_eq!(
            s.cats.values().map(|c| c.len).sum::<u64>(),
            structural.postings
        );
        assert_eq!(
            s.cats.values().map(|c| c.blocks as u64).sum::<u64>(),
            structural.posting_blocks
        );
    }

    #[test]
    fn predictions_dominate_actuals_on_fresh_stats() {
        // The estimator is conservative: on fresh statistics, every
        // strategy's predicted postings/blocks bound what the strategy
        // actually does.
        let (idx, mut pool) = build(2000);
        let query = EqQuery::new(uda(&[(1, 1.0)]), 0.3);
        for (strategy, pred) in idx.predict_petq(&query) {
            let mut m = QueryMetrics::new();
            pool.clear().unwrap();
            idx.petq_metered(&mut pool, &query, strategy, &mut m)
                .unwrap();
            assert!(
                m.postings_scanned <= pred.postings_scanned,
                "{strategy:?}: scanned {} > predicted {}",
                m.postings_scanned,
                pred.postings_scanned
            );
            assert!(
                m.blocks_decoded <= pred.blocks_decoded,
                "{strategy:?}: decoded {} > predicted {}",
                m.blocks_decoded,
                pred.blocks_decoded
            );
            assert!(
                m.candidates_verified <= pred.candidates_verified,
                "{strategy:?}: verified {} > predicted {}",
                m.candidates_verified,
                pred.candidates_verified
            );
        }
    }

    #[test]
    fn planner_pick_tracks_selectivity() {
        let (idx, _pool) = build(2000);
        // A high threshold makes pruning strategies cheap; the planner
        // must not pick brute force there.
        let (pick, pred) = idx.plan_petq(&EqQuery::new(uda(&[(0, 1.0)]), 0.9));
        assert_ne!(pick, Strategy::Brute);
        let brute = idx
            .cost_stats()
            .predict_strategy(Strategy::Brute, &EqQuery::new(uda(&[(0, 1.0)]), 0.9));
        assert!(pred.cost() <= brute.cost());
    }

    #[test]
    fn stats_serialization_roundtrips() {
        let (idx, _pool) = build(500);
        let s = idx.cost_stats().clone();
        let mut w = Writer::new(b"TEST");
        write_cost_stats(&mut w, &s);
        let blob = w.finish();
        let mut r = Reader::new(&blob, b"TEST").unwrap();
        let back = read_cost_stats(&mut r).unwrap();
        assert!(r.is_done());
        assert_eq!(s, back);
        // Re-encoding the decoded stats is byte-identical.
        let mut w2 = Writer::new(b"TEST");
        write_cost_stats(&mut w2, &back);
        assert_eq!(blob, w2.finish());
    }

    #[test]
    fn ballooned_stats_count_is_rejected() {
        let mut w = Writer::new(b"TEST");
        w.u64(0);
        w.u64(0);
        w.u64(0);
        w.u32(u32::MAX);
        let blob = w.finish();
        let mut r = Reader::new(&blob, b"TEST").unwrap();
        assert!(read_cost_stats(&mut r).is_err());
    }
}
