//! The inverted index structure: directory, posting trees, tuple store.

use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

use uncat_core::{codec, CatId, Domain, Uda};
use uncat_storage::{BufferPool, HeapFile, PageId, RecordId, Result, StorageError};

use crate::block::BlockList;
use crate::cost::CostStats;
use crate::postings::{decode_posting, posting_key, PostingList, PostingTree};

/// Physical layout of the posting lists (see `docs/FORMAT.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PostingFormat {
    /// Raw `(tid, p)` pairs as B+tree keys — the original layout,
    /// snapshot format `UIV1`. Still fully supported for loading old
    /// snapshots and for differential testing.
    Raw,
    /// Compressed blocks (delta-varint tids, lossless probabilities,
    /// quantized-up block maxima) — snapshot format `UIV2`, the default.
    #[default]
    Blocks,
}

/// Heap-record layout: `u64 tid (LE) ‖ UDA encoding`. Carrying the tid in
/// the record lets full scans attribute distributions without a reverse
/// map.
fn encode_record(tid: u64, uda: &Uda) -> Vec<u8> {
    let mut v = Vec::with_capacity(8 + codec::encoded_len(uda));
    v.extend_from_slice(&tid.to_le_bytes());
    codec::encode(uda, &mut v);
    v
}

/// Decode a stored tuple record. A record that does not parse — possible
/// only if a page was corrupted past the physical checks — surfaces as a
/// typed [`StorageError::Corrupt`], never a panic.
fn decode_record(bytes: &[u8]) -> Result<(u64, Uda)> {
    let tid_bytes: [u8; 8] =
        bytes
            .get(..8)
            .and_then(|b| b.try_into().ok())
            .ok_or(StorageError::Corrupt(
                "tuple record shorter than its tid header",
            ))?;
    let tid = u64::from_le_bytes(tid_bytes);
    let (uda, _) = codec::decode(&bytes[8..])
        .map_err(|_| StorageError::Corrupt("stored UDA does not decode"))?;
    Ok((tid, uda))
}

/// Structural statistics returned by [`InvertedIndex::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexStats {
    /// Non-empty posting lists (categories that occur in the data).
    pub lists: u64,
    /// Total posting entries across all lists.
    pub postings: u64,
    /// Length of the longest posting list.
    pub longest_list: u64,
    /// Deepest posting B+tree (raw format; zero for block lists).
    pub max_list_depth: u32,
    /// Posting blocks across all lists (block format; zero for raw).
    pub posting_blocks: u64,
    /// Pages occupied by the block heap (block format; zero for raw).
    pub block_pages: u64,
    /// Pages occupied by the tuple store.
    pub heap_pages: u64,
}

impl IndexStats {
    /// Average posting-list length.
    pub fn avg_list_len(&self) -> f64 {
        if self.lists == 0 {
            0.0
        } else {
            self.postings as f64 / self.lists as f64
        }
    }
}

/// A probabilistic inverted index over one uncertain attribute.
///
/// The directory (category → posting-tree root) and the tuple-id → record
/// map are kept in memory: they are per-category / per-tuple index
/// *metadata*, equivalent to the always-hot top of an on-disk directory.
/// Posting entries and tuple records live on pages and are charged I/O
/// through the [`BufferPool`] passed to every operation. Every operation
/// touching pages is fallible: an unreadable or corrupt page fails that
/// operation with `Err(StorageError)` and leaves the process alive.
///
/// ```
/// use uncat_core::{CatId, Domain, EqQuery, Uda};
/// use uncat_inverted::{InvertedIndex, Strategy};
/// use uncat_storage::{BufferPool, InMemoryDisk};
///
/// let mut pool = BufferPool::new(InMemoryDisk::shared());
/// let t0 = Uda::from_pairs([(CatId(0), 0.5), (CatId(1), 0.5)])?;
/// let t1 = Uda::from_pairs([(CatId(1), 1.0)])?;
/// let index = InvertedIndex::build(
///     Domain::anonymous(2),
///     &mut pool,
///     [(0u64, &t0), (1u64, &t1)],
/// ).expect("in-memory build");
///
/// let hits = index.petq(
///     &mut pool,
///     &EqQuery::new(Uda::certain(CatId(1)), 0.6),
///     Strategy::ColumnPruning,
/// ).expect("in-memory query");
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].tid, 1);
/// # Ok::<(), uncat_core::Error>(())
/// ```
pub struct InvertedIndex {
    domain: Domain,
    format: PostingFormat,
    postings: BTreeMap<CatId, PostingList>,
    heap: HeapFile,
    /// Payloads of block-format posting lists. Unused (and empty) for
    /// raw-format indexes; kept unconditionally so the two formats share
    /// one code path everywhere else.
    block_heap: HeapFile,
    rids: HashMap<u64, RecordId>,
    /// Lazily collected cost statistics (see [`crate::cost`]). Computed
    /// on first use, pre-populated when a snapshot carries a stats
    /// section, and refreshed explicitly at checkpoints. Mutations do
    /// *not* invalidate it: stale statistics skew cost predictions —
    /// which the adaptive executor absorbs — never results.
    cost: OnceLock<CostStats>,
}

impl InvertedIndex {
    /// Create an empty index over `domain` in the default (block)
    /// posting format.
    pub fn new(domain: Domain) -> InvertedIndex {
        InvertedIndex::new_with_format(domain, PostingFormat::default())
    }

    /// Create an empty index over `domain` in an explicit posting
    /// format.
    pub fn new_with_format(domain: Domain, format: PostingFormat) -> InvertedIndex {
        InvertedIndex {
            domain,
            format,
            postings: BTreeMap::new(),
            heap: HeapFile::new(),
            block_heap: HeapFile::new(),
            rids: HashMap::new(),
            cost: OnceLock::new(),
        }
    }

    /// Build from a collection of tuples in the default (block) format.
    pub fn build<'a, I>(domain: Domain, pool: &mut BufferPool, tuples: I) -> Result<InvertedIndex>
    where
        I: IntoIterator<Item = (u64, &'a Uda)>,
    {
        InvertedIndex::build_with_format(domain, pool, tuples, PostingFormat::default())
    }

    /// Build from a collection of tuples in an explicit posting format.
    ///
    /// Postings are loaded in stream (key) order per category: raw lists
    /// pack B+tree pages densely (append-friendly splits), block lists
    /// pack consecutive full blocks onto consecutive heap pages.
    pub fn build_with_format<'a, I>(
        domain: Domain,
        pool: &mut BufferPool,
        tuples: I,
        format: PostingFormat,
    ) -> Result<InvertedIndex>
    where
        I: IntoIterator<Item = (u64, &'a Uda)>,
    {
        let mut idx = InvertedIndex::new_with_format(domain, format);
        let mut per_cat: BTreeMap<CatId, Vec<[u8; crate::postings::KEY_LEN]>> = BTreeMap::new();
        for (tid, uda) in tuples {
            debug_assert!(uda.max_cat().is_none_or(|c| idx.domain.contains(c)));
            if idx.rids.contains_key(&tid) {
                return Err(StorageError::Duplicate { key: tid });
            }
            let rid = idx.heap.insert(pool, &encode_record(tid, uda))?;
            idx.rids.insert(tid, rid);
            for (cat, p) in uda.iter() {
                per_cat.entry(cat).or_default().push(posting_key(p, tid));
            }
        }
        for (cat, mut keys) in per_cat {
            keys.sort_unstable();
            let list = match format {
                PostingFormat::Raw => {
                    let mut tree = PostingTree::create(pool)?;
                    for k in &keys {
                        tree.insert(pool, k, &[])?;
                    }
                    PostingList::Tree(tree)
                }
                PostingFormat::Blocks => {
                    let entries: Vec<(u64, f32)> = keys
                        .iter()
                        .map(|k| {
                            let (p, tid) = decode_posting(k);
                            (tid, p)
                        })
                        .collect();
                    PostingList::Blocks(BlockList::build(&mut idx.block_heap, pool, &entries)?)
                }
            };
            idx.postings.insert(cat, list);
        }
        Ok(idx)
    }

    /// Insert one tuple. A duplicate tuple id is rejected with
    /// [`StorageError::Duplicate`] before anything is modified.
    pub fn insert(&mut self, pool: &mut BufferPool, tid: u64, uda: &Uda) -> Result<()> {
        if self.rids.contains_key(&tid) {
            return Err(StorageError::Duplicate { key: tid });
        }
        let rid = self.heap.insert(pool, &encode_record(tid, uda))?;
        self.rids.insert(tid, rid);
        let format = self.format;
        for (cat, p) in uda.iter() {
            let list = match self.postings.entry(cat) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(e) => e.insert(match format {
                    PostingFormat::Raw => PostingList::Tree(PostingTree::create(pool)?),
                    PostingFormat::Blocks => PostingList::Blocks(BlockList::new()),
                }),
            };
            match list {
                PostingList::Tree(tree) => {
                    tree.insert(pool, &posting_key(p, tid), &[])?;
                }
                PostingList::Blocks(blocks) => {
                    blocks.insert(&mut self.block_heap, pool, tid, p)?;
                }
            }
        }
        Ok(())
    }

    /// Upsert a tuple: replace its distribution if present (delete plus
    /// probability-ordered reinsertion — posting keys sort by descending
    /// probability, so reinserting re-establishes list order), insert it
    /// otherwise. Returns whether a previous distribution was replaced.
    pub fn update(&mut self, pool: &mut BufferPool, tid: u64, uda: &Uda) -> Result<bool> {
        let existed = self.delete(pool, tid)?;
        self.insert(pool, tid, uda)?;
        Ok(existed)
    }

    /// Whether `tid` is indexed (in-memory lookup, no I/O).
    pub fn contains(&self, tid: u64) -> bool {
        self.rids.contains_key(&tid)
    }

    /// Delete a tuple. Returns whether it existed.
    pub fn delete(&mut self, pool: &mut BufferPool, tid: u64) -> Result<bool> {
        let Some(rid) = self.rids.remove(&tid) else {
            return Ok(false);
        };
        let bytes = self
            .heap
            .get(pool, rid)?
            .ok_or(StorageError::Corrupt("rid map points at a deleted record"))?;
        let (_tid, uda) = decode_record(&bytes)?;
        for (cat, p) in uda.iter() {
            let list = self.postings.get_mut(&cat).ok_or(StorageError::Corrupt(
                "posting list missing for stored entry",
            ))?;
            match list {
                PostingList::Tree(tree) => {
                    let removed = tree.remove(pool, &posting_key(p, tid))?;
                    debug_assert!(removed.is_some(), "posting entry missing for tuple {tid}");
                }
                PostingList::Blocks(blocks) => {
                    let removed = blocks.remove(&mut self.block_heap, pool, tid, p)?;
                    debug_assert!(removed, "posting entry missing for tuple {tid}");
                }
            }
        }
        self.heap.delete(pool, rid)?;
        Ok(true)
    }

    /// Random-access a tuple's distribution (one page read).
    /// `Ok(None)` means the tuple id is not indexed.
    pub fn get_tuple(&self, pool: &mut BufferPool, tid: u64) -> Result<Option<Uda>> {
        let Some(&rid) = self.rids.get(&tid) else {
            return Ok(None);
        };
        let bytes = self
            .heap
            .get(pool, rid)?
            .ok_or(StorageError::Corrupt("rid map points at a deleted record"))?;
        let (_tid, uda) = decode_record(&bytes)?;
        Ok(Some(uda))
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.rids.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.rids.is_empty()
    }

    /// The indexed domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The physical posting format this index uses.
    pub fn format(&self) -> PostingFormat {
        self.format
    }

    /// Number of posting entries in `cat`'s list.
    pub fn list_len(&self, cat: CatId) -> u64 {
        self.postings.get(&cat).map_or(0, |l| l.len())
    }

    /// Iterate all tuple ids (unordered).
    pub fn tuple_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.rids.keys().copied()
    }

    /// Visit every stored tuple in heap order: `f(tid, uda)`. Costs one
    /// page read per heap page (a full relation scan).
    pub fn scan_tuples(&self, pool: &mut BufferPool, mut f: impl FnMut(u64, &Uda)) -> Result<()> {
        let mut decode_err: Option<StorageError> = None;
        self.heap.scan(pool, |_, bytes| {
            if decode_err.is_some() {
                return;
            }
            match decode_record(bytes) {
                Ok((tid, uda)) => f(tid, &uda),
                Err(e) => decode_err = Some(e),
            }
        })?;
        match decode_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Number of pages occupied by the tuple store (for sizing reports).
    pub fn heap_pages(&self) -> usize {
        self.heap.num_pages()
    }

    /// Structural statistics over the posting directory.
    pub fn stats(&self) -> IndexStats {
        let mut s = IndexStats {
            heap_pages: self.heap.num_pages() as u64,
            block_pages: self.block_heap.num_pages() as u64,
            ..IndexStats::default()
        };
        for list in self.postings.values() {
            s.lists += 1;
            s.postings += list.len();
            s.longest_list = s.longest_list.max(list.len());
            match list {
                PostingList::Tree(tree) => {
                    s.max_list_depth = s.max_list_depth.max(tree.depth());
                }
                PostingList::Blocks(blocks) => {
                    s.posting_blocks += blocks.blocks().len() as u64;
                }
            }
        }
        s
    }

    pub(crate) fn posting_list(&self, cat: CatId) -> Option<&PostingList> {
        self.postings.get(&cat)
    }

    /// The heap holding block-format posting payloads.
    pub(crate) fn block_heap(&self) -> &HeapFile {
        &self.block_heap
    }

    /// The heap page a tuple's record lives on (for sorted random access).
    pub(crate) fn record_location(&self, tid: u64) -> Option<RecordId> {
        self.rids.get(&tid).copied()
    }

    /// Check structural invariants: every stored tuple has exactly one
    /// posting per non-zero category (with the stored probability), every
    /// posting refers to a stored tuple, and the counters agree. Returns
    /// the number of tuples checked. Test/debug aid — reads everything.
    pub fn check_invariants(&self, pool: &mut BufferPool) -> Result<u64> {
        use std::ops::ControlFlow;

        let mut tuple_entries = 0u64;
        let mut tuples = 0u64;
        self.scan_tuples(pool, |tid, uda| {
            tuples += 1;
            assert!(
                self.rids.contains_key(&tid),
                "tuple {tid} missing from the rid map"
            );
            tuple_entries += uda.len() as u64;
        })?;
        assert_eq!(tuples, self.rids.len() as u64, "heap and rid map disagree");

        let mut posting_entries = 0u64;
        for (cat, list) in &self.postings {
            let mut in_list = 0u64;
            match list {
                PostingList::Tree(tree) => {
                    tree.scan_all(pool, |key, _| {
                        let (p, tid) = decode_posting(key);
                        in_list += 1;
                        assert!(
                            self.rids.contains_key(&tid),
                            "posting in {cat} refers to unknown tuple {tid}"
                        );
                        assert!(p > 0.0 && p <= 1.0, "posting probability out of range");
                        ControlFlow::Continue(())
                    })?;
                }
                PostingList::Blocks(blocks) => {
                    let mut prev: Option<[u8; crate::postings::KEY_LEN]> = None;
                    for meta in blocks.blocks() {
                        let bytes =
                            self.block_heap
                                .get(pool, meta.rid)?
                                .ok_or(StorageError::Corrupt(
                                    "block directory points at a deleted record",
                                ))?;
                        let entries = crate::block::decode_block(&bytes)?;
                        assert_eq!(
                            entries.len(),
                            meta.count as usize,
                            "block count disagrees with its directory in {cat}"
                        );
                        let (tid0, p0) = entries[0];
                        assert_eq!(
                            meta.sep,
                            posting_key(p0, tid0),
                            "block separator not the exact first key in {cat}"
                        );
                        for &(tid, p) in &entries {
                            in_list += 1;
                            assert!(
                                self.rids.contains_key(&tid),
                                "posting in {cat} refers to unknown tuple {tid}"
                            );
                            assert!(p > 0.0 && p <= 1.0, "posting probability out of range");
                            assert!(
                                p as f64 <= crate::block::dequantize(meta.max_q),
                                "block max must dominate every entry in {cat}"
                            );
                            let key = posting_key(p, tid);
                            if let Some(prev) = prev {
                                assert!(prev < key, "stream order violated in {cat}");
                            }
                            prev = Some(key);
                        }
                    }
                }
            }
            assert_eq!(
                in_list,
                list.len(),
                "list length counter out of sync for {cat}"
            );
            posting_entries += in_list;
        }
        assert_eq!(
            posting_entries, tuple_entries,
            "posting entries disagree with stored distributions"
        );
        Ok(tuples)
    }

    // --- persistence plumbing (see `persist`) ---

    pub(crate) fn heap_parts(&self) -> (&[uncat_storage::PageId], u64) {
        self.heap.raw_parts()
    }

    pub(crate) fn block_heap_parts(&self) -> (&[uncat_storage::PageId], u64) {
        self.block_heap.raw_parts()
    }

    pub(crate) fn rid_map(&self) -> &HashMap<u64, RecordId> {
        &self.rids
    }

    pub(crate) fn posting_map(&self) -> &BTreeMap<CatId, PostingList> {
        &self.postings
    }

    pub(crate) fn from_parts(
        domain: Domain,
        format: PostingFormat,
        postings: BTreeMap<CatId, PostingList>,
        heap: HeapFile,
        block_heap: HeapFile,
        rids: HashMap<u64, RecordId>,
    ) -> InvertedIndex {
        InvertedIndex {
            domain,
            format,
            postings,
            heap,
            block_heap,
            rids,
            cost: OnceLock::new(),
        }
    }

    /// Pre-populate the cost-statistics cache (snapshot load). Returns
    /// whether the value was installed (false if already computed).
    pub(crate) fn preset_cost_stats(&self, stats: CostStats) -> bool {
        self.cost.set(stats).is_ok()
    }

    /// Cost statistics for the planner, collected lazily from in-memory
    /// metadata (zero I/O; see [`CostStats`]). The value is cached:
    /// it reflects the index as of the last build, snapshot load, or
    /// [`InvertedIndex::refresh_cost_stats`] call, *not* mutations since
    /// — by design, statistics refresh at checkpoint boundaries.
    pub fn cost_stats(&self) -> &CostStats {
        self.cost.get_or_init(|| crate::cost::collect(self))
    }

    /// Recompute the cost statistics from the current directory. Called
    /// by the durable checkpoint path so persisted snapshots always
    /// carry fresh statistics.
    pub fn refresh_cost_stats(&mut self) {
        self.cost = OnceLock::new();
        let _ = self.cost_stats();
    }

    /// Every page this index references (tuple store, then block heap)
    /// — the sampling frame for buffer-pool residency probes.
    pub fn page_ids(&self) -> Vec<PageId> {
        let (heap, _) = self.heap.raw_parts();
        let (blocks, _) = self.block_heap.raw_parts();
        heap.iter().chain(blocks.iter()).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_storage::InMemoryDisk;

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    fn pool() -> BufferPool {
        BufferPool::with_capacity(InMemoryDisk::shared(), 100)
    }

    #[test]
    fn build_and_random_access() {
        let mut p = pool();
        let data = [
            (0u64, uda(&[(0, 0.5), (1, 0.5)])),
            (1, uda(&[(1, 0.2), (2, 0.8)])),
            (2, uda(&[(0, 1.0)])),
        ];
        let idx = InvertedIndex::build(
            Domain::anonymous(3),
            &mut p,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .unwrap();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.list_len(CatId(0)), 2);
        assert_eq!(idx.list_len(CatId(1)), 2);
        assert_eq!(idx.list_len(CatId(2)), 1);
        assert_eq!(idx.get_tuple(&mut p, 1).unwrap().unwrap(), data[1].1);
        assert!(idx.get_tuple(&mut p, 99).unwrap().is_none());
    }

    #[test]
    fn insert_then_delete_cleans_postings() {
        let mut p = pool();
        let mut idx = InvertedIndex::new(Domain::anonymous(4));
        idx.insert(&mut p, 7, &uda(&[(0, 0.4), (3, 0.6)])).unwrap();
        idx.insert(&mut p, 8, &uda(&[(3, 1.0)])).unwrap();
        assert_eq!(idx.list_len(CatId(3)), 2);
        assert_eq!(idx.check_invariants(&mut p).unwrap(), 2);
        assert!(idx.delete(&mut p, 7).unwrap());
        assert!(!idx.delete(&mut p, 7).unwrap());
        assert_eq!(idx.list_len(CatId(0)), 0);
        assert_eq!(idx.list_len(CatId(3)), 1);
        assert_eq!(idx.len(), 1);
        assert!(idx.get_tuple(&mut p, 7).unwrap().is_none());
        assert_eq!(idx.check_invariants(&mut p).unwrap(), 1);
    }

    #[test]
    fn stats_reflect_structure() {
        let mut p = pool();
        let data = [
            (0u64, uda(&[(0, 0.5), (1, 0.5)])),
            (1, uda(&[(1, 0.2), (2, 0.8)])),
            (2, uda(&[(1, 1.0)])),
        ];
        let idx = InvertedIndex::build(
            Domain::anonymous(3),
            &mut p,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .unwrap();
        let s = idx.stats();
        assert_eq!(s.lists, 3);
        assert_eq!(s.postings, 5);
        assert_eq!(s.longest_list, 3);
        assert!(s.heap_pages >= 1);
        assert!((s.avg_list_len() - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn queries_on_empty_index_return_nothing() {
        let mut p = pool();
        let idx = InvertedIndex::new(Domain::anonymous(4));
        let q = uncat_core::query::EqQuery::new(Uda::certain(CatId(0)), 0.1);
        for strat in crate::Strategy::ALL {
            assert!(idx.petq(&mut p, &q, strat).unwrap().is_empty(), "{strat:?}");
        }
        assert!(idx
            .top_k(
                &mut p,
                &uncat_core::query::TopKQuery::new(Uda::certain(CatId(0)), 3)
            )
            .unwrap()
            .is_empty());
        assert!(idx.peq(&mut p, &Uda::certain(CatId(0))).unwrap().is_empty());
        assert_eq!(idx.check_invariants(&mut p).unwrap(), 0);
    }

    #[test]
    fn disjoint_query_reads_no_lists() {
        let mut p = pool();
        let mut idx = InvertedIndex::new(Domain::anonymous(8));
        for i in 0..20u64 {
            idx.insert(&mut p, i, &uda(&[(0, 0.5), (1, 0.5)])).unwrap();
        }
        p.clear().unwrap();
        p.reset_stats();
        let q = uncat_core::query::EqQuery::new(Uda::certain(CatId(7)), 0.1);
        assert!(idx
            .petq(&mut p, &q, crate::Strategy::Nra)
            .unwrap()
            .is_empty());
        assert_eq!(
            p.stats().physical_reads,
            0,
            "no posting list exists for category 7"
        );
    }

    #[test]
    fn corrupted_heap_page_degrades_to_a_typed_error() {
        use uncat_storage::{Fault, FaultStore};

        let faults = std::sync::Arc::new(FaultStore::new(InMemoryDisk::shared(), 11));
        let mut p = BufferPool::with_capacity(faults.clone(), 100);
        let data: Vec<(u64, Uda)> = (0..200u64)
            .map(|i| (i, uda(&[((i % 3) as u32, 1.0)])))
            .collect();
        let idx = InvertedIndex::build(
            Domain::anonymous(3),
            &mut p,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .unwrap();
        p.clear().unwrap();
        // Fail the next physical read: the query using it errors instead of
        // aborting, and the next query — with the fault spent — succeeds.
        faults.arm(Fault::FailRead {
            after: faults.reads_so_far() + 1,
        });
        let q = uncat_core::query::EqQuery::new(Uda::certain(CatId(1)), 0.5);
        assert!(idx
            .petq(&mut p, &q, crate::Strategy::ColumnPruning)
            .is_err());
        let ok = idx
            .petq(&mut p, &q, crate::Strategy::ColumnPruning)
            .unwrap();
        assert!(
            !ok.is_empty(),
            "index answers normally once the fault is gone"
        );
    }

    #[test]
    fn duplicate_tid_is_a_typed_error() {
        let mut p = pool();
        let mut idx = InvertedIndex::new(Domain::anonymous(2));
        idx.insert(&mut p, 1, &uda(&[(0, 1.0)])).unwrap();
        assert_eq!(
            idx.insert(&mut p, 1, &uda(&[(1, 1.0)])),
            Err(StorageError::Duplicate { key: 1 })
        );
        // The rejected insert modified nothing: the original
        // distribution and postings are intact.
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get_tuple(&mut p, 1).unwrap().unwrap(), uda(&[(0, 1.0)]));
        assert_eq!(idx.check_invariants(&mut p).unwrap(), 1);
        // build() rejects duplicates the same way.
        let dup = [(5u64, uda(&[(0, 1.0)])), (5, uda(&[(1, 1.0)]))];
        assert_eq!(
            InvertedIndex::build(
                Domain::anonymous(2),
                &mut p,
                dup.iter().map(|(t, u)| (*t, u)),
            )
            .err(),
            Some(StorageError::Duplicate { key: 5 })
        );
    }

    #[test]
    fn update_replaces_in_probability_order() {
        let mut p = pool();
        let mut idx = InvertedIndex::new(Domain::anonymous(4));
        idx.insert(&mut p, 1, &uda(&[(0, 0.9), (1, 0.1)])).unwrap();
        idx.insert(&mut p, 2, &uda(&[(0, 0.5), (2, 0.5)])).unwrap();
        assert!(idx.contains(1));
        assert!(!idx.contains(9));
        // Replace tuple 1's distribution entirely.
        assert!(idx.update(&mut p, 1, &uda(&[(2, 0.3), (3, 0.7)])).unwrap());
        assert_eq!(idx.list_len(CatId(0)), 1, "old postings removed");
        assert_eq!(idx.list_len(CatId(1)), 0);
        assert_eq!(idx.list_len(CatId(2)), 2);
        assert_eq!(idx.list_len(CatId(3)), 1);
        assert_eq!(
            idx.get_tuple(&mut p, 1).unwrap().unwrap(),
            uda(&[(2, 0.3), (3, 0.7)])
        );
        // Upsert of a fresh tid inserts.
        assert!(!idx.update(&mut p, 3, &uda(&[(0, 1.0)])).unwrap());
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.check_invariants(&mut p).unwrap(), 3);
        // Queries see the updated state.
        let q = uncat_core::query::EqQuery::new(Uda::certain(CatId(2)), 0.2);
        let mut tids: Vec<u64> = idx
            .petq(&mut p, &q, crate::Strategy::Nra)
            .unwrap()
            .iter()
            .map(|m| m.tid)
            .collect();
        tids.sort_unstable();
        assert_eq!(tids, vec![1, 2]);
    }
}
