//! Cross-strategy correctness: every search strategy must return exactly
//! the tuples (and probabilities) of an in-memory reference evaluation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uncat_core::equality::{eq_prob, meets_threshold};
use uncat_core::query::{sort_matches_asc, sort_matches_desc, DstQuery, EqQuery, Match, TopKQuery};
use uncat_core::{CatId, Divergence, Domain, Uda};
use uncat_inverted::{InvertedIndex, Strategy};
use uncat_storage::{BufferPool, InMemoryDisk};

/// Random sparse UDA over `n_cats` categories with up to `max_nz` non-zeros.
fn random_uda(rng: &mut StdRng, n_cats: u32, max_nz: usize) -> Uda {
    let nz = rng.random_range(1..=max_nz);
    let mut cats: Vec<u32> = (0..n_cats).collect();
    // Partial Fisher–Yates for a random support.
    for i in 0..nz.min(cats.len()) {
        let j = rng.random_range(i..cats.len());
        cats.swap(i, j);
    }
    let mut b = uncat_core::UdaBuilder::new();
    for &c in cats.iter().take(nz) {
        b.push(CatId(c), rng.random_range(0.05..1.0f32)).unwrap();
    }
    b.finish_normalized().unwrap()
}

struct Fixture {
    data: Vec<(u64, Uda)>,
    idx: InvertedIndex,
    pool: BufferPool,
}

fn fixture(seed: u64, n: usize, n_cats: u32, max_nz: usize) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<(u64, Uda)> = (0..n as u64)
        .map(|tid| (tid, random_uda(&mut rng, n_cats, max_nz)))
        .collect();
    let mut pool = BufferPool::with_capacity(InMemoryDisk::shared(), 100);
    let idx = InvertedIndex::build(
        Domain::anonymous(n_cats),
        &mut pool,
        data.iter().map(|(t, u)| (*t, u)),
    )
    .unwrap();
    Fixture { data, idx, pool }
}

fn reference_petq(data: &[(u64, Uda)], q: &Uda, tau: f64) -> Vec<Match> {
    let mut out: Vec<Match> = data
        .iter()
        .filter_map(|(tid, t)| {
            let pr = eq_prob(q, t);
            meets_threshold(pr, tau).then_some(Match::new(*tid, pr))
        })
        .collect();
    sort_matches_desc(&mut out);
    out
}

fn assert_same(a: &[Match], b: &[Match], ctx: &str) {
    assert_eq!(
        a.iter().map(|m| m.tid).collect::<Vec<_>>(),
        b.iter().map(|m| m.tid).collect::<Vec<_>>(),
        "tuple sets differ: {ctx}"
    );
    for (x, y) in a.iter().zip(b) {
        assert!(
            (x.score - y.score).abs() < 1e-9,
            "scores differ for tid {}: {ctx}",
            x.tid
        );
    }
}

#[test]
fn all_strategies_match_reference_on_random_data() {
    let mut f = fixture(42, 600, 12, 4);
    let mut rng = StdRng::seed_from_u64(999);
    for qi in 0..25 {
        let q = random_uda(&mut rng, 12, 4);
        for &tau in &[0.02, 0.1, 0.3, 0.6, 0.9] {
            let query = EqQuery::new(q.clone(), tau);
            let expect = reference_petq(&f.data, &q, tau);
            for strat in Strategy::ALL {
                let got = f.idx.petq(&mut f.pool, &query, strat).unwrap();
                assert_same(
                    &got,
                    &expect,
                    &format!("query {qi}, tau {tau}, {:?}", strat),
                );
            }
        }
    }
}

#[test]
fn threshold_exactly_at_a_tuples_probability_includes_it() {
    let mut f = fixture(7, 300, 8, 3);
    let mut rng = StdRng::seed_from_u64(1);
    let q = random_uda(&mut rng, 8, 3);
    // Pick an actual probability value as the threshold: the boundary case
    // that epsilon handling must keep consistent across strategies.
    let probs: Vec<f64> = f
        .data
        .iter()
        .map(|(_, t)| eq_prob(&q, t))
        .filter(|&p| p > 0.0)
        .collect();
    let tau = probs[probs.len() / 2];
    let expect = reference_petq(&f.data, &q, tau);
    assert!(!expect.is_empty());
    for strat in Strategy::ALL {
        let got = f
            .idx
            .petq(&mut f.pool, &EqQuery::new(q.clone(), tau), strat)
            .unwrap();
        assert_same(&got, &expect, &format!("boundary tau, {strat:?}"));
    }
}

#[test]
fn top_k_matches_reference() {
    let mut f = fixture(11, 500, 10, 4);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..20 {
        let q = random_uda(&mut rng, 10, 4);
        for &k in &[1usize, 5, 20, 100] {
            let mut expect: Vec<Match> = f
                .data
                .iter()
                .filter_map(|(tid, t)| {
                    let pr = eq_prob(&q, t);
                    (pr > 0.0).then_some(Match::new(*tid, pr))
                })
                .collect();
            sort_matches_desc(&mut expect);
            expect.truncate(k);
            let got = f
                .idx
                .top_k(&mut f.pool, &TopKQuery::new(q.clone(), k))
                .unwrap();
            assert_same(&got, &expect, &format!("top-{k}"));
        }
    }
}

#[test]
fn top_k_larger_than_matching_set_returns_all() {
    let mut f = fixture(3, 50, 6, 2);
    let q = Uda::certain(CatId(0));
    let got = f
        .idx
        .top_k(&mut f.pool, &TopKQuery::new(q.clone(), 1000))
        .unwrap();
    let matching = f.data.iter().filter(|(_, t)| eq_prob(&q, t) > 0.0).count();
    assert_eq!(got.len(), matching);
}

#[test]
fn peq_returns_every_overlapping_tuple() {
    let mut f = fixture(17, 200, 6, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let q = random_uda(&mut rng, 6, 3);
    let got = f.idx.peq(&mut f.pool, &q).unwrap();
    let expect: Vec<u64> = {
        let mut v: Vec<Match> = f
            .data
            .iter()
            .filter_map(|(tid, t)| {
                let pr = eq_prob(&q, t);
                (pr > 0.0).then_some(Match::new(*tid, pr))
            })
            .collect();
        sort_matches_desc(&mut v);
        v.into_iter().map(|m| m.tid).collect()
    };
    assert_eq!(got.iter().map(|m| m.tid).collect::<Vec<_>>(), expect);
}

#[test]
fn dstq_matches_reference_for_all_divergences() {
    let mut f = fixture(23, 300, 8, 3);
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..10 {
        let q = random_uda(&mut rng, 8, 3);
        for dv in Divergence::ALL {
            for &tau_d in &[0.05, 0.3, 0.8, 1.5] {
                let query = DstQuery::new(q.clone(), tau_d, dv);
                let got = f.idx.dstq(&mut f.pool, &query).unwrap();
                let mut expect: Vec<Match> = f
                    .data
                    .iter()
                    .filter_map(|(tid, t)| {
                        let d = dv.eval(q.entries(), t.entries());
                        (d <= tau_d).then_some(Match::new(*tid, d))
                    })
                    .collect();
                sort_matches_asc(&mut expect);
                assert_same(&got, &expect, &format!("dstq {dv:?} tau_d {tau_d}"));
            }
        }
    }
}

#[test]
fn results_survive_incremental_inserts_and_deletes() {
    let mut f = fixture(31, 200, 8, 3);
    let mut rng = StdRng::seed_from_u64(13);
    // Delete a third, insert some new ones.
    for tid in (0..200u64).step_by(3) {
        assert!(f.idx.delete(&mut f.pool, tid).unwrap());
    }
    f.data.retain(|(tid, _)| tid % 3 != 0);
    for tid in 1000..1050u64 {
        let u = random_uda(&mut rng, 8, 3);
        f.idx.insert(&mut f.pool, tid, &u).unwrap();
        f.data.push((tid, u));
    }
    let q = random_uda(&mut rng, 8, 3);
    for &tau in &[0.05, 0.4] {
        let expect = reference_petq(&f.data, &q, tau);
        for strat in Strategy::ALL {
            let got = f
                .idx
                .petq(&mut f.pool, &EqQuery::new(q.clone(), tau), strat)
                .unwrap();
            assert_same(&got, &expect, &format!("after updates, {strat:?}"));
        }
    }
}

#[test]
fn early_stopping_beats_brute_on_high_thresholds() {
    // The paper's claim for the optimized strategies: "especially useful
    // when the data or query is likely to contain many insignificantly low
    // probability values" and the threshold is high. With long lists and a
    // threshold close to the maximum attainable probability, Lemma 1 stops
    // highest-prob-first/NRA after a short prefix, while inv-index-search
    // reads every query list end to end.
    let mut f = fixture(51, 20_000, 5, 2);
    let mut rng = StdRng::seed_from_u64(8);
    // A concentrated query: one dominant category.
    let q = Uda::from_pairs([
        (CatId(rng.random_range(0..5)), 0.9f32),
        (CatId(5 % 5), 0.0), // no-op entry, dropped
    ])
    .unwrap();
    // 0.95 is above any attainable probability for this query (≤ 0.9):
    // Lemma 1 stops the optimized strategies after one frontier peek,
    // while inv-index-search still reads the whole list.
    let query = EqQuery::new(q, 0.95);

    let io_for = |strat: Strategy, f: &mut Fixture| {
        f.pool.clear().unwrap();
        f.pool.reset_stats();
        let n = f.idx.petq(&mut f.pool, &query, strat).unwrap().len();
        (f.pool.stats().physical_reads, n)
    };

    let (brute_io, brute_n) = io_for(Strategy::Brute, &mut f);
    let (nra_io, nra_n) = io_for(Strategy::Nra, &mut f);
    let (hpf_io, hpf_n) = io_for(Strategy::HighestProbFirst, &mut f);
    assert_eq!(brute_n, nra_n);
    assert_eq!(brute_n, hpf_n);
    assert!(
        nra_io < brute_io,
        "NRA ({nra_io} I/Os) should beat brute force ({brute_io} I/Os) at high thresholds"
    );
    assert!(
        hpf_io <= brute_io,
        "highest-prob-first ({hpf_io} I/Os) should not exceed brute ({brute_io} I/Os) here"
    );
}
