//! Planner-vs-oracle sweep → the `BENCH_planner.json` artifact.
//!
//! For every selectivity point of the calibrated CRM1 workload, run the
//! five fixed PETQ strategies and [`Strategy::Auto`] over identical
//! data, each query on a fresh [`QUERY_FRAMES`]-frame pool. The *oracle*
//! for a point is the fixed strategy with the lowest scalar cost
//! (`postings_scanned + 1000 × physical_reads`, the estimator's own
//! weighting — see `docs/METRICS.md`) measured on **actual** counters.
//! The artifact records Auto's postings-scanned and physical-read
//! averages next to the oracle's, plus their ratios — how much the
//! planner leaves on the table by predicting instead of peeking.
//!
//! The artifact is schema-versioned ([`PLANNER_SCHEMA_VERSION`]) and
//! re-validated by [`validate_report`], which also enforces the
//! regression bound: no point may show Auto worse than
//! [`MAX_RATIO`] × the oracle on either counter. CI regenerates the
//! artifact at quick scale on every push and fails if the bound or the
//! schema regresses.

use uncat_datagen::crm;
use uncat_datagen::workload::{make_workload, queries_from_data, SELECTIVITIES};
use uncat_inverted::Strategy;

use crate::error::{BenchError, BenchResult};
use crate::json::Json;
use crate::measure::{build_inverted, profile_petq, Scale, QUERY_FRAMES};
use crate::table::{FigureTable, Series};

/// Version of the `BENCH_planner.json` schema. Bump on any change to
/// the field set or semantics.
pub const PLANNER_SCHEMA_VERSION: u64 = 1;

/// Regression bound enforced by [`validate_report`]: Auto may not do
/// worse than this factor of the per-point oracle on postings scanned
/// or physical reads. (The acceptance target is tighter — within 10% —
/// but the hard bound leaves room for workload jitter at quick scale.)
pub const MAX_RATIO: f64 = 1.5;

/// One selectivity point of the sweep.
#[derive(Debug)]
pub struct PlannerPoint {
    /// Workload selectivity (fraction of tuples a query matches).
    pub selectivity: f64,
    /// The oracle: cheapest fixed strategy on actual counters.
    pub best: &'static str,
    /// Auto's average postings scanned per query.
    pub auto_postings: f64,
    /// The oracle strategy's average postings scanned per query.
    pub best_postings: f64,
    /// Auto's average physical reads per query.
    pub auto_reads: f64,
    /// The oracle strategy's average physical reads per query.
    pub best_reads: f64,
    /// Mid-query fallbacks Auto took across the point's queries.
    pub fallbacks: u64,
}

impl PlannerPoint {
    /// Auto / oracle on postings scanned (1.0 = planner matched the
    /// oracle; an identical-zero pair also reports 1.0).
    pub fn postings_ratio(&self) -> f64 {
        ratio(self.auto_postings, self.best_postings)
    }

    /// Auto / oracle on physical reads.
    pub fn reads_ratio(&self) -> f64 {
        ratio(self.auto_reads, self.best_reads)
    }
}

fn ratio(auto: f64, best: f64) -> f64 {
    if best <= 0.0 {
        if auto <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        auto / best
    }
}

/// The whole sweep, ready to serialize.
#[derive(Debug)]
pub struct PlannerReport {
    /// Dataset identifier (always CRM1 today).
    pub dataset: &'static str,
    /// Tuples in the dataset.
    pub tuples: usize,
    /// One entry per selectivity point.
    pub points: Vec<PlannerPoint>,
}

/// Run the planner-vs-oracle sweep at the given scale.
pub fn planner_sweep(scale: &Scale) -> BenchResult<PlannerReport> {
    let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
    let queries = queries_from_data(&data, scale.queries, scale.seed ^ 0xBEEF);
    let workload = make_workload(&data, &queries, &SELECTIVITIES);

    // One build serves every strategy: the planner's cached statistics
    // are collected at build time, exactly what a fresh query sees.
    let (mut backend, store) = build_inverted(&domain, &data, Strategy::Auto)?;

    let mut points = Vec::new();
    for (selectivity, qs) in &workload {
        if qs.is_empty() {
            continue;
        }
        let mut best: Option<(&'static str, f64, f64)> = None;
        for strat in Strategy::ALL {
            backend.strategy = strat;
            let prof = profile_petq(&backend, &store, QUERY_FRAMES, qs)?;
            let postings = prof.per_query(prof.metrics.postings_scanned);
            let reads = prof.avg_reads;
            let cost = postings + 1000.0 * reads;
            let better = match &best {
                None => true,
                Some((_, bp, br)) => cost < bp + 1000.0 * br,
            };
            if better {
                best = Some((strat.name(), postings, reads));
            }
        }
        let (best_name, best_postings, best_reads) = best.expect("Strategy::ALL is non-empty");

        backend.strategy = Strategy::Auto;
        let prof = profile_petq(&backend, &store, QUERY_FRAMES, qs)?;
        points.push(PlannerPoint {
            selectivity: *selectivity,
            best: best_name,
            auto_postings: prof.per_query(prof.metrics.postings_scanned),
            best_postings,
            auto_reads: prof.avg_reads,
            best_reads,
            fallbacks: prof.metrics.plan_fallbacks,
        });
    }
    if points.is_empty() {
        return Err(BenchError::Empty {
            what: "planner-sweep calibration",
        });
    }
    Ok(PlannerReport {
        dataset: "crm1",
        tuples: data.len(),
        points,
    })
}

/// The sweep as a [`FigureTable`] for the `figures` bin: Auto's and the
/// oracle's postings/reads per selectivity, plus the two ratio series.
pub fn planner_figure(scale: &Scale) -> BenchResult<FigureTable> {
    let report = planner_sweep(scale)?;
    let col = |f: &dyn Fn(&PlannerPoint) -> f64| -> Vec<(f64, f64)> {
        report
            .points
            .iter()
            .map(|p| (p.selectivity, f(p)))
            .collect()
    };
    let series = vec![
        Series::new("auto-post", col(&|p| p.auto_postings)),
        Series::new("oracle-post", col(&|p| p.best_postings)),
        Series::new("auto-reads", col(&|p| p.auto_reads)),
        Series::new("oracle-reads", col(&|p| p.best_reads)),
        Series::new("post-ratio", col(&|p| p.postings_ratio())),
        Series::new("reads-ratio", col(&|p| p.reads_ratio())),
    ];
    Ok(FigureTable::new(
        "planner",
        "Cost-based planner vs per-point oracle (CRM1)",
        "selectivity",
        series,
    ))
}

/// Serialize a report to the schema-versioned JSON artifact shape.
pub fn report_to_json(report: &PlannerReport) -> Json {
    let points = report
        .points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("selectivity".into(), Json::Num(p.selectivity)),
                ("best".into(), Json::Str(p.best.into())),
                ("auto_postings".into(), Json::Num(p.auto_postings)),
                ("best_postings".into(), Json::Num(p.best_postings)),
                ("auto_reads".into(), Json::Num(p.auto_reads)),
                ("best_reads".into(), Json::Num(p.best_reads)),
                ("postings_ratio".into(), Json::Num(p.postings_ratio())),
                ("reads_ratio".into(), Json::Num(p.reads_ratio())),
                ("fallbacks".into(), Json::Num(p.fallbacks as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "schema_version".into(),
            Json::Num(PLANNER_SCHEMA_VERSION as f64),
        ),
        ("dataset".into(), Json::Str(report.dataset.into())),
        ("tuples".into(), Json::Num(report.tuples as f64)),
        ("max_ratio".into(), Json::Num(MAX_RATIO)),
        ("points".into(), Json::Arr(points)),
    ])
}

/// Validate a parsed `BENCH_planner.json` document: version match,
/// required keys, internally consistent ratios, and the regression
/// bound — no point worse than [`MAX_RATIO`] × the oracle on either
/// counter.
pub fn validate_report(doc: &Json) -> BenchResult<()> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or_else(|| BenchError::schema("missing schema_version"))?;
    if version != PLANNER_SCHEMA_VERSION as f64 {
        return Err(BenchError::schema(format!(
            "schema_version {version} != {PLANNER_SCHEMA_VERSION}"
        )));
    }
    for key in ["dataset", "tuples", "max_ratio"] {
        if doc.get(key).is_none() {
            return Err(BenchError::schema(format!("missing top-level key {key:?}")));
        }
    }
    let points = doc
        .get("points")
        .and_then(Json::as_array)
        .ok_or_else(|| BenchError::schema("missing points array"))?;
    if points.is_empty() {
        return Err(BenchError::schema("points array is empty"));
    }
    for (i, point) in points.iter().enumerate() {
        if point.get("best").and_then(Json::as_str).is_none() {
            return Err(BenchError::schema(format!("point {i}: missing \"best\"")));
        }
        let num = |key: &str| -> BenchResult<f64> {
            point
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| BenchError::schema(format!("point {i}: missing number {key:?}")))
        };
        for key in [
            "selectivity",
            "auto_postings",
            "best_postings",
            "auto_reads",
            "best_reads",
            "fallbacks",
        ] {
            if num(key)? < 0.0 {
                return Err(BenchError::schema(format!("point {i}: negative {key:?}")));
            }
        }
        for key in ["postings_ratio", "reads_ratio"] {
            let r = num(key)?;
            if !r.is_finite() {
                return Err(BenchError::schema(format!(
                    "point {i}: {key} is not finite"
                )));
            }
            if r > MAX_RATIO {
                return Err(BenchError::schema(format!(
                    "point {i}: {key} = {r:.3} exceeds the {MAX_RATIO}× regression bound"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_report() -> PlannerReport {
        PlannerReport {
            dataset: "crm1",
            tuples: 100,
            points: vec![
                PlannerPoint {
                    selectivity: 0.001,
                    best: "nra",
                    auto_postings: 100.0,
                    best_postings: 100.0,
                    auto_reads: 4.0,
                    best_reads: 4.0,
                    fallbacks: 0,
                },
                PlannerPoint {
                    selectivity: 0.1,
                    best: "column-pruning",
                    auto_postings: 210.0,
                    best_postings: 200.0,
                    auto_reads: 9.0,
                    best_reads: 8.0,
                    fallbacks: 1,
                },
            ],
        }
    }

    /// Structural only: the sweep's own artifact must validate and
    /// survive a parse round trip (the real sweep is exercised by the
    /// `planner` bin and CI's bench smoke, not tier-1).
    #[test]
    fn synthetic_report_roundtrips_and_validates() {
        let doc = report_to_json(&synthetic_report());
        validate_report(&doc).expect("own artifact validates");
        let reparsed = Json::parse(&doc.render_pretty()).expect("parse artifact");
        validate_report(&reparsed).expect("reparsed artifact validates");
    }

    #[test]
    fn validator_rejects_ratio_regressions() {
        let mut report = synthetic_report();
        report.points[1].auto_postings = report.points[1].best_postings * (MAX_RATIO + 0.1);
        let doc = report_to_json(&report);
        let err = validate_report(&doc).expect_err("ratio beyond the bound");
        assert!(err.to_string().contains("regression bound"), "{err}");
    }

    #[test]
    fn validator_rejects_wrong_version_and_missing_keys() {
        let mut doc = report_to_json(&synthetic_report());
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::Num(999.0);
        }
        assert!(validate_report(&doc).is_err());
        assert!(validate_report(&Json::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn zero_baselines_report_unit_or_infinite_ratios() {
        assert_eq!(ratio(0.0, 0.0), 1.0);
        assert_eq!(ratio(5.0, 0.0), f64::INFINITY);
        assert_eq!(ratio(3.0, 2.0), 1.5);
    }
}
