//! A minimal JSON value: render + parse, no dependencies.
//!
//! The latency artifact (`BENCH_latency.json`) must be both *written* by
//! the sweep binary and *re-read* by its `--validate` mode and the CI
//! smoke job, so this module carries a small recursive-descent parser
//! alongside the renderer. It covers exactly the JSON this crate emits:
//! objects, arrays, strings (with `\uXXXX` escapes), finite numbers,
//! booleans, and `null`. Object keys keep insertion order so rendering
//! is deterministic.

use std::fmt::Write as _;

/// A parsed or to-be-rendered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (rendered with up to 3 fractional digits when
    /// non-integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Render with two-space indentation (the artifact format — diffs
    /// of `BENCH_latency.json` between commits stay readable).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    render_str(k, out);
                    out.push_str(": ");
                    v.render_pretty_into(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }

    /// Parse a JSON document. Rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/inf; null is the honest stand-in
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:.3}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", want as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        _ => Err(format!("unexpected end or byte at {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs never appear in our own output;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {pos}"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("a \"b\"\n".into())),
            ("n".into(), Json::Num(42.0)),
            ("frac".into(), Json::Num(1.5)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "runs".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.25)]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        for text in [v.render(), v.render_pretty()] {
            let back = Json::parse(&text).expect("parse own output");
            assert_eq!(back, v, "roundtrip through {text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn lookup_helpers() {
        let v = Json::parse(r#"{"a": [1, 2], "b": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.0)
        );
        assert!(v.get("missing").is_none());
    }
}
