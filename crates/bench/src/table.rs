//! Text rendering of figure data (series over a shared x-axis).

use std::fmt;

/// One plotted line: a label and `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (matches the paper's, e.g. `CRM1-Inv-Thres`).
    pub label: String,
    /// `(x, average disk I/Os per query)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y value at `x`, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-12)
            .map(|&(_, y)| y)
    }
}

/// A whole figure: titled series over a shared x-axis.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Figure id (`fig4` … `fig10`, or an ablation name).
    pub id: String,
    /// Human title, mirroring the paper's caption.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureTable {
    /// Build a figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        series: Vec<Series>,
    ) -> FigureTable {
        FigureTable {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            series,
        }
    }

    /// All distinct x values across series, sorted.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        xs
    }

    /// A series by label, if present.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let xs = self.xs();
        write!(f, "{:>14}", self.xlabel)?;
        for s in &self.series {
            write!(f, "  {:>22}", s.label)?;
        }
        writeln!(f)?;
        for &x in &xs {
            if x < 0.5 {
                write!(f, "{:>13.3}%", x * 100.0)?;
            } else {
                write!(f, "{:>14.0}", x)?;
            }
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => write!(f, "  {:>22.1}", y)?,
                    None => write!(f, "  {:>22}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_series_and_points() {
        let t = FigureTable::new(
            "figX",
            "demo",
            "selectivity",
            vec![
                Series::new("A", vec![(0.001, 10.0), (0.01, 20.0)]),
                Series::new("B", vec![(0.01, 30.0)]),
            ],
        );
        let s = format!("{t}");
        assert!(s.contains("figX"));
        assert!(s.contains("A"));
        assert!(s.contains("B"));
        assert!(s.contains("10.0"));
        assert!(s.contains("30.0"));
        assert!(s.contains("-"), "missing point renders as a dash");
        assert_eq!(t.xs(), vec![0.001, 0.01]);
        assert_eq!(t.series_named("B").unwrap().y_at(0.01), Some(30.0));
    }
}
