//! Typed errors for the bench harness.
//!
//! The harness used to `.expect()` its way through builds and probes; a
//! failure in a long figure sweep then aborted the whole run with a
//! context-free panic. Every fallible step now reports a [`BenchError`]
//! naming what failed, so the `figures` and `latency` binaries can print
//! one actionable line and exit nonzero.

use std::fmt;

use uncat_storage::StorageError;

/// Everything the bench harness can fail on.
#[derive(Debug)]
pub enum BenchError {
    /// An index build, flush, or query failed in the storage layer.
    Storage {
        /// What the harness was doing (e.g. `"build inverted index"`).
        context: &'static str,
        /// The underlying typed failure.
        source: StorageError,
    },
    /// An OS-level file operation failed (writing an artifact).
    Io {
        /// The file being written.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A produced or loaded artifact violates its schema.
    Schema {
        /// What is wrong, in one sentence.
        detail: String,
    },
    /// A sweep produced no data points (e.g. calibration found no
    /// queries at the requested selectivity).
    Empty {
        /// The sweep or workload that came up empty.
        what: &'static str,
    },
}

impl BenchError {
    /// Wrap a storage failure with the harness step it happened in.
    pub fn storage(context: &'static str) -> impl FnOnce(StorageError) -> BenchError {
        move |source| BenchError::Storage { context, source }
    }

    /// Wrap a file failure with its path.
    pub fn io(path: impl Into<String>) -> impl FnOnce(std::io::Error) -> BenchError {
        let path = path.into();
        move |source| BenchError::Io { path, source }
    }

    /// A schema violation.
    pub fn schema(detail: impl Into<String>) -> BenchError {
        BenchError::Schema {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Storage { context, source } => write!(f, "{context}: {source}"),
            BenchError::Io { path, source } => write!(f, "{path}: {source}"),
            BenchError::Schema { detail } => write!(f, "schema violation: {detail}"),
            BenchError::Empty { what } => write!(f, "{what} produced no data points"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Storage { source, .. } => Some(source),
            BenchError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Shorthand for harness results.
pub type BenchResult<T> = Result<T, BenchError>;
