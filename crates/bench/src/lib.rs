//! Figure-regeneration harness for the ICDE'07 evaluation.
//!
//! Every figure of the paper's Section 4 has a function here returning a
//! [`FigureTable`]: the same series the paper plots, measured on this
//! reproduction (disk I/Os per query on the y-axis, query selectivity or
//! the figure's own x-axis on the x-axis).
//!
//! Run them all with `cargo run --release -p uncat-bench --bin figures`,
//! or one at a time (`… --bin figures -- fig6`). Criterion wall-clock
//! benches covering the same configurations live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod figures;
pub mod json;
pub mod latency;
pub mod measure;
pub mod planner;
pub mod service;
pub mod table;

pub use error::{BenchError, BenchResult};
pub use figures::*;
pub use json::Json;
pub use latency::{latency_sweep, LatencyReport, LatencyRun};
pub use measure::{avg_petq_io, avg_topk_io, build_inverted, build_pdr, Scale};
pub use planner::{planner_sweep, PlannerPoint, PlannerReport};
pub use service::{service_sweep, ServiceBenchConfig, ServiceReport, TenantRun};
pub use table::{FigureTable, Series};
