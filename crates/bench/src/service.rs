//! Multi-tenant service workload driver → the `BENCH_service.json`
//! artifact.
//!
//! Where `latency.rs` times one index under one thread, this module
//! drives a whole [`QueryService`]: several tenants, each a sharded
//! CRM1 dataset behind its own admission gate, hammered by a pool of
//! workers whose tenant choice is Zipf-skewed (real multi-tenant load
//! is never uniform). Two loop shapes run:
//!
//! * **closed** — every worker issues its next query the moment the
//!   previous one returns; throughput is whatever the service sustains.
//! * **open** — arrivals follow a fixed schedule regardless of
//!   completions, so queueing (and admission waits/rejections) shows up
//!   in the tail latencies instead of silently throttling offered load.
//!
//! Per tenant and loop the artifact reports completed/rejected counts,
//! admission waits, throughput, and p50/p95/p99 from the same mergeable
//! [`LatencyHistogram`] the tracer uses. A final sequential pass runs
//! the skewed tenant's top-k queries with the cross-shard floor on and
//! off; the floored run must scan **strictly fewer postings** — the
//! validator enforces it, so the artifact doubles as a regression gate
//! on the scatter-gather pruning.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use uncat_core::query::{EqQuery, TopKQuery};
use uncat_datagen::workload::{make_workload, queries_from_data, CalibratedQuery, SELECTIVITIES};
use uncat_datagen::{crm, zipf::zipf_ranks};
use uncat_inverted::Strategy;
use uncat_service::{QueryService, ServiceConfig, ServiceError, TenantConfig};
use uncat_storage::trace::LatencyHistogram;
use uncat_storage::InMemoryDisk;

use crate::error::{BenchError, BenchResult};
use crate::json::Json;
use crate::measure::{Scale, QUERY_FRAMES};

/// Version of the `BENCH_service.json` schema. Bump on any change to
/// the field set or semantics.
pub const SERVICE_SCHEMA_VERSION: u64 = 1;

/// Zipf exponent for tenant choice: tenant 0 dominates, the tail
/// trickles — the skew the cross-shard floor comparison runs under.
const TENANT_SKEW: f64 = 1.1;

/// How the driver shapes its load.
#[derive(Clone, Debug)]
pub struct ServiceBenchConfig {
    /// Registered tenants.
    pub tenants: usize,
    /// Shards per tenant's dataset.
    pub shards: usize,
    /// Closed-loop workers (also the open loop's worker pool).
    pub concurrency: usize,
    /// Queries issued per loop shape.
    pub ops: usize,
    /// Open-loop offered rate, queries/second.
    pub open_rate_qps: f64,
}

impl ServiceBenchConfig {
    /// CI-sized: everything in a couple of seconds.
    pub fn quick() -> ServiceBenchConfig {
        ServiceBenchConfig {
            tenants: 2,
            shards: 2,
            concurrency: 4,
            ops: 120,
            open_rate_qps: 400.0,
        }
    }

    /// Paper-scale datasets, a heavier mix.
    pub fn full() -> ServiceBenchConfig {
        ServiceBenchConfig {
            tenants: 4,
            shards: 4,
            concurrency: 8,
            ops: 2_000,
            open_rate_qps: 1_000.0,
        }
    }
}

/// One (loop, tenant) cell of the drive.
#[derive(Debug)]
pub struct TenantRun {
    /// `"closed"` or `"open"`.
    pub loop_mode: &'static str,
    /// Tenant name.
    pub tenant: String,
    /// Queries that completed.
    pub completed: u64,
    /// Queries rejected by admission control.
    pub rejected: u64,
    /// Completed queries that waited in the admission queue first.
    pub waits: u64,
    /// Completed queries per second of loop wall time.
    pub qps: f64,
    /// End-to-end per-query latency (admission wait included).
    pub hist: LatencyHistogram,
}

/// The floored-vs-floorless postings comparison on the skewed tenant.
#[derive(Debug)]
pub struct FloorComparison {
    /// Postings scanned with the cross-shard floor shared.
    pub floored_postings: u64,
    /// Postings scanned with every shard probing cold.
    pub floorless_postings: u64,
}

/// The whole drive, ready to serialize.
#[derive(Debug)]
pub struct ServiceReport {
    /// Load shape the drive ran.
    pub config: ServiceBenchConfig,
    /// Tuples per tenant dataset.
    pub tuples: usize,
    /// One entry per (loop, tenant).
    pub runs: Vec<TenantRun>,
    /// Cross-shard floor pruning evidence.
    pub floor: FloorComparison,
}

/// Per-tenant accumulators one loop writes into.
struct TenantAcc {
    completed: AtomicU64,
    rejected: AtomicU64,
    waits: AtomicU64,
    hist: Mutex<LatencyHistogram>,
}

impl TenantAcc {
    fn new() -> TenantAcc {
        TenantAcc {
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            hist: Mutex::new(LatencyHistogram::new()),
        }
    }
}

/// Build the service, drive both loop shapes, and measure the floor.
pub fn service_sweep(scale: &Scale, config: &ServiceBenchConfig) -> BenchResult<ServiceReport> {
    assert!(config.tenants >= 1 && config.shards >= 1 && config.concurrency >= 1);
    let store = InMemoryDisk::shared();
    let service = QueryService::new(
        store,
        ServiceConfig {
            total_frames: (QUERY_FRAMES * config.concurrency * 4).max(1024),
            pool_shards: 8,
        },
    );

    // Each tenant gets its own CRM1 world and a quota of two concurrent
    // queries plus a short queue — tight enough that the Zipf-hot
    // tenant actually exercises waiting and rejection under load.
    let mut tenant_queries: Vec<Vec<CalibratedQuery>> = Vec::new();
    let mut tuples = 0;
    for t in 0..config.tenants {
        let (domain, data) = crm::crm1(scale.crm_n, scale.seed ^ (t as u64).wrapping_mul(7919));
        tuples = data.len();
        let queries = queries_from_data(&data, scale.queries.max(4), scale.seed ^ 0x5E4C);
        let workload = make_workload(&data, &queries, &SELECTIVITIES);
        let flat: Vec<CalibratedQuery> = workload.into_iter().flat_map(|(_, qs)| qs).collect();
        if flat.is_empty() {
            return Err(BenchError::Empty {
                what: "service-sweep calibration",
            });
        }
        service
            .register_tenant_inverted(
                TenantConfig::new(format!("t{t}"))
                    .frame_quota(QUERY_FRAMES * 2)
                    .queue_depth(2)
                    .frames_per_query(QUERY_FRAMES),
                &domain,
                &data,
                config.shards,
                Strategy::Auto,
            )
            .map_err(service_err("register tenant"))?;
        tenant_queries.push(flat);
    }

    let mut runs = Vec::new();
    for loop_mode in ["closed", "open"] {
        runs.extend(drive_loop(
            &service,
            config,
            &tenant_queries,
            loop_mode,
            scale.seed,
        )?);
    }

    let floor = measure_floor(&service, &tenant_queries[0])?;
    Ok(ServiceReport {
        config: config.clone(),
        tuples,
        runs,
        floor,
    })
}

/// Map a service failure into a bench error (rejections are data, not
/// failures, and are handled by the drivers before this is reached).
fn service_err(context: &'static str) -> impl FnOnce(ServiceError) -> BenchError {
    move |e| match e {
        ServiceError::Storage(source) => BenchError::Storage { context, source },
        other => BenchError::Schema {
            detail: format!("{context}: unexpected service error: {other}"),
        },
    }
}

/// Drive one loop shape and return its per-tenant runs.
fn drive_loop(
    service: &QueryService,
    config: &ServiceBenchConfig,
    tenant_queries: &[Vec<CalibratedQuery>],
    loop_mode: &'static str,
    seed: u64,
) -> BenchResult<Vec<TenantRun>> {
    let tenant_seq = zipf_ranks(
        config.tenants,
        TENANT_SKEW,
        config.ops,
        seed ^ u64::from(loop_mode == "open"),
    );
    let accs: Vec<TenantAcc> = (0..config.tenants).map(|_| TenantAcc::new()).collect();
    let next = AtomicUsize::new(0);
    let failure: Mutex<Option<BenchError>> = Mutex::new(None);
    let started = std::time::Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..config.concurrency {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tenant_seq.len() {
                    break;
                }
                if loop_mode == "open" {
                    // Fixed arrival schedule: query `i` is *offered* at
                    // `i / rate`, whether or not earlier ones finished.
                    let due = std::time::Duration::from_secs_f64(
                        i as f64 / config.open_rate_qps.max(1.0),
                    );
                    if let Some(wait) = due.checked_sub(started.elapsed()) {
                        std::thread::sleep(wait);
                    }
                }
                let t = tenant_seq[i];
                let acc = &accs[t];
                let cq = &tenant_queries[t][i % tenant_queries[t].len()];
                let name = format!("t{t}");
                // Alternate the two paper select forms.
                let outcome = if i.is_multiple_of(2) {
                    service.petq(&name, &EqQuery::new(cq.q.clone(), cq.tau))
                } else {
                    service.top_k(&name, &TopKQuery::new(cq.q.clone(), cq.k))
                };
                match outcome {
                    Ok(out) => {
                        acc.completed.fetch_add(1, Ordering::Relaxed);
                        acc.waits
                            .fetch_add(out.metrics.admission_waits, Ordering::Relaxed);
                        acc.hist
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .record(out.wall_ns);
                    }
                    Err(ServiceError::Rejected { .. }) => {
                        acc.rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        let mut slot = failure
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        if slot.is_none() {
                            *slot = Some(match e {
                                ServiceError::Storage(source) => BenchError::Storage {
                                    context: "service drive query",
                                    source,
                                },
                                other => BenchError::Schema {
                                    detail: format!("service drive query: {other}"),
                                },
                            });
                        }
                        break;
                    }
                }
            });
        }
    });
    if let Some(e) = failure
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return Err(e);
    }

    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    Ok(accs
        .into_iter()
        .enumerate()
        .map(|(t, acc)| {
            let completed = acc.completed.into_inner();
            TenantRun {
                loop_mode,
                tenant: format!("t{t}"),
                completed,
                rejected: acc.rejected.into_inner(),
                waits: acc.waits.into_inner(),
                qps: completed as f64 / elapsed,
                hist: acc
                    .hist
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            }
        })
        .collect())
}

/// Run the hot tenant's top-k workload sequentially, floor shared vs
/// floor off, and report postings scanned by each.
fn measure_floor(
    service: &QueryService,
    queries: &[CalibratedQuery],
) -> BenchResult<FloorComparison> {
    let mut counts = [0u64; 2];
    for (slot, floored) in [(0usize, true), (1usize, false)] {
        service.set_cross_shard_floor(floored);
        for cq in queries {
            let out = service
                .top_k("t0", &TopKQuery::new(cq.q.clone(), cq.k))
                .map_err(service_err("floor comparison top-k"))?;
            counts[slot] += out.metrics.postings_scanned;
        }
    }
    service.set_cross_shard_floor(true);
    Ok(FloorComparison {
        floored_postings: counts[0],
        floorless_postings: counts[1],
    })
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Serialize a report to the schema-versioned JSON artifact shape.
pub fn report_to_json(report: &ServiceReport) -> Json {
    let runs = report
        .runs
        .iter()
        .map(|run| {
            Json::Obj(vec![
                ("loop".into(), Json::Str(run.loop_mode.into())),
                ("tenant".into(), Json::Str(run.tenant.clone())),
                ("completed".into(), Json::Num(run.completed as f64)),
                ("rejected".into(), Json::Num(run.rejected as f64)),
                ("waits".into(), Json::Num(run.waits as f64)),
                ("qps".into(), Json::Num(run.qps)),
                ("mean_us".into(), Json::Num(run.hist.mean_ns() / 1_000.0)),
                ("p50_us".into(), Json::Num(us(run.hist.p50_ns()))),
                ("p95_us".into(), Json::Num(us(run.hist.p95_ns()))),
                ("p99_us".into(), Json::Num(us(run.hist.p99_ns()))),
                ("max_us".into(), Json::Num(us(run.hist.max_ns()))),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "schema_version".into(),
            Json::Num(SERVICE_SCHEMA_VERSION as f64),
        ),
        ("dataset".into(), Json::Str("crm1".into())),
        ("tuples".into(), Json::Num(report.tuples as f64)),
        ("tenants".into(), Json::Num(report.config.tenants as f64)),
        ("shards".into(), Json::Num(report.config.shards as f64)),
        (
            "concurrency".into(),
            Json::Num(report.config.concurrency as f64),
        ),
        ("ops".into(), Json::Num(report.config.ops as f64)),
        ("zipf_s".into(), Json::Num(TENANT_SKEW)),
        ("runs".into(), Json::Arr(runs)),
        (
            "floor".into(),
            Json::Obj(vec![
                (
                    "floored_postings".into(),
                    Json::Num(report.floor.floored_postings as f64),
                ),
                (
                    "floorless_postings".into(),
                    Json::Num(report.floor.floorless_postings as f64),
                ),
            ]),
        ),
    ])
}

/// Validate a parsed `BENCH_service.json` document: version match,
/// required keys, both loop shapes covered, every tenant completing
/// work, quantile monotonicity, and the cross-shard floor scanning
/// strictly fewer postings than floorless sharding.
pub fn validate_report(doc: &Json) -> BenchResult<()> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or_else(|| BenchError::schema("missing schema_version"))?;
    if version != SERVICE_SCHEMA_VERSION as f64 {
        return Err(BenchError::schema(format!(
            "schema_version {version} != {SERVICE_SCHEMA_VERSION}"
        )));
    }
    for key in [
        "dataset",
        "tuples",
        "tenants",
        "shards",
        "concurrency",
        "ops",
        "zipf_s",
    ] {
        if doc.get(key).is_none() {
            return Err(BenchError::schema(format!("missing top-level key {key:?}")));
        }
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or_else(|| BenchError::schema("missing runs array"))?;
    if runs.is_empty() {
        return Err(BenchError::schema("runs array is empty"));
    }
    let mut saw_closed = false;
    let mut saw_open = false;
    for (i, run) in runs.iter().enumerate() {
        match run.get("loop").and_then(Json::as_str) {
            Some("closed") => saw_closed = true,
            Some("open") => saw_open = true,
            other => return Err(BenchError::schema(format!("run {i}: bad loop {other:?}"))),
        }
        if run.get("tenant").and_then(Json::as_str).is_none() {
            return Err(BenchError::schema(format!("run {i}: missing tenant")));
        }
        let num = |key: &str| -> BenchResult<f64> {
            run.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| BenchError::schema(format!("run {i}: missing number {key:?}")))
        };
        if num("completed")? <= 0.0 {
            return Err(BenchError::schema(format!(
                "run {i}: every tenant must complete at least one query"
            )));
        }
        num("rejected")?;
        num("waits")?;
        if num("qps")? <= 0.0 {
            return Err(BenchError::schema(format!("run {i}: qps must be > 0")));
        }
        let (p50, p95, p99, max) = (
            num("p50_us")?,
            num("p95_us")?,
            num("p99_us")?,
            num("max_us")?,
        );
        if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
            return Err(BenchError::schema(format!(
                "run {i}: quantiles not monotone (p50={p50} p95={p95} p99={p99} max={max})"
            )));
        }
    }
    if !saw_closed || !saw_open {
        return Err(BenchError::schema(
            "runs must cover both the closed and open loops",
        ));
    }
    let floor = doc
        .get("floor")
        .ok_or_else(|| BenchError::schema("missing floor comparison"))?;
    let floored = floor
        .get("floored_postings")
        .and_then(Json::as_f64)
        .ok_or_else(|| BenchError::schema("floor: missing floored_postings"))?;
    let floorless = floor
        .get("floorless_postings")
        .and_then(Json::as_f64)
        .ok_or_else(|| BenchError::schema("floor: missing floorless_postings"))?;
    if floored >= floorless || floored.is_nan() || floorless.is_nan() {
        return Err(BenchError::schema(format!(
            "cross-shard floor must scan strictly fewer postings \
             (floored={floored} floorless={floorless})"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServiceReport {
        let mut h = LatencyHistogram::new();
        for ns in [1_000, 2_000, 4_000, 50_000] {
            h.record(ns);
        }
        let run = |loop_mode, tenant: &str| TenantRun {
            loop_mode,
            tenant: tenant.to_string(),
            completed: 4,
            rejected: 1,
            waits: 2,
            qps: 123.4,
            hist: h.clone(),
        };
        ServiceReport {
            config: ServiceBenchConfig::quick(),
            tuples: 100,
            runs: vec![
                run("closed", "t0"),
                run("closed", "t1"),
                run("open", "t0"),
                run("open", "t1"),
            ],
            floor: FloorComparison {
                floored_postings: 900,
                floorless_postings: 1_400,
            },
        }
    }

    /// Structural only: a synthetic report must serialize to a document
    /// its own validator accepts, and survive a parse round trip.
    #[test]
    fn synthetic_report_roundtrips_and_validates() {
        let doc = report_to_json(&report());
        validate_report(&doc).expect("own artifact validates");
        let reparsed = Json::parse(&doc.render_pretty()).expect("parse artifact");
        validate_report(&reparsed).expect("reparsed artifact validates");
    }

    #[test]
    fn validator_rejects_floorless_wins_and_missing_loops() {
        // Floor not strictly better → reject.
        let mut flat = report();
        flat.floor.floored_postings = flat.floor.floorless_postings;
        assert!(matches!(
            validate_report(&report_to_json(&flat)),
            Err(BenchError::Schema { .. })
        ));

        // Only one loop shape → reject.
        let mut one_loop = report();
        one_loop.runs.retain(|r| r.loop_mode == "closed");
        assert!(validate_report(&report_to_json(&one_loop)).is_err());

        // Wrong version → reject.
        let mut doc = report_to_json(&report());
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::Num(999.0);
        }
        assert!(validate_report(&doc).is_err());
    }

    /// End-to-end at a tiny scale: the sweep's own artifact validates,
    /// which pins the floored < floorless pruning inequality too.
    #[test]
    fn tiny_sweep_validates() {
        let scale = Scale {
            crm_n: 2_000,
            synth_n: 500,
            queries: 2,
            seed: 42,
        };
        let config = ServiceBenchConfig {
            tenants: 2,
            shards: 2,
            concurrency: 2,
            ops: 24,
            open_rate_qps: 2_000.0,
        };
        let report = service_sweep(&scale, &config).expect("sweep runs");
        validate_report(&report_to_json(&report)).expect("artifact validates");
    }
}
