//! Wall-clock latency sweep → the `BENCH_latency.json` artifact.
//!
//! The figure harness measures *I/O counts* (deterministic, what the
//! paper plots); this module measures *time*. Every (backend, strategy,
//! query-kind) combination runs the same calibrated CRM1 workload,
//! each query against a fresh [`QUERY_FRAMES`]-frame pool (the paper's
//! per-query model), and records per-query wall time into a
//! [`LatencyHistogram`] — the same log₂-bucketed, mergeable histogram
//! the tracer uses, so the artifact's quantile semantics match
//! `docs/METRICS.md` (reported quantile ≥ exact, < 2× exact).
//!
//! The artifact is schema-versioned ([`LATENCY_SCHEMA_VERSION`]) and
//! re-validated by [`validate_report`]; CI runs the sweep at quick
//! scale on every push and fails if the schema or the quantile
//! monotonicity invariant (p50 ≤ p95 ≤ p99 ≤ max) regresses. Absolute
//! numbers are machine-dependent and deliberately *not* asserted.

use uncat_core::query::{EqQuery, TopKQuery};
use uncat_datagen::crm;
use uncat_datagen::workload::{make_workload, queries_from_data, CalibratedQuery, SELECTIVITIES};
use uncat_inverted::Strategy;
use uncat_pdrtree::PdrConfig;
use uncat_query::UncertainIndex;
use uncat_storage::trace::{Clock, LatencyHistogram, MonotonicClock};
use uncat_storage::{BufferPool, QueryMetrics, SharedStore};

use crate::error::{BenchError, BenchResult};
use crate::json::Json;
use crate::measure::{build_inverted, build_pdr, Scale, QUERY_FRAMES};

/// Version of the `BENCH_latency.json` schema. Bump on any change to
/// the field set or semantics.
pub const LATENCY_SCHEMA_VERSION: u64 = 1;

/// How many passes over the calibrated query set each combination runs
/// (more samples per histogram than one pass would give).
const ROUNDS: usize = 3;

/// One (backend, strategy, query-kind) cell of the sweep.
#[derive(Debug)]
pub struct LatencyRun {
    /// `"inverted"` or `"pdr"`.
    pub backend: &'static str,
    /// Inverted search strategy name, or `"tree"` for the PDR-tree.
    pub strategy: &'static str,
    /// `"petq"` (threshold) or `"topk"`.
    pub kind: &'static str,
    /// `"private"` (the paper's fresh pool per query — cold reads every
    /// time) or `"shared"` (one pool reused across the cell — warm).
    pub pool: &'static str,
    /// Per-query wall times.
    pub hist: LatencyHistogram,
}

/// The whole sweep, ready to serialize.
#[derive(Debug)]
pub struct LatencyReport {
    /// Dataset identifier (always CRM1 today).
    pub dataset: &'static str,
    /// Tuples in the dataset.
    pub tuples: usize,
    /// Distinct calibrated queries per pass.
    pub queries: usize,
    /// Passes over the query set per cell.
    pub rounds: usize,
    /// One entry per (backend, strategy, kind).
    pub runs: Vec<LatencyRun>,
}

/// Run the latency sweep at the given scale.
pub fn latency_sweep(scale: &Scale) -> BenchResult<LatencyReport> {
    let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
    let queries = queries_from_data(&data, scale.queries, scale.seed ^ 0xBEEF);
    let workload = make_workload(&data, &queries, &SELECTIVITIES);
    let flat: Vec<&CalibratedQuery> = workload.iter().flat_map(|(_, qs)| qs.iter()).collect();
    if flat.is_empty() {
        return Err(BenchError::Empty {
            what: "latency-sweep calibration",
        });
    }
    let clock = MonotonicClock::new();

    let mut runs = Vec::new();
    for strat in Strategy::ALL {
        let (inv, store) = build_inverted(&domain, &data, strat)?;
        for kind in ["petq", "topk"] {
            for pool in ["private", "shared"] {
                runs.push(time_cell(
                    "inverted",
                    strat.name(),
                    kind,
                    pool,
                    &inv,
                    &store,
                    &flat,
                    &clock,
                )?);
            }
        }
    }
    let (pdr, store) = build_pdr(&domain, &data, PdrConfig::default())?;
    for kind in ["petq", "topk"] {
        for pool in ["private", "shared"] {
            runs.push(time_cell(
                "pdr", "tree", kind, pool, &pdr, &store, &flat, &clock,
            )?);
        }
    }

    Ok(LatencyReport {
        dataset: "crm1",
        tuples: data.len(),
        queries: flat.len(),
        rounds: ROUNDS,
        runs,
    })
}

#[allow(clippy::too_many_arguments)]
fn time_cell(
    backend: &'static str,
    strategy: &'static str,
    kind: &'static str,
    pool_mode: &'static str,
    index: &impl UncertainIndex,
    store: &SharedStore,
    queries: &[&CalibratedQuery],
    clock: &MonotonicClock,
) -> BenchResult<LatencyRun> {
    let mut hist = LatencyHistogram::new();
    // Shared mode reuses one pool across the whole cell, so repeated
    // pages stay warm; private mode is the paper's cold fresh pool per
    // query. The time difference between the two is the cache's worth
    // in wall-clock terms.
    let mut shared_pool = BufferPool::with_capacity(store.clone(), QUERY_FRAMES);
    for _ in 0..ROUNDS {
        for cq in queries {
            let mut private_pool;
            let pool = if pool_mode == "shared" {
                &mut shared_pool
            } else {
                private_pool = BufferPool::with_capacity(store.clone(), QUERY_FRAMES);
                &mut private_pool
            };
            let mut metrics = QueryMetrics::new();
            let t0 = clock.now_ns();
            match kind {
                "petq" => {
                    index
                        .petq_metered(pool, &EqQuery::new(cq.q.clone(), cq.tau), &mut metrics)
                        .map_err(BenchError::storage("latency petq probe"))?;
                }
                _ => {
                    index
                        .top_k_metered(pool, &TopKQuery::new(cq.q.clone(), cq.k), &mut metrics)
                        .map_err(BenchError::storage("latency top-k probe"))?;
                }
            }
            hist.record(clock.now_ns().saturating_sub(t0));
        }
    }
    Ok(LatencyRun {
        backend,
        strategy,
        kind,
        pool: pool_mode,
        hist,
    })
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Serialize a report to the schema-versioned JSON artifact shape.
pub fn report_to_json(report: &LatencyReport) -> Json {
    let runs = report
        .runs
        .iter()
        .map(|run| {
            Json::Obj(vec![
                ("backend".into(), Json::Str(run.backend.into())),
                ("strategy".into(), Json::Str(run.strategy.into())),
                ("kind".into(), Json::Str(run.kind.into())),
                ("pool".into(), Json::Str(run.pool.into())),
                ("count".into(), Json::Num(run.hist.count() as f64)),
                ("mean_us".into(), Json::Num(run.hist.mean_ns() / 1_000.0)),
                ("p50_us".into(), Json::Num(us(run.hist.p50_ns()))),
                ("p95_us".into(), Json::Num(us(run.hist.p95_ns()))),
                ("p99_us".into(), Json::Num(us(run.hist.p99_ns()))),
                ("max_us".into(), Json::Num(us(run.hist.max_ns()))),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "schema_version".into(),
            Json::Num(LATENCY_SCHEMA_VERSION as f64),
        ),
        ("dataset".into(), Json::Str(report.dataset.into())),
        ("tuples".into(), Json::Num(report.tuples as f64)),
        ("queries".into(), Json::Num(report.queries as f64)),
        ("rounds".into(), Json::Num(report.rounds as f64)),
        ("runs".into(), Json::Arr(runs)),
    ])
}

/// Validate a parsed `BENCH_latency.json` document against the schema:
/// version match, required keys, positive sample counts, quantile
/// monotonicity (p50 ≤ p95 ≤ p99 ≤ max), and coverage of both backends.
pub fn validate_report(doc: &Json) -> BenchResult<()> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or_else(|| BenchError::schema("missing schema_version"))?;
    if version != LATENCY_SCHEMA_VERSION as f64 {
        return Err(BenchError::schema(format!(
            "schema_version {version} != {LATENCY_SCHEMA_VERSION}"
        )));
    }
    for key in ["dataset", "tuples", "queries", "rounds"] {
        if doc.get(key).is_none() {
            return Err(BenchError::schema(format!("missing top-level key {key:?}")));
        }
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or_else(|| BenchError::schema("missing runs array"))?;
    if runs.is_empty() {
        return Err(BenchError::schema("runs array is empty"));
    }
    let mut saw_inverted = false;
    let mut saw_pdr = false;
    for (i, run) in runs.iter().enumerate() {
        for key in ["strategy", "kind", "pool"] {
            if run.get(key).and_then(Json::as_str).is_none() {
                return Err(BenchError::schema(format!("run {i}: missing {key:?}")));
            }
        }
        match run.get("backend").and_then(Json::as_str) {
            Some("inverted") => saw_inverted = true,
            Some("pdr") => saw_pdr = true,
            other => {
                return Err(BenchError::schema(format!(
                    "run {i}: bad backend {other:?}"
                )))
            }
        }
        let num = |key: &str| -> BenchResult<f64> {
            run.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| BenchError::schema(format!("run {i}: missing number {key:?}")))
        };
        if num("count")? <= 0.0 {
            return Err(BenchError::schema(format!("run {i}: count must be > 0")));
        }
        num("mean_us")?;
        let (p50, p95, p99, max) = (
            num("p50_us")?,
            num("p95_us")?,
            num("p99_us")?,
            num("max_us")?,
        );
        if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
            return Err(BenchError::schema(format!(
                "run {i}: quantiles not monotone (p50={p50} p95={p95} p99={p99} max={max})"
            )));
        }
    }
    if !saw_inverted || !saw_pdr {
        return Err(BenchError::schema(
            "runs must cover both the inverted and pdr backends",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Structural only: a synthetic report must serialize to a document
    /// its own validator accepts, and survive a parse round trip. No
    /// wall-clock numbers are asserted (tier-1 stays deterministic).
    #[test]
    fn synthetic_report_roundtrips_and_validates() {
        let mut h = LatencyHistogram::new();
        for ns in [100, 200, 400, 800, 10_000] {
            h.record(ns);
        }
        let report = LatencyReport {
            dataset: "crm1",
            tuples: 10,
            queries: 5,
            rounds: 1,
            runs: vec![
                LatencyRun {
                    backend: "inverted",
                    strategy: "nra",
                    kind: "petq",
                    pool: "private",
                    hist: h.clone(),
                },
                LatencyRun {
                    backend: "pdr",
                    strategy: "tree",
                    kind: "topk",
                    pool: "shared",
                    hist: h,
                },
            ],
        };
        let doc = report_to_json(&report);
        validate_report(&doc).expect("own artifact validates");
        let reparsed = Json::parse(&doc.render_pretty()).expect("parse artifact");
        validate_report(&reparsed).expect("reparsed artifact validates");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let ok = report_to_json(&LatencyReport {
            dataset: "crm1",
            tuples: 1,
            queries: 1,
            rounds: 1,
            runs: vec![LatencyRun {
                backend: "inverted",
                strategy: "nra",
                kind: "petq",
                pool: "private",
                hist: {
                    let mut h = LatencyHistogram::new();
                    h.record(1);
                    h
                },
            }],
        });
        // Missing the pdr backend.
        assert!(validate_report(&ok).is_err());

        // Wrong version.
        let mut wrong = ok.clone();
        if let Json::Obj(fields) = &mut wrong {
            fields[0].1 = Json::Num(999.0);
        }
        assert!(matches!(
            validate_report(&wrong),
            Err(BenchError::Schema { .. })
        ));

        // Non-monotone quantiles.
        let text = r#"{"schema_version":1,"dataset":"x","tuples":1,"queries":1,"rounds":1,
            "runs":[{"backend":"inverted","strategy":"nra","kind":"petq","pool":"private",
                     "count":1,"mean_us":1,"p50_us":9,"p95_us":2,"p99_us":3,"max_us":4},
                    {"backend":"pdr","strategy":"tree","kind":"petq","pool":"private",
                     "count":1,"mean_us":1,"p50_us":1,"p95_us":2,"p99_us":3,"max_us":4}]}"#;
        let doc = Json::parse(text).unwrap();
        assert!(validate_report(&doc).is_err());
    }
}
