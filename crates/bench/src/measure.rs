//! Measurement plumbing: index builders and per-query I/O averaging under
//! the paper's buffer discipline (fresh 100-frame pool per query).

use uncat_core::query::{EqQuery, TopKQuery};
use uncat_core::Domain;
use uncat_datagen::workload::CalibratedQuery;
use uncat_datagen::Dataset;
use uncat_inverted::{InvertedIndex, PostingFormat, Strategy};
use uncat_pdrtree::{PdrConfig, PdrTree};
use uncat_query::{InvertedBackend, UncertainIndex};
use uncat_storage::{BufferPool, InMemoryDisk, QueryMetrics, SharedStore};

use crate::error::{BenchError, BenchResult};

/// Experiment sizing. `full()` is the paper's scale; `quick()` keeps unit
/// tests and Criterion benches fast.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Tuples in the CRM datasets (paper: 100 000).
    pub crm_n: usize,
    /// Tuples in the synthetic datasets (paper: 10 000).
    pub synth_n: usize,
    /// Queries averaged per plotted point.
    pub queries: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's dataset sizes.
    pub fn full() -> Scale {
        Scale {
            crm_n: 100_000,
            synth_n: 10_000,
            queries: 10,
            seed: 42,
        }
    }

    /// Reduced sizes for tests/benches (same shapes, ~minutes → seconds).
    pub fn quick() -> Scale {
        Scale {
            crm_n: 10_000,
            synth_n: 2_000,
            queries: 4,
            seed: 42,
        }
    }

    /// Pick by the `UNCAT_SCALE` environment variable (`full` or `quick`).
    pub fn from_env() -> Scale {
        match std::env::var("UNCAT_SCALE").as_deref() {
            Ok("quick") => Scale::quick(),
            _ => Scale::full(),
        }
    }
}

/// Frames used while *building* indexes (not charged to queries).
const BUILD_FRAMES: usize = 512;
/// Frames per query — the paper's setting.
pub const QUERY_FRAMES: usize = 100;

/// Build an inverted index over its own store (default posting format).
pub fn build_inverted(
    domain: &Domain,
    data: &Dataset,
    strategy: Strategy,
) -> BenchResult<(InvertedBackend, SharedStore)> {
    build_inverted_fmt(domain, data, strategy, PostingFormat::default())
}

/// Build an inverted index in an explicit posting format — the block-max
/// ablation compares `Raw` and `Blocks` over identical data.
pub fn build_inverted_fmt(
    domain: &Domain,
    data: &Dataset,
    strategy: Strategy,
    format: PostingFormat,
) -> BenchResult<(InvertedBackend, SharedStore)> {
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), BUILD_FRAMES);
    let idx = InvertedIndex::build_with_format(
        domain.clone(),
        &mut pool,
        data.iter().map(|(t, u)| (*t, u)),
        format,
    )
    .map_err(BenchError::storage("build inverted index"))?;
    pool.flush()
        .map_err(BenchError::storage("flush inverted index"))?;
    Ok((InvertedBackend::with_strategy(idx, strategy), store))
}

/// Build a PDR-tree over its own store.
pub fn build_pdr(
    domain: &Domain,
    data: &Dataset,
    cfg: PdrConfig,
) -> BenchResult<(PdrTree, SharedStore)> {
    let store = InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), BUILD_FRAMES);
    let tree = PdrTree::build(
        domain.clone(),
        cfg,
        &mut pool,
        data.iter().map(|(t, u)| (*t, u)),
    )
    .map_err(BenchError::storage("build pdr-tree"))?;
    pool.flush()
        .map_err(BenchError::storage("flush pdr-tree"))?;
    Ok((tree, store))
}

/// Cost profile of one plotted point: average physical reads (the paper's
/// y-axis) plus the batch's summed [`QueryMetrics`] — the counters that
/// *explain* the reads (see `docs/METRICS.md`).
#[derive(Debug)]
pub struct QueryProfile {
    /// Average physical page reads per query.
    pub avg_reads: f64,
    /// Queries in the batch (divide a counter by this for a per-query
    /// average).
    pub queries: usize,
    /// Execution counters summed over the batch (`metrics.io` is the
    /// batch-summed pool I/O, so `avg_reads = io.physical_reads / queries`).
    pub metrics: QueryMetrics,
}

impl QueryProfile {
    /// Per-query average of an arbitrary counter value.
    pub fn per_query(&self, total: u64) -> f64 {
        if self.queries == 0 {
            f64::NAN
        } else {
            total as f64 / self.queries as f64
        }
    }
}

/// Average physical reads per PETQ over a calibrated query set.
pub fn avg_petq_io(
    index: &impl UncertainIndex,
    store: &SharedStore,
    frames: usize,
    queries: &[CalibratedQuery],
) -> BenchResult<f64> {
    Ok(profile_petq(index, store, frames, queries)?.avg_reads)
}

/// Full cost profile (reads + counters) per PETQ over a calibrated set.
pub fn profile_petq(
    index: &impl UncertainIndex,
    store: &SharedStore,
    frames: usize,
    queries: &[CalibratedQuery],
) -> BenchResult<QueryProfile> {
    profile(queries, |cq, metrics| {
        let mut pool = BufferPool::with_capacity(store.clone(), frames);
        index
            .petq_metered(&mut pool, &EqQuery::new(cq.q.clone(), cq.tau), metrics)
            .map_err(BenchError::storage("petq probe"))?;
        Ok(pool.stats())
    })
}

/// Average physical reads per top-k query over a calibrated query set.
pub fn avg_topk_io(
    index: &impl UncertainIndex,
    store: &SharedStore,
    frames: usize,
    queries: &[CalibratedQuery],
) -> BenchResult<f64> {
    Ok(profile_topk(index, store, frames, queries)?.avg_reads)
}

/// Full cost profile (reads + counters) per top-k query over a calibrated
/// set.
pub fn profile_topk(
    index: &impl UncertainIndex,
    store: &SharedStore,
    frames: usize,
    queries: &[CalibratedQuery],
) -> BenchResult<QueryProfile> {
    profile(queries, |cq, metrics| {
        let mut pool = BufferPool::with_capacity(store.clone(), frames);
        index
            .top_k_metered(&mut pool, &TopKQuery::new(cq.q.clone(), cq.k), metrics)
            .map_err(BenchError::storage("top-k probe"))?;
        Ok(pool.stats())
    })
}

fn profile(
    queries: &[CalibratedQuery],
    mut f: impl FnMut(&CalibratedQuery, &mut QueryMetrics) -> BenchResult<uncat_storage::IoStats>,
) -> BenchResult<QueryProfile> {
    let mut metrics = QueryMetrics::new();
    let mut total_reads: u64 = 0;
    for cq in queries {
        let mut m = QueryMetrics::new();
        let io = f(cq, &mut m)?;
        m.io = io;
        total_reads += io.physical_reads;
        metrics.merge(&m);
    }
    Ok(QueryProfile {
        avg_reads: if queries.is_empty() {
            f64::NAN
        } else {
            total_reads as f64 / queries.len() as f64
        },
        queries: queries.len(),
        metrics,
    })
}
