//! One function per figure of the paper's evaluation (Section 4), plus
//! the ablations DESIGN.md promises.

use uncat_core::Divergence;
use uncat_datagen::workload::{make_workload, queries_from_data, CalibratedQuery, SELECTIVITIES};
use uncat_datagen::{crm, gen3, pairwise, uniform, Dataset};
use uncat_inverted::Strategy;
use uncat_pdrtree::{Compression, PdrConfig, SplitStrategy};
use uncat_query::UncertainIndex;
use uncat_storage::SharedStore;

use crate::error::{BenchError, BenchResult};
use crate::measure::{
    avg_petq_io, avg_topk_io, build_inverted, build_inverted_fmt, build_pdr, profile_petq,
    profile_topk, Scale, QUERY_FRAMES,
};
use crate::table::{FigureTable, Series};

type Workload = Vec<(f64, Vec<CalibratedQuery>)>;

fn workload_for(data: &Dataset, scale: &Scale) -> Workload {
    let queries = queries_from_data(data, scale.queries, scale.seed ^ 0xBEEF);
    make_workload(data, &queries, &SELECTIVITIES)
}

/// Threshold + top-k I/O series over a selectivity workload.
fn petq_topk_series(
    prefix: &str,
    index: &impl UncertainIndex,
    store: &SharedStore,
    workload: &Workload,
) -> BenchResult<(Series, Series)> {
    let mut thres = Vec::new();
    let mut topk = Vec::new();
    for (s, qs) in workload {
        if qs.is_empty() {
            continue;
        }
        thres.push((*s, avg_petq_io(index, store, QUERY_FRAMES, qs)?));
        topk.push((*s, avg_topk_io(index, store, QUERY_FRAMES, qs)?));
    }
    Ok((
        Series::new(format!("{prefix}-Thres"), thres),
        Series::new(format!("{prefix}-TopK"), topk),
    ))
}

/// Figure 4: L1 vs L2 vs KL as the PDR-tree clustering measure (CRM1).
pub fn fig4(scale: &Scale) -> BenchResult<FigureTable> {
    let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
    let workload = workload_for(&data, scale);
    let mut series = Vec::new();
    for dv in Divergence::ALL {
        let cfg = PdrConfig {
            divergence: dv,
            ..PdrConfig::default()
        };
        let (tree, store) = build_pdr(&domain, &data, cfg)?;
        let (t, k) = petq_topk_series(&format!("CRM1-{}", dv.name()), &tree, &store, &workload)?;
        series.push(t);
        series.push(k);
    }
    Ok(FigureTable::new(
        "fig4",
        "L1 vs L2 vs KL (PDR-tree, CRM1)",
        "selectivity",
        series,
    ))
}

/// Figure 5: inverted index vs PDR-tree on the synthetic datasets.
pub fn fig5(scale: &Scale) -> BenchResult<FigureTable> {
    let mut series = Vec::new();
    for (name, (domain, data)) in [
        ("Uniform", uniform::generate(scale.synth_n, scale.seed)),
        ("Pairwise", pairwise::generate(scale.synth_n, scale.seed)),
    ] {
        let workload = workload_for(&data, scale);
        let (inv, inv_store) = build_inverted(&domain, &data, Strategy::Nra)?;
        let (t, k) = petq_topk_series(&format!("{name}-Inv"), &inv, &inv_store, &workload)?;
        series.push(t);
        series.push(k);
        let (pdr, pdr_store) = build_pdr(&domain, &data, PdrConfig::default())?;
        let (t, k) = petq_topk_series(&format!("{name}-PDR"), &pdr, &pdr_store, &workload)?;
        series.push(t);
        series.push(k);
    }
    Ok(FigureTable::new(
        "fig5",
        "Inverted index vs PDR-tree (synthetic)",
        "selectivity",
        series,
    ))
}

fn crm_figure(
    id: &str,
    name: &str,
    scale: &Scale,
    data: (uncat_core::Domain, Dataset),
) -> BenchResult<FigureTable> {
    let (domain, data) = data;
    let workload = workload_for(&data, scale);
    let mut series = Vec::new();
    let (inv, inv_store) = build_inverted(&domain, &data, Strategy::Nra)?;
    let (t, k) = petq_topk_series(&format!("{name}-Inv"), &inv, &inv_store, &workload)?;
    series.push(t);
    series.push(k);
    let (pdr, pdr_store) = build_pdr(&domain, &data, PdrConfig::default())?;
    let (t, k) = petq_topk_series(&format!("{name}-PDR"), &pdr, &pdr_store, &workload)?;
    series.push(t);
    series.push(k);
    Ok(FigureTable::new(
        id,
        format!("Inverted index vs PDR-tree ({name})"),
        "selectivity",
        series,
    ))
}

/// Figure 6: inverted vs PDR-tree on CRM1.
pub fn fig6(scale: &Scale) -> BenchResult<FigureTable> {
    crm_figure("fig6", "CRM1", scale, crm::crm1(scale.crm_n, scale.seed))
}

/// Figure 7: inverted vs PDR-tree on CRM2 (≈10× costlier than CRM1).
pub fn fig7(scale: &Scale) -> BenchResult<FigureTable> {
    crm_figure("fig7", "CRM2", scale, crm::crm2(scale.crm_n, scale.seed))
}

/// Figure 8: scalability with dataset size (CRM2; inverted grows linearly,
/// the PDR-tree sub-linearly). Measured at 1 % selectivity.
pub fn fig8(scale: &Scale) -> BenchResult<FigureTable> {
    let steps = 5;
    let mut inv_t = Vec::new();
    let mut inv_k = Vec::new();
    let mut pdr_t = Vec::new();
    let mut pdr_k = Vec::new();
    for i in 1..=steps {
        let n = scale.crm_n * i / steps;
        let (domain, data) = crm::crm2(n, scale.seed);
        let queries = queries_from_data(&data, scale.queries, scale.seed ^ 0xBEEF);
        let wl = make_workload(&data, &queries, &[0.01]);
        let qs = &wl[0].1;
        let x = n as f64 / 1000.0; // thousands of tuples, like the paper
        let (inv, inv_store) = build_inverted(&domain, &data, Strategy::Nra)?;
        inv_t.push((x, avg_petq_io(&inv, &inv_store, QUERY_FRAMES, qs)?));
        inv_k.push((x, avg_topk_io(&inv, &inv_store, QUERY_FRAMES, qs)?));
        let (pdr, pdr_store) = build_pdr(&domain, &data, PdrConfig::default())?;
        pdr_t.push((x, avg_petq_io(&pdr, &pdr_store, QUERY_FRAMES, qs)?));
        pdr_k.push((x, avg_topk_io(&pdr, &pdr_store, QUERY_FRAMES, qs)?));
    }
    Ok(FigureTable::new(
        "fig8",
        "Scalability with dataset size (CRM2, 1% selectivity)",
        "ktuples",
        vec![
            Series::new("CRM2-Inv-Thres", inv_t),
            Series::new("CRM2-Inv-TopK", inv_k),
            Series::new("CRM2-PDR-Thres", pdr_t),
            Series::new("CRM2-PDR-TopK", pdr_k),
        ],
    ))
}

/// Figure 9: scalability with domain size (Gen3, 1 % selectivity).
pub fn fig9(scale: &Scale) -> BenchResult<FigureTable> {
    let domains: &[u32] = &[5, 10, 20, 50, 100, 200, 500];
    let mut inv_t = Vec::new();
    let mut inv_k = Vec::new();
    let mut pdr_t = Vec::new();
    let mut pdr_k = Vec::new();
    for &d in domains {
        let (domain, data) = gen3::generate(scale.synth_n, d, scale.seed);
        let queries = queries_from_data(&data, scale.queries, scale.seed ^ 0xBEEF);
        let wl = make_workload(&data, &queries, &[0.01]);
        let qs = &wl[0].1;
        if qs.is_empty() {
            continue;
        }
        let x = d as f64;
        let (inv, inv_store) = build_inverted(&domain, &data, Strategy::Nra)?;
        inv_t.push((x, avg_petq_io(&inv, &inv_store, QUERY_FRAMES, qs)?));
        inv_k.push((x, avg_topk_io(&inv, &inv_store, QUERY_FRAMES, qs)?));
        let (pdr, pdr_store) = build_pdr(&domain, &data, PdrConfig::default())?;
        pdr_t.push((x, avg_petq_io(&pdr, &pdr_store, QUERY_FRAMES, qs)?));
        pdr_k.push((x, avg_topk_io(&pdr, &pdr_store, QUERY_FRAMES, qs)?));
    }
    Ok(FigureTable::new(
        "fig9",
        "Scalability with domain size (Gen3, 1% selectivity)",
        "domain",
        vec![
            Series::new("Gen3-Inv-Thres", inv_t),
            Series::new("Gen3-Inv-TopK", inv_k),
            Series::new("Gen3-PDR-Thres", pdr_t),
            Series::new("Gen3-PDR-TopK", pdr_k),
        ],
    ))
}

/// Figure 10: PDR-tree split algorithm, top-down vs bottom-up. The paper
/// plots Uniform and notes "a similar relative behavior was observed for
/// the other datasets including the real data" — CRM1 series included.
pub fn fig10(scale: &Scale) -> BenchResult<FigureTable> {
    let mut series = Vec::new();
    for (name, domain, data, workload) in [
        {
            let (domain, data) = uniform::generate(scale.synth_n, scale.seed);
            let workload = workload_for(&data, scale);
            ("Uniform", domain, data, workload)
        },
        {
            let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
            let workload = workload_for(&data, scale);
            ("CRM1", domain, data, workload)
        },
    ] {
        for split in [SplitStrategy::TopDown, SplitStrategy::BottomUp] {
            let cfg = PdrConfig {
                split,
                ..PdrConfig::default()
            };
            let (tree, store) = build_pdr(&domain, &data, cfg)?;
            let mut pts = Vec::new();
            for (s, qs) in &workload {
                if !qs.is_empty() {
                    pts.push((*s, avg_petq_io(&tree, &store, QUERY_FRAMES, qs)?));
                }
            }
            series.push(Series::new(
                format!(
                    "{name}-{}-Thres",
                    match split {
                        SplitStrategy::TopDown => "TopDown",
                        SplitStrategy::BottomUp => "BottomUp",
                    }
                ),
                pts,
            ));
        }
    }
    Ok(FigureTable::new(
        "fig10",
        "PDR split: top-down vs bottom-up",
        "selectivity",
        series,
    ))
}

/// Ablation: the four inverted-index search strategies plus NRA (CRM1).
pub fn strategies(scale: &Scale) -> BenchResult<FigureTable> {
    let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
    let workload = workload_for(&data, scale);
    let mut series = Vec::new();
    for strat in Strategy::ALL {
        let (inv, store) = build_inverted(&domain, &data, strat)?;
        // Alongside the I/O series, emit the counters that explain it:
        // postings scanned (the strategies' sorted-access work) and
        // candidates verified (their random-access work), per query.
        let mut io_pts = Vec::new();
        let mut postings_pts = Vec::new();
        let mut verified_pts = Vec::new();
        for (s, qs) in &workload {
            if qs.is_empty() {
                continue;
            }
            let p = profile_petq(&inv, &store, QUERY_FRAMES, qs)?;
            io_pts.push((*s, p.avg_reads));
            postings_pts.push((*s, p.per_query(p.metrics.postings_scanned)));
            verified_pts.push((*s, p.per_query(p.metrics.candidates_verified)));
        }
        series.push(Series::new(strat.name(), io_pts));
        series.push(Series::new(
            format!("{}-postings", strat.name()),
            postings_pts,
        ));
        series.push(Series::new(
            format!("{}-verified", strat.name()),
            verified_pts,
        ));
    }
    Ok(FigureTable::new(
        "strategies",
        "Inverted-index search strategies (CRM1)",
        "selectivity",
        series,
    ))
}

/// Ablation: PDR boundary compression (Gen3, |D| = 200).
pub fn compression(scale: &Scale) -> BenchResult<FigureTable> {
    let (domain, data) = gen3::generate(scale.synth_n, 200, scale.seed);
    let workload = workload_for(&data, scale);
    let mut series = Vec::new();
    for compression in [
        Compression::None,
        Compression::Discretized { bits: 2 },
        Compression::Discretized { bits: 4 },
        Compression::Signature { width: 32 },
    ] {
        let cfg = PdrConfig {
            compression,
            ..PdrConfig::default()
        };
        let (tree, store) = build_pdr(&domain, &data, cfg)?;
        let mut pts = Vec::new();
        for (s, qs) in &workload {
            if !qs.is_empty() {
                pts.push((*s, avg_petq_io(&tree, &store, QUERY_FRAMES, qs)?));
            }
        }
        series.push(Series::new(compression.name(), pts));
    }
    Ok(FigureTable::new(
        "compression",
        "PDR boundary compression (Gen3, |D|=200)",
        "selectivity",
        series,
    ))
}

/// Ablation: per-query buffer size and replacement policy (CRM1, 1 %
/// selectivity).
pub fn buffer(scale: &Scale) -> BenchResult<FigureTable> {
    use uncat_core::query::EqQuery;
    use uncat_storage::{BufferPool, Replacement};

    let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
    let queries = queries_from_data(&data, scale.queries, scale.seed ^ 0xBEEF);
    let wl = make_workload(&data, &queries, &[0.01]);
    let qs = &wl[0].1;
    let (inv, inv_store) = build_inverted(&domain, &data, Strategy::Nra)?;
    let (pdr, pdr_store) = build_pdr(&domain, &data, PdrConfig::default())?;

    let measure =
        |index: &dyn UncertainIndex, store: &SharedStore, frames: usize, policy: Replacement| {
            let mut total: u64 = 0;
            for cq in qs {
                let mut pool = BufferPool::with_policy(store.clone(), frames, policy);
                index
                    .petq(&mut pool, &EqQuery::new(cq.q.clone(), cq.tau))
                    .map_err(BenchError::storage("buffer-policy probe"))?;
                total += pool.stats().physical_reads;
            }
            Ok::<f64, BenchError>(total as f64 / qs.len() as f64)
        };

    let mut series = Vec::new();
    for (label, index, store) in [
        ("CRM1-Inv", &inv as &dyn UncertainIndex, &inv_store),
        ("CRM1-PDR", &pdr as &dyn UncertainIndex, &pdr_store),
    ] {
        for policy in [Replacement::Clock, Replacement::Lru] {
            let pname = match policy {
                Replacement::Clock => "Clock",
                Replacement::Lru => "LRU",
            };
            let mut pts = Vec::new();
            for &frames in &[25usize, 50, 100, 200, 400] {
                pts.push((frames as f64, measure(index, store, frames, policy)?));
            }
            series.push(Series::new(format!("{label}-{pname}"), pts));
        }
    }
    Ok(FigureTable::new(
        "buffer",
        "Per-query buffer size and replacement policy (CRM1, 1% selectivity)",
        "frames",
        series,
    ))
}

/// Ablation: PDR build method — incremental insertion vs sort-and-pack
/// bulk loading (CRM1). Reports query I/O at each selectivity.
pub fn bulkload(scale: &Scale) -> BenchResult<FigureTable> {
    let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
    let workload = workload_for(&data, scale);
    let mut series = Vec::new();
    for bulk in [false, true] {
        let store = uncat_storage::InMemoryDisk::shared();
        let mut pool = uncat_storage::BufferPool::with_capacity(store.clone(), 512);
        let tree = if bulk {
            uncat_pdrtree::PdrTree::bulk_build(
                domain.clone(),
                PdrConfig::default(),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .map_err(BenchError::storage("bulk-load pdr-tree"))?
        } else {
            uncat_pdrtree::PdrTree::build(
                domain.clone(),
                PdrConfig::default(),
                &mut pool,
                data.iter().map(|(t, u)| (*t, u)),
            )
            .map_err(BenchError::storage("build pdr-tree"))?
        };
        pool.flush()
            .map_err(BenchError::storage("flush pdr-tree"))?;
        drop(pool);
        let label = if bulk {
            "PDR-BulkLoad-Thres"
        } else {
            "PDR-Insert-Thres"
        };
        let mut pts = Vec::new();
        for (s, qs) in &workload {
            if !qs.is_empty() {
                pts.push((*s, avg_petq_io(&tree, &store, QUERY_FRAMES, qs)?));
            }
        }
        series.push(Series::new(label, pts));
    }
    Ok(FigureTable::new(
        "bulkload",
        "PDR build method: incremental vs bulk (CRM1)",
        "selectivity",
        series,
    ))
}

/// Index sizes in pages per dataset and structure (context for every
/// other figure).
pub fn sizes(scale: &Scale) -> BenchResult<FigureTable> {
    let mut inv_pts = Vec::new();
    let mut pdr_pts = Vec::new();
    let mut bulk_pts = Vec::new();
    let sets: Vec<(f64, uncat_core::Domain, Dataset)> = vec![
        (
            1.0,
            uniform::generate(scale.synth_n, scale.seed).0,
            uniform::generate(scale.synth_n, scale.seed).1,
        ),
        (
            2.0,
            pairwise::generate(scale.synth_n, scale.seed).0,
            pairwise::generate(scale.synth_n, scale.seed).1,
        ),
        (
            3.0,
            crm::crm1(scale.crm_n, scale.seed).0,
            crm::crm1(scale.crm_n, scale.seed).1,
        ),
        (
            4.0,
            crm::crm2(scale.crm_n, scale.seed).0,
            crm::crm2(scale.crm_n, scale.seed).1,
        ),
    ];
    for (x, domain, data) in sets {
        let (_, inv_store) = build_inverted(&domain, &data, Strategy::Nra)?;
        inv_pts.push((x, inv_store.num_pages() as f64));
        let (_, pdr_store) = build_pdr(&domain, &data, PdrConfig::default())?;
        pdr_pts.push((x, pdr_store.num_pages() as f64));
        let bulk_store = uncat_storage::InMemoryDisk::shared();
        let mut pool = uncat_storage::BufferPool::with_capacity(bulk_store.clone(), 512);
        let _ = uncat_pdrtree::PdrTree::bulk_build(
            domain.clone(),
            PdrConfig::default(),
            &mut pool,
            data.iter().map(|(t, u)| (*t, u)),
        )
        .map_err(BenchError::storage("bulk-load pdr-tree"))?;
        pool.flush()
            .map_err(BenchError::storage("flush pdr-tree"))?;
        drop(pool);
        bulk_pts.push((x, bulk_store.num_pages() as f64));
    }
    Ok(FigureTable::new(
        "sizes",
        "Index size in pages (1=Uniform 2=Pairwise 3=CRM1 4=CRM2)",
        "dataset",
        vec![
            Series::new("Inverted", inv_pts),
            Series::new("PDR-Insert", pdr_pts),
            Series::new("PDR-BulkLoad", bulk_pts),
        ],
    ))
}

/// Ablation: PETJ physical plans — index nested loop (probing the
/// PDR-tree) vs block nested loop, varying the outer relation size
/// (CRM1-style data, τ = 0.5).
pub fn joins(scale: &Scale) -> BenchResult<FigureTable> {
    use uncat_query::join::{block_nested_loop_petj, index_nested_loop_petj};
    use uncat_query::ScanBaseline;
    use uncat_storage::BufferPool;

    let (domain, data) = crm::crm1(scale.crm_n / 2, scale.seed);
    let store = uncat_storage::InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 512);
    let pdr = uncat_pdrtree::PdrTree::build(
        domain.clone(),
        PdrConfig::default(),
        &mut pool,
        data.iter().map(|(t, u)| (*t, u)),
    )
    .map_err(BenchError::storage("build pdr-tree"))?;
    let scan = ScanBaseline::build(&mut pool, data.iter().map(|(t, u)| (*t, u)))
        .map_err(BenchError::storage("build scan baseline"))?;
    pool.flush()
        .map_err(BenchError::storage("flush join inputs"))?;
    drop(pool);

    let (_, outer_all) = crm::crm1(256, scale.seed ^ 0xA5A5);
    let tau = 0.5;
    let mut inl_pts = Vec::new();
    let mut bnl_pts = Vec::new();
    for &outer_n in &[16usize, 64, 256] {
        let outer: Vec<(u64, uncat_core::Uda)> = outer_all
            .iter()
            .take(outer_n)
            .map(|(t, u)| (1_000_000 + *t, u.clone()))
            .collect();
        let mut p = BufferPool::with_capacity(store.clone(), QUERY_FRAMES);
        let a = index_nested_loop_petj(&outer, &pdr, &mut p, tau)
            .map_err(BenchError::storage("index nested-loop join"))?;
        inl_pts.push((outer_n as f64, p.stats().physical_reads as f64));
        let mut p = BufferPool::with_capacity(store.clone(), QUERY_FRAMES);
        let b = block_nested_loop_petj(&outer, &scan, &mut p, tau)
            .map_err(BenchError::storage("block nested-loop join"))?;
        bnl_pts.push((outer_n as f64, p.stats().physical_reads as f64));
        assert_eq!(a.len(), b.len(), "join plans must agree");
    }
    Ok(FigureTable::new(
        "joins",
        "PETJ plans: index vs block nested loop (CRM1, tau=0.5)",
        "outer",
        vec![
            Series::new("INL-PDR", inl_pts),
            Series::new("BNL-Scan", bnl_pts),
        ],
    ))
}

/// Figure: block vs index vs parallel join plans on Zipf-skewed
/// relations (CRM1 inner, Zipf certain-probe outer, inverted index).
///
/// Threshold series plot physical reads per plan. The top-k series plot
/// **postings scanned per probe**: the sequential index plan issues a
/// full top-k probe for every outer tuple (exactly the pre-floor-fix
/// cost), while the parallel plan's shared floor seeds every warm
/// probe's dynamic threshold, so probes stop as early as Lemma 1 allows
/// at θ = floor — the gap between `TopK-Index` and `TopK-Par` is the
/// floor-propagation win, and it widens with the outer relation.
pub fn join(scale: &Scale) -> BenchResult<FigureTable> {
    use uncat_core::query::TopKQuery;
    use uncat_core::Uda;
    use uncat_datagen::zipf::zipf_ranks;
    use uncat_query::join::{block_join, index_join, parallel_join, JoinSpec};
    use uncat_query::{BatchPools, ScanBaseline};
    use uncat_storage::{BufferPool, QueryMetrics};

    const THREADS: usize = 4;
    const K: usize = 10;
    const TAU: f64 = 0.5;

    let (domain, data) = crm::crm1(scale.crm_n / 2, scale.seed);
    let (inv, inv_store) = build_inverted(&domain, &data, Strategy::Nra)?;
    let store = uncat_storage::InMemoryDisk::shared();
    let mut pool = BufferPool::with_capacity(store.clone(), 512);
    let scan = ScanBaseline::build(&mut pool, data.iter().map(|(t, u)| (*t, u)))
        .map_err(BenchError::storage("build scan baseline"))?;
    pool.flush()
        .map_err(BenchError::storage("flush join inputs"))?;
    drop(pool);

    let outer_all: Vec<(u64, Uda)> =
        zipf_ranks(domain.size() as usize, 1.2, 256, scale.seed ^ 0xA5A5)
            .into_iter()
            .enumerate()
            .map(|(i, rank)| {
                (
                    1_000_000 + i as u64,
                    Uda::certain(uncat_core::CatId(rank as u32)),
                )
            })
            .collect();

    let mut block_pts = Vec::new();
    let mut index_pts = Vec::new();
    let mut par_pts = Vec::new();
    let mut topk_index_pts = Vec::new();
    let mut topk_par_pts = Vec::new();
    for &outer_n in &[16usize, 64, 256] {
        let outer = &outer_all[..outer_n];
        let x = outer_n as f64;

        // PETJ: physical reads per plan.
        let petj = JoinSpec::Petj { tau: TAU };
        let mut p = BufferPool::with_capacity(store.clone(), QUERY_FRAMES);
        let b =
            block_join(outer, &scan, &mut p, petj).map_err(BenchError::storage("block join"))?;
        block_pts.push((x, b.reads() as f64));
        let mut p = BufferPool::with_capacity(inv_store.clone(), QUERY_FRAMES);
        let i = index_join(outer, &inv, &mut p, petj).map_err(BenchError::storage("index join"))?;
        index_pts.push((x, i.reads() as f64));
        let pools = BatchPools::shared(&inv_store, QUERY_FRAMES * THREADS, 8);
        let par = parallel_join(outer, &inv, &inv_store, &pools, petj, THREADS)
            .map_err(BenchError::storage("parallel join"))?;
        par_pts.push((x, par.reads() as f64));
        assert_eq!(
            i.pairs.len(),
            par.pairs.len(),
            "parallel plan must agree with sequential"
        );
        assert_eq!(b.pairs.len(), i.pairs.len(), "join plans must agree");

        // PEJ-top-k: probe work (postings scanned) per outer tuple. The
        // sequential baseline probes full top-k every time — the
        // pre-floor-fix plan's exact probe cost.
        let mut baseline = QueryMetrics::new();
        let mut p = BufferPool::with_capacity(inv_store.clone(), QUERY_FRAMES);
        for (_, luda) in outer {
            uncat_query::UncertainIndex::top_k_metered(
                &inv,
                &mut p,
                &TopKQuery::new(luda.clone(), K),
                &mut baseline,
            )
            .map_err(BenchError::storage("top-k probe"))?;
        }
        topk_index_pts.push((x, baseline.postings_scanned as f64 / outer_n as f64));
        let pools = BatchPools::private(QUERY_FRAMES);
        let par = parallel_join(
            outer,
            &inv,
            &inv_store,
            &pools,
            JoinSpec::PejTopK { k: K },
            THREADS,
        )
        .map_err(BenchError::storage("parallel top-k join"))?;
        topk_par_pts.push((x, par.metrics.postings_scanned as f64 / outer_n as f64));
    }
    Ok(FigureTable::new(
        "join",
        "Join plans: block vs index vs parallel (CRM1, Zipf outer)",
        "outer",
        vec![
            Series::new("Thres-Block-reads", block_pts),
            Series::new("Thres-Index-reads", index_pts),
            Series::new("Thres-Par-reads", par_pts),
            Series::new("TopK-Index-postings", topk_index_pts),
            Series::new("TopK-Par-postings", topk_par_pts),
        ],
    ))
}

/// Ablation: query shape — tuples sampled from the data vs certain-value
/// queries vs uniform-random distributions (CRM1, PDR-tree, τ calibrated
/// to 1% where reachable).
pub fn queryshape(scale: &Scale) -> BenchResult<FigureTable> {
    use uncat_datagen::workload::{certain_queries, random_queries};

    let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
    let (tree, store) = build_pdr(&domain, &data, PdrConfig::default())?;
    let shapes: [(&str, Vec<uncat_core::Uda>); 3] = [
        (
            "sampled",
            queries_from_data(&data, scale.queries, scale.seed),
        ),
        ("certain", certain_queries(&data, scale.queries, scale.seed)),
        (
            "random",
            random_queries(domain.size(), 3, scale.queries, scale.seed),
        ),
    ];
    let mut series = Vec::new();
    for (name, queries) in shapes {
        let wl = make_workload(&data, &queries, &SELECTIVITIES);
        let mut pts = Vec::new();
        for (s, qs) in &wl {
            if !qs.is_empty() {
                pts.push((*s, avg_petq_io(&tree, &store, QUERY_FRAMES, qs)?));
            }
        }
        if !pts.is_empty() {
            series.push(Series::new(name, pts));
        }
    }
    Ok(FigureTable::new(
        "queryshape",
        "Query shape (CRM1, PDR-tree)",
        "selectivity",
        series,
    ))
}

/// Ablation: shared vs private buffer pools on a Zipf-skewed
/// repeated-query batch (CRM1, 1 % selectivity, 4 worker threads).
///
/// Private mode is the paper's model — every query gets its own
/// [`QUERY_FRAMES`]-frame pool, so each repeat of a hot query re-reads
/// its posting pages. Shared mode runs the whole batch against one
/// lock-striped [`uncat_storage::SharedBufferPool`] with the same total
/// frame budget (`QUERY_FRAMES` × threads, 8 shards): hot pages are
/// faulted once per batch, and the gap widens with batch length.
pub fn sharedpool(scale: &Scale) -> BenchResult<FigureTable> {
    use uncat_core::query::EqQuery;
    use uncat_datagen::zipf::zipf_ranks;
    use uncat_query::parallel::{batch_metrics, petq_batch_with};
    use uncat_query::BatchPools;

    const THREADS: usize = 4;
    const SHARDS: usize = 8;

    let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
    let queries = queries_from_data(&data, scale.queries, scale.seed ^ 0xBEEF);
    let wl = make_workload(&data, &queries, &[0.01]);
    let distinct: Vec<EqQuery> = wl[0]
        .1
        .iter()
        .map(|cq| EqQuery::new(cq.q.clone(), cq.tau))
        .collect();
    if distinct.is_empty() {
        return Err(BenchError::Empty {
            what: "1% selectivity calibration",
        });
    }
    let (inv, store) = build_inverted(&domain, &data, Strategy::Nra)?;

    let mut private_pts = Vec::new();
    let mut shared_pts = Vec::new();
    for &len in &[8usize, 16, 32, 64] {
        // A Zipf-skewed repeat mix over the distinct queries: the head
        // query dominates, exactly the traffic a shared cache rewards.
        let batch: Vec<EqQuery> = zipf_ranks(distinct.len(), 1.2, len, scale.seed ^ len as u64)
            .into_iter()
            .map(|r| distinct[r].clone())
            .collect();
        let avg = |pools: &BatchPools| {
            let results = petq_batch_with(&inv, &store, pools, &batch, THREADS);
            let m = batch_metrics(&results);
            m.io.physical_reads as f64 / batch.len() as f64
        };
        private_pts.push((len as f64, avg(&BatchPools::private(QUERY_FRAMES))));
        shared_pts.push((
            len as f64,
            avg(&BatchPools::shared(&store, QUERY_FRAMES * THREADS, SHARDS)),
        ));
    }
    Ok(FigureTable::new(
        "sharedpool",
        "Shared vs private pools on a Zipf repeated-query batch (CRM1, 1% selectivity)",
        "batch",
        vec![
            Series::new("Private-Thres", private_pts),
            Series::new("Shared-Thres", shared_pts),
        ],
    ))
}

/// Ablation: block-max pruning — the compressed block posting format
/// (delta-varint tids + a quantized block-max directory, `--format
/// blocks`) against the raw one-entry-per-posting B-tree layout
/// (`--format raw`) over identical CRM1 data, across the selectivity
/// sweep. Each strategy contributes two y-axes per format: average
/// physical page reads per query (`…-reads`) and average postings
/// materialized per query (`…-post`, the `postings_scanned` counter —
/// block lists only tick it for entries actually decoded). Block-max
/// pruning wins on both: skipped blocks are neither read nor decoded.
pub fn blockmax(scale: &Scale) -> BenchResult<FigureTable> {
    use uncat_inverted::PostingFormat;

    let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
    let workload = workload_for(&data, scale);
    let mut series = Vec::new();
    for (fmt_name, fmt) in [("Raw", PostingFormat::Raw), ("Blk", PostingFormat::Blocks)] {
        for (sname, strat) in [
            ("Col", Strategy::ColumnPruning),
            ("Hpf", Strategy::HighestProbFirst),
            ("Nra", Strategy::Nra),
        ] {
            let (idx, store) = build_inverted_fmt(&domain, &data, strat, fmt)?;
            let mut reads = Vec::new();
            let mut posts = Vec::new();
            for (s, qs) in &workload {
                if qs.is_empty() {
                    continue;
                }
                let prof = profile_petq(&idx, &store, QUERY_FRAMES, qs)?;
                reads.push((*s, prof.avg_reads));
                posts.push((*s, prof.per_query(prof.metrics.postings_scanned)));
            }
            series.push(Series::new(format!("{sname}-{fmt_name}-reads"), reads));
            series.push(Series::new(format!("{sname}-{fmt_name}-post"), posts));
        }
        // Top-k probes drain the same frontier under a dynamic θ; the
        // WAND-style leap over blocks whose maximum cannot beat θ is
        // measured here.
        let (idx, store) = build_inverted_fmt(&domain, &data, Strategy::Nra, fmt)?;
        let mut reads = Vec::new();
        let mut posts = Vec::new();
        for (s, qs) in &workload {
            if qs.is_empty() {
                continue;
            }
            let prof = profile_topk(&idx, &store, QUERY_FRAMES, qs)?;
            reads.push((*s, prof.avg_reads));
            posts.push((*s, prof.per_query(prof.metrics.postings_scanned)));
        }
        series.push(Series::new(format!("TopK-{fmt_name}-reads"), reads));
        series.push(Series::new(format!("TopK-{fmt_name}-post"), posts));
    }
    Ok(FigureTable::new(
        "blockmax",
        "Block-max pruning vs raw postings (CRM1)",
        "selectivity",
        series,
    ))
}

/// Every figure/ablation by name. `None` means the name is unknown;
/// `Some(Err(_))` means the figure is known but its sweep failed.
pub fn by_name(name: &str, scale: &Scale) -> Option<BenchResult<FigureTable>> {
    Some(match name {
        "fig4" => fig4(scale),
        "fig5" => fig5(scale),
        "fig6" => fig6(scale),
        "fig7" => fig7(scale),
        "fig8" => fig8(scale),
        "fig9" => fig9(scale),
        "fig10" => fig10(scale),
        "strategies" => strategies(scale),
        "compression" => compression(scale),
        "buffer" => buffer(scale),
        "bulkload" => bulkload(scale),
        "sizes" => sizes(scale),
        "joins" => joins(scale),
        "join" => join(scale),
        "queryshape" => queryshape(scale),
        "sharedpool" => sharedpool(scale),
        "blockmax" => blockmax(scale),
        "planner" => crate::planner::planner_figure(scale),
        _ => return None,
    })
}

/// All known figure/ablation names, in presentation order.
pub const ALL_FIGURES: [&str; 18] = [
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "strategies",
    "compression",
    "buffer",
    "bulkload",
    "sizes",
    "joins",
    "join",
    "queryshape",
    "sharedpool",
    "blockmax",
    "planner",
];
