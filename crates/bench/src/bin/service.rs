//! Produce (or validate) the `BENCH_service.json` multi-tenant artifact.
//!
//! ```text
//! cargo run --release -p uncat-bench --bin service                # paper scale
//! cargo run --release -p uncat-bench --bin service -- --quick     # reduced scale
//! cargo run --release -p uncat-bench --bin service -- --tenants 3
//! cargo run --release -p uncat-bench --bin service -- --out x.json
//! cargo run --release -p uncat-bench --bin service -- --validate x.json
//! ```
//!
//! The artifact is validated against the schema *before* it is written,
//! so a bad run never replaces a good file. `--validate` re-reads an
//! existing artifact and exits nonzero on any violation — including the
//! cross-shard floor failing to scan strictly fewer postings than
//! floorless sharding. That is what the CI service-smoke job runs.

use std::process::ExitCode;

use uncat_bench::service::{report_to_json, service_sweep, validate_report, ServiceBenchConfig};
use uncat_bench::{BenchError, BenchResult, Json, Scale};

fn run() -> BenchResult<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };

    if let Some(path) = arg_after("--validate") {
        let text = std::fs::read_to_string(path).map_err(BenchError::io(path))?;
        let doc = Json::parse(&text).map_err(BenchError::schema)?;
        validate_report(&doc)?;
        println!(
            "{path}: valid (schema v{})",
            doc.get("schema_version")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        );
        return Ok(());
    }

    let out = arg_after("--out").unwrap_or("BENCH_service.json");
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::from_env()
    };
    let mut config = if quick {
        ServiceBenchConfig::quick()
    } else {
        ServiceBenchConfig::full()
    };
    if let Some(t) = arg_after("--tenants").and_then(|s| s.parse().ok()) {
        config.tenants = t;
    }
    if let Some(s) = arg_after("--shards").and_then(|s| s.parse().ok()) {
        config.shards = s;
    }
    eprintln!(
        "# service drive: crm_n={} tenants={} shards={} concurrency={} ops={}",
        scale.crm_n, config.tenants, config.shards, config.concurrency, config.ops
    );
    let report = service_sweep(&scale, &config)?;
    let doc = report_to_json(&report);
    validate_report(&doc)?; // never write an artifact the validator rejects
    std::fs::write(out, doc.render_pretty()).map_err(BenchError::io(out))?;

    println!(
        "{:<8} {:<8} {:>10} {:>9} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "loop", "tenant", "completed", "rejected", "waits", "qps", "p50_us", "p95_us", "p99_us"
    );
    for run in &report.runs {
        println!(
            "{:<8} {:<8} {:>10} {:>9} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            run.loop_mode,
            run.tenant,
            run.completed,
            run.rejected,
            run.waits,
            run.qps,
            run.hist.p50_ns() as f64 / 1e3,
            run.hist.p95_ns() as f64 / 1e3,
            run.hist.p99_ns() as f64 / 1e3,
        );
    }
    println!(
        "floor: {} postings floored vs {} floorless",
        report.floor.floored_postings, report.floor.floorless_postings
    );
    println!("wrote {out} ({} runs)", report.runs.len());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("service: {err}");
            ExitCode::FAILURE
        }
    }
}
