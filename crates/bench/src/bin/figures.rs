//! Regenerate the paper's figures as I/O tables.
//!
//! ```text
//! cargo run --release -p uncat-bench --bin figures            # all, paper scale
//! cargo run --release -p uncat-bench --bin figures -- fig6    # one figure
//! cargo run --release -p uncat-bench --bin figures -- --quick # reduced scale
//! ```

use std::time::Instant;

use uncat_bench::{by_name, Scale, ALL_FIGURES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let names: Vec<&str> = if names.is_empty() {
        ALL_FIGURES.to_vec()
    } else {
        names
    };

    let scale = if quick {
        Scale::quick()
    } else {
        Scale::from_env()
    };
    println!(
        "# scale: crm_n={} synth_n={} queries/point={} seed={}",
        scale.crm_n, scale.synth_n, scale.queries, scale.seed
    );

    for name in names {
        let t0 = Instant::now();
        match by_name(name, &scale) {
            Some(Ok(table)) => {
                println!("{table}");
                println!("# {name} took {:.1}s\n", t0.elapsed().as_secs_f64());
            }
            Some(Err(err)) => {
                eprintln!("figure {name} failed: {err}");
                std::process::exit(1);
            }
            None => {
                eprintln!("unknown figure {name:?}; known: {ALL_FIGURES:?}");
                std::process::exit(2);
            }
        }
    }
}
