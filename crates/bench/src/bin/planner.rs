//! Produce (or validate) the `BENCH_planner.json` planner-vs-oracle
//! artifact.
//!
//! ```text
//! cargo run --release -p uncat-bench --bin planner                # paper scale
//! cargo run --release -p uncat-bench --bin planner -- --quick     # reduced scale
//! cargo run --release -p uncat-bench --bin planner -- --out x.json
//! cargo run --release -p uncat-bench --bin planner -- --validate x.json
//! ```
//!
//! The artifact is validated against the schema (including the
//! ratio regression bound) *before* it is written, so a bad run never
//! replaces a good file. `--validate` re-reads an existing artifact and
//! exits nonzero on any violation — that is what the CI bench-smoke job
//! runs.

use std::process::ExitCode;

use uncat_bench::planner::{planner_sweep, report_to_json, validate_report};
use uncat_bench::{BenchError, BenchResult, Json, Scale};

fn run() -> BenchResult<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };

    if let Some(path) = arg_after("--validate") {
        let text = std::fs::read_to_string(path).map_err(BenchError::io(path))?;
        let doc = Json::parse(&text).map_err(BenchError::schema)?;
        validate_report(&doc)?;
        println!(
            "{path}: valid (schema v{})",
            doc.get("schema_version")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        );
        return Ok(());
    }

    let out = arg_after("--out").unwrap_or("BENCH_planner.json");
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::from_env()
    };
    eprintln!(
        "# planner sweep: crm_n={} queries/point={} seed={}",
        scale.crm_n, scale.queries, scale.seed
    );
    let report = planner_sweep(&scale)?;
    let doc = report_to_json(&report);
    validate_report(&doc)?; // never write an artifact the validator rejects
    std::fs::write(out, doc.render_pretty()).map_err(BenchError::io(out))?;

    println!(
        "{:<12} {:<18} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "selectivity",
        "oracle",
        "auto_post",
        "oracle_post",
        "auto_rd",
        "oracle_rd",
        "post_x",
        "reads_x",
        "fb"
    );
    for p in &report.points {
        println!(
            "{:<12} {:<18} {:>12.1} {:>12.1} {:>10.1} {:>10.1} {:>10.3} {:>10.3} {:>6}",
            p.selectivity,
            p.best,
            p.auto_postings,
            p.best_postings,
            p.auto_reads,
            p.best_reads,
            p.postings_ratio(),
            p.reads_ratio(),
            p.fallbacks,
        );
    }
    println!("wrote {out} ({} points)", report.points.len());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("planner: {err}");
            ExitCode::FAILURE
        }
    }
}
