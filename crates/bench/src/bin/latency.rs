//! Produce (or validate) the `BENCH_latency.json` wall-clock artifact.
//!
//! ```text
//! cargo run --release -p uncat-bench --bin latency                # paper scale
//! cargo run --release -p uncat-bench --bin latency -- --quick     # reduced scale
//! cargo run --release -p uncat-bench --bin latency -- --out x.json
//! cargo run --release -p uncat-bench --bin latency -- --validate x.json
//! ```
//!
//! The artifact is validated against the schema *before* it is written,
//! so a bad run never replaces a good file. `--validate` re-reads an
//! existing artifact and exits nonzero on any schema violation — that is
//! what the CI bench-smoke job runs.

use std::process::ExitCode;

use uncat_bench::latency::{latency_sweep, report_to_json, validate_report};
use uncat_bench::{BenchError, BenchResult, Json, Scale};

fn run() -> BenchResult<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };

    if let Some(path) = arg_after("--validate") {
        let text = std::fs::read_to_string(path).map_err(BenchError::io(path))?;
        let doc = Json::parse(&text).map_err(BenchError::schema)?;
        validate_report(&doc)?;
        println!(
            "{path}: valid (schema v{})",
            doc.get("schema_version")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        );
        return Ok(());
    }

    let out = arg_after("--out").unwrap_or("BENCH_latency.json");
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::from_env()
    };
    eprintln!(
        "# latency sweep: crm_n={} queries/point={} seed={}",
        scale.crm_n, scale.queries, scale.seed
    );
    let report = latency_sweep(&scale)?;
    let doc = report_to_json(&report);
    validate_report(&doc)?; // never write an artifact the validator rejects
    std::fs::write(out, doc.render_pretty()).map_err(BenchError::io(out))?;

    println!(
        "{:<10} {:<18} {:<5} {:<8} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "backend", "strategy", "kind", "pool", "count", "p50_us", "p95_us", "p99_us", "max_us"
    );
    for run in &report.runs {
        println!(
            "{:<10} {:<18} {:<5} {:<8} {:>7} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            run.backend,
            run.strategy,
            run.kind,
            run.pool,
            run.hist.count(),
            run.hist.p50_ns() as f64 / 1e3,
            run.hist.p95_ns() as f64 / 1e3,
            run.hist.p99_ns() as f64 / 1e3,
            run.hist.max_ns() as f64 / 1e3,
        );
    }
    println!("wrote {out} ({} runs)", report.runs.len());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("latency: {err}");
            ExitCode::FAILURE
        }
    }
}
