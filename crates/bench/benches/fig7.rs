//! Figure 7 (wall-clock companion): inverted vs PDR-tree on dense
//! CRM2-style data.
//!
//! I/O-count version: `cargo run --release -p uncat-bench --bin figures -- fig7`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use uncat_bench::measure::{build_inverted, build_pdr, Scale, QUERY_FRAMES};
use uncat_core::query::{EqQuery, TopKQuery};
use uncat_datagen::crm;
use uncat_datagen::workload::{make_workload, queries_from_data};
use uncat_inverted::Strategy;
use uncat_pdrtree::PdrConfig;
use uncat_query::UncertainIndex;
use uncat_storage::BufferPool;

fn bench(c: &mut Criterion) {
    // CRM2 is dense; a smaller tuple count keeps the bench minutes short
    // while preserving density (the property fig7 is about).
    let scale = Scale {
        crm_n: 4_000,
        ..Scale::quick()
    };
    let (domain, data) = crm::crm2(scale.crm_n, scale.seed);
    let queries = queries_from_data(&data, scale.queries, scale.seed);
    let wl = make_workload(&data, &queries, &[0.01]);
    let cq = wl[0].1.first().expect("calibrated query").clone();

    let (inv, inv_store) = build_inverted(&domain, &data, Strategy::Nra).expect("bench build");
    let (pdr, pdr_store) = build_pdr(&domain, &data, PdrConfig::default()).expect("bench build");

    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("crm2-inverted-thres", |b| {
        b.iter(|| {
            let mut pool = BufferPool::with_capacity(inv_store.clone(), QUERY_FRAMES);
            black_box(inv.petq(&mut pool, &EqQuery::new(cq.q.clone(), cq.tau)))
        })
    });
    g.bench_function("crm2-inverted-topk", |b| {
        b.iter(|| {
            let mut pool = BufferPool::with_capacity(inv_store.clone(), QUERY_FRAMES);
            black_box(inv.top_k(&mut pool, &TopKQuery::new(cq.q.clone(), cq.k)))
        })
    });
    g.bench_function("crm2-pdr-thres", |b| {
        b.iter(|| {
            let mut pool = BufferPool::with_capacity(pdr_store.clone(), QUERY_FRAMES);
            black_box(UncertainIndex::petq(
                &pdr,
                &mut pool,
                &EqQuery::new(cq.q.clone(), cq.tau),
            ))
        })
    });
    g.bench_function("crm2-pdr-topk", |b| {
        b.iter(|| {
            let mut pool = BufferPool::with_capacity(pdr_store.clone(), QUERY_FRAMES);
            black_box(UncertainIndex::top_k(
                &pdr,
                &mut pool,
                &TopKQuery::new(cq.q.clone(), cq.k),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
