//! Figure 9 (wall-clock companion): scalability with domain size —
//! query latency on Gen3 data at several domain cardinalities.
//!
//! I/O-count version: `cargo run --release -p uncat-bench --bin figures -- fig9`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use uncat_bench::measure::{build_inverted, build_pdr, Scale, QUERY_FRAMES};
use uncat_core::query::EqQuery;
use uncat_datagen::gen3;
use uncat_datagen::workload::{make_workload, queries_from_data};
use uncat_inverted::Strategy;
use uncat_pdrtree::PdrConfig;
use uncat_query::UncertainIndex;
use uncat_storage::BufferPool;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    for d in [5u32, 50, 500] {
        let (domain, data) = gen3::generate(scale.synth_n, d, scale.seed);
        let queries = queries_from_data(&data, scale.queries, scale.seed);
        let wl = make_workload(&data, &queries, &[0.01]);
        let Some(cq) = wl[0].1.first().cloned() else {
            continue;
        };

        let (inv, inv_store) = build_inverted(&domain, &data, Strategy::Nra).expect("bench build");
        g.bench_with_input(BenchmarkId::new("inverted", d), &d, |b, _| {
            b.iter(|| {
                let mut pool = BufferPool::with_capacity(inv_store.clone(), QUERY_FRAMES);
                black_box(inv.petq(&mut pool, &EqQuery::new(cq.q.clone(), cq.tau)))
            })
        });
        let (pdr, pdr_store) =
            build_pdr(&domain, &data, PdrConfig::default()).expect("bench build");
        g.bench_with_input(BenchmarkId::new("pdr", d), &d, |b, _| {
            b.iter(|| {
                let mut pool = BufferPool::with_capacity(pdr_store.clone(), QUERY_FRAMES);
                black_box(UncertainIndex::petq(
                    &pdr,
                    &mut pool,
                    &EqQuery::new(cq.q.clone(), cq.tau),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
