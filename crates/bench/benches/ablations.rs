//! Ablation benches (wall-clock companions to the `figures` binary's
//! `strategies`, `compression`, and `buffer` tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use uncat_bench::measure::{build_inverted, build_pdr, Scale, QUERY_FRAMES};
use uncat_core::query::EqQuery;
use uncat_datagen::workload::{make_workload, queries_from_data};
use uncat_datagen::{crm, gen3};
use uncat_inverted::Strategy;
use uncat_pdrtree::{Compression, PdrConfig};
use uncat_query::UncertainIndex;
use uncat_storage::BufferPool;

/// Inverted-index search strategies on CRM1-style data.
fn strategies(c: &mut Criterion) {
    let scale = Scale::quick();
    let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
    let queries = queries_from_data(&data, scale.queries, scale.seed);
    let wl = make_workload(&data, &queries, &[0.01]);
    let cq = wl[0].1.first().expect("calibrated query").clone();

    let mut g = c.benchmark_group("strategies");
    g.sample_size(20);
    for strat in Strategy::ALL {
        let (inv, store) = build_inverted(&domain, &data, strat).expect("bench build");
        g.bench_function(strat.name(), |b| {
            b.iter(|| {
                let mut pool = BufferPool::with_capacity(store.clone(), QUERY_FRAMES);
                black_box(inv.petq(&mut pool, &EqQuery::new(cq.q.clone(), cq.tau)))
            })
        });
    }
    g.finish();
}

/// PDR boundary compression on a large Gen3 domain.
fn compression(c: &mut Criterion) {
    let scale = Scale::quick();
    let (domain, data) = gen3::generate(scale.synth_n, 200, scale.seed);
    let queries = queries_from_data(&data, scale.queries, scale.seed);
    let wl = make_workload(&data, &queries, &[0.01]);
    let cq = wl[0].1.first().expect("calibrated query").clone();

    let mut g = c.benchmark_group("compression");
    g.sample_size(10);
    for compression in [
        Compression::None,
        Compression::Discretized { bits: 2 },
        Compression::Signature { width: 32 },
    ] {
        let cfg = PdrConfig {
            compression,
            ..PdrConfig::default()
        };
        let (tree, store) = build_pdr(&domain, &data, cfg).expect("bench build");
        g.bench_function(compression.name(), |b| {
            b.iter(|| {
                let mut pool = BufferPool::with_capacity(store.clone(), QUERY_FRAMES);
                black_box(UncertainIndex::petq(
                    &tree,
                    &mut pool,
                    &EqQuery::new(cq.q.clone(), cq.tau),
                ))
            })
        });
    }
    g.finish();
}

/// Per-query buffer size sweep on CRM1-style data.
fn buffer(c: &mut Criterion) {
    let scale = Scale::quick();
    let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
    let queries = queries_from_data(&data, scale.queries, scale.seed);
    let wl = make_workload(&data, &queries, &[0.01]);
    let cq = wl[0].1.first().expect("calibrated query").clone();
    let (pdr, store) = build_pdr(&domain, &data, PdrConfig::default()).expect("bench build");

    let mut g = c.benchmark_group("buffer");
    g.sample_size(20);
    for frames in [25usize, 100, 400] {
        g.bench_with_input(
            BenchmarkId::new("pdr-petq", frames),
            &frames,
            |b, &frames| {
                b.iter(|| {
                    let mut pool = BufferPool::with_capacity(store.clone(), frames);
                    black_box(UncertainIndex::petq(
                        &pdr,
                        &mut pool,
                        &EqQuery::new(cq.q.clone(), cq.tau),
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, strategies, compression, buffer);
criterion_main!(benches);
