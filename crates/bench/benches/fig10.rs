//! Figure 10 (wall-clock companion): PDR-tree split strategy — build and
//! query cost under top-down vs bottom-up splits (Uniform data).
//!
//! I/O-count version: `cargo run --release -p uncat-bench --bin figures -- fig10`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use uncat_bench::measure::{build_pdr, Scale, QUERY_FRAMES};
use uncat_core::query::EqQuery;
use uncat_datagen::uniform;
use uncat_datagen::workload::{make_workload, queries_from_data};
use uncat_pdrtree::{PdrConfig, SplitStrategy};
use uncat_storage::BufferPool;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let (domain, data) = uniform::generate(scale.synth_n, scale.seed);
    let queries = queries_from_data(&data, scale.queries, scale.seed);
    let wl = make_workload(&data, &queries, &[0.01]);
    let cq = wl[0].1.first().expect("calibrated query").clone();

    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for split in [SplitStrategy::TopDown, SplitStrategy::BottomUp] {
        let cfg = PdrConfig {
            split,
            ..PdrConfig::default()
        };
        g.bench_function(format!("build-{}", split.name()), |b| {
            b.iter(|| black_box(build_pdr(&domain, &data, cfg)))
        });
        let (tree, store) = build_pdr(&domain, &data, cfg).expect("bench build");
        g.bench_function(format!("petq-{}", split.name()), |b| {
            b.iter(|| {
                let mut pool = BufferPool::with_capacity(store.clone(), QUERY_FRAMES);
                black_box(tree.petq(&mut pool, &EqQuery::new(cq.q.clone(), cq.tau)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
