//! Figure 4 (wall-clock companion): PDR-tree query latency under each
//! clustering divergence (L1 / L2 / KL) on CRM1-style data.
//!
//! The I/O-count version of this figure (the paper's actual metric) is
//! produced by `cargo run --release -p uncat-bench --bin figures -- fig4`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use uncat_bench::measure::{build_pdr, Scale, QUERY_FRAMES};
use uncat_core::query::{EqQuery, TopKQuery};
use uncat_core::Divergence;
use uncat_datagen::crm;
use uncat_datagen::workload::{make_workload, queries_from_data};
use uncat_pdrtree::PdrConfig;
use uncat_storage::BufferPool;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let (domain, data) = crm::crm1(scale.crm_n, scale.seed);
    let queries = queries_from_data(&data, scale.queries, scale.seed);
    let wl = make_workload(&data, &queries, &[0.01]);
    let qs = &wl[0].1;

    let mut g = c.benchmark_group("fig4");
    g.sample_size(20);
    for dv in Divergence::ALL {
        let cfg = PdrConfig {
            divergence: dv,
            ..PdrConfig::default()
        };
        let (tree, store) = build_pdr(&domain, &data, cfg).expect("bench build");
        g.bench_function(format!("petq-{}", dv.name()), |b| {
            b.iter(|| {
                let cq = &qs[0];
                let mut pool = BufferPool::with_capacity(store.clone(), QUERY_FRAMES);
                black_box(tree.petq(&mut pool, &EqQuery::new(cq.q.clone(), cq.tau)))
            })
        });
        g.bench_function(format!("topk-{}", dv.name()), |b| {
            b.iter(|| {
                let cq = &qs[0];
                let mut pool = BufferPool::with_capacity(store.clone(), QUERY_FRAMES);
                black_box(tree.top_k(&mut pool, &TopKQuery::new(cq.q.clone(), cq.k)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
