//! Figure 5 (wall-clock companion): inverted index vs PDR-tree query
//! latency on the Uniform and Pairwise synthetic datasets.
//!
//! I/O-count version: `cargo run --release -p uncat-bench --bin figures -- fig5`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use uncat_bench::measure::{build_inverted, build_pdr, Scale, QUERY_FRAMES};
use uncat_core::query::EqQuery;
use uncat_datagen::workload::{make_workload, queries_from_data};
use uncat_datagen::{pairwise, uniform};
use uncat_inverted::Strategy;
use uncat_pdrtree::PdrConfig;
use uncat_query::UncertainIndex;
use uncat_storage::BufferPool;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(20);
    for (name, (domain, data)) in [
        ("uniform", uniform::generate(scale.synth_n, scale.seed)),
        ("pairwise", pairwise::generate(scale.synth_n, scale.seed)),
    ] {
        let queries = queries_from_data(&data, scale.queries, scale.seed);
        let wl = make_workload(&data, &queries, &[0.01]);
        let cq = wl[0].1.first().expect("calibrated query").clone();

        let (inv, inv_store) = build_inverted(&domain, &data, Strategy::Nra).expect("bench build");
        g.bench_function(format!("{name}-inverted"), |b| {
            b.iter(|| {
                let mut pool = BufferPool::with_capacity(inv_store.clone(), QUERY_FRAMES);
                black_box(inv.petq(&mut pool, &EqQuery::new(cq.q.clone(), cq.tau)))
            })
        });
        let (pdr, pdr_store) =
            build_pdr(&domain, &data, PdrConfig::default()).expect("bench build");
        g.bench_function(format!("{name}-pdr"), |b| {
            b.iter(|| {
                let mut pool = BufferPool::with_capacity(pdr_store.clone(), QUERY_FRAMES);
                black_box(UncertainIndex::petq(
                    &pdr,
                    &mut pool,
                    &EqQuery::new(cq.q.clone(), cq.tau),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
