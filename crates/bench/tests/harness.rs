//! Harness smoke tests: every figure function must produce a well-formed
//! table at a tiny scale (full-scale numbers are produced by the
//! `figures` binary).

use uncat_bench::{by_name, FigureTable, Scale, ALL_FIGURES};

fn tiny() -> Scale {
    Scale {
        crm_n: 800,
        synth_n: 400,
        queries: 2,
        seed: 7,
    }
}

fn check(t: &FigureTable) {
    assert!(!t.series.is_empty(), "{}: no series", t.id);
    for s in &t.series {
        assert!(!s.points.is_empty(), "{}: empty series {}", t.id, s.label);
        for &(x, y) in &s.points {
            assert!(x.is_finite() && y.is_finite(), "{}: non-finite point", t.id);
            assert!(y >= 0.0, "{}: negative I/O", t.id);
        }
    }
    let rendered = format!("{t}");
    assert!(rendered.contains(&t.id));
}

#[test]
fn every_figure_renders_at_tiny_scale() {
    let scale = tiny();
    for name in ALL_FIGURES {
        // fig9's 500-category domain needs more tuples than the tiny scale
        // provides to reach 1% selectivity; it gets its own test below.
        if name == "fig9" {
            continue;
        }
        let t = by_name(name, &scale)
            .expect("known figure")
            .expect("figure builds");
        check(&t);
    }
    assert!(by_name("nonsense", &scale).is_none());
}

#[test]
fn fig9_renders_at_reduced_scale() {
    let scale = Scale {
        synth_n: 2000,
        ..tiny()
    };
    let t = by_name("fig9", &scale)
        .expect("known figure")
        .expect("figure builds");
    check(&t);
    // Domain sizes form the x-axis.
    assert!(t.xs().len() >= 4);
}

#[test]
fn sharedpool_strictly_beats_private_on_repeated_queries() {
    // The ablation's headline claim: on a Zipf-skewed repeated-query
    // batch, the shared pool performs strictly fewer physical reads than
    // the paper's private-pool-per-query model, at every batch length.
    let scale = Scale {
        crm_n: 4000,
        synth_n: 400,
        queries: 4,
        seed: 11,
    };
    let t = by_name("sharedpool", &scale)
        .expect("sharedpool")
        .expect("figure builds");
    let private = t.series_named("Private-Thres").expect("private series");
    let shared = t.series_named("Shared-Thres").expect("shared series");
    assert_eq!(private.points.len(), shared.points.len());
    for (&(len, p), &(_, s)) in private.points.iter().zip(&shared.points) {
        assert!(
            s < p,
            "batch of {len}: shared pool must read strictly less ({s} vs {p})"
        );
    }
}

#[test]
fn blockmax_reads_and_decodes_strictly_less_than_raw() {
    // The block format's headline claim: over the whole selectivity
    // sweep, block-max pruning performs strictly fewer physical page
    // reads AND materializes strictly fewer postings than the raw
    // one-entry-per-posting layout — for column pruning, the
    // highest-prob frontier, the top-k NRA drain, and plain NRA.
    // (Result equivalence is pinned separately by tests/differential.rs.)
    let scale = Scale {
        crm_n: 4000,
        synth_n: 400,
        queries: 4,
        seed: 11,
    };
    let t = by_name("blockmax", &scale)
        .expect("blockmax")
        .expect("figure builds");
    let sweep_total = |label: &str| -> f64 {
        t.series_named(label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .points
            .iter()
            .map(|&(_, y)| y)
            .sum()
    };
    for strat in ["Col", "Hpf", "Nra", "TopK"] {
        for axis in ["reads", "post"] {
            let raw = sweep_total(&format!("{strat}-Raw-{axis}"));
            let blk = sweep_total(&format!("{strat}-Blk-{axis}"));
            assert!(
                blk < raw,
                "{strat}/{axis}: blocks must cost strictly less over the sweep ({blk} vs {raw})"
            );
        }
    }
}

#[test]
fn figure_shapes_hold_at_tiny_scale() {
    // A couple of robust shape assertions that hold even at tiny scale.
    let scale = tiny();
    let sizes = by_name("sizes", &scale)
        .expect("sizes")
        .expect("figure builds");
    let bulk = sizes.series_named("PDR-BulkLoad").expect("bulk series");
    let insert = sizes.series_named("PDR-Insert").expect("insert series");
    for (&(_, b), &(_, i)) in bulk.points.iter().zip(&insert.points) {
        assert!(
            b <= i,
            "bulk loading must not use more pages than insertion"
        );
    }
}
