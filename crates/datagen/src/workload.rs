//! Query workloads and selectivity calibration.
//!
//! The paper's figures plot I/O against *query selectivity* ("multiple
//! thresholds and values for k are considered in order to produce queries
//! with varying selectivities"). This module derives, for a query
//! distribution and a target selectivity, the threshold τ that yields that
//! selectivity exactly (up to ties) and the matching `k` for top-k — so
//! every figure can put the two query families on the same x-axis.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uncat_core::equality::eq_prob;
use uncat_core::Uda;

use crate::Dataset;

/// The x-axis of the paper's figures: 0.01 % to 10 %.
pub const SELECTIVITIES: [f64; 4] = [0.0001, 0.001, 0.01, 0.1];

/// A query with its calibrated threshold / k for one target selectivity.
#[derive(Debug, Clone)]
pub struct CalibratedQuery {
    /// The query distribution.
    pub q: Uda,
    /// Threshold achieving the target selectivity on the dataset.
    pub tau: f64,
    /// Result-set size for the equivalent top-k query.
    pub k: usize,
    /// Selectivity actually achieved (ties can push it above target).
    pub achieved: f64,
}

/// Calibrate `q` against `data` for `target` selectivity (fraction of
/// tuples that should qualify). Returns `None` when the query cannot reach
/// the target (fewer overlapping tuples than requested).
pub fn calibrate(data: &Dataset, q: &Uda, target: f64) -> Option<CalibratedQuery> {
    let n = data.len();
    let k = ((target * n as f64).round() as usize).max(1);
    let mut probs: Vec<f64> = data.iter().map(|(_, t)| eq_prob(q, t)).collect();
    probs.sort_by(|a, b| b.partial_cmp(a).expect("probabilities are finite"));
    let tau = probs[k - 1];
    if tau <= 0.0 {
        return None;
    }
    let qualifying = probs.iter().take_while(|&&p| p >= tau).count();
    Some(CalibratedQuery {
        q: q.clone(),
        tau,
        k,
        achieved: qualifying as f64 / n as f64,
    })
}

/// Draw `count` query distributions by sampling tuples from the dataset
/// (the usual "query follows the data distribution" workload).
pub fn queries_from_data(data: &Dataset, count: usize, seed: u64) -> Vec<Uda> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| data[rng.random_range(0..data.len())].1.clone())
        .collect()
}

/// Certain-value queries (`Pr(t.a = d)` for a plain category `d`): the
/// "report everything that's probably a Brake problem" workload from the
/// paper's introduction. Categories are drawn from those actually present
/// in the data so every query has a non-empty posting list.
pub fn certain_queries(data: &Dataset, count: usize, seed: u64) -> Vec<Uda> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut present: Vec<uncat_core::CatId> = data
        .iter()
        .flat_map(|(_, u)| u.iter().map(|(c, _)| c))
        .collect();
    present.sort_unstable();
    present.dedup();
    (0..count)
        .map(|_| Uda::certain(present[rng.random_range(0..present.len())]))
        .collect()
}

/// Uniform-random query distributions over the observed domain with the
/// given support size — queries *uncorrelated* with the data, the
/// hardest shape for distributional clustering.
pub fn random_queries(domain_size: u32, support: usize, count: usize, seed: u64) -> Vec<Uda> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut cats: Vec<u32> = (0..domain_size).collect();
            for i in 0..support.min(cats.len()) {
                let j = rng.random_range(i..cats.len());
                cats.swap(i, j);
            }
            let mut b = uncat_core::UdaBuilder::new();
            for &c in cats.iter().take(support.min(cats.len())) {
                b.push(uncat_core::CatId(c), rng.random_range(0.05..1.0f32))
                    .expect("valid probability");
            }
            b.finish_normalized().expect("non-empty support")
        })
        .collect()
}

/// Calibrate a set of queries at each target selectivity. Queries that
/// cannot reach a target are dropped for that target.
pub fn make_workload(
    data: &Dataset,
    queries: &[Uda],
    targets: &[f64],
) -> Vec<(f64, Vec<CalibratedQuery>)> {
    targets
        .iter()
        .map(|&s| {
            let qs = queries
                .iter()
                .filter_map(|q| calibrate(data, q, s))
                .collect();
            (s, qs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform;

    #[test]
    fn calibrated_threshold_hits_target_count() {
        let (_, data) = uniform::generate(2000, 1);
        let queries = queries_from_data(&data, 3, 2);
        for q in &queries {
            let c = calibrate(&data, q, 0.01).expect("uniform data overlaps everywhere");
            let qualifying = data.iter().filter(|(_, t)| eq_prob(q, t) >= c.tau).count();
            assert!(qualifying >= c.k, "at least k tuples qualify");
            assert!(
                (c.achieved - 0.01).abs() < 0.01,
                "achieved {:.4}",
                c.achieved
            );
            assert_eq!(c.k, 20);
        }
    }

    #[test]
    fn unreachable_selectivity_returns_none() {
        // A query disjoint from every tuple cannot reach any selectivity.
        let (_, data) = uniform::generate(100, 3);
        let q = Uda::from_pairs([(uncat_core::CatId(4), 1.0f32)]).unwrap();
        // All tuples are dense over cats 0..5, so category 4 overlaps —
        // instead build a dataset over cats 0..2 and query cat 4.
        let narrow: Dataset = data
            .iter()
            .map(|(tid, u)| {
                let mut b = uncat_core::UdaBuilder::new();
                for (c, p) in u.iter().take(2) {
                    b.push(c, p).unwrap();
                }
                (*tid, b.finish_normalized().unwrap())
            })
            .collect();
        assert!(calibrate(&narrow, &q, 0.5).is_none());
    }

    #[test]
    fn certain_queries_use_present_categories() {
        let (_, data) = uniform::generate(200, 6);
        let qs = certain_queries(&data, 10, 7);
        assert_eq!(qs.len(), 10);
        for q in &qs {
            assert_eq!(q.len(), 1, "certain value");
            assert_eq!(q.max_prob(), 1.0);
            assert!(q.max_cat().expect("non-empty").0 < 5);
        }
    }

    #[test]
    fn random_queries_have_requested_support() {
        let qs = random_queries(20, 4, 8, 9);
        for q in &qs {
            assert_eq!(q.len(), 4);
            assert!((q.mass() - 1.0).abs() < 1e-4);
            assert!(q.max_cat().expect("non-empty").0 < 20);
        }
        // Support clamped to the domain.
        let qs = random_queries(3, 10, 2, 9);
        for q in &qs {
            assert_eq!(q.len(), 3);
        }
    }

    #[test]
    fn workload_covers_all_targets() {
        let (_, data) = uniform::generate(1000, 4);
        let queries = queries_from_data(&data, 5, 5);
        let wl = make_workload(&data, &queries, &SELECTIVITIES);
        assert_eq!(wl.len(), SELECTIVITIES.len());
        for (s, qs) in &wl {
            assert!(!qs.is_empty(), "no calibrated queries at selectivity {s}");
            for c in qs {
                assert!(c.tau > 0.0 && c.tau <= 1.0);
                assert!(c.k >= 1);
            }
        }
    }
}
