//! The *Uniform* synthetic dataset.
//!
//! "The Uniform dataset has 5 items and the probability of each item is
//! chosen randomly for all tuples" (paper §4): every tuple is a dense
//! random distribution over the 5-value domain. This is one extreme for
//! the index structures — every posting list contains every tuple.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uncat_core::{CatId, Domain, UdaBuilder};

use crate::Dataset;

/// Domain cardinality used by the paper.
pub const DOMAIN_SIZE: u32 = 5;

/// Generate the Uniform dataset: `n` dense random distributions over
/// [`DOMAIN_SIZE`] items.
pub fn generate(n: usize, seed: u64) -> (Domain, Dataset) {
    let domain = Domain::anonymous(DOMAIN_SIZE);
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..n as u64)
        .map(|tid| {
            let mut b = UdaBuilder::with_capacity(DOMAIN_SIZE as usize);
            for c in 0..DOMAIN_SIZE {
                b.push(CatId(c), rng.random_range(0.01..1.0f32))
                    .expect("valid probability");
            }
            (tid, b.finish_normalized().expect("non-empty"))
        })
        .collect();
    (domain, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_description() {
        let (domain, data) = generate(1000, 1);
        assert_eq!(domain.size(), 5);
        assert_eq!(data.len(), 1000);
        for (_, u) in &data {
            assert_eq!(u.len(), 5, "Uniform tuples are dense");
            assert!((u.mass() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = generate(50, 9);
        let (_, b) = generate(50, 9);
        let (_, c) = generate(50, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
