//! Sampling primitives built on `rand`: normal, gamma, Dirichlet,
//! geometric. Implemented here because the workspace's dependency policy
//! admits only `rand` itself (see DESIGN.md §6).

use rand::Rng;

/// Standard normal via Box–Muller.
pub fn normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Gamma(shape, 1) via Marsaglia–Tsang, with the `shape < 1` boost.
pub fn gamma(rng: &mut impl Rng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) · U^{1/a}.
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Dirichlet sample over the given concentration parameters.
pub fn dirichlet(rng: &mut impl Rng, alphas: &[f64]) -> Vec<f64> {
    let raw: Vec<f64> = alphas.iter().map(|&a| gamma(rng, a).max(1e-300)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|x| x / total).collect()
}

/// Geometric sample with mean `mean` (support 1, 2, …).
pub fn geometric(rng: &mut impl Rng, mean: f64) -> usize {
    assert!(mean >= 1.0);
    let p = 1.0 / mean; // success probability
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    // Inverse CDF of the geometric distribution on {1, 2, …}.
    (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        for shape in [0.3, 1.0, 2.5, 8.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "gamma({shape}) mean came out {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one_and_respects_concentration() {
        let mut rng = StdRng::seed_from_u64(3);
        let alphas = [5.0, 0.1, 0.1, 0.1];
        let mut mean0 = 0.0;
        for _ in 0..500 {
            let v = dirichlet(&mut rng, &alphas);
            assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&x| x >= 0.0));
            mean0 += v[0];
        }
        mean0 /= 500.0;
        // E[v0] = 5.0 / 5.3 ≈ 0.94.
        assert!(mean0 > 0.85, "dominant component mean {mean0}");
    }

    #[test]
    fn geometric_mean_and_support() {
        let mut rng = StdRng::seed_from_u64(4);
        for target in [1.5, 3.0, 10.0] {
            let n = 20_000;
            let mut sum = 0usize;
            for _ in 0..n {
                let g = geometric(&mut rng, target);
                assert!(g >= 1);
                sum += g;
            }
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - target).abs() < 0.15 * target,
                "geometric({target}) mean {mean}"
            );
        }
    }
}
