//! The *Gen3* domain-scalability dataset.
//!
//! "Initially, a number of item groups are picked at random from the
//! domain. The size of the item groups, which determines the fill factor
//! (expected number of non-zero items in a tuple), is distributed
//! geometrically. The expected group size was varied from 3 (in domain
//! size 10) to 10 (in domain size 500). The item probabilities inside a
//! group are chosen randomly" (paper §4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uncat_core::{CatId, Domain, UdaBuilder};

use crate::rngutil::geometric;
use crate::Dataset;

/// The paper's expected group size as a function of domain size:
/// interpolated on a log scale from 3 at |D| = 10 to 10 at |D| = 500
/// (clamped outside that range).
pub fn expected_group_size(domain_size: u32) -> f64 {
    let d = domain_size as f64;
    let t = ((d / 10.0).ln() / 50f64.ln()).clamp(0.0, 1.0);
    3.0 + 7.0 * t
}

/// Generate a Gen3 dataset of `n` tuples over a `domain_size`-value domain.
///
/// `n_groups` item groups are drawn up front; every tuple picks one group
/// and fills it with random normalized probabilities.
pub fn generate(n: usize, domain_size: u32, seed: u64) -> (Domain, Dataset) {
    let domain = Domain::anonymous(domain_size);
    let mut rng = StdRng::seed_from_u64(seed);
    let mean_size = expected_group_size(domain_size);

    // Enough groups that clustering is non-trivial but reuse is plentiful.
    let n_groups = (domain_size as usize).clamp(8, 64);
    let groups: Vec<Vec<u32>> = (0..n_groups)
        .map(|_| {
            let size = geometric(&mut rng, mean_size)
                .min(domain_size as usize)
                .max(1);
            // Partial Fisher–Yates draw of `size` distinct categories.
            let mut cats: Vec<u32> = (0..domain_size).collect();
            for i in 0..size {
                let j = rng.random_range(i..cats.len());
                cats.swap(i, j);
            }
            cats.truncate(size);
            cats.sort_unstable();
            cats
        })
        .collect();

    let data = (0..n as u64)
        .map(|tid| {
            let group = &groups[rng.random_range(0..groups.len())];
            let mut b = UdaBuilder::with_capacity(group.len());
            for &c in group {
                b.push(CatId(c), rng.random_range(0.05..1.0f32))
                    .expect("valid probability");
            }
            (tid, b.finish_normalized().expect("non-empty group"))
        })
        .collect();
    (domain, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_size_interpolation_matches_paper_endpoints() {
        assert!((expected_group_size(10) - 3.0).abs() < 1e-9);
        assert!((expected_group_size(500) - 10.0).abs() < 1e-9);
        assert!(expected_group_size(5) == 3.0, "clamped below");
        assert!(expected_group_size(1000) == 10.0, "clamped above");
        let mid = expected_group_size(100);
        assert!(mid > 3.0 && mid < 10.0);
    }

    #[test]
    fn tuples_use_groups_and_valid_categories() {
        for &d in &[5u32, 50, 500] {
            let (domain, data) = generate(500, d, 7);
            assert_eq!(domain.size(), d);
            let mut supports = std::collections::HashSet::new();
            for (_, u) in &data {
                assert!(u.max_cat().expect("non-empty").0 < d);
                assert!((u.mass() - 1.0).abs() < 1e-4);
                supports.insert(u.iter().map(|(c, _)| c.0).collect::<Vec<_>>());
            }
            assert!(
                supports.len() <= 64,
                "tuples must reuse a bounded set of item groups, got {}",
                supports.len()
            );
        }
    }

    #[test]
    fn fill_factor_grows_with_domain() {
        let avg = |d: u32| {
            let (_, data) = generate(2000, d, 11);
            data.iter().map(|(_, u)| u.len()).sum::<usize>() as f64 / data.len() as f64
        };
        let small = avg(10);
        let large = avg(500);
        assert!(
            large > small + 1.0,
            "expected larger fill at |D|=500 ({large:.2}) than at |D|=10 ({small:.2})"
        );
    }
}
