//! Dataset generators and query workloads from the ICDE'07 evaluation.
//!
//! The paper evaluates on two synthetic families, one scalability family,
//! and two real CRM datasets:
//!
//! * [`uniform`] — "5 items and the probability of each item is chosen
//!   randomly for all tuples" (dense, 10k tuples).
//! * [`pairwise`] — "5 elements but the individual tuples have only 2
//!   non-zero items with roughly equal probabilities. In addition, the
//!   total number of item combinations is restricted to 5."
//! * [`gen3`] — domain-size scalability: random item groups whose size is
//!   geometrically distributed (expected 3 at |D|=10 up to 10 at |D|=500),
//!   random probabilities within the group.
//! * [`crm`] — simulators for the proprietary CRM datasets (see DESIGN.md
//!   §3): `crm1` mimics supervised text classification over 50 categories
//!   (sparse, low-entropy); `crm2` mimics unsupervised fuzzy clustering
//!   over 50 clusters (dense memberships).
//! * [`textsim`] — a full text-classification pipeline simulator (topic
//!   model, synthetic documents, naive-Bayes posterior), the deeper
//!   substitution for CRM1.
//! * [`workload`] — query generation and selectivity calibration: the
//!   evaluation plots I/O against query selectivity, so thresholds/k are
//!   derived from exact result-set sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crm;
pub mod gen3;
pub mod io;
pub mod pairwise;
pub mod rngutil;
pub mod textsim;
pub mod uniform;
pub mod workload;
pub mod zipf;

use uncat_core::Uda;

/// A generated relation: tuple ids are positions.
pub type Dataset = Vec<(u64, Uda)>;

/// Attach sequential tuple ids to a list of distributions.
pub fn enumerate(udas: Vec<Uda>) -> Dataset {
    udas.into_iter()
        .enumerate()
        .map(|(i, u)| (i as u64, u))
        .collect()
}
