//! The *Pairwise* synthetic dataset.
//!
//! "The Pairwise dataset also has 5 elements but the individual tuples
//! have only 2 non-zero items with roughly equal probabilities. In
//! addition, the total number of item combinations is restricted to 5"
//! (paper §4). The opposite extreme to Uniform: sparse, highly clustered —
//! ideal territory for the PDR-tree's distributional clustering.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use uncat_core::{CatId, Domain, UdaBuilder};

use crate::Dataset;

/// Domain cardinality used by the paper.
pub const DOMAIN_SIZE: u32 = 5;

/// The five fixed item pairs tuples are drawn from.
pub const COMBINATIONS: [(u32, u32); 5] = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];

/// Generate the Pairwise dataset: each tuple picks one of the 5 fixed
/// combinations and splits its mass roughly evenly (±5%) across the pair.
pub fn generate(n: usize, seed: u64) -> (Domain, Dataset) {
    let domain = Domain::anonymous(DOMAIN_SIZE);
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..n as u64)
        .map(|tid| {
            let (a, b) = COMBINATIONS[rng.random_range(0..COMBINATIONS.len())];
            let p = rng.random_range(0.45..0.55f32);
            let mut builder = UdaBuilder::with_capacity(2);
            builder.push(CatId(a), p).expect("valid probability");
            builder.push(CatId(b), 1.0 - p).expect("valid probability");
            (tid, builder.finish().expect("two entries"))
        })
        .collect();
    (domain, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_description() {
        let (_, data) = generate(2000, 2);
        for (_, u) in &data {
            assert_eq!(u.len(), 2, "exactly two non-zero items");
            let cats: Vec<u32> = u.iter().map(|(c, _)| c.0).collect();
            let pair = (cats[0].min(cats[1]), cats[0].max(cats[1]));
            assert!(
                COMBINATIONS
                    .iter()
                    .any(|&(a, b)| (a.min(b), a.max(b)) == pair),
                "combination {pair:?} not in the allowed five"
            );
            for (_, p) in u.iter() {
                assert!((0.45..=0.55).contains(&p), "roughly equal probabilities");
            }
        }
    }

    #[test]
    fn all_five_combinations_occur() {
        let (_, data) = generate(2000, 3);
        let mut seen = std::collections::HashSet::new();
        for (_, u) in &data {
            let cats: Vec<u32> = u.iter().map(|(c, _)| c.0).collect();
            seen.insert((cats[0].min(cats[1]), cats[0].max(cats[1])));
        }
        assert_eq!(seen.len(), 5);
    }
}
