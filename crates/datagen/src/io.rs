//! Dataset file I/O.
//!
//! A simple container for generated relations so datasets can be produced
//! once and reused across runs/tools (the `uncat` CLI reads and writes
//! this format):
//!
//! ```text
//! magic  "UDS1"
//! u8     labeled flag ‖ u32 domain size ‖ labels…   (domain)
//! u64    tuple count
//! count × ( u64 tid ‖ UDA codec encoding )
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use uncat_core::{codec, Domain};

use crate::Dataset;

const MAGIC: &[u8; 4] = b"UDS1";

/// Write a dataset to a file.
pub fn save(path: impl AsRef<Path>, domain: &Domain, data: &Dataset) -> io::Result<()> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    if domain.is_labeled() {
        out.push(1);
        out.extend_from_slice(&domain.size().to_le_bytes());
        for l in domain.labels() {
            let bytes = l.as_bytes();
            out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            out.extend_from_slice(bytes);
        }
    } else {
        out.push(0);
        out.extend_from_slice(&domain.size().to_le_bytes());
    }
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    for (tid, uda) in data {
        out.extend_from_slice(&tid.to_le_bytes());
        codec::encode(uda, &mut out);
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(&out)?;
    f.sync_data()
}

/// Read a dataset back.
pub fn load(path: impl AsRef<Path>) -> io::Result<(Domain, Dataset)> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    parse(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err("truncated dataset file".into());
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

fn parse(bytes: &[u8]) -> Result<(Domain, Dataset), String> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err("not a UDS1 dataset file".into());
    }
    let labeled = c.take(1)?[0] == 1;
    let size = u32::from_le_bytes(c.take(4)?.try_into().expect("len"));
    let domain = if labeled {
        let mut labels = Vec::with_capacity(size as usize);
        for _ in 0..size {
            let n = u16::from_le_bytes(c.take(2)?.try_into().expect("len")) as usize;
            let label = std::str::from_utf8(c.take(n)?).map_err(|_| "invalid label encoding")?;
            labels.push(label.to_owned());
        }
        Domain::from_labels(labels)
    } else {
        Domain::anonymous(size)
    };
    let count = u64::from_le_bytes(c.take(8)?.try_into().expect("len")) as usize;
    let mut data: Dataset = Vec::with_capacity(count);
    for _ in 0..count {
        let tid = u64::from_le_bytes(c.take(8)?.try_into().expect("len"));
        let (uda, used) = codec::decode(&c.bytes[c.pos..]).map_err(|e| e.to_string())?;
        c.pos += used;
        data.push((tid, uda));
    }
    if c.pos != c.bytes.len() {
        return Err("trailing bytes in dataset file".into());
    }
    Ok((domain, data))
}

/// In-memory roundtrip used by tests and tools that avoid temp files.
pub fn roundtrip_check(domain: &Domain, data: &Dataset) -> bool {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    if domain.is_labeled() {
        out.push(1);
        out.extend_from_slice(&domain.size().to_le_bytes());
        for l in domain.labels() {
            let b = l.as_bytes();
            out.extend_from_slice(&(b.len() as u16).to_le_bytes());
            out.extend_from_slice(b);
        }
    } else {
        out.push(0);
        out.extend_from_slice(&domain.size().to_le_bytes());
    }
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    for (tid, uda) in data {
        out.extend_from_slice(&tid.to_le_bytes());
        codec::encode(uda, &mut out);
    }
    match parse(&out) {
        Ok((d2, data2)) => d2.size() == domain.size() && &data2 == data,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform;
    use uncat_core::Uda;

    fn temp(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("uncat-ds-{tag}-{}.uds", std::process::id()));
        p
    }

    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn file_roundtrip_anonymous() {
        let path = temp("anon");
        let _g = Cleanup(path.clone());
        let (domain, data) = uniform::generate(200, 3);
        save(&path, &domain, &data).expect("save");
        let (d2, data2) = load(&path).expect("load");
        assert_eq!(d2.size(), domain.size());
        assert!(!d2.is_labeled());
        assert_eq!(data2, data);
    }

    #[test]
    fn file_roundtrip_labeled() {
        let path = temp("labeled");
        let _g = Cleanup(path.clone());
        let domain = Domain::from_labels(["Brake", "Tires", "Trans"]);
        let data: Dataset = vec![(7, Uda::certain(uncat_core::CatId(1)))];
        save(&path, &domain, &data).expect("save");
        let (d2, data2) = load(&path).expect("load");
        assert!(d2.is_labeled());
        assert_eq!(d2.label_of(uncat_core::CatId(1)), Some("Tires"));
        assert_eq!(data2, data);
    }

    #[test]
    fn garbage_rejected() {
        let path = temp("garbage");
        let _g = Cleanup(path.clone());
        std::fs::write(&path, b"not a dataset").expect("write");
        assert!(load(&path).is_err());
    }

    #[test]
    fn in_memory_roundtrip_check() {
        let (domain, data) = uniform::generate(50, 9);
        assert!(roundtrip_check(&domain, &data));
    }
}
