//! Zipf-distributed category popularity.
//!
//! Real categorical data (complaint categories, departments) is skewed:
//! a few categories dominate. The CRM simulators draw category supports
//! from this sampler so that posting-list lengths are realistically uneven.

use rand::Rng;

/// Precomputed Zipf CDF over `0..n` with exponent `s`.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for ranks `0..n` with exponent `s` (`s = 0` is
    /// uniform; `s ≈ 1` is classic Zipf).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for x in &mut cdf {
            *x /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty (constructor asserts `n > 0`).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Draw `count` Zipf(`s`)-distributed ranks in `0..n` from a fresh
/// seeded generator — the one-call form for building repeated-query
/// workloads without plumbing an RNG.
pub fn zipf_ranks(n: usize, s: f64, count: usize, seed: u64) -> Vec<usize> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let z = Zipf::new(n, s);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| z.sample(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_ranks_is_deterministic_and_in_range() {
        let a = zipf_ranks(20, 1.2, 100, 7);
        let b = zipf_ranks(20, 1.2, 100, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&r| r < 20));
        assert_ne!(a, zipf_ranks(20, 1.2, 100, 8), "seed must matter");
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; 50];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 should dominate rank 10");
        assert!(counts[0] > counts[49] * 5, "strong head-tail skew expected");
        assert!(counts.iter().sum::<usize>() == 50_000);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 800.0,
                "uniform expected, got {counts:?}"
            );
        }
    }
}
