//! Distributional similarity queries over the PDR-tree.
//!
//! For the metric divergences the boundary gives a sound *lower* bound on
//! the distance between the query and anything in the subtree
//! ([`crate::Boundary::l1_lower_bound`] / `l2_lower_bound`): a branch whose
//! lower bound exceeds `τ_d` is pruned. KL admits no such bound ("it is not
//! directly usable for pruning search paths", paper §2), so KL queries
//! traverse every leaf — correct, just unpruned.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use uncat_core::query::{sort_matches_asc, DsTopKQuery, DstQuery, Match};
use uncat_core::topk::BottomKHeap;
use uncat_core::{Divergence, Uda};
use uncat_storage::{BufferPool, PageId, Phase, QueryMetrics, Result};

use crate::boundary::Boundary;
use crate::node::{read_node, Node};
use crate::tree::PdrTree;

fn divergence_lower_bound(b: &Boundary, q: &Uda, dv: Divergence) -> f64 {
    match dv {
        Divergence::L1 => b.l1_lower_bound(q),
        Divergence::L2 => b.l2_lower_bound(q),
        Divergence::Kl => 0.0, // not prunable
    }
}

impl PdrTree {
    /// Evaluate a DSTQ: all tuples with `F(q, t) ≤ τ_d`, ascending by
    /// divergence.
    pub fn dstq(&self, pool: &mut BufferPool, query: &DstQuery) -> Result<Vec<Match>> {
        self.dstq_metered(pool, query, &mut QueryMetrics::new())
    }

    /// [`PdrTree::dstq`] with execution counters: node visits, children
    /// pruned by the divergence lower bound, and leaf entries scored. KL
    /// queries show `nodes_pruned == 0` — the visible signature of an
    /// unprunable divergence.
    pub fn dstq_metered(
        &self,
        pool: &mut BufferPool,
        query: &DstQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        let mut out = Vec::new();
        let span = pool.trace_begin(Phase::TreeTraversal);
        let mut stack = vec![self.root()];
        while let Some(pid) = stack.pop() {
            metrics.nodes_visited += 1;
            match read_node(pool, pid, self.config().compression)? {
                Node::Leaf(entries) => {
                    metrics.leaf_entries_examined += entries.len() as u64;
                    for e in &entries {
                        let d = query.divergence.eval(query.q.entries(), e.uda.entries());
                        if d <= query.tau_d {
                            out.push(Match::new(e.tid, d));
                        }
                    }
                }
                Node::Internal(children) => {
                    for c in &children {
                        let lower = divergence_lower_bound(&c.boundary, &query.q, query.divergence);
                        if lower <= query.tau_d + 1e-9 {
                            stack.push(c.pid);
                        } else {
                            metrics.nodes_pruned += 1;
                        }
                    }
                }
            }
        }
        pool.trace_end(span);
        sort_matches_asc(&mut out);
        Ok(out)
    }

    /// DSQ-top-k: the `k` tuples with the smallest divergence from the
    /// query, ascending. Best-first traversal ordered by the boundary's
    /// divergence lower bound; a branch is pruned once its bound exceeds
    /// the current k-th smallest exact distance. KL admits no bound, so KL
    /// queries traverse every leaf.
    pub fn ds_top_k(&self, pool: &mut BufferPool, query: &DsTopKQuery) -> Result<Vec<Match>> {
        self.ds_top_k_metered(pool, query, &mut QueryMetrics::new())
    }

    /// [`PdrTree::ds_top_k`] with execution counters (conventions of
    /// [`PdrTree::dstq_metered`]; children cut by the k-th smallest exact
    /// distance also count as `nodes_pruned`).
    pub fn ds_top_k_metered(
        &self,
        pool: &mut BufferPool,
        query: &DsTopKQuery,
        metrics: &mut QueryMetrics,
    ) -> Result<Vec<Match>> {
        struct Pending {
            bound: f64,
            pid: PageId,
        }
        impl PartialEq for Pending {
            fn eq(&self, other: &Self) -> bool {
                self.bound == other.bound
            }
        }
        impl Eq for Pending {}
        impl Ord for Pending {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on the lower bound.
                other
                    .bound
                    .partial_cmp(&self.bound)
                    .expect("bounds are finite")
            }
        }
        impl PartialOrd for Pending {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut heap = BottomKHeap::new(query.k);
        let span = pool.trace_begin(Phase::TreeTraversal);
        let mut frontier = BinaryHeap::new();
        frontier.push(Pending {
            bound: 0.0,
            pid: self.root(),
        });
        while let Some(Pending { bound, pid }) = frontier.pop() {
            if heap.is_full() && bound > heap.bound() + 1e-9 {
                // The remaining frontier is cut without being read.
                metrics.nodes_pruned += 1 + frontier.len() as u64;
                break; // nothing unexplored can get closer
            }
            metrics.nodes_visited += 1;
            match read_node(pool, pid, self.config().compression)? {
                Node::Leaf(entries) => {
                    metrics.leaf_entries_examined += entries.len() as u64;
                    for e in &entries {
                        let d = query.divergence.eval(query.q.entries(), e.uda.entries());
                        heap.offer(e.tid, d);
                    }
                }
                Node::Internal(children) => {
                    for c in &children {
                        let b = divergence_lower_bound(&c.boundary, &query.q, query.divergence);
                        if !heap.is_full() || b <= heap.bound() + 1e-9 {
                            frontier.push(Pending {
                                bound: b,
                                pid: c.pid,
                            });
                        } else {
                            metrics.nodes_pruned += 1;
                        }
                    }
                }
            }
        }
        pool.trace_end(span);
        Ok(heap.into_sorted())
    }
}
