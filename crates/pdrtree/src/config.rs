//! Tree construction knobs (the paper's ablation axes).

use uncat_core::Divergence;

/// How an overfull node is split (paper §3.2, "Split()").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SplitStrategy {
    /// Pick the two distributionally farthest entries as seeds and assign
    /// every other entry to the closer seed.
    TopDown,
    /// Agglomerative: start with singleton clusters and repeatedly merge
    /// the closest pair until two clusters remain. The paper's Figure 10
    /// finds this superior (top-down suffers from outlier seeds).
    #[default]
    BottomUp,
}

impl SplitStrategy {
    /// Display name used in figure output.
    pub fn name(self) -> &'static str {
        match self {
            SplitStrategy::TopDown => "top-down",
            SplitStrategy::BottomUp => "bottom-up",
        }
    }
}

/// Lossy boundary compression (paper §3.2, "Compression techniques").
///
/// Both schemes may only *over*-estimate boundary probabilities, preserving
/// the pruning property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    /// Store boundaries exactly (one f32 per non-zero category).
    #[default]
    None,
    /// Discretized over-estimation: round each probability *up* to the next
    /// multiple of `1/2^bits` and store the `bits`-wide code.
    Discretized {
        /// Code width in bits (1..=8).
        bits: u8,
    },
    /// Set-signature compression: a fixed mapping `f : D → C` with
    /// `|C| = width`; the boundary stores, per compressed bucket, the max
    /// probability over the preimage.
    Signature {
        /// Compressed domain cardinality `|C|`.
        width: u16,
    },
}

impl Compression {
    /// Display name used in figure output.
    pub fn name(self) -> String {
        match self {
            Compression::None => "none".to_owned(),
            Compression::Discretized { bits } => format!("discretized({bits}b)"),
            Compression::Signature { width } => format!("signature({width})"),
        }
    }
}

/// Full PDR-tree configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdrConfig {
    /// Distributional divergence used for clustering decisions (insertion
    /// tie-breaks and split seeding/merging). KL is the paper's winner.
    pub divergence: Divergence,
    /// Split algorithm.
    pub split: SplitStrategy,
    /// Boundary compression.
    pub compression: Compression,
    /// Balance cap for splits: no side may receive more than
    /// `balance_num/balance_den` of the entries (paper: 3/4).
    pub balance_num: usize,
    /// See [`PdrConfig::balance_num`].
    pub balance_den: usize,
}

impl Default for PdrConfig {
    fn default() -> Self {
        PdrConfig {
            divergence: Divergence::Kl,
            split: SplitStrategy::BottomUp,
            compression: Compression::None,
            balance_num: 3,
            balance_den: 4,
        }
    }
}

impl PdrConfig {
    /// The paper's default configuration (KL clustering, bottom-up split,
    /// uncompressed boundaries).
    pub fn paper_default() -> PdrConfig {
        PdrConfig::default()
    }

    /// Maximum entries one side of a split may receive, for `n` total.
    pub fn balance_cap(&self, n: usize) -> usize {
        // ceil is deliberate: a cap below 1/2 would make splits impossible.
        (n * self.balance_num).div_ceil(self.balance_den)
    }

    /// Validate the configuration (degenerate caps and widths).
    pub fn validate(&self) -> Result<(), String> {
        if self.balance_num * 2 < self.balance_den {
            return Err("balance cap below 1/2 makes splits impossible".into());
        }
        if self.balance_num > self.balance_den {
            return Err("balance cap above 1 is meaningless".into());
        }
        if let Compression::Discretized { bits } = self.compression {
            if !(1..=8).contains(&bits) {
                return Err("discretization width must be 1..=8 bits".into());
            }
        }
        if let Compression::Signature { width } = self.compression {
            if width == 0 {
                return Err("signature width must be positive".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = PdrConfig::paper_default();
        assert_eq!(c.divergence, Divergence::Kl);
        assert_eq!(c.split, SplitStrategy::BottomUp);
        assert_eq!(c.compression, Compression::None);
        assert_eq!(c.balance_cap(100), 75);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn balance_cap_rounds_up_on_small_nodes() {
        let c = PdrConfig::default();
        assert_eq!(c.balance_cap(2), 2);
        assert_eq!(c.balance_cap(3), 3);
        assert_eq!(c.balance_cap(4), 3);
        assert_eq!(c.balance_cap(5), 4);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let c = PdrConfig {
            balance_num: 1,
            balance_den: 3,
            ..PdrConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PdrConfig {
            compression: Compression::Discretized { bits: 0 },
            ..PdrConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PdrConfig {
            compression: Compression::Discretized { bits: 9 },
            ..PdrConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PdrConfig {
            compression: Compression::Signature { width: 0 },
            ..PdrConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn names_for_reporting() {
        assert_eq!(SplitStrategy::TopDown.name(), "top-down");
        assert_eq!(
            Compression::Discretized { bits: 2 }.name(),
            "discretized(2b)"
        );
        assert_eq!(Compression::Signature { width: 16 }.name(), "signature(16)");
    }
}
