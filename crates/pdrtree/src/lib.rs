//! Probabilistic Distribution R-tree (paper §3.2).
//!
//! Each UDA is a point in `R^N`; the PDR-tree clusters distributionally
//! similar UDAs into pages. A node's **MBR boundary** is the point-wise
//! maximum probability vector over its subtree. Pruning relies on Lemma 2:
//! if `⟨c.v, q⟩ < τ` then no UDA below `c` can satisfy `PETQ(q, τ)`.
//!
//! Knobs reproduced from the paper's evaluation:
//!
//! * [`config::PdrConfig::divergence`] — the clustering measure (L1, L2, or
//!   KL; Figure 4's ablation) used by insertion tie-breaking and splits.
//! * [`config::SplitStrategy`] — top-down (two farthest seeds) versus
//!   bottom-up (agglomerative merge), both with the ≤ 3/4 balance
//!   constraint (Figure 10's ablation).
//! * [`config::Compression`] — lossy boundary compression: *discretized
//!   over-estimation* (round each probability up to a multiple of `1/2^b`)
//!   and the *set-signature* domain reduction (`f : D → C`, boundary entry
//!   is the max over the preimage). Both over-estimate, so pruning remains
//!   sound.
//!
//! Every query method has a `*_metered` variant that tallies execution
//! counters (nodes visited, children pruned by Lemma 2, leaf entries
//! examined) into a [`uncat_storage::QueryMetrics`] — see
//! `docs/METRICS.md` for the counting conventions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
mod bulk;
pub mod config;
mod dstq;
mod node;
mod persist;
mod search;
mod split;
mod tree;

pub use boundary::Boundary;
pub use config::{Compression, PdrConfig, SplitStrategy};
pub use tree::{PdrCostStats, PdrTree, TreeStats};
