//! On-page PDR-tree node serialization.
//!
//! Nodes hold variable-length entries (sparse UDAs / boundary vectors), so
//! unlike the B+tree there is no fixed fan-out: a node is full when its
//! serialization no longer fits an 8 KB page. Boundary compression directly
//! increases fan-out — the effect the paper's compression section is after.
//!
//! Page layout:
//!
//! ```text
//! 0  u8  node type (0 = leaf, 1 = internal)
//! 1  u8  (reserved)
//! 2  u16 entry count
//! 4  entries…
//!
//! leaf entry:      u64 tid ‖ UDA codec encoding
//! internal entry:  u64 child page ‖ boundary encoding
//!
//! boundary encodings (shape fixed per tree by the compression config):
//!   none:          u16 n ‖ n × (u32 cat, f32 prob)
//!   discretized b: u16 n ‖ n × u32 cat ‖ ⌈n·b/8⌉ code bytes (rounded UP)
//!   signature w:   w × f32
//! ```
//!
//! Deserialization never trusts the page: a node image that does not parse
//! (bad type byte, counts pointing past the page, malformed UDA) is a
//! typed [`StorageError::Corrupt`], not a panic — a corrupted page fails
//! the query that touched it and nothing else.

use uncat_core::uda::Entry;
use uncat_core::{codec, CatId, Prob, Uda};
use uncat_storage::page::field;
use uncat_storage::{BufferPool, PageId, Result, StorageError, PAGE_SIZE};

use crate::boundary::Boundary;
use crate::config::Compression;

pub(crate) const NODE_HDR: usize = 4;
const TYPE_LEAF: u8 = 0;
const TYPE_INTERNAL: u8 = 1;

/// One stored distribution in a leaf.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LeafEntry {
    pub tid: u64,
    pub uda: Uda,
}

/// One child reference in an internal node.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChildEntry {
    pub pid: PageId,
    pub boundary: Boundary,
}

/// A deserialized node.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Node {
    Leaf(Vec<LeafEntry>),
    Internal(Vec<ChildEntry>),
}

impl Node {
    pub(crate) fn count(&self) -> usize {
        match self {
            Node::Leaf(v) => v.len(),
            Node::Internal(v) => v.len(),
        }
    }

    /// Serialized size in bytes under `compression`.
    pub(crate) fn serialized_size(&self, compression: Compression) -> usize {
        NODE_HDR
            + match self {
                Node::Leaf(v) => v.iter().map(|e| leaf_entry_size(&e.uda)).sum::<usize>(),
                Node::Internal(v) => v
                    .iter()
                    .map(|e| 8 + boundary_size(&e.boundary, compression))
                    .sum::<usize>(),
            }
    }

    /// Whether the node still fits a page.
    pub(crate) fn fits(&self, compression: Compression) -> bool {
        self.serialized_size(compression) <= PAGE_SIZE
    }
}

/// Serialized bytes of one leaf entry.
pub(crate) fn leaf_entry_size(uda: &Uda) -> usize {
    8 + codec::encoded_len(uda)
}

/// Serialized bytes of one boundary.
pub(crate) fn boundary_size(b: &Boundary, compression: Compression) -> usize {
    match (b, compression) {
        (Boundary::Sparse(v), Compression::None) => 2 + v.len() * 8,
        (Boundary::Sparse(v), Compression::Discretized { bits }) => {
            2 + v.len() * 4 + (v.len() * bits as usize).div_ceil(8)
        }
        (Boundary::Signature(vals), Compression::Signature { .. }) => vals.len() * 4,
        _ => panic!("boundary shape does not match compression config"),
    }
}

/// Round `p` *up* to the next representable `bits`-wide code. The code `c`
/// (stored as `c − 1`) decodes to `c / 2^bits ≥ p`, preserving domination.
fn quantize_up(p: Prob, bits: u8) -> u8 {
    let slabs = (1u32 << bits) as f64;
    let c = ((p as f64) * slabs).ceil().max(1.0) as u32;
    debug_assert!(c <= 1 << bits);
    (c - 1) as u8
}

fn dequantize(code: u8, bits: u8) -> Prob {
    let slabs = (1u32 << bits) as f64;
    ((code as f64 + 1.0) / slabs) as Prob
}

fn encode_boundary(b: &Boundary, compression: Compression, out: &mut Vec<u8>) {
    match (b, compression) {
        (Boundary::Sparse(v), Compression::None) => {
            out.extend_from_slice(&(v.len() as u16).to_le_bytes());
            for e in v {
                out.extend_from_slice(&e.cat.0.to_le_bytes());
                out.extend_from_slice(&e.prob.to_le_bytes());
            }
        }
        (Boundary::Sparse(v), Compression::Discretized { bits }) => {
            out.extend_from_slice(&(v.len() as u16).to_le_bytes());
            for e in v {
                out.extend_from_slice(&e.cat.0.to_le_bytes());
            }
            // Bit-packed codes.
            let mut acc: u32 = 0;
            let mut nbits = 0u32;
            for e in v {
                acc |= (quantize_up(e.prob, bits) as u32) << nbits;
                nbits += bits as u32;
                while nbits >= 8 {
                    out.push((acc & 0xFF) as u8);
                    acc >>= 8;
                    nbits -= 8;
                }
            }
            if nbits > 0 {
                out.push((acc & 0xFF) as u8);
            }
        }
        (Boundary::Signature(vals), Compression::Signature { width }) => {
            debug_assert_eq!(vals.len(), width as usize);
            for p in vals {
                out.extend_from_slice(&p.to_le_bytes());
            }
        }
        _ => panic!("boundary shape does not match compression config"),
    }
}

const BAD_BOUNDARY: StorageError =
    StorageError::Corrupt("PDR boundary encoding points past its page");

fn decode_boundary(buf: &[u8], compression: Compression) -> Result<(Boundary, usize)> {
    match compression {
        Compression::None => {
            let n = u16::from_le_bytes(
                buf.get(..2)
                    .and_then(|b| b.try_into().ok())
                    .ok_or(BAD_BOUNDARY)?,
            ) as usize;
            if buf.len() < 2 + n * 8 {
                return Err(BAD_BOUNDARY);
            }
            let mut v = Vec::with_capacity(n);
            let mut off = 2;
            for _ in 0..n {
                let cat = CatId(field::get_u32(buf, off));
                let prob = field::get_f32(buf, off + 4);
                v.push(Entry { cat, prob });
                off += 8;
            }
            Ok((Boundary::Sparse(v), off))
        }
        Compression::Discretized { bits } => {
            let n = u16::from_le_bytes(
                buf.get(..2)
                    .and_then(|b| b.try_into().ok())
                    .ok_or(BAD_BOUNDARY)?,
            ) as usize;
            let code_bytes = (n * bits as usize).div_ceil(8);
            if buf.len() < 2 + n * 4 + code_bytes {
                return Err(BAD_BOUNDARY);
            }
            let mut cats = Vec::with_capacity(n);
            let mut off = 2;
            for _ in 0..n {
                cats.push(CatId(field::get_u32(buf, off)));
                off += 4;
            }
            let codes = &buf[off..off + code_bytes];
            off += code_bytes;
            let mut v = Vec::with_capacity(n);
            let mask = (1u32 << bits) - 1;
            let mut acc: u32 = 0;
            let mut nbits = 0u32;
            let mut byte_i = 0usize;
            for cat in cats {
                while nbits < bits as u32 {
                    acc |= (codes[byte_i] as u32) << nbits;
                    byte_i += 1;
                    nbits += 8;
                }
                let code = (acc & mask) as u8;
                acc >>= bits;
                nbits -= bits as u32;
                v.push(Entry {
                    cat,
                    prob: dequantize(code, bits),
                });
            }
            Ok((Boundary::Sparse(v), off))
        }
        Compression::Signature { width } => {
            if buf.len() < width as usize * 4 {
                return Err(BAD_BOUNDARY);
            }
            let mut vals = Vec::with_capacity(width as usize);
            let mut off = 0;
            for _ in 0..width {
                vals.push(field::get_f32(buf, off));
                off += 4;
            }
            Ok((Boundary::Signature(vals), off))
        }
    }
}

/// Write a node image onto its page. Panics if the node does not fit —
/// callers split before writing. I/O failures surface as `Err`.
pub(crate) fn write_node(
    pool: &mut BufferPool,
    pid: PageId,
    node: &Node,
    compression: Compression,
) -> Result<()> {
    let mut bytes = Vec::with_capacity(node.serialized_size(compression));
    match node {
        Node::Leaf(entries) => {
            bytes.push(TYPE_LEAF);
            bytes.push(0);
            bytes.extend_from_slice(&(entries.len() as u16).to_le_bytes());
            for e in entries {
                bytes.extend_from_slice(&e.tid.to_le_bytes());
                codec::encode(&e.uda, &mut bytes);
            }
        }
        Node::Internal(children) => {
            bytes.push(TYPE_INTERNAL);
            bytes.push(0);
            bytes.extend_from_slice(&(children.len() as u16).to_le_bytes());
            for c in children {
                bytes.extend_from_slice(&c.pid.0.to_le_bytes());
                encode_boundary(&c.boundary, compression, &mut bytes);
            }
        }
    }
    assert!(
        bytes.len() <= PAGE_SIZE,
        "node of {} bytes overflows its page",
        bytes.len()
    );
    pool.write(pid, |b| {
        b[..bytes.len()].copy_from_slice(&bytes);
    })
}

/// Read a node image from its page. A malformed image is
/// [`StorageError::Corrupt`].
pub(crate) fn read_node(
    pool: &mut BufferPool,
    pid: PageId,
    compression: Compression,
) -> Result<Node> {
    pool.read(pid, |b| {
        let ty = b[0];
        let count = field::get_u16(&b[..], 2) as usize;
        let mut off = NODE_HDR;
        match ty {
            TYPE_LEAF => {
                let mut entries = Vec::with_capacity(count.min(PAGE_SIZE / 16));
                for _ in 0..count {
                    if off + 8 > PAGE_SIZE {
                        return Err(StorageError::Corrupt("PDR leaf entry past its page"));
                    }
                    let tid = field::get_u64(&b[..], off);
                    off += 8;
                    let (uda, used) = codec::decode(&b[off..])
                        .map_err(|_| StorageError::Corrupt("stored UDA does not decode"))?;
                    off += used;
                    entries.push(LeafEntry { tid, uda });
                }
                Ok(Node::Leaf(entries))
            }
            TYPE_INTERNAL => {
                let mut children = Vec::with_capacity(count.min(PAGE_SIZE / 16));
                for _ in 0..count {
                    if off + 8 > PAGE_SIZE {
                        return Err(StorageError::Corrupt("PDR child entry past its page"));
                    }
                    let pid = PageId(field::get_u64(&b[..], off));
                    off += 8;
                    let (boundary, used) = decode_boundary(&b[off..], compression)?;
                    off += used;
                    children.push(ChildEntry { pid, boundary });
                }
                Ok(Node::Internal(children))
            }
            _ => Err(StorageError::Corrupt("unknown PDR node type byte")),
        }
    })?
}

#[cfg(test)]
mod tests {
    use super::*;
    use uncat_storage::InMemoryDisk;

    fn uda(pairs: &[(u32, f32)]) -> Uda {
        Uda::from_pairs(pairs.iter().map(|&(c, p)| (CatId(c), p))).unwrap()
    }

    fn pool() -> BufferPool {
        BufferPool::with_capacity(InMemoryDisk::shared(), 16)
    }

    #[test]
    fn leaf_roundtrip() {
        let mut p = pool();
        let pid = p.allocate().unwrap();
        let node = Node::Leaf(vec![
            LeafEntry {
                tid: 1,
                uda: uda(&[(0, 0.5), (7, 0.5)]),
            },
            LeafEntry {
                tid: 99,
                uda: uda(&[(3, 1.0)]),
            },
        ]);
        write_node(&mut p, pid, &node, Compression::None).unwrap();
        assert_eq!(read_node(&mut p, pid, Compression::None).unwrap(), node);
    }

    #[test]
    fn internal_roundtrip_uncompressed() {
        let mut p = pool();
        let pid = p.allocate().unwrap();
        let node = Node::Internal(vec![
            ChildEntry {
                pid: PageId(5),
                boundary: Boundary::of_uda(&uda(&[(0, 0.1), (2, 0.9)]), Compression::None),
            },
            ChildEntry {
                pid: PageId(9),
                boundary: Boundary::of_uda(&uda(&[(1, 1.0)]), Compression::None),
            },
        ]);
        write_node(&mut p, pid, &node, Compression::None).unwrap();
        assert_eq!(read_node(&mut p, pid, Compression::None).unwrap(), node);
    }

    #[test]
    fn discretized_roundtrip_only_rounds_up() {
        let mut p = pool();
        let pid = p.allocate().unwrap();
        let cfg = Compression::Discretized { bits: 2 };
        let orig = Boundary::Sparse(vec![
            Entry {
                cat: CatId(0),
                prob: 0.62,
            },
            Entry {
                cat: CatId(5),
                prob: 0.10,
            },
            Entry {
                cat: CatId(6),
                prob: 1.0,
            },
        ]);
        let node = Node::Internal(vec![ChildEntry {
            pid: PageId(1),
            boundary: orig.clone(),
        }]);
        write_node(&mut p, pid, &node, cfg).unwrap();
        let back = read_node(&mut p, pid, cfg).unwrap();
        let Node::Internal(children) = back else {
            panic!("internal expected")
        };
        let Boundary::Sparse(v) = &children[0].boundary else {
            panic!("sparse expected")
        };
        // Paper's example: 0.62 → 0.75 in 2 bits.
        assert_eq!(v[0].prob, 0.75);
        assert_eq!(v[1].prob, 0.25);
        assert_eq!(v[2].prob, 1.0);
        for (a, b) in v.iter().zip(orig.entries()) {
            assert_eq!(a.cat, b.cat);
            assert!(a.prob >= b.prob, "lossy boundary must over-estimate");
        }
    }

    #[test]
    fn discretized_is_smaller_than_exact() {
        let v: Vec<Entry> = (0..100)
            .map(|i| Entry {
                cat: CatId(i),
                prob: 0.5,
            })
            .collect();
        let b = Boundary::Sparse(v);
        let exact = boundary_size(&b, Compression::None);
        let disc = boundary_size(&b, Compression::Discretized { bits: 2 });
        assert!(disc < exact, "{disc} !< {exact}");
        // 2 + 400 cat bytes + 25 code bytes vs 2 + 800.
        assert_eq!(disc, 2 + 400 + 25);
        assert_eq!(exact, 2 + 800);
    }

    #[test]
    fn signature_roundtrip() {
        let mut p = pool();
        let pid = p.allocate().unwrap();
        let cfg = Compression::Signature { width: 8 };
        let b = Boundary::of_uda(&uda(&[(1, 0.2), (9, 0.5), (17, 0.3)]), cfg);
        let node = Node::Internal(vec![ChildEntry {
            pid: PageId(2),
            boundary: b.clone(),
        }]);
        write_node(&mut p, pid, &node, cfg).unwrap();
        let back = read_node(&mut p, pid, cfg).unwrap();
        let Node::Internal(children) = back else {
            panic!("internal expected")
        };
        assert_eq!(children[0].boundary, b);
    }

    #[test]
    fn quantize_bounds() {
        for bits in 1..=8u8 {
            for p in [1e-6f32, 0.1, 0.25, 0.5, 0.62, 0.99, 1.0] {
                let q = dequantize(quantize_up(p, bits), bits);
                assert!(q >= p, "{q} < {p} at {bits} bits");
                assert!(q <= 1.0 + 1e-6);
            }
        }
    }

    #[test]
    fn eight_bit_codes_fit_a_byte() {
        assert_eq!(quantize_up(1.0, 8), 255);
        assert_eq!(dequantize(255, 8), 1.0);
        assert_eq!(quantize_up(1.0 / 256.0, 8), 0);
    }

    #[test]
    fn corrupt_node_images_are_typed_errors() {
        let mut p = pool();
        let pid = p.allocate().unwrap();
        // Unknown type byte.
        p.write(pid, |b| b[0] = 0xEE).unwrap();
        assert_eq!(
            read_node(&mut p, pid, Compression::None),
            Err(StorageError::Corrupt("unknown PDR node type byte"))
        );
        // Internal node whose child count walks past the page.
        p.write(pid, |b| {
            b[0] = 1; // internal
            b[1] = 0;
            b[2..4].copy_from_slice(&u16::MAX.to_le_bytes());
        })
        .unwrap();
        assert!(read_node(&mut p, pid, Compression::None).is_err());
        // Leaf whose entries claim a UDA that never decodes.
        p.write(pid, |b| {
            b[0] = 0; // leaf
            b[2..4].copy_from_slice(&400u16.to_le_bytes());
            for x in b[4..].iter_mut() {
                *x = 0xFF;
            }
        })
        .unwrap();
        assert!(read_node(&mut p, pid, Compression::None).is_err());
    }

    #[test]
    #[should_panic(expected = "overflows its page")]
    fn oversized_node_panics() {
        let mut p = pool();
        let pid = p.allocate().unwrap();
        let entries: Vec<LeafEntry> = (0..2000)
            .map(|i| LeafEntry {
                tid: i,
                uda: uda(&[(0, 0.5), (1, 0.25), (2, 0.25)]),
            })
            .collect();
        let _ = write_node(&mut p, pid, &Node::Leaf(entries), Compression::None);
    }
}
